//! Attribution-as-a-service demo: spins up `synthattr-serve` on an
//! ephemeral loopback port, walks every endpoint with the in-repo
//! client, and prints the exchanges.
//!
//! ```sh
//! cargo run --release --example attribution_server            # demo run
//! cargo run --release --example attribution_server -- --listen 8484
//! # then: curl -s -X POST 'http://127.0.0.1:8484/attribute?year=2018' \
//! #         --data-binary 'int main() { int total = 3; return total; }'
//! ```

use synthattr::serve::client::request;
use synthattr::serve::{ServeConfig, Server};

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().collect();
    let listen_port = args
        .iter()
        .position(|a| a == "--listen")
        .and_then(|i| args.get(i + 1))
        .map(|p| p.parse::<u16>().expect("--listen needs a port"));

    let mut config = ServeConfig::smoke();
    config.preload = true;
    eprintln!(
        "[serve] training {} per-year models at smoke scale ...",
        config.years.len()
    );
    let addr = format!("127.0.0.1:{}", listen_port.unwrap_or(0));
    let server = Server::bind(&addr, config)?.spawn()?;
    eprintln!("[serve] listening on {}", server.addr());

    if let Some(port) = listen_port {
        eprintln!("[serve] foreground mode on port {port}; Ctrl-C to stop");
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }

    let addr = server.addr();
    let source = "int main() { int total = 3; for (int i = 0; i < 4; i = i + 1) { total = total + i; } return total; }";

    println!("== POST /attribute?year=2018 ==");
    let verdict = request(addr, "POST", "/attribute?year=2018", &[], source.as_bytes())?;
    println!("{} {}", verdict.status, verdict.text());

    println!("== POST /transform?year=2018&mode=ct&steps=2&seed=42 ==");
    let chain = request(
        addr,
        "POST",
        "/transform?year=2018&mode=ct&steps=2&seed=42",
        &[],
        source.as_bytes(),
    )?;
    println!("{} {:.200}...", chain.status, chain.text());

    println!("== GET /healthz ==");
    let health = request(addr, "GET", "/healthz", &[], b"")?;
    println!("{} {}", health.status, health.text());

    server.shutdown();
    Ok(())
}
