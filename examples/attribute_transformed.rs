//! The paper's core experiment, end to end at smoke scale: build a
//! year pipeline, inspect the styles ChatGPT-transformed code lands
//! on (Table IV), and compare naive vs feature-based attribution
//! (Tables VIII/IX).
//!
//! ```sh
//! cargo run --release --example attribute_transformed
//! ```

use synthattr::core::config::ExperimentConfig;
use synthattr::core::experiments::{attribution, diversity, styles};
use synthattr::core::pipeline::YearPipeline;

fn main() {
    let cfg = ExperimentConfig::smoke();
    println!(
        "building GCJ 2018 pipeline ({} authors x {} challenges, {} transforms/setting)...",
        cfg.scale.authors, cfg.scale.challenges, cfg.scale.transforms
    );
    let pipeline = YearPipeline::build(2018, &cfg);

    // Table IV: how many styles does the transformer produce?
    let style_counts = styles::run(&pipeline);
    println!("\n{}", styles::render(std::slice::from_ref(&style_counts)));
    println!(
        "max styles in any cell: {} (the paper observes at most 12)",
        style_counts.max_styles
    );

    // Tables V-VII: how skewed is style usage?
    let div = diversity::run(&pipeline);
    println!("\n{}", diversity::render(&div));
    println!(
        "top style carries {:.1}% of samples",
        100.0 * div.top_share()
    );

    // Tables VIII/IX: can the 205-class model still find ChatGPT?
    let naive = attribution::run(&pipeline, attribution::Grouping::Naive);
    let feature = attribution::run(&pipeline, attribution::Grouping::FeatureBased);
    println!(
        "\n{}",
        attribution::render_naive(std::slice::from_ref(&naive))
    );
    println!(
        "{}",
        attribution::render_feature_based(std::slice::from_ref(&feature))
    );
    println!(
        "ChatGPT-set recognition: naive {:.0}% vs feature-based {:.0}%",
        100.0 * naive.chatgpt_pct(),
        100.0 * feature.chatgpt_pct()
    );
    assert!(feature.chatgpt_pct() >= naive.chatgpt_pct());
    println!("\nfeature-based grouping wins or ties, as in the paper.");
}
