//! Survey of the synthetic author population: how diverse are the
//! generated styles, and how stable is an author's style across
//! challenges? (This is the property that makes the attribution task
//! well-posed — DESIGN.md §2.)
//!
//! ```sh
//! cargo run --release --example style_survey
//! ```

use synthattr::features::{FeatureConfig, FeatureExtractor};
use synthattr::gen::corpus::{generate_year, YearSpec};
use synthattr::util::Table;

fn euclid(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

fn main() {
    let spec = YearSpec::tiny(2018, 12, 4);
    let corpus = generate_year(&spec, 2024);
    let extractor = FeatureExtractor::new(FeatureConfig::default());

    let features: Vec<Vec<f64>> = corpus
        .samples
        .iter()
        .map(|s| extractor.extract(&s.source).expect("generated code parses"))
        .collect();

    // Within-author vs across-author feature distances.
    let mut within = Vec::new();
    let mut across = Vec::new();
    for i in 0..corpus.samples.len() {
        for j in (i + 1)..corpus.samples.len() {
            let d = euclid(&features[i], &features[j]);
            if corpus.samples[i].author == corpus.samples[j].author {
                within.push(d);
            } else {
                across.push(d);
            }
        }
    }
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    let mut t = Table::new(vec!["Pair type", "Pairs", "Mean feature distance"])
        .with_title("Style survey: 12 authors x 4 challenges");
    t.row(vec![
        "same author".into(),
        within.len().to_string(),
        format!("{:.2}", mean(&within)),
    ]);
    t.row(vec![
        "different author".into(),
        across.len().to_string(),
        format!("{:.2}", mean(&across)),
    ]);
    println!("{t}");
    println!(
        "separation ratio (across / within): {:.2}x",
        mean(&across) / mean(&within)
    );
    assert!(
        mean(&across) > mean(&within),
        "authors must be closer to themselves than to each other"
    );

    // Show two authors' takes on the same challenge.
    let a0 = corpus.by_author(0).next().unwrap();
    let a1 = corpus.by_author(1).next().unwrap();
    println!("--- author A0, challenge 0 ---\n{}", a0.source);
    println!("--- author A1, challenge 0 ---\n{}", a1.source);
}
