//! Binary ChatGPT-vs-human detection (the paper's Table X) at smoke
//! scale: is a given solution machine-transformed or human-written?
//!
//! ```sh
//! cargo run --release --example binary_detection
//! ```

use synthattr::core::config::ExperimentConfig;
use synthattr::core::experiments::binary;
use synthattr::core::pipeline::YearPipeline;

fn main() {
    let cfg = ExperimentConfig::smoke();
    let years = [2017u32, 2018];
    let pipelines: Vec<YearPipeline> = years
        .iter()
        .map(|&y| {
            println!("building GCJ {y} pipeline...");
            YearPipeline::build(y, &cfg)
        })
        .collect();

    let individual: Vec<binary::BinaryResult> =
        pipelines.iter().map(binary::run_individual).collect();
    let combined = binary::run_combined(&pipelines);

    println!("\n{}", binary::render(&individual, Some(&combined)));
    for r in &individual {
        println!(
            "GCJ {}: {:.1}% average binary accuracy over {} challenge folds",
            r.year,
            100.0 * r.avg(),
            r.per_challenge.len()
        );
    }
    println!(
        "combined ({} years): {:.1}% (paper: 93.1% at full scale)",
        combined.years.len(),
        100.0 * combined.all_avg()
    );
    assert!(
        combined.all_avg() > 0.6,
        "detector must beat chance soundly"
    );
}
