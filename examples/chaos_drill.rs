//! Chaos drill: build the same pipeline three ways — fault-free,
//! under recoverable chaos, and under a brutal profile that exhausts
//! the retry budget — and print the resilience accounting.
//!
//! Demonstrates the headline invariant of the fault layer: with the
//! recoverable profile the tables are byte-identical to the fault-free
//! run (every retry is invisible); with the brutal profile the run
//! still completes, and the losses show up as `Degraded`/`Failed`
//! outcomes instead of a panic.
//!
//! ```sh
//! cargo run --release --example chaos_drill
//! ```

use synthattr::core::config::ExperimentConfig;
use synthattr::core::pipeline::YearPipeline;
use synthattr::core::FrontendStats;
use synthattr::faults::{FaultProfile, ResilienceStats};

fn report(label: &str, r: &ResilienceStats) {
    println!("-- {label}");
    println!(
        "   calls {:5}  clean {:5}  recovered {:4}  degraded {:3}  failed {:3}",
        r.calls, r.clean, r.recovered, r.degraded, r.failed
    );
    println!(
        "   retries {:4}  simulated backoff {:6} ms  breaker trips {:2}  fidelity {:.4}",
        r.retries,
        r.backoff_ms,
        r.breaker_trips,
        r.fidelity()
    );
    if !r.faults_by_tag.is_empty() {
        let mix: Vec<String> = r
            .faults_by_tag
            .iter()
            .map(|(tag, n)| format!("{tag}:{n}"))
            .collect();
        println!("   injected: {}", mix.join("  "));
    }
}

/// The single-parse frontend's accounting for one build: how many
/// sources actually hit the parser, how many the artifact cache
/// absorbed, and what the frontend cost in wall-clock. Counters are
/// deterministic; the milliseconds are this machine's.
fn report_frontend(fe: &FrontendStats) {
    println!(
        "   frontend: {} parses, {} cache hits ({:.1}% hit rate), {:.1} ms",
        fe.cache_misses,
        fe.cache_hits,
        100.0 * fe.hit_rate(),
        fe.frontend_ns as f64 / 1e6
    );
}

fn main() {
    let year = 2018;
    let plain_cfg = ExperimentConfig::smoke();
    let plain = YearPipeline::build(year, &plain_cfg);
    report("fault-free service", &plain.resilience);
    report_frontend(&plain.frontend);

    let chaos_cfg = plain_cfg
        .clone()
        .with_faults(FaultProfile::recoverable(0xD211, 0.20));
    let chaos = YearPipeline::build(year, &chaos_cfg);
    report("recoverable chaos, 20% fault rate", &chaos.resilience);
    report_frontend(&chaos.frontend);

    let identical = plain
        .transformed
        .iter()
        .zip(&chaos.transformed)
        .all(|(a, b)| a.sample.source == b.sample.source);
    println!(
        "   transformed corpus vs fault-free: {}",
        if identical {
            "byte-identical (all retries invisible)"
        } else {
            "DIVERGED (invariant violated!)"
        }
    );

    let brutal_cfg = plain_cfg.with_faults(FaultProfile::brutal(0xBAD));
    let brutal = YearPipeline::build(year, &brutal_cfg);
    report("brutal chaos, 45% rate, tight budget", &brutal.resilience);
    report_frontend(&brutal.frontend);
    println!(
        "   run completed with {} samples despite exhaustion",
        brutal.transformed.len()
    );
}
