//! The paper's threat model in action: an adversary feeds a human
//! author's code through the LLM transformer to *misattribute* it.
//! We train the oracle, transform one author's solution repeatedly,
//! and watch the predicted author change — then show that the
//! feature-based ChatGPT class catches the transformed code anyway.
//!
//! ```sh
//! cargo run --release --example evasion_game
//! ```

use synthattr::core::config::ExperimentConfig;
use synthattr::core::pipeline::{Setting, YearPipeline};
use synthattr::util::stats::ranked_histogram;
use synthattr::util::Table;

fn main() {
    let cfg = ExperimentConfig::smoke();
    println!("building GCJ 2019 pipeline...");
    let pipeline = YearPipeline::build(2019, &cfg);

    let victim = pipeline.seed_author;
    println!("victim: author A{victim} (their code seeds the ± transformation settings)\n");

    // How often does the oracle still say "A<victim>" after the
    // adversary's transformations?
    let mut t = Table::new(vec![
        "Setting",
        "Samples",
        "Still attributed to victim",
        "Evasion rate",
        "Top misattribution",
    ])
    .with_title("Evasion: oracle predictions on transformed victim code");
    for setting in [Setting::HumanNct, Setting::HumanCt] {
        let labels: Vec<usize> = pipeline
            .transformed
            .iter()
            .filter(|e| e.setting == setting)
            .map(|e| e.oracle_label)
            .collect();
        let still = labels.iter().filter(|&&l| l == victim).count();
        let evasion = 1.0 - still as f64 / labels.len().max(1) as f64;
        let top = ranked_histogram(&labels)
            .into_iter()
            .find(|(l, _)| *l != victim)
            .map(|(l, c)| format!("A{l} ({c}x)"))
            .unwrap_or_else(|| "-".into());
        t.row(vec![
            setting.notation().into(),
            labels.len().to_string(),
            still.to_string(),
            format!("{:.1}%", 100.0 * evasion),
            top,
        ]);
    }
    println!("{t}");

    // The defence: transformed code clusters on few styles, so the
    // feature-based ChatGPT class still captures it.
    use synthattr::core::experiments::attribution::{run, Grouping};
    let fb = run(&pipeline, Grouping::FeatureBased);
    println!(
        "feature-based defence: ChatGPT set of {} samples recognized in {:.0}% of folds",
        fb.set_size,
        100.0 * fb.chatgpt_pct()
    );
    println!("(paper: transformation evades per-author attribution, but the");
    println!(" feature-based ChatGPT-set approach remains effective)");
}
