//! Per-year diagnostics report over the three synthetic corpora: the
//! static-analysis view of what the generator produces (DESIGN.md §8).
//!
//! Every corpus program must be free of error-severity diagnostics —
//! the same invariant the transform and generation gates enforce —
//! so this example doubles as the `scripts/verify.sh --lint` check
//! and exits nonzero on any error.
//!
//! ```sh
//! cargo run --release --example lint_corpus
//! ```

use std::collections::BTreeMap;
use synthattr::analysis::{Analyzer, Severity};
use synthattr::gen::corpus::{generate_year, YearSpec};
use synthattr::util::Table;

fn main() {
    let analyzer = Analyzer::new();
    let mut table = Table::new(vec!["Year", "Programs", "Errors", "Warnings", "Top pass"])
        .with_title("Corpus lint report (24 authors x 4 challenges per year)");
    let mut total_errors = 0usize;
    let mut pass_totals: BTreeMap<&'static str, usize> = BTreeMap::new();

    for year in [2017u32, 2018, 2019] {
        let spec = YearSpec::tiny(year, 24, 4);
        let corpus = generate_year(&spec, 7);
        let mut errors = 0usize;
        let mut warnings = 0usize;
        let mut per_pass: BTreeMap<&'static str, usize> = BTreeMap::new();
        for sample in &corpus.samples {
            let diags = analyzer
                .analyze_source(&sample.source)
                .expect("generated code parses");
            for d in &diags {
                *per_pass.entry(d.pass).or_insert(0) += 1;
                *pass_totals.entry(d.pass).or_insert(0) += 1;
                match d.severity {
                    Severity::Error => {
                        errors += 1;
                        eprintln!("{year}: {d}");
                    }
                    Severity::Warning => warnings += 1,
                }
            }
        }
        let top = per_pass
            .iter()
            .max_by_key(|(_, n)| **n)
            .map(|(p, n)| format!("{p} ({n})"))
            .unwrap_or_else(|| "-".into());
        table.row(vec![
            year.to_string(),
            corpus.samples.len().to_string(),
            errors.to_string(),
            warnings.to_string(),
            top,
        ]);
        total_errors += errors;
    }

    println!("{table}");

    // Per-pass breakdown across all three years, so the dataflow
    // verdicts (use-before-init, dead-store) are visible even when
    // another pass dominates the "Top pass" column. Registered passes
    // that never fire still get a zero row — a clean use-before-init
    // line is exactly the corpus invariant this example exists to show.
    let mut per_pass_table = Table::new(vec!["Pass", "Severity", "Diagnostics"])
        .with_title("Per-pass totals (2017 + 2018 + 2019)");
    for (name, severity) in analyzer.pass_summaries() {
        let n = pass_totals.get(name).copied().unwrap_or(0);
        per_pass_table.row(vec![
            name.to_string(),
            severity.label().to_string(),
            n.to_string(),
        ]);
    }
    println!("{per_pass_table}");
    assert_eq!(
        total_errors, 0,
        "corpus programs must be free of error-severity diagnostics"
    );
    println!("all corpora clean: no error-severity diagnostics");
}
