//! Quickstart: parse C++, extract stylometric features, train a tiny
//! authorship model, and attribute a held-out sample.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use synthattr::core::model::AuthorshipModel;
use synthattr::features::FeatureConfig;
use synthattr::lang::parse;
use synthattr::ml::forest::ForestConfig;
use synthattr::util::Pcg64;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two programmers solving the same problem in different styles.
    let alice_sum = r#"
#include <iostream>
using namespace std;
int main() {
    int numValues;
    cin >> numValues;
    long long runningTotal = 0;
    for (int index = 0; index < numValues; ++index) {
        int currentValue;
        cin >> currentValue;
        runningTotal += currentValue;
    }
    cout << runningTotal << endl;
    return 0;
}
"#;
    let bob_sum = r#"
#include <cstdio>
int main()
{
	int n;
	scanf("%d", &n);
	long long s = 0;
	for (int i = 0; i < n; i++)
	{
		int x;
		scanf("%d", &x);
		s = s + x;
	}
	printf("%lld\n", s);
	return 0;
}
"#;
    let alice_count = r#"
#include <iostream>
using namespace std;
int main() {
    int numValues;
    cin >> numValues;
    int evenCount = 0;
    for (int index = 0; index < numValues; ++index) {
        int currentValue;
        cin >> currentValue;
        if (currentValue % 2 == 0) {
            evenCount += 1;
        }
    }
    cout << evenCount << endl;
    return 0;
}
"#;
    let bob_count = r#"
#include <cstdio>
int main()
{
	int n;
	scanf("%d", &n);
	int c = 0;
	for (int i = 0; i < n; i++)
	{
		int x;
		scanf("%d", &x);
		if (x % 2 == 0)
		{
			c = c + 1;
		}
	}
	printf("%d\n", c);
	return 0;
}
"#;
    let alice_max = r#"
#include <iostream>
using namespace std;
int main() {
    int numValues;
    cin >> numValues;
    int bestSoFar = -1000000000;
    for (int index = 0; index < numValues; ++index) {
        int currentValue;
        cin >> currentValue;
        bestSoFar = max(bestSoFar, currentValue);
    }
    cout << bestSoFar << endl;
    return 0;
}
"#;
    let bob_max = r#"
#include <cstdio>
int main()
{
	int n;
	scanf("%d", &n);
	int b = -1000000000;
	for (int i = 0; i < n; i++)
	{
		int x;
		scanf("%d", &x);
		if (x > b)
		{
			b = x;
		}
	}
	printf("%d\n", b);
	return 0;
}
"#;

    // The C++ frontend gives us a typed AST...
    let unit = parse(alice_sum)?;
    println!(
        "parsed alice's solution: {} top-level items, main has {} statements",
        unit.items.len(),
        unit.function("main")
            .map(|f| f.body.stmts.len())
            .unwrap_or(0)
    );

    // ...and the authorship model learns who writes like what (two
    // solved problems per author).
    let train = vec![
        (alice_sum, 0usize),
        (alice_count, 0usize),
        (bob_sum, 1usize),
        (bob_count, 1usize),
    ];
    let model = AuthorshipModel::train(
        &train,
        2,
        FeatureConfig::default(),
        ForestConfig::fast(),
        &mut Pcg64::new(42),
    )?;

    let who = |label: usize| if label == 0 { "alice" } else { "bob" };
    println!(
        "held-out max-problem solutions attributed to: {} and {}",
        who(model.predict(alice_max)?),
        who(model.predict(bob_max)?)
    );
    assert_eq!(model.predict(alice_max)?, 0);
    assert_eq!(model.predict(bob_max)?, 1);
    println!("quickstart OK");
    Ok(())
}
