#!/usr/bin/env bash
# Perf-trajectory baseline: runs the `forest`, `features`, and
# `analysis` bench targets through `synthattr_bench::harness` and
# writes one JSON line
# per benchmark into BENCH_forest.json (the harness prints JSON on
# stdout, human progress on stderr — see DESIGN.md "Benchmarking").
#
# The forest target benches both the optimised trainer (`train/50`)
# and the retained naive splitter (`train_reference/50`) in the same
# run, so the summary printed at the end is an apples-to-apples
# fast-path speedup on this machine.
#
# The `faults` target sweeps the chaos proxy at 0/5/20% fault rates
# against the bare simulator and lands in BENCH_faults.json, so the
# retry/validation overhead has its own trajectory file.
#
# The `pipeline` target races all three frontend generations in one
# run: the node-level incremental frontend vs. the retained reference
# re-parse frontend on the frontend-heavy build (fault-free and
# chaos@20%), and incremental vs. the retained whole-file artifact
# cache on the chain-heavy build (`cached/chain` / `wholefile/chain`,
# both under the recoverable 20% fault profile). Lands in
# BENCH_pipeline.json; the summary printed at the end gives the
# cached-vs-reference and chain speedups on this machine. Its JSON
# lines carry `allocs_per_iter`/`alloc_bytes_per_iter` from the bench
# binary's counting allocator.
#
# The `serve` target spins up a real `synthattr-serve` server on a
# loopback socket and drives it with seeded keep-alive clients: serial
# and 8-way-concurrent /attribute latency (p50/p95 per request), a
# sustained req/s line, the /healthz routing floor, and the saturating
# sweep — 1/8/64/256 clients against the fixed 4-worker rotation pool,
# clean and with 16 slow-loris connections held open in the background
# (`sweep/cN` / `sweep+loris16/cN`), so the survivability overhead has
# its own trajectory. Lands in BENCH_serve.json.
#
# The `scale` target sweeps the out-of-core corpus path at 204 /
# 2 000 / 20 000 authors — streamed generation → columnar feature
# stores → sharded forest training — and lands one-shot wall-time +
# peak-heap (`peak_alloc_bytes`) rows plus an accuracy-vs-scale row
# per cell in BENCH_scale.json. The summary prints the per-cell
# build/train times, peak heap, and accuracy curve.
#
# Usage:
#   scripts/bench.sh                  # full budgets, writes BENCH_forest.json,
#                                     #   BENCH_faults.json, BENCH_pipeline.json,
#                                     #   BENCH_serve.json, BENCH_scale.json
#   scripts/bench.sh scale            # only the scale sweep (minutes)
#   SYNTHATTR_BENCH_MEASURE_MS=500 scripts/bench.sh   # quicker pass
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
OUT="${SYNTHATTR_BENCH_OUT:-BENCH_forest.json}"
FAULTS_OUT="${SYNTHATTR_BENCH_FAULTS_OUT:-BENCH_faults.json}"
PIPELINE_OUT="${SYNTHATTR_BENCH_PIPELINE_OUT:-BENCH_pipeline.json}"
SERVE_OUT="${SYNTHATTR_BENCH_SERVE_OUT:-BENCH_serve.json}"
SCALE_OUT="${SYNTHATTR_BENCH_SCALE_OUT:-BENCH_scale.json}"

scale_sweep() {
  echo "== bench: scale (204 / 2k / 20k author out-of-core sweep) ==" >&2
  cargo bench --offline -p synthattr-bench --bench scale | grep '^{' > "$SCALE_OUT"

  scale_field() {
    grep "\"bench\":\"$1\"" "$SCALE_OUT" | sed -E "s/.*\"$2\":([0-9.]+).*/\1/" | head -n 1
  }
  for a in 204 2000 20000; do
    build=$(scale_field "build/$a" "median_ns")
    train=$(scale_field "train/$a" "median_ns")
    bpk=$(scale_field "build/$a" "peak_alloc_bytes")
    tpk=$(scale_field "train/$a" "peak_alloc_bytes")
    acc=$(scale_field "accuracy/$a" "accuracy")
    if [[ -n "$build" && -n "$train" && -n "$acc" ]]; then
      awk -v a="$a" -v build="$build" -v train="$train" \
          -v bpk="${bpk:-0}" -v tpk="${tpk:-0}" -v acc="$acc" 'BEGIN {
        printf "scale %-5d authors: build %.2f s (peak %.0f MiB), train %.2f s (peak %.0f MiB), accuracy %.3f\n",
          a, build / 1e9, bpk / 1048576, train / 1e9, tpk / 1048576, acc
      }' >&2
    fi
  done
  echo "wrote $(wc -l < "$SCALE_OUT") benchmark lines to $SCALE_OUT" >&2
}

if [[ "${1:-}" == "scale" ]]; then
  scale_sweep
  exit 0
fi

: > "$OUT"
for target in forest features analysis; do
  echo "== bench: $target ==" >&2
  # Keep only the harness's JSON lines; cargo chatter goes to stderr
  # already, this guards against any stray stdout.
  cargo bench --offline -p synthattr-bench --bench "$target" | grep '^{' >> "$OUT"
done

echo "== bench: faults (chaos proxy overhead) ==" >&2
cargo bench --offline -p synthattr-bench --bench faults | grep '^{' > "$FAULTS_OUT"

echo "== bench: pipeline (single-parse frontend vs reference) ==" >&2
# End-to-end pipeline builds run ~100 ms/iteration, so the harness
# defaults (300 ms warmup / 2 s measure) yield too few samples for
# stable medians; give this target a larger budget unless the caller
# already set one.
SYNTHATTR_BENCH_WARMUP_MS="${SYNTHATTR_BENCH_WARMUP_MS:-2000}" \
SYNTHATTR_BENCH_MEASURE_MS="${SYNTHATTR_BENCH_MEASURE_MS:-12000}" \
  cargo bench --offline -p synthattr-bench --bench pipeline | grep '^{' > "$PIPELINE_OUT"

echo "== bench: serve (HTTP attribution latency + throughput) ==" >&2
cargo bench --offline -p synthattr-bench --bench serve | grep '^{' > "$SERVE_OUT"

scale_sweep

median_of() {
  grep "\"group\":\"forest\"" "$OUT" | grep "\"bench\":\"$1\"" \
    | sed -E 's/.*"median_ns":([0-9.]+).*/\1/' | head -n 1
}

fast=$(median_of "train/50")
naive=$(median_of "train_reference/50")
if [[ -n "$fast" && -n "$naive" ]]; then
  awk -v fast="$fast" -v naive="$naive" 'BEGIN {
    printf "forest train/50: optimised %.2f ms vs reference %.2f ms -> %.2fx speedup\n",
      fast / 1e6, naive / 1e6, naive / fast
  }' >&2
fi
faults_median() {
  grep "\"group\":\"faults\"" "$FAULTS_OUT" | grep "\"bench\":\"$1\"" \
    | sed -E 's/.*"median_ns":([0-9.]+).*/\1/' | head -n 1
}

bare=$(faults_median "nct/bare")
r20=$(faults_median "nct/rate20")
if [[ -n "$bare" && -n "$r20" ]]; then
  awk -v bare="$bare" -v r20="$r20" 'BEGIN {
    printf "faults nct/10: bare %.2f ms vs chaos@20%% %.2f ms -> %.2fx overhead\n",
      bare / 1e6, r20 / 1e6, r20 / bare
  }' >&2
fi
pipeline_median() {
  grep "\"group\":\"pipeline\"" "$PIPELINE_OUT" | grep "\"bench\":\"$1\"" \
    | sed -E 's/.*"median_ns":([0-9.]+).*/\1/' | head -n 1
}

for pair in plain chaos20; do
  cached=$(pipeline_median "cached/$pair")
  reference=$(pipeline_median "reference/$pair")
  if [[ -n "$cached" && -n "$reference" ]]; then
    awk -v cached="$cached" -v reference="$reference" -v pair="$pair" 'BEGIN {
      printf "pipeline %s: cached %.2f ms vs reference %.2f ms -> %.2fx speedup\n",
        pair, cached / 1e6, reference / 1e6, reference / cached
    }' >&2
  fi
done

incr=$(pipeline_median "cached/chain")
whole=$(pipeline_median "wholefile/chain")
if [[ -n "$incr" && -n "$whole" ]]; then
  awk -v incr="$incr" -v whole="$whole" 'BEGIN {
    printf "pipeline chain: incremental %.2f ms vs wholefile %.2f ms -> %.2fx speedup\n",
      incr / 1e6, whole / 1e6, whole / incr
  }' >&2
fi

serve_field() {
  grep "\"bench\":\"$1\"" "$SERVE_OUT" | sed -E "s/.*\"$2\":([0-9.]+).*/\1/" | head -n 1
}

p50=$(serve_field "attribute/concurrent8" "median_ns")
rps=$(serve_field "attribute/throughput" "req_per_s")
if [[ -n "$p50" && -n "$rps" ]]; then
  awk -v p50="$p50" -v rps="$rps" 'BEGIN {
    printf "serve /attribute: p50 %.2f ms at 8 clients, %.0f req/s sustained\n",
      p50 / 1e6, rps
  }' >&2
fi

# Saturation sweep: clean vs hostile-background throughput per cell,
# and the knee (the client count where clean throughput peaks).
knee_clients=""
knee_rps=0
for cell in 1 8 64 256; do
  clean=$(serve_field "sweep/c$cell/throughput" "req_per_s")
  loris=$(serve_field "sweep+loris16/c$cell/throughput" "req_per_s")
  if [[ -n "$clean" && -n "$loris" ]]; then
    awk -v c="$cell" -v clean="$clean" -v loris="$loris" 'BEGIN {
      printf "serve sweep c%-3d: %.0f req/s clean, %.0f req/s with 16 loris (%.2fx)\n",
        c, clean, loris, loris / clean
    }' >&2
    if awk -v a="$clean" -v b="$knee_rps" 'BEGIN { exit !(a > b) }'; then
      knee_rps="$clean"
      knee_clients="$cell"
    fi
  fi
done
if [[ -n "$knee_clients" ]]; then
  awk -v c="$knee_clients" -v rps="$knee_rps" 'BEGIN {
    printf "serve sweep knee: throughput peaks at %d clients (%.0f req/s)\n", c, rps
  }' >&2
fi

echo "wrote $(wc -l < "$OUT") benchmark lines to $OUT" >&2
echo "wrote $(wc -l < "$FAULTS_OUT") benchmark lines to $FAULTS_OUT" >&2
echo "wrote $(wc -l < "$PIPELINE_OUT") benchmark lines to $PIPELINE_OUT" >&2
echo "wrote $(wc -l < "$SERVE_OUT") benchmark lines to $SERVE_OUT" >&2
