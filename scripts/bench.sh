#!/usr/bin/env bash
# Perf-trajectory baseline: runs the `forest`, `features`, and
# `analysis` bench targets through `synthattr_bench::harness` and
# writes one JSON line
# per benchmark into BENCH_forest.json (the harness prints JSON on
# stdout, human progress on stderr — see DESIGN.md "Benchmarking").
#
# The forest target benches both the optimised trainer (`train/50`)
# and the retained naive splitter (`train_reference/50`) in the same
# run, so the summary printed at the end is an apples-to-apples
# fast-path speedup on this machine.
#
# The `faults` target sweeps the chaos proxy at 0/5/20% fault rates
# against the bare simulator and lands in BENCH_faults.json, so the
# retry/validation overhead has its own trajectory file.
#
# Usage:
#   scripts/bench.sh                  # full budgets, writes BENCH_forest.json
#                                     #   and BENCH_faults.json
#   SYNTHATTR_BENCH_MEASURE_MS=500 scripts/bench.sh   # quicker pass
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
OUT="${SYNTHATTR_BENCH_OUT:-BENCH_forest.json}"
FAULTS_OUT="${SYNTHATTR_BENCH_FAULTS_OUT:-BENCH_faults.json}"

: > "$OUT"
for target in forest features analysis; do
  echo "== bench: $target ==" >&2
  # Keep only the harness's JSON lines; cargo chatter goes to stderr
  # already, this guards against any stray stdout.
  cargo bench --offline -p synthattr-bench --bench "$target" | grep '^{' >> "$OUT"
done

echo "== bench: faults (chaos proxy overhead) ==" >&2
cargo bench --offline -p synthattr-bench --bench faults | grep '^{' > "$FAULTS_OUT"

median_of() {
  grep "\"group\":\"forest\"" "$OUT" | grep "\"bench\":\"$1\"" \
    | sed -E 's/.*"median_ns":([0-9.]+).*/\1/' | head -n 1
}

fast=$(median_of "train/50")
naive=$(median_of "train_reference/50")
if [[ -n "$fast" && -n "$naive" ]]; then
  awk -v fast="$fast" -v naive="$naive" 'BEGIN {
    printf "forest train/50: optimised %.2f ms vs reference %.2f ms -> %.2fx speedup\n",
      fast / 1e6, naive / 1e6, naive / fast
  }' >&2
fi
faults_median() {
  grep "\"group\":\"faults\"" "$FAULTS_OUT" | grep "\"bench\":\"$1\"" \
    | sed -E 's/.*"median_ns":([0-9.]+).*/\1/' | head -n 1
}

bare=$(faults_median "nct/bare")
r20=$(faults_median "nct/rate20")
if [[ -n "$bare" && -n "$r20" ]]; then
  awk -v bare="$bare" -v r20="$r20" 'BEGIN {
    printf "faults nct/10: bare %.2f ms vs chaos@20%% %.2f ms -> %.2fx overhead\n",
      bare / 1e6, r20 / 1e6, r20 / bare
  }' >&2
fi
echo "wrote $(wc -l < "$OUT") benchmark lines to $OUT" >&2
echo "wrote $(wc -l < "$FAULTS_OUT") benchmark lines to $FAULTS_OUT" >&2
