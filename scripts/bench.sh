#!/usr/bin/env bash
# Perf-trajectory baseline: runs the `forest`, `features`, and
# `analysis` bench targets through `synthattr_bench::harness` and
# writes one JSON line
# per benchmark into BENCH_forest.json (the harness prints JSON on
# stdout, human progress on stderr — see DESIGN.md "Benchmarking").
#
# The forest target benches both the optimised trainer (`train/50`)
# and the retained naive splitter (`train_reference/50`) in the same
# run, so the summary printed at the end is an apples-to-apples
# fast-path speedup on this machine.
#
# Usage:
#   scripts/bench.sh                  # full budgets, writes BENCH_forest.json
#   SYNTHATTR_BENCH_MEASURE_MS=500 scripts/bench.sh   # quicker pass
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
OUT="${SYNTHATTR_BENCH_OUT:-BENCH_forest.json}"

: > "$OUT"
for target in forest features analysis; do
  echo "== bench: $target ==" >&2
  # Keep only the harness's JSON lines; cargo chatter goes to stderr
  # already, this guards against any stray stdout.
  cargo bench --offline -p synthattr-bench --bench "$target" | grep '^{' >> "$OUT"
done

median_of() {
  grep "\"group\":\"forest\"" "$OUT" | grep "\"bench\":\"$1\"" \
    | sed -E 's/.*"median_ns":([0-9.]+).*/\1/' | head -n 1
}

fast=$(median_of "train/50")
naive=$(median_of "train_reference/50")
if [[ -n "$fast" && -n "$naive" ]]; then
  awk -v fast="$fast" -v naive="$naive" 'BEGIN {
    printf "forest train/50: optimised %.2f ms vs reference %.2f ms -> %.2fx speedup\n",
      fast / 1e6, naive / 1e6, naive / fast
  }' >&2
fi
echo "wrote $(wc -l < "$OUT") benchmark lines to $OUT" >&2
