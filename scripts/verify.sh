#!/usr/bin/env bash
# Tier-1 verification, exactly as CI runs it: an offline release build
# plus the quiet test suite. The workspace has zero registry
# dependencies (see DESIGN.md "Hermetic zero-dependency policy"), so
# this must pass with the network fully isolated — CARGO_NET_OFFLINE
# makes any accidental registry dependency fail fast with a clear
# error instead of hanging on an unreachable index.
#
# Usage:
#   scripts/verify.sh                 # tier-1: build + tests
#   scripts/verify.sh --bench-smoke   # tier-1 + one-iteration bench pass
#   scripts/verify.sh --lint          # tier-1 + warnings-as-errors build
#                                     #   + corpus lint (all three years)
#   scripts/verify.sh --chaos         # tier-1 + the fault-injection
#                                     #   suites + the chaos_drill demo
#   scripts/verify.sh --frontend      # tier-1 + the single-parse
#                                     #   frontend A/B + cache suites
#                                     #   with visible output
#   scripts/verify.sh --increment     # tier-1 + the node-level
#                                     #   incremental-vs-reference A/B
#                                     #   suite with visible output
#   scripts/verify.sh --serve         # tier-1 + the serving stack:
#                                     #   serve unit tests, the TCP
#                                     #   e2e byte-identity suite, and
#                                     #   the HTTP robustness suite
#   scripts/verify.sh --serve-hardening  # tier-1 + the connection-
#                                     #   survivability suites: conn/
#                                     #   drain policy unit tests, the
#                                     #   hostile-traffic generator,
#                                     #   chaos-at-the-socket, and the
#                                     #   graceful-drain race
#   scripts/verify.sh --dataflow      # tier-1 + the CFG/dataflow
#                                     #   suites in isolation: analysis
#                                     #   unit tests, golden
#                                     #   diagnostics, and the
#                                     #   transform-invariance property
#                                     #   suite
#   scripts/verify.sh --scale         # tier-1 + the scale-out A/B
#                                     #   suite (single-shard
#                                     #   out-of-core training
#                                     #   bit-identical to the in-RAM
#                                     #   reference at 204 authors;
#                                     #   multi-shard worker
#                                     #   invariance), the 2000-author
#                                     #   out-of-core smoke, and the
#                                     #   20k profile-collision audit
#   scripts/verify.sh --strict        # tier-1 + clippy with
#                                     #   -D warnings across all
#                                     #   targets + cargo fmt --check
#   SYNTHATTR_WORKERS=1 scripts/verify.sh   # serial, for timing noise
#
# --bench-smoke additionally runs every bench target with minimal
# budgets (one warmup iteration, one sample; offline, seconds), so
# bench bit-rot fails locally instead of at the next measurement
# session.
#
# --lint rebuilds with RUSTFLAGS="-D warnings" and runs the
# lint_corpus example over the 2017/2018/2019 corpora; the example
# exits nonzero on any error-severity diagnostic (DESIGN.md §8).
#
# --chaos re-runs the two chaos suites by name (the crate-level
# property sweep in synthattr-faults and the end-to-end pipeline
# suite) and then the chaos_drill example, which prints the
# resilience accounting for a recoverable and a budget-exhausted
# build (DESIGN.md §9). Both suites also run under plain tier-1;
# the flag exists to exercise them in isolation with visible output.
#
# --frontend re-runs the single-parse frontend suites by name: the
# cached-vs-reference A/B grid in synthattr-core (9 pools × NCT/CT ×
# fault rates 0/5/20%, DESIGN.md §10) and the end-to-end cache
# property suite, plus a build of synthattr-core with the
# reference-frontend feature enabled so the retained baseline cannot
# bit-rot. Both suites also run under plain tier-1; the flag exists
# to exercise them in isolation with visible output.
#
# --increment re-runs the node-level incremental frontend suites by
# name: the incremental-vs-wholefile A/B grid in synthattr-core (9
# pools x NCT/CT x fault rates 0/5/20% — features, diagnostics,
# fingerprints, and tables must be bit-identical, and node counters
# worker-invariant; DESIGN.md §12), the features crate's
# parts-vs-whole extraction property suite, and a test build of
# synthattr-core with the reference-increment feature enabled so the
# retained whole-file chain path cannot bit-rot. The grid also runs
# under plain tier-1; the flag exists to exercise it in isolation
# with visible output.
#
# --dataflow re-runs the dataflow subsystem by name with visible
# output: the synthattr-analysis unit tests (CFG construction, the
# fixed-point framework and its four instantiations), the golden
# diagnostics suite (use-before-init / dead-store / reconciled
# unused-variable verdicts pinned), and the workspace-level
# dataflow_properties suite (verdicts preserved by all transforms and
# 50-step CT chains over all 9 pool seeds; cached per-item dataflow
# worker-invariant; DESIGN.md §13). All of these also run under plain
# tier-1.
#
# --scale re-runs the corpus scale-out stack by name with visible
# output (DESIGN.md §15): the workspace-level scale_out suite — at 204
# authors, single-shard `fit_sharded` over the on-disk ColumnStore
# must be bit-identical to `RandomForest::fit` on the equivalent
# in-RAM Dataset for workers 1/2/8, and 8-shard training must be
# worker-invariant and rerun-deterministic — plus the 2000-author
# out-of-core smoke (ignored under plain tier-1: streamed generation →
# columnar stores → sharded training → reservoir hold-out accuracy far
# above chance), the ml sharded-trainer unit invariants, and the
# seeded 20 000-profile collision audit in synthattr-gen. The
# non-ignored suites also run under plain tier-1.
#
# --strict is the workshop hygiene gate: clippy over every workspace
# target with warnings denied, then rustfmt in check mode. Both must
# stay clean — new code rides this stage in CI.
#
# --serve re-runs the serving suites by name with visible output: the
# synthattr-serve unit tests (parser, batcher, limiter, registry,
# routing), the real-TCP e2e suite whose core assertion is that served
# /attribute responses are byte-identical to the offline pipeline at
# every worker/client count in the matrix, and the HTTP robustness
# property suite (byte soup, truncation, oversize, slow-loris,
# pipelining — 4xx or clean close, never a panic or hang; DESIGN.md
# §11). All three also run under plain tier-1.
#
# --serve-hardening re-runs the connection-survivability stack by name
# with visible output (DESIGN.md §14): the clock-explicit conn/drain
# policy unit tests, the seeded hostile-traffic generator in
# synthattr-faults, the chaos-at-the-socket suite (64 slow-loris hold
# sockets while legit /attribute p95 stays within 5x unloaded; cuts
# land in the per-cause close counters), and the graceful-drain race
# (shutdown vs. pipelined keep-alive bursts at workers 1 and 4 drops
# zero responses, forced_closes == 0). All of these also run under
# plain tier-1.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_SMOKE=0
LINT=0
CHAOS=0
FRONTEND=0
INCREMENT=0
SERVE=0
SERVE_HARDENING=0
DATAFLOW=0
SCALE=0
STRICT=0
for arg in "$@"; do
  case "$arg" in
    --bench-smoke) BENCH_SMOKE=1 ;;
    --lint) LINT=1 ;;
    --chaos) CHAOS=1 ;;
    --frontend) FRONTEND=1 ;;
    --increment) INCREMENT=1 ;;
    --serve) SERVE=1 ;;
    --serve-hardening) SERVE_HARDENING=1 ;;
    --dataflow) DATAFLOW=1 ;;
    --scale) SCALE=1 ;;
    --strict) STRICT=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

export CARGO_NET_OFFLINE=true

echo "== tier-1: cargo build --release (offline) ==" >&2
cargo build --release --offline

echo "== tier-1: cargo test -q (offline) ==" >&2
cargo test -q --offline

# Tier-1 covers the root package; the workspace flag pulls in every
# crate's unit and integration tests (pool, prop harness, forest
# worker-count determinism, ...).
echo "== extended: cargo test -q --workspace (offline) ==" >&2
cargo test -q --offline --workspace

if [[ "$BENCH_SMOKE" == "1" ]]; then
  export SYNTHATTR_BENCH_WARMUP_MS=1
  export SYNTHATTR_BENCH_MEASURE_MS=1
  export SYNTHATTR_BENCH_SAMPLES=1
  for b in frontend features forest transform tables analysis faults pipeline serve; do
    echo "== bench smoke: $b (one warmup iteration) ==" >&2
    cargo bench --offline -p synthattr-bench --bench "$b" > /dev/null
  done
  echo "== bench smoke: scale (24-author sweep) ==" >&2
  SYNTHATTR_SCALE_AUTHORS=24 \
    cargo bench --offline -p synthattr-bench --bench scale > /dev/null
fi

if [[ "$LINT" == "1" ]]; then
  echo "== lint: cargo build --release with -D warnings ==" >&2
  RUSTFLAGS="-D warnings" cargo build --release --offline --workspace
  echo "== lint: corpus diagnostics (2017/2018/2019) ==" >&2
  cargo run --release --offline --example lint_corpus
fi

if [[ "$CHAOS" == "1" ]]; then
  echo "== chaos: crate-level property sweep (rates 0/5/20%) ==" >&2
  cargo test --offline -p synthattr-faults --test chaos_properties
  echo "== chaos: end-to-end pipeline suite ==" >&2
  cargo test --offline --test chaos_pipeline
  echo "== chaos: drill (resilience accounting demo) ==" >&2
  cargo run --release --offline --example chaos_drill
fi

if [[ "$FRONTEND" == "1" ]]; then
  echo "== frontend: cached vs reference A/B grid (9 pools x 0/5/20%) ==" >&2
  cargo test --offline -p synthattr-core --lib frontend_ab
  echo "== frontend: artifact cache property suite ==" >&2
  cargo test --offline --test frontend_cache
  echo "== frontend: reference-frontend feature build ==" >&2
  cargo test -q --offline -p synthattr-core --features reference-frontend
fi

if [[ "$INCREMENT" == "1" ]]; then
  echo "== increment: incremental vs wholefile A/B grid (9 pools x NCT/CT x 0/5/20%) ==" >&2
  cargo test --offline -p synthattr-core --lib increment_ab
  echo "== increment: parts-vs-whole extraction property suite ==" >&2
  cargo test --offline -p synthattr-features --lib incr
  echo "== increment: reference-increment feature build ==" >&2
  cargo test -q --offline -p synthattr-core --features reference-increment
fi

if [[ "$DATAFLOW" == "1" ]]; then
  echo "== dataflow: analysis unit tests (cfg + fixed-point framework) ==" >&2
  cargo test --offline -p synthattr-analysis --lib cfg
  cargo test --offline -p synthattr-analysis --lib dataflow
  echo "== dataflow: golden diagnostics (new passes + reconciliation) ==" >&2
  cargo test --offline -p synthattr-analysis --test golden_diagnostics
  echo "== dataflow: transform/chain invariance + worker invariance ==" >&2
  cargo test --offline --test dataflow_properties
fi

if [[ "$SCALE" == "1" ]]; then
  echo "== scale: 204-author out-of-core A/B (bit-identity + worker invariance) ==" >&2
  cargo test --offline --test scale_out
  echo "== scale: 2000-author out-of-core smoke (streamed corpus -> colstore -> sharded forest) ==" >&2
  cargo test --offline --test scale_out -- --ignored
  echo "== scale: sharded-trainer + reservoir unit invariants (ml) ==" >&2
  cargo test --offline -p synthattr-ml --lib forest
  cargo test --offline -p synthattr-ml --lib cv
  echo "== scale: 20k profile-collision audit (gen) ==" >&2
  cargo test --offline -p synthattr-gen --lib twenty_thousand_profiles_rarely_collide
fi

if [[ "$STRICT" == "1" ]]; then
  echo "== strict: cargo clippy --workspace --all-targets -D warnings ==" >&2
  cargo clippy --offline --workspace --all-targets -- -D warnings
  echo "== strict: cargo fmt --check ==" >&2
  cargo fmt --check
fi

if [[ "$SERVE" == "1" ]]; then
  echo "== serve: unit suites (parser, batcher, limiter, registry, routing) ==" >&2
  cargo test --offline -p synthattr-serve --lib
  echo "== serve: TCP e2e byte-identity suite ==" >&2
  cargo test --offline --test serve_e2e
  echo "== serve: HTTP robustness property suite ==" >&2
  cargo test --offline -p synthattr-serve --test http_properties
fi

if [[ "$SERVE_HARDENING" == "1" ]]; then
  echo "== serve-hardening: connection policy + drain bookkeeping units ==" >&2
  cargo test --offline -p synthattr-serve --lib conn
  cargo test --offline -p synthattr-serve --lib drain
  echo "== serve-hardening: hostile-traffic generator (seeded scripts) ==" >&2
  cargo test --offline -p synthattr-faults --lib traffic
  echo "== serve-hardening: chaos at the socket (loris/staller/dripper/reset) ==" >&2
  cargo test --offline --test serve_chaos
  echo "== serve-hardening: graceful drain vs pipelined bursts ==" >&2
  cargo test --offline --test serve_drain
fi

echo "verify: OK" >&2
