#!/usr/bin/env bash
# Tier-1 verification, exactly as CI runs it: an offline release build
# plus the quiet test suite. The workspace has zero registry
# dependencies (see DESIGN.md "Hermetic zero-dependency policy"), so
# this must pass with the network fully isolated — CARGO_NET_OFFLINE
# makes any accidental registry dependency fail fast with a clear
# error instead of hanging on an unreachable index.
#
# Usage:
#   scripts/verify.sh                 # tier-1: build + tests
#   scripts/verify.sh --bench-smoke   # tier-1 + one-iteration bench pass
#   SYNTHATTR_WORKERS=1 scripts/verify.sh   # serial, for timing noise
#
# --bench-smoke additionally runs every bench target with minimal
# budgets (one warmup iteration, one sample; offline, seconds), so
# bench bit-rot fails locally instead of at the next measurement
# session.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_SMOKE=0
if [[ "${1:-}" == "--bench-smoke" ]]; then
  BENCH_SMOKE=1
fi

export CARGO_NET_OFFLINE=true

echo "== tier-1: cargo build --release (offline) ==" >&2
cargo build --release --offline

echo "== tier-1: cargo test -q (offline) ==" >&2
cargo test -q --offline

# Tier-1 covers the root package; the workspace flag pulls in every
# crate's unit and integration tests (pool, prop harness, forest
# worker-count determinism, ...).
echo "== extended: cargo test -q --workspace (offline) ==" >&2
cargo test -q --offline --workspace

if [[ "$BENCH_SMOKE" == "1" ]]; then
  export SYNTHATTR_BENCH_WARMUP_MS=1
  export SYNTHATTR_BENCH_MEASURE_MS=1
  export SYNTHATTR_BENCH_SAMPLES=1
  for b in frontend features forest transform tables; do
    echo "== bench smoke: $b (one warmup iteration) ==" >&2
    cargo bench --offline -p synthattr-bench --bench "$b" > /dev/null
  done
fi

echo "verify: OK" >&2
