#!/usr/bin/env bash
# Tier-1 verification, exactly as CI runs it: an offline release build
# plus the quiet test suite. The workspace has zero registry
# dependencies (see DESIGN.md "Hermetic zero-dependency policy"), so
# this must pass with the network fully isolated — CARGO_NET_OFFLINE
# makes any accidental registry dependency fail fast with a clear
# error instead of hanging on an unreachable index.
#
# Usage:
#   scripts/verify.sh             # tier-1: build + tests
#   SYNTHATTR_WORKERS=1 scripts/verify.sh   # serial, for timing noise
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== tier-1: cargo build --release (offline) ==" >&2
cargo build --release --offline

echo "== tier-1: cargo test -q (offline) ==" >&2
cargo test -q --offline

# Tier-1 covers the root package; the workspace flag pulls in every
# crate's unit and integration tests (pool, prop harness, forest
# worker-count determinism, ...).
echo "== extended: cargo test -q --workspace (offline) ==" >&2
cargo test -q --offline --workspace

echo "verify: OK" >&2
