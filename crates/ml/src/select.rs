//! Information-gain feature ranking.
//!
//! Caliskan-Islam et al. reduce their very wide feature set with
//! WEKA's information-gain criterion before training; we implement the
//! same idea: per feature, the entropy reduction of the best binary
//! split, ranked descending.

use crate::dataset::Dataset;

/// Information gain of the best single threshold on feature `f`.
///
/// Returns 0.0 when the feature is constant.
pub fn information_gain(data: &Dataset, feature: usize) -> f64 {
    let n = data.len();
    if n < 2 {
        return 0.0;
    }
    let n_classes = data.n_classes();
    let mut pairs: Vec<(f64, usize)> = (0..n)
        .map(|i| (data.row(i)[feature], data.label(i)))
        .collect();
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
    if pairs[0].0 == pairs[n - 1].0 {
        return 0.0;
    }
    let mut total_counts = vec![0usize; n_classes];
    for &(_, l) in &pairs {
        total_counts[l] += 1;
    }
    let parent = entropy(&total_counts, n);
    let mut left = vec![0usize; n_classes];
    let mut best = 0.0f64;
    for split in 1..n {
        left[pairs[split - 1].1] += 1;
        if pairs[split - 1].0 == pairs[split].0 {
            continue;
        }
        let right: Vec<usize> = total_counts
            .iter()
            .zip(&left)
            .map(|(&t, &l)| t - l)
            .collect();
        let weighted = (split as f64 * entropy(&left, split)
            + (n - split) as f64 * entropy(&right, n - split))
            / n as f64;
        best = best.max(parent - weighted);
    }
    best
}

/// Ranks all features by information gain, descending (ties break by
/// feature index for determinism).
pub fn rank_features(data: &Dataset) -> Vec<(usize, f64)> {
    let mut gains: Vec<(usize, f64)> = (0..data.dim())
        .map(|f| (f, information_gain(data, f)))
        .collect();
    gains.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    gains
}

/// The indices of the `k` highest-gain features, ascending by index
/// (ready to pass to [`Dataset::project`]).
pub fn select_top_k(data: &Dataset, k: usize) -> Vec<usize> {
    let mut top: Vec<usize> = rank_features(data)
        .into_iter()
        .take(k)
        .map(|(f, _)| f)
        .collect();
    top.sort_unstable();
    top
}

fn entropy(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / t;
            -p * p.log2()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Feature 0 perfectly separates; feature 1 is noise; feature 2 is
    /// constant.
    fn fixture() -> Dataset {
        let mut ds = Dataset::new(2);
        let noise = [0.3, 0.9, 0.1, 0.7, 0.5, 0.2, 0.8, 0.4];
        for (i, &n) in noise.iter().enumerate() {
            let label = usize::from(i >= 4);
            ds.push(vec![label as f64, n, 7.0], label);
        }
        ds
    }

    #[test]
    fn perfect_feature_has_full_gain() {
        let ds = fixture();
        let g = information_gain(&ds, 0);
        assert!((g - 1.0).abs() < 1e-9, "gain {g}");
    }

    #[test]
    fn constant_feature_has_zero_gain() {
        let ds = fixture();
        assert_eq!(information_gain(&ds, 2), 0.0);
    }

    #[test]
    fn ranking_puts_informative_first() {
        let ds = fixture();
        let ranked = rank_features(&ds);
        assert_eq!(ranked[0].0, 0);
        assert_eq!(ranked[2].0, 2);
        assert!(ranked[0].1 >= ranked[1].1 && ranked[1].1 >= ranked[2].1);
    }

    #[test]
    fn select_top_k_returns_sorted_indices() {
        let ds = fixture();
        assert_eq!(select_top_k(&ds, 1), vec![0]);
        assert_eq!(select_top_k(&ds, 2).len(), 2);
        assert_eq!(select_top_k(&ds, 99), vec![0, 1, 2]);
    }

    #[test]
    fn projecting_on_selection_preserves_separability() {
        let ds = fixture();
        let proj = ds.project(&select_top_k(&ds, 1));
        assert_eq!(proj.dim(), 1);
        // The projected single feature still separates the labels.
        for i in 0..proj.len() {
            assert_eq!(proj.row(i)[0] as usize, proj.label(i));
        }
    }

    #[test]
    fn tiny_datasets_do_not_panic() {
        let mut ds = Dataset::new(2);
        assert_eq!(information_gain(&ds, 0), 0.0);
        ds.push(vec![1.0], 0);
        assert_eq!(information_gain(&ds, 0), 0.0);
    }
}
