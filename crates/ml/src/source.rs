//! The training-side abstraction over in-RAM and on-disk datasets.
//!
//! Sharded forest training (and any other streaming consumer) asks
//! only for *row ranges*; whether they come from a resident
//! [`Dataset`] or an on-disk [`ColumnStore`] is this trait's problem.
//! Both backends return small in-RAM `Dataset`s, so the tree trainer
//! itself never changes — out-of-core is purely about which rows are
//! resident at once.

use crate::colstore::ColumnStore;
use crate::dataset::Dataset;
use std::io;

/// A source of labelled feature rows addressable by range.
///
/// Implementations must be cheap to share (`&self` methods only), so
/// the worker pool can load different ranges concurrently.
pub trait DatasetSource: Sync {
    /// Total rows.
    fn len(&self) -> usize;

    /// Whether the source holds no rows.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Feature columns per row.
    fn dim(&self) -> usize;

    /// Label space size.
    fn n_classes(&self) -> usize;

    /// Materializes rows `[start, start + count)` as an in-RAM
    /// [`Dataset`].
    ///
    /// # Errors
    ///
    /// I/O or validation failure from the backend; an out-of-bounds
    /// range is an error, not a panic.
    fn load_rows(&self, start: usize, count: usize) -> io::Result<Dataset>;
}

impl DatasetSource for Dataset {
    fn len(&self) -> usize {
        Dataset::len(self)
    }

    fn dim(&self) -> usize {
        Dataset::dim(self)
    }

    fn n_classes(&self) -> usize {
        Dataset::n_classes(self)
    }

    fn load_rows(&self, start: usize, count: usize) -> io::Result<Dataset> {
        let end = start.checked_add(count).filter(|&e| e <= self.len());
        let Some(end) = end else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("range {start}+{count} out of bounds (len {})", self.len()),
            ));
        };
        let indices: Vec<usize> = (start..end).collect();
        Ok(self.subset(&indices))
    }
}

impl DatasetSource for ColumnStore {
    fn len(&self) -> usize {
        ColumnStore::len(self)
    }

    fn dim(&self) -> usize {
        ColumnStore::dim(self)
    }

    fn n_classes(&self) -> usize {
        ColumnStore::n_classes(self)
    }

    fn load_rows(&self, start: usize, count: usize) -> io::Result<Dataset> {
        self.read_rows(start, count).map_err(io::Error::from)
    }
}

/// Streams every row of `source` through `f` in order, materializing
/// at most `batch` rows at a time — the single-pass shape the
/// reservoir sampler and the scale bench's store-building loop share.
pub fn for_each_row<S: DatasetSource + ?Sized>(
    source: &S,
    batch: usize,
    mut f: impl FnMut(&[f64], usize),
) -> io::Result<()> {
    let n = source.len();
    let batch = batch.max(1);
    let mut start = 0usize;
    while start < n {
        let count = batch.min(n - start);
        let ds = source.load_rows(start, count)?;
        for i in 0..ds.len() {
            f(ds.row(i), ds.label(i));
        }
        start += count;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::colstore::ColumnStoreWriter;
    use synthattr_util::Pcg64;

    fn sample_dataset(n: usize) -> Dataset {
        let mut rng = Pcg64::new(17);
        let mut ds = Dataset::new(5);
        for _ in 0..n {
            ds.push(
                vec![rng.next_f64(), rng.next_f64(), rng.next_f64()],
                rng.next_below(5),
            );
        }
        ds
    }

    #[test]
    fn dataset_source_slices_rows() {
        let ds = sample_dataset(30);
        let src: &dyn DatasetSource = &ds;
        assert_eq!(src.len(), 30);
        assert_eq!(src.dim(), 3);
        assert_eq!(src.n_classes(), 5);
        let part = src.load_rows(10, 5).unwrap();
        assert_eq!(part.len(), 5);
        for i in 0..5 {
            assert_eq!(part.row(i), ds.row(10 + i));
            assert_eq!(part.label(i), ds.label(10 + i));
        }
        assert!(src.load_rows(28, 3).is_err());
    }

    #[test]
    fn colstore_and_dataset_sources_agree() {
        let ds = sample_dataset(41);
        let mut path = std::env::temp_dir();
        path.push(format!("synthattr_source_{}.cols", std::process::id()));
        let mut w = ColumnStoreWriter::create(&path, ds.dim(), ds.n_classes(), 7).unwrap();
        for i in 0..ds.len() {
            w.push_row(ds.row(i), ds.label(i)).unwrap();
        }
        let store = w.finish().unwrap();
        for (start, count) in [(0usize, 41usize), (5, 13), (40, 1)] {
            let a = DatasetSource::load_rows(&ds, start, count).unwrap();
            let b = DatasetSource::load_rows(&store, start, count).unwrap();
            assert_eq!(a, b, "range {start}+{count}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn for_each_row_visits_everything_in_order() {
        let ds = sample_dataset(23);
        for batch in [1usize, 7, 23, 100] {
            let mut seen = Vec::new();
            for_each_row(&ds, batch, |row, label| {
                seen.push((row.to_vec(), label));
            })
            .unwrap();
            assert_eq!(seen.len(), 23, "batch {batch}");
            for (i, (row, label)) in seen.iter().enumerate() {
                assert_eq!(row.as_slice(), ds.row(i));
                assert_eq!(*label, ds.label(i));
            }
        }
    }
}
