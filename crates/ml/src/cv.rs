//! Cross-validation fold construction.
//!
//! The paper evaluates with one fold per GCJ challenge (8 folds of 8
//! challenges): train on 7 challenges' code, test on the held-out
//! challenge. [`group_folds`] implements that protocol;
//! [`stratified_folds`] is the classic per-class-balanced k-fold used
//! by the ablation benches; [`ClassReservoir`] builds stratified
//! holdouts from *streams* whose length is unknown up front, so fold
//! construction works at corpus scales that never fit in RAM.

use synthattr_util::Pcg64;

/// Per-class reservoir sampler (Vitter's Algorithm R, one reservoir
/// per class): feed it every `(row index, label)` of a stream in one
/// pass and it retains a uniform sample of at most `cap` indices per
/// class, in O(classes × cap) memory regardless of stream length.
///
/// The scale pipeline uses this to carve a stratified holdout out of
/// an on-disk [`crate::colstore::ColumnStore`] without ever holding
/// the full index set: same selection for a fixed `(stream, seed)`,
/// independent of total stream length known in advance or not.
#[derive(Debug, Clone)]
pub struct ClassReservoir {
    /// One reservoir of sampled indices per class.
    reservoirs: Vec<Vec<usize>>,
    /// Stream positions seen per class (drives the inclusion odds).
    seen: Vec<usize>,
    cap: usize,
    rng: Pcg64,
}

impl ClassReservoir {
    /// A sampler keeping at most `cap` indices for each of
    /// `n_classes` classes.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0` or `n_classes == 0`.
    pub fn new(n_classes: usize, cap: usize, rng: Pcg64) -> Self {
        assert!(cap > 0, "reservoir cap must be positive");
        assert!(n_classes > 0, "need at least one class");
        ClassReservoir {
            reservoirs: vec![Vec::new(); n_classes],
            seen: vec![0; n_classes],
            cap,
            rng,
        }
    }

    /// Offers one stream element. Until a class's reservoir is full
    /// the element is always kept (and the RNG is *not* consumed), so
    /// streams no longer than `cap` per class are kept verbatim.
    ///
    /// # Panics
    ///
    /// Panics if `label` is out of range.
    pub fn offer(&mut self, index: usize, label: usize) {
        let seen = self.seen[label];
        self.seen[label] = seen + 1;
        let pool = &mut self.reservoirs[label];
        if pool.len() < self.cap {
            pool.push(index);
        } else {
            // Classic Algorithm R: the (seen+1)-th element replaces a
            // random slot with probability cap / (seen+1).
            let j = self.rng.next_below(seen + 1);
            if j < self.cap {
                pool[j] = index;
            }
        }
    }

    /// Sampled indices for one class, in insertion/replacement order.
    pub fn class(&self, label: usize) -> &[usize] {
        &self.reservoirs[label]
    }

    /// Total elements offered for one class.
    pub fn seen(&self, label: usize) -> usize {
        self.seen[label]
    }

    /// Consumes the sampler into one sorted, deduplicated index list
    /// across all classes — the shape [`Fold::test`] wants.
    pub fn into_indices(self) -> Vec<usize> {
        let mut all: Vec<usize> = self.reservoirs.into_iter().flatten().collect();
        all.sort_unstable();
        all
    }
}

/// Splits a streamed label sequence into a stratified train/test
/// [`Fold`] holding out up to `test_per_class` samples per class via
/// [`ClassReservoir`] — single pass, O(classes × cap + n) memory for
/// the fold itself, never materializing per-class pools.
pub fn reservoir_holdout(
    labels: impl IntoIterator<Item = usize>,
    n_classes: usize,
    test_per_class: usize,
    rng: Pcg64,
) -> Fold {
    let mut sampler = ClassReservoir::new(n_classes, test_per_class, rng);
    let mut n = 0usize;
    for (i, label) in labels.into_iter().enumerate() {
        sampler.offer(i, label);
        n = i + 1;
    }
    let test = sampler.into_indices();
    let mut in_test = vec![false; n];
    for &i in &test {
        in_test[i] = true;
    }
    let train = (0..n).filter(|&i| !in_test[i]).collect();
    Fold { train, test }
}

/// One train/test split as index lists into the original dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fold {
    /// Indices to train on.
    pub train: Vec<usize>,
    /// Indices to evaluate on.
    pub test: Vec<usize>,
}

/// Builds one fold per distinct group id: the fold tests on exactly
/// that group and trains on all others.
///
/// Folds are ordered by ascending group id, so fold `k` of the paper's
/// tables is challenge `k`.
///
/// # Panics
///
/// Panics if `groups` is empty.
pub fn group_folds(groups: &[usize]) -> Vec<Fold> {
    assert!(!groups.is_empty(), "cannot fold an empty dataset");
    let mut ids: Vec<usize> = groups.to_vec();
    ids.sort_unstable();
    ids.dedup();
    ids.iter()
        .map(|&g| {
            let mut train = Vec::new();
            let mut test = Vec::new();
            for (i, &gi) in groups.iter().enumerate() {
                if gi == g {
                    test.push(i);
                } else {
                    train.push(i);
                }
            }
            Fold { train, test }
        })
        .collect()
}

/// Classic stratified k-fold: every fold's test set has approximately
/// the dataset's class proportions.
///
/// # Panics
///
/// Panics if `k == 0` or `labels` is empty.
pub fn stratified_folds(labels: &[usize], k: usize, rng: &mut Pcg64) -> Vec<Fold> {
    assert!(k > 0, "k must be positive");
    assert!(!labels.is_empty(), "cannot fold an empty dataset");
    let n_classes = labels.iter().max().unwrap() + 1;
    // Per-class index pools, shuffled.
    let mut pools: Vec<Vec<usize>> = vec![Vec::new(); n_classes];
    for (i, &l) in labels.iter().enumerate() {
        pools[l].push(i);
    }
    let mut assignment = vec![0usize; labels.len()];
    for pool in &mut pools {
        rng.shuffle(pool);
        for (j, &i) in pool.iter().enumerate() {
            assignment[i] = j % k;
        }
    }
    (0..k)
        .map(|fold| {
            let mut train = Vec::new();
            let mut test = Vec::new();
            for (i, &a) in assignment.iter().enumerate() {
                if a == fold {
                    test.push(i);
                } else {
                    train.push(i);
                }
            }
            Fold { train, test }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_folds_partition_exactly() {
        let groups = [0, 1, 2, 0, 1, 2, 0];
        let folds = group_folds(&groups);
        assert_eq!(folds.len(), 3);
        for fold in &folds {
            assert_eq!(fold.train.len() + fold.test.len(), groups.len());
            // Disjoint.
            for t in &fold.test {
                assert!(!fold.train.contains(t));
            }
        }
        // Every sample is tested exactly once across folds.
        let mut tested: Vec<usize> = folds.iter().flat_map(|f| f.test.clone()).collect();
        tested.sort_unstable();
        assert_eq!(tested, (0..groups.len()).collect::<Vec<_>>());
    }

    #[test]
    fn group_folds_test_on_single_group() {
        let groups = [0, 1, 1, 0, 2];
        let folds = group_folds(&groups);
        assert_eq!(folds[1].test, vec![1, 2]);
        assert!(folds[1].train.iter().all(|&i| groups[i] != 1));
    }

    #[test]
    fn stratified_folds_balance_classes() {
        // 30 of class 0, 30 of class 1.
        let labels: Vec<usize> = (0..60).map(|i| i % 2).collect();
        let folds = stratified_folds(&labels, 3, &mut Pcg64::new(1));
        assert_eq!(folds.len(), 3);
        for fold in &folds {
            let c0 = fold.test.iter().filter(|&&i| labels[i] == 0).count();
            let c1 = fold.test.iter().filter(|&&i| labels[i] == 1).count();
            assert_eq!(c0, 10);
            assert_eq!(c1, 10);
        }
    }

    #[test]
    fn stratified_folds_cover_everything_once() {
        let labels: Vec<usize> = (0..23).map(|i| i % 3).collect();
        let folds = stratified_folds(&labels, 4, &mut Pcg64::new(5));
        let mut tested: Vec<usize> = folds.iter().flat_map(|f| f.test.clone()).collect();
        tested.sort_unstable();
        assert_eq!(tested, (0..23).collect::<Vec<_>>());
    }

    #[test]
    fn stratified_is_deterministic_per_seed() {
        let labels: Vec<usize> = (0..40).map(|i| i % 4).collect();
        let f1 = stratified_folds(&labels, 5, &mut Pcg64::new(9));
        let f2 = stratified_folds(&labels, 5, &mut Pcg64::new(9));
        assert_eq!(f1, f2);
    }

    #[test]
    fn reservoir_keeps_short_streams_verbatim() {
        let mut r = ClassReservoir::new(2, 5, Pcg64::new(1));
        for (i, label) in [(0usize, 0usize), (1, 1), (2, 0), (3, 0)] {
            r.offer(i, label);
        }
        assert_eq!(r.class(0), &[0, 2, 3]);
        assert_eq!(r.class(1), &[1]);
        assert_eq!(r.seen(0), 3);
        assert_eq!(r.into_indices(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn reservoir_caps_and_samples_uniformly() {
        // 1000 single-class elements, cap 10: every element should
        // land in the reservoir with probability 10/1000, so over many
        // seeds the mean kept index sits near the middle of the
        // stream, not its start.
        let mut mean_sum = 0.0f64;
        let seeds = 40u64;
        for seed in 0..seeds {
            let mut r = ClassReservoir::new(1, 10, Pcg64::new(seed));
            for i in 0..1000 {
                r.offer(i, 0);
            }
            assert_eq!(r.class(0).len(), 10);
            assert_eq!(r.seen(0), 1000);
            mean_sum += r.class(0).iter().sum::<usize>() as f64 / 10.0;
        }
        let grand_mean = mean_sum / seeds as f64;
        assert!(
            (grand_mean - 500.0).abs() < 60.0,
            "uniform sampling should center near 500, got {grand_mean}"
        );
    }

    #[test]
    fn reservoir_is_deterministic_per_seed() {
        let run = || {
            let mut r = ClassReservoir::new(3, 4, Pcg64::new(77));
            for i in 0..200 {
                r.offer(i, i % 3);
            }
            r.into_indices()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reservoir_holdout_stratifies_and_partitions() {
        let labels: Vec<usize> = (0..90).map(|i| i % 3).collect();
        let fold = reservoir_holdout(labels.iter().copied(), 3, 5, Pcg64::new(3));
        assert_eq!(fold.test.len(), 15);
        for c in 0..3 {
            assert_eq!(fold.test.iter().filter(|&&i| labels[i] == c).count(), 5);
        }
        assert_eq!(fold.train.len() + fold.test.len(), 90);
        let mut all: Vec<usize> = fold.train.iter().chain(&fold.test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..90).collect::<Vec<_>>());
    }

    #[test]
    fn reservoir_holdout_takes_whole_scarce_classes() {
        // A class rarer than the cap is held out entirely.
        let labels = [0usize, 0, 0, 0, 0, 1];
        let fold = reservoir_holdout(labels.iter().copied(), 2, 2, Pcg64::new(4));
        assert!(fold.test.contains(&5));
        assert_eq!(fold.test.iter().filter(|&&i| labels[i] == 0).count(), 2);
    }

    #[test]
    #[should_panic(expected = "cap must be positive")]
    fn zero_cap_panics() {
        ClassReservoir::new(2, 0, Pcg64::new(1));
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_groups_panic() {
        group_folds(&[]);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        stratified_folds(&[0], 0, &mut Pcg64::new(1));
    }
}
