//! Cross-validation fold construction.
//!
//! The paper evaluates with one fold per GCJ challenge (8 folds of 8
//! challenges): train on 7 challenges' code, test on the held-out
//! challenge. [`group_folds`] implements that protocol;
//! [`stratified_folds`] is the classic per-class-balanced k-fold used
//! by the ablation benches.

use synthattr_util::Pcg64;

/// One train/test split as index lists into the original dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fold {
    /// Indices to train on.
    pub train: Vec<usize>,
    /// Indices to evaluate on.
    pub test: Vec<usize>,
}

/// Builds one fold per distinct group id: the fold tests on exactly
/// that group and trains on all others.
///
/// Folds are ordered by ascending group id, so fold `k` of the paper's
/// tables is challenge `k`.
///
/// # Panics
///
/// Panics if `groups` is empty.
pub fn group_folds(groups: &[usize]) -> Vec<Fold> {
    assert!(!groups.is_empty(), "cannot fold an empty dataset");
    let mut ids: Vec<usize> = groups.to_vec();
    ids.sort_unstable();
    ids.dedup();
    ids.iter()
        .map(|&g| {
            let mut train = Vec::new();
            let mut test = Vec::new();
            for (i, &gi) in groups.iter().enumerate() {
                if gi == g {
                    test.push(i);
                } else {
                    train.push(i);
                }
            }
            Fold { train, test }
        })
        .collect()
}

/// Classic stratified k-fold: every fold's test set has approximately
/// the dataset's class proportions.
///
/// # Panics
///
/// Panics if `k == 0` or `labels` is empty.
pub fn stratified_folds(labels: &[usize], k: usize, rng: &mut Pcg64) -> Vec<Fold> {
    assert!(k > 0, "k must be positive");
    assert!(!labels.is_empty(), "cannot fold an empty dataset");
    let n_classes = labels.iter().max().unwrap() + 1;
    // Per-class index pools, shuffled.
    let mut pools: Vec<Vec<usize>> = vec![Vec::new(); n_classes];
    for (i, &l) in labels.iter().enumerate() {
        pools[l].push(i);
    }
    let mut assignment = vec![0usize; labels.len()];
    for pool in &mut pools {
        rng.shuffle(pool);
        for (j, &i) in pool.iter().enumerate() {
            assignment[i] = j % k;
        }
    }
    (0..k)
        .map(|fold| {
            let mut train = Vec::new();
            let mut test = Vec::new();
            for (i, &a) in assignment.iter().enumerate() {
                if a == fold {
                    test.push(i);
                } else {
                    train.push(i);
                }
            }
            Fold { train, test }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_folds_partition_exactly() {
        let groups = [0, 1, 2, 0, 1, 2, 0];
        let folds = group_folds(&groups);
        assert_eq!(folds.len(), 3);
        for fold in &folds {
            assert_eq!(fold.train.len() + fold.test.len(), groups.len());
            // Disjoint.
            for t in &fold.test {
                assert!(!fold.train.contains(t));
            }
        }
        // Every sample is tested exactly once across folds.
        let mut tested: Vec<usize> = folds.iter().flat_map(|f| f.test.clone()).collect();
        tested.sort_unstable();
        assert_eq!(tested, (0..groups.len()).collect::<Vec<_>>());
    }

    #[test]
    fn group_folds_test_on_single_group() {
        let groups = [0, 1, 1, 0, 2];
        let folds = group_folds(&groups);
        assert_eq!(folds[1].test, vec![1, 2]);
        assert!(folds[1].train.iter().all(|&i| groups[i] != 1));
    }

    #[test]
    fn stratified_folds_balance_classes() {
        // 30 of class 0, 30 of class 1.
        let labels: Vec<usize> = (0..60).map(|i| i % 2).collect();
        let folds = stratified_folds(&labels, 3, &mut Pcg64::new(1));
        assert_eq!(folds.len(), 3);
        for fold in &folds {
            let c0 = fold.test.iter().filter(|&&i| labels[i] == 0).count();
            let c1 = fold.test.iter().filter(|&&i| labels[i] == 1).count();
            assert_eq!(c0, 10);
            assert_eq!(c1, 10);
        }
    }

    #[test]
    fn stratified_folds_cover_everything_once() {
        let labels: Vec<usize> = (0..23).map(|i| i % 3).collect();
        let folds = stratified_folds(&labels, 4, &mut Pcg64::new(5));
        let mut tested: Vec<usize> = folds.iter().flat_map(|f| f.test.clone()).collect();
        tested.sort_unstable();
        assert_eq!(tested, (0..23).collect::<Vec<_>>());
    }

    #[test]
    fn stratified_is_deterministic_per_seed() {
        let labels: Vec<usize> = (0..40).map(|i| i % 4).collect();
        let f1 = stratified_folds(&labels, 5, &mut Pcg64::new(9));
        let f2 = stratified_folds(&labels, 5, &mut Pcg64::new(9));
        assert_eq!(f1, f2);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_groups_panic() {
        group_folds(&[]);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        stratified_folds(&[0], 0, &mut Pcg64::new(1));
    }
}
