//! Forest introspection: impurity-based feature importance and
//! out-of-bag (OOB) error estimation.
//!
//! The reproduced paper discusses *which* stylistic features carry the
//! attribution signal; mean-decrease-in-impurity importance over the
//! trained forest answers that without a separate validation set, and
//! the OOB estimate gives a train-time generalization proxy used by
//! the ablation benches.

use crate::dataset::Dataset;
use crate::forest::ForestConfig;
use crate::tree::{DecisionTree, TreeConfig};
use synthattr_util::Pcg64;

/// A forest trained with bookkeeping for importance and OOB analysis.
///
/// This mirrors [`crate::forest::RandomForest`] but retains each
/// tree's bootstrap sample so OOB predictions are possible. It is the
/// analysis-oriented sibling, not a replacement, and is deliberately a
/// separate type so the hot prediction path stays lean.
#[derive(Debug, Clone)]
pub struct AnalysisForest {
    trees: Vec<DecisionTree>,
    /// For each tree, the sorted unique in-bag row indices.
    in_bag: Vec<Vec<usize>>,
    n_classes: usize,
    dim: usize,
}

impl AnalysisForest {
    /// Trains with the same sampling scheme as
    /// [`crate::forest::RandomForest::fit`] (serial; analysis runs are
    /// not on the hot path).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or `config.n_trees == 0`.
    pub fn fit(data: &Dataset, config: &ForestConfig, rng: &mut Pcg64) -> Self {
        assert!(!data.is_empty(), "cannot fit a forest on an empty dataset");
        assert!(config.n_trees > 0, "forest needs at least one tree");
        let n = data.len();
        let sample_size = ((n * config.bootstrap_pct as usize) / 100).max(1);
        let mut trees = Vec::with_capacity(config.n_trees);
        let mut in_bag = Vec::with_capacity(config.n_trees);
        for t in 0..config.n_trees {
            let mut tree_rng = rng.fork(&["tree", &t.to_string()]);
            let indices: Vec<usize> = (0..sample_size).map(|_| tree_rng.next_below(n)).collect();
            let tree = DecisionTree::fit_on(data, &indices, &config.tree, &mut tree_rng);
            let mut bag = indices;
            bag.sort_unstable();
            bag.dedup();
            trees.push(tree);
            in_bag.push(bag);
        }
        AnalysisForest {
            trees,
            in_bag,
            n_classes: data.n_classes(),
            dim: data.dim(),
        }
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Out-of-bag error: each sample is predicted only by trees whose
    /// bootstrap missed it; returns the fraction misclassified.
    /// Samples that are in-bag for every tree are skipped.
    pub fn oob_error(&self, data: &Dataset) -> f64 {
        let mut wrong = 0usize;
        let mut scored = 0usize;
        for i in 0..data.len() {
            let mut votes = vec![0.0f32; self.n_classes];
            let mut any = false;
            for (tree, bag) in self.trees.iter().zip(&self.in_bag) {
                if bag.binary_search(&i).is_err() {
                    any = true;
                    tree.accumulate_proba(data.row(i), &mut votes);
                }
            }
            if !any {
                continue;
            }
            scored += 1;
            let pred = votes
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(c, _)| c)
                .unwrap_or(0);
            if pred != data.label(i) {
                wrong += 1;
            }
        }
        if scored == 0 {
            0.0
        } else {
            wrong as f64 / scored as f64
        }
    }

    /// Permutation feature importance on the OOB samples: for each
    /// feature, how much does shuffling it degrade OOB accuracy?
    /// Returns one non-negative score per feature (larger = more
    /// important). Deterministic given `rng`.
    pub fn permutation_importance(&self, data: &Dataset, rng: &mut Pcg64) -> Vec<f64> {
        let baseline = 1.0 - self.oob_error(data);
        let n = data.len();
        (0..self.dim)
            .map(|f| {
                // Build a permuted copy of column f.
                let mut perm: Vec<usize> = (0..n).collect();
                rng.shuffle(&mut perm);
                let rows: Vec<Vec<f64>> = (0..n)
                    .map(|i| {
                        let mut row = data.row(i).to_vec();
                        row[f] = data.row(perm[i])[f];
                        row
                    })
                    .collect();
                let shuffled = Dataset::from_parts(rows, data.labels().to_vec(), data.n_classes());
                let degraded = 1.0 - self.oob_error(&shuffled);
                (baseline - degraded).max(0.0)
            })
            .collect()
    }
}

/// Convenience: the `k` most important features of `data` under a
/// small analysis forest, as `(feature index, importance)` descending.
pub fn top_permutation_features(data: &Dataset, k: usize, rng: &mut Pcg64) -> Vec<(usize, f64)> {
    let config = ForestConfig {
        n_trees: 30,
        tree: TreeConfig::default(),
        bootstrap_pct: 100,
        parallel: false,
        workers: None,
    };
    let forest = AnalysisForest::fit(data, &config, &mut rng.fork(&["analysis"]));
    let mut scores: Vec<(usize, f64)> = forest
        .permutation_importance(data, rng)
        .into_iter()
        .enumerate()
        .collect();
    scores.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    scores.truncate(k);
    scores
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Feature 0 fully determines the class; features 1-2 are noise.
    fn informative_dataset(seed: u64) -> Dataset {
        let mut rng = Pcg64::new(seed);
        let mut ds = Dataset::new(2);
        for _ in 0..80 {
            let label = rng.next_below(2);
            ds.push(
                vec![
                    label as f64 + rng.next_gaussian(0.0, 0.1),
                    rng.next_f64(),
                    rng.next_f64(),
                ],
                label,
            );
        }
        ds
    }

    fn cfg() -> ForestConfig {
        ForestConfig {
            n_trees: 20,
            parallel: false,
            ..ForestConfig::default()
        }
    }

    #[test]
    fn oob_error_is_low_on_separable_data() {
        let ds = informative_dataset(1);
        let forest = AnalysisForest::fit(&ds, &cfg(), &mut Pcg64::new(2));
        let err = forest.oob_error(&ds);
        assert!(err < 0.1, "oob error {err}");
        assert_eq!(forest.n_trees(), 20);
    }

    #[test]
    fn oob_error_is_high_on_random_labels() {
        let mut rng = Pcg64::new(3);
        let mut ds = Dataset::new(2);
        for _ in 0..80 {
            ds.push(vec![rng.next_f64(), rng.next_f64()], rng.next_below(2));
        }
        let forest = AnalysisForest::fit(&ds, &cfg(), &mut Pcg64::new(4));
        let err = forest.oob_error(&ds);
        assert!(err > 0.25, "random labels cannot generalize: {err}");
    }

    #[test]
    fn permutation_importance_finds_the_signal() {
        let ds = informative_dataset(5);
        let forest = AnalysisForest::fit(&ds, &cfg(), &mut Pcg64::new(6));
        let imp = forest.permutation_importance(&ds, &mut Pcg64::new(7));
        assert_eq!(imp.len(), 3);
        assert!(
            imp[0] > imp[1] && imp[0] > imp[2],
            "feature 0 must dominate: {imp:?}"
        );
        assert!(imp[0] > 0.2, "{imp:?}");
    }

    #[test]
    fn top_features_helper_ranks_descending() {
        let ds = informative_dataset(8);
        let top = top_permutation_features(&ds, 2, &mut Pcg64::new(9));
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, 0);
        assert!(top[0].1 >= top[1].1);
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = informative_dataset(10);
        let a = top_permutation_features(&ds, 3, &mut Pcg64::new(11));
        let b = top_permutation_features(&ds, 3, &mut Pcg64::new(11));
        assert_eq!(a, b);
    }
}
