//! k-nearest-neighbour classifier.
//!
//! The code-stylometry literature (e.g. Kothari et al., Burrows et
//! al.) frequently uses nearest-neighbour rules; this is the third
//! baseline the ablation benches compare the forest against, one
//! notch stronger than [`crate::baseline::NearestCentroid`].

use crate::dataset::Dataset;

/// A k-NN classifier with Euclidean distance and majority vote (ties
/// break toward the nearest contributing neighbour's class).
#[derive(Debug, Clone)]
pub struct KnnClassifier {
    rows: Vec<Vec<f64>>,
    labels: Vec<usize>,
    n_classes: usize,
    k: usize,
}

impl KnnClassifier {
    /// Stores the training set.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or `k == 0`.
    pub fn fit(data: &Dataset, k: usize) -> Self {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        assert!(k > 0, "k must be positive");
        KnnClassifier {
            rows: (0..data.len()).map(|i| data.row(i).to_vec()).collect(),
            labels: data.labels().to_vec(),
            n_classes: data.n_classes(),
            k: k.min(data.len()),
        }
    }

    /// The effective `k` (clamped to the training size).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Predicts the class of `features`.
    pub fn predict(&self, features: &[f64]) -> usize {
        // Partial selection of the k smallest distances.
        let mut dists: Vec<(f64, usize)> = self
            .rows
            .iter()
            .zip(&self.labels)
            .map(|(row, &label)| {
                let d: f64 = row
                    .iter()
                    .zip(features)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                (d, label)
            })
            .collect();
        // total_cmp keeps the comparator total under NaN (a corrupt
        // distance sorts last instead of scrambling the whole order).
        dists.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut votes = vec![0usize; self.n_classes];
        for &(_, label) in dists.iter().take(self.k) {
            votes[label] += 1;
        }
        let best_count = *votes.iter().max().unwrap_or(&0);
        // Tie break: the nearest neighbour among tied classes.
        dists
            .iter()
            .take(self.k)
            .find(|(_, l)| votes[*l] == best_count)
            .map(|&(_, l)| l)
            .unwrap_or(0)
    }

    /// Predicts every row of `data`.
    pub fn predict_all(&self, data: &Dataset) -> Vec<usize> {
        (0..data.len()).map(|i| self.predict(data.row(i))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use synthattr_util::Pcg64;

    fn blobs(n_per_class: usize, seed: u64) -> Dataset {
        let mut rng = Pcg64::new(seed);
        let centers = [(0.0, 0.0), (6.0, 6.0), (0.0, 6.0)];
        let mut ds = Dataset::new(3);
        for (label, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..n_per_class {
                ds.push(
                    vec![rng.next_gaussian(cx, 0.7), rng.next_gaussian(cy, 0.7)],
                    label,
                );
            }
        }
        ds
    }

    #[test]
    fn classifies_separable_blobs() {
        let train = blobs(25, 1);
        let test = blobs(10, 2);
        let knn = KnnClassifier::fit(&train, 5);
        let acc = accuracy(&knn.predict_all(&test), test.labels());
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn k_equal_one_memorizes_training_set() {
        let train = blobs(10, 3);
        let knn = KnnClassifier::fit(&train, 1);
        let acc = accuracy(&knn.predict_all(&train), train.labels());
        assert_eq!(acc, 1.0);
    }

    #[test]
    fn k_clamps_to_dataset_size() {
        let train = blobs(2, 4);
        let knn = KnnClassifier::fit(&train, 100);
        assert_eq!(knn.k(), 6);
        let _ = knn.predict(&[0.0, 0.0]);
    }

    #[test]
    fn tie_break_prefers_nearest_class() {
        // Two classes, k=2, one neighbour each: the closer one wins.
        let mut ds = Dataset::new(2);
        ds.push(vec![0.0], 0);
        ds.push(vec![1.0], 1);
        let knn = KnnClassifier::fit(&ds, 2);
        assert_eq!(knn.predict(&[0.2]), 0);
        assert_eq!(knn.predict(&[0.8]), 1);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        KnnClassifier::fit(&blobs(2, 5), 0);
    }

    /// Satellite regression test: a NaN-bearing training row produces
    /// NaN distances; with `total_cmp` those sort strictly last, so
    /// the row can never displace a genuine neighbour (with the old
    /// non-total comparator it could scramble the whole sort order).
    #[test]
    fn nan_training_row_never_becomes_a_neighbour() {
        let mut clean = blobs(12, 7);
        let mut dirty = clean.clone();
        // A poisoned row with a deliberately misleading label.
        dirty.push_unchecked(vec![f64::NAN, 0.0], 2);
        let knn_clean = KnnClassifier::fit(&clean, 5);
        let knn_dirty = KnnClassifier::fit(&dirty, 5);
        let probes = blobs(6, 8);
        for i in 0..probes.len() {
            assert_eq!(
                knn_dirty.predict(probes.row(i)),
                knn_clean.predict(probes.row(i)),
                "probe {i}: NaN row changed the neighbourhood"
            );
        }
        // Determinism with the corrupt row present.
        clean.push_unchecked(vec![f64::NAN, 0.0], 2);
        let again = KnnClassifier::fit(&clean, 5);
        assert_eq!(again.predict_all(&probes), knn_dirty.predict_all(&probes));
    }
}
