//! Labelled feature matrices.

/// A dense, labelled dataset: `n` rows of `d` features with integer
/// class labels in `[0, n_classes)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    rows: Vec<Vec<f64>>,
    labels: Vec<usize>,
    n_classes: usize,
}

impl Dataset {
    /// Creates an empty dataset expecting labels in `[0, n_classes)`.
    pub fn new(n_classes: usize) -> Self {
        Dataset {
            rows: Vec::new(),
            labels: Vec::new(),
            n_classes,
        }
    }

    /// Builds a dataset from parallel row/label vectors.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ, rows have inconsistent dimension, a
    /// label is out of range, or any feature value is non-finite.
    pub fn from_parts(rows: Vec<Vec<f64>>, labels: Vec<usize>, n_classes: usize) -> Self {
        assert_eq!(rows.len(), labels.len(), "rows and labels must align");
        if let Some(d) = rows.first().map(Vec::len) {
            assert!(
                rows.iter().all(|r| r.len() == d),
                "inconsistent feature dimension"
            );
        }
        assert!(labels.iter().all(|&l| l < n_classes), "label out of range");
        for row in &rows {
            assert_finite(row);
        }
        Dataset {
            rows,
            labels,
            n_classes,
        }
    }

    /// Appends one sample.
    ///
    /// # Panics
    ///
    /// Panics if `label >= n_classes`, the dimension differs from
    /// existing rows, or any feature value is NaN/infinite (the
    /// downstream classifiers assume finite features; rejecting
    /// corruption here keeps the oracle from silently training on it).
    pub fn push(&mut self, features: Vec<f64>, label: usize) {
        assert!(label < self.n_classes, "label {label} out of range");
        if let Some(first) = self.rows.first() {
            assert_eq!(first.len(), features.len(), "feature dimension mismatch");
        }
        assert_finite(&features);
        self.rows.push(features);
        self.labels.push(label);
    }

    /// Test-only escape hatch that skips the finite-features check, so
    /// NaN-robustness regression tests can build corrupt datasets.
    #[cfg(test)]
    pub(crate) fn push_unchecked(&mut self, features: Vec<f64>, label: usize) {
        assert!(label < self.n_classes, "label {label} out of range");
        self.rows.push(features);
        self.labels.push(label);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Feature dimension (0 when empty).
    pub fn dim(&self) -> usize {
        self.rows.first().map_or(0, Vec::len)
    }

    /// Number of classes the label space admits.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Row `i`'s features.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.rows[i]
    }

    /// Row `i`'s label.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// A new dataset containing the given row indices (in order).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            rows: indices.iter().map(|&i| self.rows[i].clone()).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            n_classes: self.n_classes,
        }
    }

    /// A new dataset keeping only the feature columns in `columns`.
    pub fn project(&self, columns: &[usize]) -> Dataset {
        Dataset {
            rows: self
                .rows
                .iter()
                .map(|r| columns.iter().map(|&c| r[c]).collect())
                .collect(),
            labels: self.labels.clone(),
            n_classes: self.n_classes,
        }
    }

    /// Merges another dataset with the same dimension and class space.
    ///
    /// # Panics
    ///
    /// Panics on dimension or class-space mismatch.
    pub fn extend_from(&mut self, other: &Dataset) {
        assert_eq!(self.n_classes, other.n_classes, "class space mismatch");
        if !self.is_empty() && !other.is_empty() {
            assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        }
        self.rows.extend(other.rows.iter().cloned());
        self.labels.extend_from_slice(&other.labels);
    }
}

/// Rejects NaN/±∞ at the dataset boundary.
fn assert_finite(features: &[f64]) {
    if let Some(pos) = features.iter().position(|v| !v.is_finite()) {
        panic!(
            "non-finite feature value {} at column {pos}: features must be finite",
            features[pos]
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let mut ds = Dataset::new(3);
        ds.push(vec![0.0, 1.0], 0);
        ds.push(vec![1.0, 0.0], 1);
        ds.push(vec![2.0, 2.0], 2);
        ds.push(vec![0.1, 0.9], 0);
        ds
    }

    #[test]
    fn push_and_accessors() {
        let ds = tiny();
        assert_eq!(ds.len(), 4);
        assert_eq!(ds.dim(), 2);
        assert_eq!(ds.n_classes(), 3);
        assert_eq!(ds.row(1), &[1.0, 0.0]);
        assert_eq!(ds.label(2), 2);
        assert_eq!(ds.class_counts(), vec![2, 1, 1]);
        assert!(!ds.is_empty());
    }

    #[test]
    #[should_panic(expected = "label 3 out of range")]
    fn push_rejects_bad_label() {
        tiny().push(vec![0.0, 0.0], 3);
    }

    #[test]
    #[should_panic(expected = "feature dimension mismatch")]
    fn push_rejects_bad_dim() {
        tiny().push(vec![0.0], 0);
    }

    #[test]
    fn subset_selects_rows_in_order() {
        let ds = tiny();
        let sub = ds.subset(&[2, 0]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.label(0), 2);
        assert_eq!(sub.row(1), &[0.0, 1.0]);
    }

    #[test]
    fn project_selects_columns() {
        let ds = tiny();
        let p = ds.project(&[1]);
        assert_eq!(p.dim(), 1);
        assert_eq!(p.row(0), &[1.0]);
        assert_eq!(p.labels(), ds.labels());
    }

    #[test]
    fn extend_from_appends() {
        let mut a = tiny();
        let b = tiny();
        a.extend_from(&b);
        assert_eq!(a.len(), 8);
        assert_eq!(a.class_counts(), vec![4, 2, 2]);
    }

    #[test]
    fn from_parts_validates() {
        let ds = Dataset::from_parts(vec![vec![1.0], vec![2.0]], vec![0, 1], 2);
        assert_eq!(ds.len(), 2);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn from_parts_rejects_bad_labels() {
        Dataset::from_parts(vec![vec![1.0]], vec![5], 2);
    }

    #[test]
    #[should_panic(expected = "non-finite feature value")]
    fn push_rejects_nan() {
        tiny().push(vec![0.0, f64::NAN], 0);
    }

    #[test]
    #[should_panic(expected = "non-finite feature value")]
    fn push_rejects_infinity() {
        tiny().push(vec![f64::INFINITY, 0.0], 0);
    }

    #[test]
    #[should_panic(expected = "non-finite feature value")]
    fn from_parts_rejects_nan() {
        Dataset::from_parts(vec![vec![1.0], vec![f64::NAN]], vec![0, 1], 2);
    }

    #[test]
    fn push_unchecked_bypasses_validation_for_tests() {
        let mut ds = tiny();
        ds.push_unchecked(vec![f64::NAN, 0.0], 0);
        assert_eq!(ds.len(), 5);
        assert!(ds.row(4)[0].is_nan());
    }
}
