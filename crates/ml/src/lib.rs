//! From-scratch machine-learning substrate.
//!
//! The reproduced paper's attribution models are WEKA-style random
//! forests over stylometric features. This crate implements the whole
//! stack with no external ML dependency:
//!
//! * [`dataset`] — a labelled feature matrix with named classes;
//! * [`tree`] — CART decision trees (Gini impurity, per-node feature
//!   subsampling);
//! * [`forest`] — bagged random forests with probability voting,
//!   trained in parallel on the in-repo scoped pool
//!   (`synthattr_util::pool`), including shard-parallel training over
//!   out-of-core sources;
//! * [`colstore`] — an on-disk columnar feature store (streaming
//!   writer, checksummed header, chunked reader) for corpora that do
//!   not fit in RAM;
//! * [`source`] — the [`source::DatasetSource`] abstraction feeding
//!   training from either a resident [`Dataset`] or a [`colstore`]
//!   file;
//! * [`cv`] — stratified k-fold, *grouped* folds (the paper evaluates
//!   with one fold per GCJ challenge), and per-class reservoir
//!   sampling for fold construction over streams;
//! * [`select`] — information-gain feature ranking (the paper's
//!   feature-selection step);
//! * [`metrics`] — accuracy, confusion matrices, per-class recall;
//! * [`baseline`] + [`knn`] — majority-class, nearest-centroid, and
//!   k-NN baselines used as sanity floors in tests and benches;
//! * [`importance`] — out-of-bag error and permutation feature
//!   importance for forest introspection.
//!
//! # Example
//!
//! ```
//! use synthattr_ml::dataset::Dataset;
//! use synthattr_ml::forest::{RandomForest, ForestConfig};
//! use synthattr_util::Pcg64;
//!
//! // Two separable classes.
//! let mut ds = Dataset::new(2);
//! for i in 0..40 {
//!     let x = i as f64 / 40.0;
//!     ds.push(vec![x, 1.0 - x], usize::from(i >= 20));
//! }
//! let forest = RandomForest::fit(&ds, &ForestConfig::default(), &mut Pcg64::new(7));
//! assert_eq!(forest.predict(&[0.1, 0.9]), 0);
//! assert_eq!(forest.predict(&[0.9, 0.1]), 1);
//! ```

pub mod baseline;
pub mod colstore;
pub mod cv;
pub mod dataset;
pub mod forest;
pub mod importance;
pub mod knn;
pub mod metrics;
pub mod select;
pub mod source;
pub mod tree;

pub use colstore::{ColStoreError, ColumnStore, ColumnStoreWriter};
pub use dataset::Dataset;
pub use forest::{ForestConfig, RandomForest};
pub use metrics::ConfusionMatrix;
pub use source::DatasetSource;
