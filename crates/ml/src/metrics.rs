//! Classification metrics.

/// Fraction of positions where `pred == truth`.
///
/// # Panics
///
/// Panics if lengths differ.
///
/// ```
/// let acc = synthattr_ml::metrics::accuracy(&[1, 0, 1], &[1, 1, 1]);
/// assert!((acc - 2.0 / 3.0).abs() < 1e-12);
/// ```
pub fn accuracy(pred: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "prediction/label length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    let correct = pred.iter().zip(truth).filter(|(p, t)| p == t).count();
    correct as f64 / pred.len() as f64
}

/// A dense confusion matrix; `rows` are true classes, `columns` are
/// predicted classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    n_classes: usize,
    cells: Vec<usize>,
}

impl ConfusionMatrix {
    /// Builds the matrix from parallel prediction/truth slices.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or any label is out of range.
    pub fn from_predictions(pred: &[usize], truth: &[usize], n_classes: usize) -> Self {
        assert_eq!(pred.len(), truth.len(), "prediction/label length mismatch");
        let mut cells = vec![0usize; n_classes * n_classes];
        for (&p, &t) in pred.iter().zip(truth) {
            assert!(p < n_classes && t < n_classes, "label out of range");
            cells[t * n_classes + p] += 1;
        }
        ConfusionMatrix { n_classes, cells }
    }

    /// Count of samples with true class `t` predicted as `p`.
    pub fn count(&self, t: usize, p: usize) -> usize {
        self.cells[t * self.n_classes + p]
    }

    /// Total samples.
    pub fn total(&self) -> usize {
        self.cells.iter().sum()
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let diag: usize = (0..self.n_classes).map(|i| self.count(i, i)).sum();
        diag as f64 / total as f64
    }

    /// Recall of class `c` (0 when the class has no true samples).
    pub fn recall(&self, c: usize) -> f64 {
        let row: usize = (0..self.n_classes).map(|p| self.count(c, p)).sum();
        if row == 0 {
            0.0
        } else {
            self.count(c, c) as f64 / row as f64
        }
    }

    /// Precision of class `c` (0 when the class is never predicted).
    pub fn precision(&self, c: usize) -> f64 {
        let col: usize = (0..self.n_classes).map(|t| self.count(t, c)).sum();
        if col == 0 {
            0.0
        } else {
            self.count(c, c) as f64 / col as f64
        }
    }

    /// F1 score of class `c`.
    pub fn f1(&self, c: usize) -> f64 {
        let p = self.precision(c);
        let r = self.recall(c);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Unweighted mean recall over classes that have true samples.
    pub fn macro_recall(&self) -> f64 {
        let present: Vec<usize> = (0..self.n_classes)
            .filter(|&c| (0..self.n_classes).map(|p| self.count(c, p)).sum::<usize>() > 0)
            .collect();
        if present.is_empty() {
            return 0.0;
        }
        present.iter().map(|&c| self.recall(c)).sum::<f64>() / present.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[], &[]), 0.0);
        assert_eq!(accuracy(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(accuracy(&[0, 0], &[1, 1]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_length_mismatch_panics() {
        accuracy(&[1], &[1, 2]);
    }

    #[test]
    fn confusion_counts_and_accuracy() {
        let pred = [0, 1, 1, 0, 2];
        let truth = [0, 1, 0, 0, 2];
        let cm = ConfusionMatrix::from_predictions(&pred, &truth, 3);
        assert_eq!(cm.count(0, 0), 2);
        assert_eq!(cm.count(0, 1), 1);
        assert_eq!(cm.count(1, 1), 1);
        assert_eq!(cm.count(2, 2), 1);
        assert_eq!(cm.total(), 5);
        assert!((cm.accuracy() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn precision_recall_f1() {
        // Class 1: predicted twice, correct once; true once.
        let pred = [1, 1, 0];
        let truth = [1, 0, 0];
        let cm = ConfusionMatrix::from_predictions(&pred, &truth, 2);
        assert!((cm.recall(1) - 1.0).abs() < 1e-12);
        assert!((cm.precision(1) - 0.5).abs() < 1e-12);
        assert!((cm.f1(1) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn absent_class_has_zero_scores() {
        let cm = ConfusionMatrix::from_predictions(&[0, 0], &[0, 0], 3);
        assert_eq!(cm.recall(2), 0.0);
        assert_eq!(cm.precision(2), 0.0);
        assert_eq!(cm.f1(2), 0.0);
        // Macro recall ignores the absent classes.
        assert!((cm.macro_recall() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn out_of_range_label_panics() {
        ConfusionMatrix::from_predictions(&[5], &[0], 2);
    }
}
