//! Bagged random forests with parallel training, including
//! shard-parallel training over out-of-core sources
//! ([`RandomForest::fit_sharded`]).

use crate::dataset::Dataset;
use crate::source::DatasetSource;
use crate::tree::{argmax, DecisionTree, TreeConfig};
use std::io;
use synthattr_util::{pool, Pcg64};

/// Random-forest hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree growth limits.
    pub tree: TreeConfig,
    /// Bootstrap sample size as a fraction of the training set
    /// (denominator 100; 100 = classic bagging).
    pub bootstrap_pct: u8,
    /// Train trees on worker threads.
    pub parallel: bool,
    /// Worker-count override for parallel training; `None` defers to
    /// `SYNTHATTR_WORKERS` / available parallelism (see
    /// [`synthattr_util::pool::resolve_workers`]). Never affects
    /// results, only wall-clock time.
    pub workers: Option<usize>,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 100,
            tree: TreeConfig::default(),
            bootstrap_pct: 100,
            parallel: true,
            workers: None,
        }
    }
}

impl ForestConfig {
    /// A small fast configuration for unit tests and examples.
    pub fn fast() -> Self {
        ForestConfig {
            n_trees: 25,
            ..Self::default()
        }
    }
}

/// A trained random forest.
///
/// Prediction averages per-tree class probabilities (soft voting);
/// ties break to the lowest class id for determinism.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

impl RandomForest {
    /// Trains a forest.
    ///
    /// Each tree gets an independent RNG stream forked from `rng`, so
    /// results are identical whether training runs parallel or serial.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or `config.n_trees == 0`.
    pub fn fit(data: &Dataset, config: &ForestConfig, rng: &mut Pcg64) -> Self {
        Self::fit_with(data, config, rng, DecisionTree::fit_on)
    }

    /// Trains through the naive reference splitter
    /// ([`crate::tree::reference`]) — identical seed derivation and
    /// bootstrap sampling, so the result must be bit-identical to
    /// [`Self::fit`]. Exists for the golden-equivalence tests and the
    /// `forest` benchmark's `train_reference` baseline.
    #[cfg(any(test, feature = "reference-splitter"))]
    pub fn fit_reference(data: &Dataset, config: &ForestConfig, rng: &mut Pcg64) -> Self {
        Self::fit_with(data, config, rng, crate::tree::reference::fit_on)
    }

    /// Shared trainer: forks one RNG stream per tree *before*
    /// dispatch, so worker count never changes the forest, then fits
    /// each bootstrap through `fit_on`.
    fn fit_with(
        data: &Dataset,
        config: &ForestConfig,
        rng: &mut Pcg64,
        fit_on: fn(&Dataset, &[usize], &TreeConfig, &mut Pcg64) -> DecisionTree,
    ) -> Self {
        assert!(!data.is_empty(), "cannot fit a forest on an empty dataset");
        assert!(config.n_trees > 0, "forest needs at least one tree");
        let n = data.len();
        let sample_size = ((n * config.bootstrap_pct as usize) / 100).max(1);

        // Pre-derive per-tree seeds so parallel and serial training
        // produce identical forests.
        let seeds: Vec<Pcg64> = (0..config.n_trees)
            .map(|t| rng.fork(&["tree", &t.to_string()]))
            .collect();

        let train_one = |mut tree_rng: Pcg64| -> DecisionTree {
            let indices: Vec<usize> = (0..sample_size).map(|_| tree_rng.next_below(n)).collect();
            fit_on(data, &indices, &config.tree, &mut tree_rng)
        };

        let trees: Vec<DecisionTree> = if config.parallel && config.n_trees > 1 {
            pool::parallel_map_workers(pool::resolve_workers(config.workers), seeds, train_one)
        } else {
            seeds.into_iter().map(train_one).collect()
        };

        RandomForest {
            trees,
            n_classes: data.n_classes(),
        }
    }

    /// Trains a forest shard-parallel over any [`DatasetSource`],
    /// without ever materializing the full source in RAM.
    ///
    /// The source's rows are split into `n_shards` contiguous ranges
    /// (sizes differing by at most one). Tree `t` trains on shard
    /// `t % n_shards`: its bootstrap draws from that shard's rows
    /// only, with the bootstrap size scaled to the shard. Shards load
    /// and train concurrently on the worker pool; at most the loading
    /// shards' rows are resident at once. The per-shard sub-forests
    /// merge back in tree-index order, so the result is one ordinary
    /// [`RandomForest`].
    ///
    /// # Determinism
    ///
    /// Per-tree RNG streams are forked from `rng` by tree index —
    /// exactly the derivation [`Self::fit`] uses — before any
    /// dispatch, and shard assignment is pure arithmetic, so the
    /// trained forest depends only on `(source rows, n_shards,
    /// config, seed)`: never on the worker count. With `n_shards ==
    /// 1` the shard is the whole source and every tree's bootstrap
    /// sees the same row range as `fit` — the forest is
    /// **bit-identical** to `fit` on the materialized dataset (the
    /// `tests/scale_out.rs` A/B suite pins this at paper scale).
    ///
    /// # Errors
    ///
    /// Propagates the first source I/O or validation error.
    ///
    /// # Panics
    ///
    /// Panics if the source is empty or `config.n_trees == 0`.
    pub fn fit_sharded<S: DatasetSource + ?Sized>(
        source: &S,
        n_shards: usize,
        config: &ForestConfig,
        rng: &mut Pcg64,
    ) -> io::Result<Self> {
        assert!(
            !source.is_empty(),
            "cannot fit a forest on an empty dataset"
        );
        assert!(config.n_trees > 0, "forest needs at least one tree");
        let n = source.len();
        let n_shards = n_shards.clamp(1, n.min(config.n_trees));
        let workers = pool::resolve_workers(config.workers);

        // Per-tree seeds forked before dispatch — the same path
        // strings as fit_with, so a 1-shard run replays fit exactly.
        let seeds: Vec<Pcg64> = (0..config.n_trees)
            .map(|t| rng.fork(&["tree", &t.to_string()]))
            .collect();

        if n_shards == 1 {
            // Degenerate sharding: load once, then train parallel over
            // trees like fit_with (shard-level parallelism would leave
            // every worker but one idle).
            let data = source.load_rows(0, n)?;
            let sample_size = ((n * config.bootstrap_pct as usize) / 100).max(1);
            let train_one = |mut tree_rng: Pcg64| -> DecisionTree {
                let indices: Vec<usize> =
                    (0..sample_size).map(|_| tree_rng.next_below(n)).collect();
                DecisionTree::fit_on(&data, &indices, &config.tree, &mut tree_rng)
            };
            let trees: Vec<DecisionTree> = if config.parallel && config.n_trees > 1 {
                pool::parallel_map_workers(workers, seeds, train_one)
            } else {
                seeds.into_iter().map(train_one).collect()
            };
            return Ok(RandomForest {
                trees,
                n_classes: source.n_classes(),
            });
        }

        // Shard s covers a contiguous range; the first `rem` shards
        // absorb the remainder row each.
        let base = n / n_shards;
        let rem = n % n_shards;
        let range_of = |s: usize| -> (usize, usize) {
            let start = s * base + s.min(rem);
            let count = base + usize::from(s < rem);
            (start, count)
        };
        // Tree t → shard t % n_shards, with its pre-forked seed.
        let mut shard_trees: Vec<Vec<(usize, Pcg64)>> = vec![Vec::new(); n_shards];
        for (t, seed) in seeds.into_iter().enumerate() {
            shard_trees[t % n_shards].push((t, seed));
        }

        let train_shard =
            |(s, trees): (usize, Vec<(usize, Pcg64)>)| -> io::Result<Vec<(usize, DecisionTree)>> {
                let (start, count) = range_of(s);
                let data = source.load_rows(start, count)?;
                let sample_size = ((count * config.bootstrap_pct as usize) / 100).max(1);
                Ok(trees
                    .into_iter()
                    .map(|(t, mut tree_rng)| {
                        let indices: Vec<usize> = (0..sample_size)
                            .map(|_| tree_rng.next_below(count))
                            .collect();
                        (
                            t,
                            DecisionTree::fit_on(&data, &indices, &config.tree, &mut tree_rng),
                        )
                    })
                    .collect())
            };

        let shard_jobs: Vec<(usize, Vec<(usize, Pcg64)>)> =
            shard_trees.into_iter().enumerate().collect();
        let per_shard: Vec<Vec<(usize, DecisionTree)>> = if config.parallel && n_shards > 1 {
            pool::parallel_try_map_workers(workers, shard_jobs, train_shard)?
        } else {
            shard_jobs
                .into_iter()
                .map(train_shard)
                .collect::<io::Result<_>>()?
        };

        // Merge in tree-index order so the ensemble is independent of
        // which shard trained which tree.
        let mut merged: Vec<(usize, DecisionTree)> = per_shard.into_iter().flatten().collect();
        merged.sort_by_key(|(t, _)| *t);
        Ok(RandomForest {
            trees: merged.into_iter().map(|(_, tree)| tree).collect(),
            n_classes: source.n_classes(),
        })
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Mean class-probability vector over all trees.
    ///
    /// Trees accumulate their sparse leaf distributions directly into
    /// the dense accumulator; at 20k classes this walks the handful of
    /// classes present in each leaf instead of the full class range.
    pub fn predict_proba(&self, features: &[f64]) -> Vec<f32> {
        let mut acc = vec![0.0f32; self.n_classes];
        for tree in &self.trees {
            tree.accumulate_proba(features, &mut acc);
        }
        let k = self.trees.len() as f32;
        for a in &mut acc {
            *a /= k;
        }
        acc
    }

    /// Predicted class (argmax of [`Self::predict_proba`]).
    pub fn predict(&self, features: &[f64]) -> usize {
        argmax(&self.predict_proba(features))
    }

    /// Mean class-probability vectors for a batch of rows, in input
    /// order, fanned out over the scoped worker pool.
    ///
    /// Per-row prediction is a pure function of the trained forest and
    /// the pool preserves input order, so the result is byte-identical
    /// for every worker count (only wall-clock changes). Small batches
    /// stay on the calling thread.
    pub fn predict_proba_batch(&self, rows: &[&[f64]]) -> Vec<Vec<f32>> {
        if rows.len() < PARALLEL_PREDICT_MIN {
            return rows.iter().map(|r| self.predict_proba(r)).collect();
        }
        pool::parallel_map(rows.to_vec(), |r| self.predict_proba(r))
    }

    /// Predicted classes for a batch of rows, in input order (argmax
    /// of [`Self::predict_proba_batch`], same determinism guarantee).
    pub fn predict_batch(&self, rows: &[&[f64]]) -> Vec<usize> {
        if rows.len() < PARALLEL_PREDICT_MIN {
            return rows.iter().map(|r| self.predict(r)).collect();
        }
        pool::parallel_map(rows.to_vec(), |r| self.predict(r))
    }

    /// Predicts every row of `data`, in order (batch fast path).
    pub fn predict_all(&self, data: &Dataset) -> Vec<usize> {
        let rows: Vec<&[f64]> = (0..data.len()).map(|i| data.row(i)).collect();
        self.predict_batch(&rows)
    }
}

/// Batches below this size are predicted on the calling thread: the
/// pool's thread spawn costs more than a handful of tree walks.
const PARALLEL_PREDICT_MIN: usize = 64;

#[cfg(test)]
mod tests {
    use super::*;

    /// Four Gaussian-ish blobs, one per class.
    fn blobs(n_per_class: usize, seed: u64) -> Dataset {
        let mut rng = Pcg64::new(seed);
        let centers = [(0.0, 0.0), (5.0, 5.0), (0.0, 5.0), (5.0, 0.0)];
        let mut ds = Dataset::new(4);
        for (label, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..n_per_class {
                ds.push(
                    vec![rng.next_gaussian(cx, 0.6), rng.next_gaussian(cy, 0.6)],
                    label,
                );
            }
        }
        ds
    }

    #[test]
    fn separable_blobs_classify_cleanly() {
        let train = blobs(30, 1);
        let test = blobs(10, 2);
        let forest = RandomForest::fit(&train, &ForestConfig::fast(), &mut Pcg64::new(3));
        let preds = forest.predict_all(&test);
        let correct = preds
            .iter()
            .zip(test.labels())
            .filter(|(p, l)| p == l)
            .count();
        assert!(
            correct as f64 / test.len() as f64 > 0.95,
            "accuracy {correct}/{}",
            test.len()
        );
    }

    #[test]
    fn parallel_and_serial_training_agree() {
        let train = blobs(20, 4);
        let cfg_par = ForestConfig {
            n_trees: 12,
            parallel: true,
            ..ForestConfig::default()
        };
        let cfg_ser = ForestConfig {
            parallel: false,
            ..cfg_par
        };
        let fp = RandomForest::fit(&train, &cfg_par, &mut Pcg64::new(11));
        let fs = RandomForest::fit(&train, &cfg_ser, &mut Pcg64::new(11));
        let test = blobs(15, 5);
        for i in 0..test.len() {
            assert_eq!(
                fp.predict_proba(test.row(i)),
                fs.predict_proba(test.row(i)),
                "row {i}"
            );
        }
    }

    #[test]
    fn worker_count_never_changes_the_forest() {
        // The satellite guarantee behind SYNTHATTR_WORKERS: per-tree
        // seeds are derived before dispatch, so 1/2/8 workers must
        // train byte-identical forests.
        let train = blobs(20, 30);
        let test = blobs(15, 31);
        let fit_with = |workers: usize| {
            let cfg = ForestConfig {
                n_trees: 16,
                workers: Some(workers),
                ..ForestConfig::default()
            };
            RandomForest::fit(&train, &cfg, &mut Pcg64::new(77))
        };
        let baseline = fit_with(1);
        for workers in [2, 8] {
            let forest = fit_with(workers);
            for i in 0..test.len() {
                assert_eq!(
                    baseline.predict_proba(test.row(i)),
                    forest.predict_proba(test.row(i)),
                    "row {i} with {workers} workers"
                );
            }
        }
    }

    #[test]
    fn probabilities_are_normalized() {
        let train = blobs(10, 6);
        let forest = RandomForest::fit(&train, &ForestConfig::fast(), &mut Pcg64::new(7));
        let p = forest.predict_proba(&[2.5, 2.5]);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "{p:?}");
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn more_trees_does_not_hurt_on_noise() {
        // Smoke test: a bigger forest still trains and predicts.
        let train = blobs(10, 8);
        let forest = RandomForest::fit(
            &train,
            &ForestConfig {
                n_trees: 60,
                ..ForestConfig::default()
            },
            &mut Pcg64::new(9),
        );
        assert_eq!(forest.n_trees(), 60);
        assert_eq!(forest.n_classes(), 4);
        let _ = forest.predict(&[0.0, 0.0]);
    }

    #[test]
    fn deterministic_across_runs() {
        let train = blobs(15, 10);
        let f1 = RandomForest::fit(&train, &ForestConfig::fast(), &mut Pcg64::new(42));
        let f2 = RandomForest::fit(&train, &ForestConfig::fast(), &mut Pcg64::new(42));
        let test = blobs(5, 11);
        assert_eq!(f1.predict_all(&test), f2.predict_all(&test));
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let ds = Dataset::new(2);
        RandomForest::fit(&ds, &ForestConfig::default(), &mut Pcg64::new(1));
    }

    /// Golden equivalence: the optimised trainer must produce
    /// bit-identical forests to the naive reference splitter — same
    /// seeds, same predictions, at every worker count.
    #[test]
    fn optimized_forest_is_bit_identical_to_reference() {
        // Heavy value ties stress the split search harder than
        // Gaussian blobs do.
        let mut rng = Pcg64::new(21);
        let mut train = Dataset::new(3);
        for _ in 0..90 {
            let label = rng.next_below(3);
            train.push(
                vec![
                    (label * 2 + rng.next_below(3)) as f64 / 2.0,
                    rng.next_below(4) as f64 / 2.0,
                    1.25, // constant feature
                ],
                label,
            );
        }
        let test = blobs(12, 22);
        for seed in [3u64, 77] {
            for workers in [1usize, 4, 8] {
                let cfg = ForestConfig {
                    n_trees: 16,
                    workers: Some(workers),
                    ..ForestConfig::default()
                };
                let fast = RandomForest::fit(&train, &cfg, &mut Pcg64::new(seed));
                let naive = RandomForest::fit_reference(&train, &cfg, &mut Pcg64::new(seed));
                for i in 0..train.len() {
                    assert_eq!(
                        fast.predict_proba(train.row(i)),
                        naive.predict_proba(train.row(i)),
                        "seed {seed} workers {workers} train row {i}"
                    );
                }
                for i in 0..test.len() {
                    // Off-distribution probes exercise every leaf path.
                    assert_eq!(
                        fast.predict_proba(test.row(i)),
                        naive.predict_proba(test.row(i)),
                        "seed {seed} workers {workers} test row {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn batch_prediction_matches_serial() {
        let train = blobs(20, 14);
        let forest = RandomForest::fit(&train, &ForestConfig::fast(), &mut Pcg64::new(15));
        // Big enough to cross PARALLEL_PREDICT_MIN and hit the pool.
        let test = blobs(40, 16);
        let rows: Vec<&[f64]> = (0..test.len()).map(|i| test.row(i)).collect();
        assert!(rows.len() >= super::PARALLEL_PREDICT_MIN);
        let serial_probs: Vec<Vec<f32>> = rows.iter().map(|r| forest.predict_proba(r)).collect();
        assert_eq!(forest.predict_proba_batch(&rows), serial_probs);
        let serial_preds: Vec<usize> = rows.iter().map(|r| forest.predict(r)).collect();
        assert_eq!(forest.predict_batch(&rows), serial_preds);
        assert_eq!(forest.predict_all(&test), serial_preds);
    }

    #[test]
    fn tiny_batches_stay_on_the_calling_thread() {
        let train = blobs(8, 17);
        let forest = RandomForest::fit(&train, &ForestConfig::fast(), &mut Pcg64::new(18));
        let row = train.row(0);
        assert_eq!(forest.predict_batch(&[row]), vec![forest.predict(row)]);
        assert!(forest.predict_batch(&[]).is_empty());
        assert!(forest.predict_proba_batch(&[]).is_empty());
    }

    #[test]
    fn single_shard_training_is_bit_identical_to_fit() {
        // The A/B guarantee behind scripts/verify.sh --scale: with one
        // shard, fit_sharded replays fit's exact seed derivation and
        // bootstrap, so the forests must agree to the bit at any
        // worker count.
        let train = blobs(20, 50);
        let test = blobs(15, 51);
        for workers in [1usize, 3, 8] {
            let cfg = ForestConfig {
                n_trees: 14,
                workers: Some(workers),
                ..ForestConfig::default()
            };
            let direct = RandomForest::fit(&train, &cfg, &mut Pcg64::new(99));
            let sharded = RandomForest::fit_sharded(&train, 1, &cfg, &mut Pcg64::new(99)).unwrap();
            for i in 0..test.len() {
                let a = direct.predict_proba(test.row(i));
                let b = sharded.predict_proba(test.row(i));
                assert_eq!(
                    a.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
                    b.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
                    "row {i} workers {workers}"
                );
            }
        }
    }

    #[test]
    fn sharded_training_is_worker_count_invariant() {
        // Multi-shard forests differ from fit (different bootstraps),
        // but must never depend on how many workers ran the shards.
        let train = blobs(20, 52);
        let test = blobs(15, 53);
        let fit_with = |workers: usize| {
            let cfg = ForestConfig {
                n_trees: 16,
                workers: Some(workers),
                ..ForestConfig::default()
            };
            RandomForest::fit_sharded(&train, 3, &cfg, &mut Pcg64::new(7)).unwrap()
        };
        let baseline = fit_with(1);
        for workers in [2usize, 8] {
            let forest = fit_with(workers);
            for i in 0..test.len() {
                assert_eq!(
                    baseline.predict_proba(test.row(i)),
                    forest.predict_proba(test.row(i)),
                    "row {i} with {workers} workers"
                );
            }
        }
        // And serial dispatch agrees with the pool too.
        let serial = {
            let cfg = ForestConfig {
                n_trees: 16,
                parallel: false,
                ..ForestConfig::default()
            };
            RandomForest::fit_sharded(&train, 3, &cfg, &mut Pcg64::new(7)).unwrap()
        };
        for i in 0..test.len() {
            assert_eq!(
                baseline.predict_proba(test.row(i)),
                serial.predict_proba(test.row(i)),
                "row {i} serial"
            );
        }
    }

    #[test]
    fn sharded_training_from_colstore_matches_in_ram_source() {
        // Same rows, two backends: the trained forests must be
        // bit-identical, proving out-of-core training changes where
        // bytes live, not what gets learned.
        let train = blobs(15, 54);
        let mut path = std::env::temp_dir();
        path.push(format!(
            "synthattr_forest_shard_{}.cols",
            std::process::id()
        ));
        let mut w =
            crate::colstore::ColumnStoreWriter::create(&path, train.dim(), train.n_classes(), 9)
                .unwrap();
        for i in 0..train.len() {
            w.push_row(train.row(i), train.label(i)).unwrap();
        }
        let store = w.finish().unwrap();
        let cfg = ForestConfig {
            n_trees: 10,
            ..ForestConfig::default()
        };
        let from_ram = RandomForest::fit_sharded(&train, 4, &cfg, &mut Pcg64::new(31)).unwrap();
        let from_disk = RandomForest::fit_sharded(&store, 4, &cfg, &mut Pcg64::new(31)).unwrap();
        std::fs::remove_file(&path).unwrap();
        let test = blobs(10, 55);
        for i in 0..test.len() {
            let a = from_ram.predict_proba(test.row(i));
            let b = from_disk.predict_proba(test.row(i));
            assert_eq!(
                a.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
                "row {i}"
            );
        }
    }

    #[test]
    fn sharded_forest_still_classifies() {
        // Sanity: shard-local bootstraps still learn the blobs. Each
        // shard sees a contiguous slice, so shuffle labels across the
        // range by interleaving classes.
        let mut rng = Pcg64::new(56);
        let mut train = Dataset::new(4);
        let centers = [(0.0, 0.0), (5.0, 5.0), (0.0, 5.0), (5.0, 0.0)];
        for i in 0..120 {
            let label = i % 4;
            let (cx, cy) = centers[label];
            train.push(
                vec![rng.next_gaussian(cx, 0.6), rng.next_gaussian(cy, 0.6)],
                label,
            );
        }
        let cfg = ForestConfig {
            n_trees: 24,
            ..ForestConfig::default()
        };
        let forest = RandomForest::fit_sharded(&train, 4, &cfg, &mut Pcg64::new(57)).unwrap();
        assert_eq!(forest.n_trees(), 24);
        let test = blobs(10, 58);
        let correct = (0..test.len())
            .filter(|&i| forest.predict(test.row(i)) == test.label(i))
            .count();
        assert!(
            correct as f64 / test.len() as f64 > 0.9,
            "accuracy {correct}/{}",
            test.len()
        );
    }

    #[test]
    fn shard_count_clamps_to_rows_and_trees() {
        // More shards than rows (or trees) must degrade gracefully
        // rather than produce empty shards.
        let train = blobs(2, 59); // 8 rows
        let cfg = ForestConfig {
            n_trees: 5,
            ..ForestConfig::default()
        };
        let forest = RandomForest::fit_sharded(&train, 64, &cfg, &mut Pcg64::new(60)).unwrap();
        assert_eq!(forest.n_trees(), 5);
        let _ = forest.predict(train.row(0));
    }

    #[test]
    fn bootstrap_pct_shrinks_sample() {
        let train = blobs(25, 12);
        let forest = RandomForest::fit(
            &train,
            &ForestConfig {
                bootstrap_pct: 50,
                ..ForestConfig::fast()
            },
            &mut Pcg64::new(13),
        );
        // Still a sane classifier on its own training distribution.
        let preds = forest.predict_all(&train);
        let correct = preds
            .iter()
            .zip(train.labels())
            .filter(|(p, l)| p == l)
            .count();
        assert!(correct * 10 > train.len() * 8);
    }
}
