//! CART decision trees with Gini impurity and per-node feature
//! subsampling (the randomized trees inside the forest).
//!
//! # The fast split search
//!
//! The split search is the training hot path: every node scans `k`
//! candidate features over `n` samples. The optimised path
//! ([`SplitScratch`]) keeps all per-node working memory in buffers
//! reused down the recursion and maintains **incremental class counts
//! with a running sum of squared counts** for both sides of the
//! candidate split, so the Gini gain of each position is an O(1)
//! update instead of an O(C) re-count — and no count vector is ever
//! allocated inside the scan.
//!
//! Because class counts are integers, the running sums of squares are
//! *exactly* equal to the naive recomputation, so the optimised search
//! selects bit-identical `(feature, threshold, gain)` triples to the
//! reference implementation retained in [`reference`]. A golden
//! equivalence test and a property test
//! (`optimized_split_matches_reference`) pin this invariant.
//!
//! All float sorts use [`f64::total_cmp`]: the comparator is total
//! even in the presence of NaN, so a corrupt value can never scramble
//! the sort order (NaN sorts after every finite value).
//!
//! # Scaling to tens of thousands of classes
//!
//! The corpus scale-out path trains on 10k–20k author labels. Two
//! representations that were fine at 204 classes become the bottleneck
//! there, so both are class-sparse:
//!
//! * **Leaves** store only the classes *present* in the leaf as
//!   `(class, probability)` pairs. A dense `Vec<f32>` per leaf is
//!   O(leaves × C) — ~80 KB per leaf at 20k classes, gigabytes per
//!   tree — while the pairs sum to at most the tree's sample count.
//!   Prediction adds the sparse pairs into a dense accumulator; the
//!   skipped entries are exact `+0.0` additions, so forest
//!   probabilities are bit-identical to the dense representation.
//! * **Split histograms** are indexed by a per-node [`ClassRemap`]
//!   that renames the node's distinct classes to `0..m` (epoch-stamped
//!   O(1) lookups, one O(C) allocation per tree). Gini is a sum over
//!   per-class counts, so renaming classes permutes integer additions
//!   only — every float the search computes is unchanged. Both the
//!   optimised and the reference splitter read labels through the same
//!   remap, so the equivalence tests pin the whole arrangement.

use crate::dataset::Dataset;
use synthattr_util::Pcg64;

/// How many candidate features each split considers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaxFeatures {
    /// `ceil(sqrt(d))` — the standard random-forest default.
    Sqrt,
    /// All features — classic single CART tree.
    All,
    /// A fixed count (clamped to `d`).
    Count(usize),
}

impl MaxFeatures {
    fn resolve(self, dim: usize) -> usize {
        match self {
            MaxFeatures::Sqrt => (dim as f64).sqrt().ceil() as usize,
            MaxFeatures::All => dim,
            MaxFeatures::Count(k) => k.min(dim),
        }
        .max(1)
    }
}

/// Tree growth limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples a node needs to be split further.
    pub min_samples_split: usize,
    /// Split candidate feature count.
    pub max_features: MaxFeatures,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 40,
            min_samples_split: 2,
            max_features: MaxFeatures::Sqrt,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        /// Normalized class distribution at the leaf, sparse over the
        /// classes actually present, ascending by class id.
        dist: Vec<(u32, f32)>,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Index of the left child in the node arena.
        left: usize,
        /// Index of the right child in the node arena.
        right: usize,
    },
}

/// The best split found for one node: `(feature, threshold, gain)`.
type BestSplit = Option<(usize, f64, f64)>;

/// Per-tree scratch renaming each node's distinct classes to a dense
/// `0..m` range, so split histograms cost O(m) instead of O(C) at
/// every node.
///
/// The `stamp` array makes invalidation free: a slot is valid only if
/// its stamp equals the current epoch, so starting a new node is one
/// counter increment, not an O(C) clear. Slots are assigned in
/// first-seen order over the node's indices — deterministic, because
/// the index order itself is.
pub(crate) struct ClassRemap {
    slot: Vec<u32>,
    stamp: Vec<u64>,
    epoch: u64,
    classes: Vec<u32>,
}

impl ClassRemap {
    pub(crate) fn new(n_classes: usize) -> Self {
        ClassRemap {
            slot: vec![0; n_classes],
            stamp: vec![0; n_classes],
            epoch: 0,
            classes: Vec::new(),
        }
    }

    /// Starts a node: maps its distinct labels to `0..m` and fills
    /// `counts` with the local class histogram (`counts[s]` = samples
    /// of the class in slot `s`).
    pub(crate) fn begin(&mut self, data: &Dataset, indices: &[usize], counts: &mut Vec<usize>) {
        self.epoch += 1;
        self.classes.clear();
        counts.clear();
        for &i in indices {
            let c = data.label(i);
            if self.stamp[c] != self.epoch {
                self.stamp[c] = self.epoch;
                self.slot[c] = self.classes.len() as u32;
                self.classes.push(c as u32);
                counts.push(0);
            }
            counts[self.slot[c] as usize] += 1;
        }
    }

    /// The local slot of a global class id (valid for labels seen by
    /// the latest [`Self::begin`]).
    #[inline]
    pub(crate) fn local(&self, class: usize) -> usize {
        debug_assert_eq!(self.stamp[class], self.epoch, "class unseen by this node");
        self.slot[class] as usize
    }

    /// Slot-to-global-class mapping for the current node.
    pub(crate) fn classes(&self) -> &[u32] {
        &self.classes
    }
}

/// Reusable per-node working memory for the split search, owned once
/// per tree fit and threaded down the recursion so no inner loop
/// allocates.
///
/// `pairs` holds the sorted `(sort key, label)` projection of the
/// node's samples onto one candidate feature — the key is the
/// order-preserving integer image of the value (see [`total_cmp_key`]),
/// so the sort runs on plain `u64` compares instead of re-deriving the
/// `total_cmp` bit transform at every comparison. `left_counts` /
/// `right_counts` are the incrementally-maintained class histograms of
/// the two sides of the sweeping split position.
pub(crate) struct SplitScratch {
    pairs: Vec<(u64, usize)>,
    left_counts: Vec<usize>,
    right_counts: Vec<usize>,
}

impl SplitScratch {
    pub(crate) fn new() -> Self {
        SplitScratch {
            pairs: Vec::new(),
            left_counts: Vec::new(),
            right_counts: Vec::new(),
        }
    }

    /// The optimised split search: one sort per candidate feature,
    /// then a single sweep maintaining class counts and sums of
    /// squared counts for both sides, so each candidate position costs
    /// O(1) instead of an O(C) allocation + re-count.
    ///
    /// `counts` is the node-local histogram produced by
    /// [`ClassRemap::begin`]; labels are read through `remap`, so the
    /// side histograms are sized to the node's distinct classes.
    ///
    /// Returns the same `(feature, threshold, gain)` as
    /// [`reference::best_split`], bit for bit: the running sums of
    /// squares are integer arithmetic, so the floating-point Gini
    /// expressions receive identical operands in both paths.
    pub(crate) fn find_best(
        &mut self,
        data: &Dataset,
        indices: &[usize],
        candidates: &[usize],
        counts: &[usize],
        remap: &ClassRemap,
        parent_gini: f64,
    ) -> BestSplit {
        let total = indices.len();
        let total_sq = sum_sq(counts);
        let mut best: BestSplit = None;
        // Strictly below any finite gain, so the first evaluated
        // position is always accepted — the same selection the
        // reference's `is_none_or` makes (gains are always finite:
        // both ginis are ratios of finite integers).
        let mut best_gain = f64::NEG_INFINITY;
        let SplitScratch {
            pairs,
            left_counts,
            right_counts,
        } = self;
        left_counts.clear();
        left_counts.resize(counts.len(), 0);
        right_counts.clear();
        right_counts.resize(counts.len(), 0);
        for &feature in candidates {
            pairs.clear();
            pairs.extend(indices.iter().map(|&i| {
                (
                    total_cmp_key(data.row(i)[feature]),
                    remap.local(data.label(i)),
                )
            }));
            // Unstable sort on integer keys: no allocation, and no
            // per-comparison float bit transform. Within a run of
            // equal values the label order is irrelevant — splits are
            // only scored at value boundaries, where the side
            // histograms are permutation-invariant.
            pairs.sort_unstable_by_key(|p| p.0);
            // Length-pinned view so the sweep's indexing is
            // bounds-check-free.
            let pairs = &pairs[..total];
            // Constant-feature and tie checks must compare the
            // *recovered floats*, not the keys: -0.0 and +0.0 have
            // distinct keys but are equal values, and the reference
            // compares values.
            if key_to_f64(pairs[0].0) == key_to_f64(pairs[total - 1].0) {
                continue; // constant feature in this node
            }
            left_counts.fill(0);
            right_counts.copy_from_slice(counts);
            let mut left_sq = 0u64;
            let mut right_sq = total_sq;
            for split_at in 1..total {
                // Move one sample from the right side to the left:
                // (c+1)^2 - c^2 = 2c+1 and (c-1)^2 - c^2 = -(2c-1).
                let (prev_key, class) = pairs[split_at - 1];
                left_sq += 2 * left_counts[class] as u64 + 1;
                left_counts[class] += 1;
                right_sq -= 2 * right_counts[class] as u64 - 1;
                right_counts[class] -= 1;
                let prev_val = key_to_f64(prev_key);
                let cur_val = key_to_f64(pairs[split_at].0);
                if prev_val == cur_val {
                    continue; // cannot split between equal values
                }
                let n_left = split_at;
                let n_right = total - split_at;
                let weighted = (n_left as f64 * gini_from_sq(left_sq, n_left)
                    + n_right as f64 * gini_from_sq(right_sq, n_right))
                    / total as f64;
                let gain = parent_gini - weighted;
                // Zero-gain splits are accepted on impure nodes (XOR-like
                // structure has no first-split gain); recursion still
                // terminates because both children are strictly smaller.
                if gain > best_gain {
                    best_gain = gain;
                    let threshold = 0.5 * (prev_val + cur_val);
                    best = Some((feature, threshold, gain));
                }
            }
        }
        best
    }
}

/// A trained CART decision tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_classes: usize,
}

impl DecisionTree {
    /// Fits a tree on `data`, optionally restricted to the sample
    /// indices in `indices` (bootstrap support).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or `indices` is empty.
    pub fn fit_on(data: &Dataset, indices: &[usize], config: &TreeConfig, rng: &mut Pcg64) -> Self {
        assert!(!indices.is_empty(), "cannot fit a tree on zero samples");
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            n_classes: data.n_classes(),
        };
        let mut idx = indices.to_vec();
        let mut scratch = SplitScratch::new();
        let mut remap = ClassRemap::new(data.n_classes());
        tree.build_with(
            data,
            &mut idx,
            0,
            config,
            rng,
            &mut remap,
            &mut |d, i, cand, counts, rm, pg| scratch.find_best(d, i, cand, counts, rm, pg),
        );
        tree
    }

    /// Fits on every sample of `data`.
    pub fn fit(data: &Dataset, config: &TreeConfig, rng: &mut Pcg64) -> Self {
        let all: Vec<usize> = (0..data.len()).collect();
        Self::fit_on(data, &all, config, rng)
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Maximum depth actually reached.
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], at: usize) -> usize {
            match &nodes[at] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + depth_of(nodes, *left).max(depth_of(nodes, *right))
                }
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            depth_of(&self.nodes, 0)
        }
    }

    /// Builds a subtree over `indices`; returns its arena slot.
    ///
    /// The growth skeleton (stopping rules, candidate sampling, RNG
    /// draws, partitioning, recursion order) is shared between the
    /// optimised and the reference splitter, so the two trainers can
    /// only differ through `find_best` — which the equivalence tests
    /// prove they don't.
    #[allow(clippy::too_many_arguments)]
    fn build_with<F>(
        &mut self,
        data: &Dataset,
        indices: &mut [usize],
        depth: usize,
        config: &TreeConfig,
        rng: &mut Pcg64,
        remap: &mut ClassRemap,
        find_best: &mut F,
    ) -> usize
    where
        F: FnMut(&Dataset, &[usize], &[usize], &[usize], &ClassRemap, f64) -> BestSplit,
    {
        // Node-local class histogram: `counts[s]` counts the class in
        // remap slot `s`, so its length is the node's *distinct* class
        // count, not the dataset's. Purity is then a length check.
        let mut counts = Vec::new();
        remap.begin(data, indices, &mut counts);
        let total = indices.len();
        let pure = counts.len() == 1;
        if pure || depth >= config.max_depth || total < config.min_samples_split {
            return self.leaf(&counts, remap.classes(), total);
        }

        let dim = data.dim();
        let k = config.max_features.resolve(dim);
        let candidates = rng.sample_indices(dim, k);

        let parent_gini = gini_from_sq(sum_sq(&counts), total);
        let best = find_best(data, indices, &candidates, &counts, remap, parent_gini);

        let Some((feature, threshold, _)) = best else {
            return self.leaf(&counts, remap.classes(), total);
        };

        // Partition indices in place around the threshold.
        let mid = partition(indices, |&i| data.row(i)[feature] <= threshold);
        if mid == 0 || mid == total {
            return self.leaf(&counts, remap.classes(), total);
        }
        // Reserve the slot before children so the parent sits above them.
        let slot = self.nodes.len();
        self.nodes.push(Node::Leaf { dist: Vec::new() });
        let (left_idx, right_idx) = indices.split_at_mut(mid);
        let left = self.build_with(data, left_idx, depth + 1, config, rng, remap, find_best);
        let right = self.build_with(data, right_idx, depth + 1, config, rng, remap, find_best);
        self.nodes[slot] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        slot
    }

    /// Builds a sparse leaf from the node-local histogram. Must run
    /// while `classes` still describes the node (i.e. before recursing
    /// into children re-stamps the remap).
    fn leaf(&mut self, counts: &[usize], classes: &[u32], total: usize) -> usize {
        let mut dist: Vec<(u32, f32)> = classes
            .iter()
            .zip(counts)
            .map(|(&class, &c)| (class, c as f32 / total.max(1) as f32))
            .collect();
        // Ascending class order so prediction ties break to the lowest
        // class id without consulting absent classes.
        dist.sort_unstable_by_key(|e| e.0);
        self.nodes.push(Node::Leaf { dist });
        self.nodes.len() - 1
    }

    /// The sparse class distribution of the leaf this sample lands in:
    /// `(class, probability)` pairs ascending by class, covering
    /// exactly the classes present in the leaf.
    pub fn leaf_dist(&self, features: &[f64]) -> &[(u32, f32)] {
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                Node::Leaf { dist } => return dist,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    at = if features[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Adds this tree's leaf distribution into a dense per-class
    /// accumulator (the forest's soft-voting hot path). Skipping the
    /// absent classes adds exactly `+0.0` to non-negative partial
    /// sums, so the result is bit-identical to dense accumulation.
    pub fn accumulate_proba(&self, features: &[f64], acc: &mut [f32]) {
        for &(class, p) in self.leaf_dist(features) {
            acc[class as usize] += p;
        }
    }

    /// Class-probability estimate for one sample, densified over all
    /// classes.
    pub fn predict_proba(&self, features: &[f64]) -> Vec<f32> {
        let mut acc = vec![0.0f32; self.n_classes];
        self.accumulate_proba(features, &mut acc);
        acc
    }

    /// Predicted class for one sample (argmax probability; ties break
    /// to the lowest class id).
    pub fn predict(&self, features: &[f64]) -> usize {
        // The sparse entries are ascending by class and every absent
        // class has probability zero below the leaf's maximum, so the
        // strict `>` scan reproduces the dense tie-break exactly.
        let mut best = 0usize;
        let mut best_p = f32::NEG_INFINITY;
        for &(class, p) in self.leaf_dist(features) {
            if p > best_p {
                best_p = p;
                best = class as usize;
            }
        }
        best
    }
}

/// The naive split search retained as the correctness reference for
/// the optimised path.
///
/// It re-sorts a freshly extended scratch vector per feature with a
/// stable sort and materialises a new `right_counts` vector at every
/// candidate split position — the O(n·k·C) allocation pattern the
/// fast path eliminates. Training through it must produce
/// **bit-identical** trees to [`DecisionTree::fit_on`]; the golden
/// equivalence tests and the `forest` benchmark's `train_reference`
/// target both rely on that.
#[cfg(any(test, feature = "reference-splitter"))]
pub mod reference {
    use super::*;

    /// Fits a tree with the naive splitter; same API and RNG stream as
    /// [`DecisionTree::fit_on`].
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty.
    pub fn fit_on(
        data: &Dataset,
        indices: &[usize],
        config: &TreeConfig,
        rng: &mut Pcg64,
    ) -> DecisionTree {
        assert!(!indices.is_empty(), "cannot fit a tree on zero samples");
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            n_classes: data.n_classes(),
        };
        let mut idx = indices.to_vec();
        let mut remap = ClassRemap::new(data.n_classes());
        tree.build_with(data, &mut idx, 0, config, rng, &mut remap, &mut best_split);
        tree
    }

    /// The naive per-node search: allocates and re-counts at every
    /// candidate position. Labels go through the same node-local
    /// `remap` as the fast path, so `counts` has one slot per distinct
    /// class in the node — renaming classes only reorders the integer
    /// additions inside each sum of squares.
    pub(crate) fn best_split(
        data: &Dataset,
        indices: &[usize],
        candidates: &[usize],
        counts: &[usize],
        remap: &ClassRemap,
        parent_gini: f64,
    ) -> BestSplit {
        let total = indices.len();
        let mut best: BestSplit = None;
        let mut scratch: Vec<(f64, usize)> = Vec::with_capacity(total);
        for &feature in candidates {
            scratch.clear();
            scratch.extend(
                indices
                    .iter()
                    .map(|&i| (data.row(i)[feature], remap.local(data.label(i)))),
            );
            scratch.sort_by(|a, b| a.0.total_cmp(&b.0));
            if scratch[0].0 == scratch[total - 1].0 {
                continue;
            }
            let mut left_counts = vec![0usize; counts.len()];
            for split_at in 1..total {
                left_counts[scratch[split_at - 1].1] += 1;
                let (prev_val, cur_val) = (scratch[split_at - 1].0, scratch[split_at].0);
                if prev_val == cur_val {
                    continue;
                }
                let right_counts: Vec<usize> = counts
                    .iter()
                    .zip(&left_counts)
                    .map(|(&c, &l)| c - l)
                    .collect();
                let n_left = split_at;
                let n_right = total - split_at;
                let weighted = (n_left as f64 * gini_from_sq(sum_sq(&left_counts), n_left)
                    + n_right as f64 * gini_from_sq(sum_sq(&right_counts), n_right))
                    / total as f64;
                let gain = parent_gini - weighted;
                if best.is_none_or(|(_, _, g)| gain > g) {
                    let threshold = 0.5 * (prev_val + cur_val);
                    best = Some((feature, threshold, gain));
                }
            }
        }
        best
    }
}

/// Index of the maximum element; ties break low.
pub(crate) fn argmax(xs: &[f32]) -> usize {
    let mut best = 0usize;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

/// Order-preserving integer image of an `f64`: sorting keys ascending
/// orders the originals exactly as [`f64::total_cmp`] ascending would
/// (NaN after every finite value). This is the same bit transform
/// `total_cmp` applies per comparison — hoisted to once per element.
#[inline]
fn total_cmp_key(v: f64) -> u64 {
    let bits = v.to_bits();
    // Negatives: flip all bits (reverses their order). Non-negatives:
    // flip only the sign bit (lifts them above all negatives).
    bits ^ ((((bits as i64) >> 63) as u64) | (1 << 63))
}

/// Exact inverse of [`total_cmp_key`]: recovers the original bits, so
/// thresholds computed from recovered values are bit-identical to ones
/// computed from the values themselves.
#[inline]
fn key_to_f64(key: u64) -> f64 {
    let mask = if key & (1 << 63) != 0 { 1 << 63 } else { !0u64 };
    f64::from_bits(key ^ mask)
}

/// Sum of squared class counts — the integer core of the Gini
/// impurity. Exact, so the incremental and naive paths agree bit for
/// bit once converted to float.
fn sum_sq(counts: &[usize]) -> u64 {
    counts.iter().map(|&c| (c as u64) * (c as u64)).sum()
}

/// Gini impurity `1 - Σ p_c²` expressed through the integer sum of
/// squared counts: `1 - sq / n²`.
fn gini_from_sq(sq: u64, total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - sq as f64 / (t * t)
}

/// Stable-enough in-place partition; returns the count of elements
/// satisfying the predicate (moved to the front).
fn partition<T, F: Fn(&T) -> bool>(xs: &mut [T], pred: F) -> usize {
    let mut store = 0usize;
    for i in 0..xs.len() {
        if pred(&xs[i]) {
            xs.swap(store, i);
            store += 1;
        }
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;
    use synthattr_util::prop::Runner;
    use synthattr_util::prop_assert_eq;

    fn xor_dataset() -> Dataset {
        // XOR with noise-free corners replicated: not linearly
        // separable, requires depth >= 2.
        let mut ds = Dataset::new(2);
        for _ in 0..10 {
            ds.push(vec![0.0, 0.0], 0);
            ds.push(vec![1.0, 1.0], 0);
            ds.push(vec![0.0, 1.0], 1);
            ds.push(vec![1.0, 0.0], 1);
        }
        ds
    }

    #[test]
    fn learns_xor_with_all_features() {
        let ds = xor_dataset();
        let cfg = TreeConfig {
            max_features: MaxFeatures::All,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&ds, &cfg, &mut Pcg64::new(1));
        assert_eq!(tree.predict(&[0.0, 0.0]), 0);
        assert_eq!(tree.predict(&[1.0, 1.0]), 0);
        assert_eq!(tree.predict(&[0.0, 1.0]), 1);
        assert_eq!(tree.predict(&[1.0, 0.0]), 1);
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn pure_node_is_single_leaf() {
        let mut ds = Dataset::new(2);
        for i in 0..5 {
            ds.push(vec![i as f64], 1);
        }
        let tree = DecisionTree::fit(&ds, &TreeConfig::default(), &mut Pcg64::new(1));
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict(&[2.0]), 1);
    }

    #[test]
    fn max_depth_limits_growth() {
        let ds = xor_dataset();
        let cfg = TreeConfig {
            max_depth: 1,
            max_features: MaxFeatures::All,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&ds, &cfg, &mut Pcg64::new(1));
        assert!(tree.depth() <= 1);
    }

    #[test]
    fn constant_features_yield_leaf() {
        let mut ds = Dataset::new(2);
        ds.push(vec![5.0, 5.0], 0);
        ds.push(vec![5.0, 5.0], 1);
        ds.push(vec![5.0, 5.0], 0);
        let tree = DecisionTree::fit(&ds, &TreeConfig::default(), &mut Pcg64::new(3));
        assert_eq!(tree.node_count(), 1);
        // Majority class wins.
        assert_eq!(tree.predict(&[5.0, 5.0]), 0);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let ds = xor_dataset();
        let tree = DecisionTree::fit(
            &ds,
            &TreeConfig {
                max_depth: 1,
                max_features: MaxFeatures::All,
                ..TreeConfig::default()
            },
            &mut Pcg64::new(5),
        );
        let p = tree.predict_proba(&[0.0, 0.0]);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = xor_dataset();
        let cfg = TreeConfig::default();
        let t1 = DecisionTree::fit(&ds, &cfg, &mut Pcg64::new(9));
        let t2 = DecisionTree::fit(&ds, &cfg, &mut Pcg64::new(9));
        for pt in [[0.0, 0.0], [0.3, 0.8], [0.9, 0.2]] {
            assert_eq!(t1.predict(&pt), t2.predict(&pt));
        }
    }

    #[test]
    fn fit_on_subset_uses_only_those_rows() {
        let mut ds = Dataset::new(2);
        // Rows 0..4 say feature>0 means class 1; row 4 is a contrary point.
        ds.push(vec![1.0], 1);
        ds.push(vec![2.0], 1);
        ds.push(vec![-1.0], 0);
        ds.push(vec![-2.0], 0);
        ds.push(vec![3.0], 0); // excluded outlier
        let tree = DecisionTree::fit_on(
            &ds,
            &[0, 1, 2, 3],
            &TreeConfig {
                max_features: MaxFeatures::All,
                ..TreeConfig::default()
            },
            &mut Pcg64::new(2),
        );
        assert_eq!(tree.predict(&[3.0]), 1);
    }

    #[test]
    fn max_features_resolution() {
        assert_eq!(MaxFeatures::Sqrt.resolve(100), 10);
        assert_eq!(MaxFeatures::All.resolve(7), 7);
        assert_eq!(MaxFeatures::Count(3).resolve(2), 2);
        assert_eq!(MaxFeatures::Count(0).resolve(5), 1);
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn empty_fit_panics() {
        let ds = Dataset::new(2);
        DecisionTree::fit_on(&ds, &[], &TreeConfig::default(), &mut Pcg64::new(1));
    }

    /// A seeded dataset with heavy value ties (small discrete grid),
    /// several classes, and a constant feature — the tricky cases for
    /// split-search equivalence.
    fn gridded_dataset(seed: u64, n: usize, dim: usize, n_classes: usize) -> Dataset {
        let mut rng = Pcg64::new(seed);
        let mut ds = Dataset::new(n_classes);
        for _ in 0..n {
            let mut row: Vec<f64> = (0..dim).map(|_| rng.next_below(5) as f64 / 2.0).collect();
            row.push(3.5); // constant tail feature
            ds.push(row, rng.next_below(n_classes));
        }
        ds
    }

    #[test]
    fn optimized_tree_is_bit_identical_to_reference() {
        for seed in [1u64, 7, 42, 1234] {
            let ds = gridded_dataset(seed, 60, 4, 3);
            let cfg = TreeConfig::default();
            let fast = DecisionTree::fit(&ds, &cfg, &mut Pcg64::new(seed));
            let naive = {
                let all: Vec<usize> = (0..ds.len()).collect();
                reference::fit_on(&ds, &all, &cfg, &mut Pcg64::new(seed))
            };
            assert_eq!(fast.node_count(), naive.node_count(), "seed {seed}");
            assert_eq!(fast.depth(), naive.depth(), "seed {seed}");
            for i in 0..ds.len() {
                // Exact f32 equality: the trees must be the same tree.
                assert_eq!(
                    fast.predict_proba(ds.row(i)),
                    naive.predict_proba(ds.row(i)),
                    "seed {seed} row {i}"
                );
            }
        }
    }

    /// Satellite property test: on random seeded datasets — including
    /// ties and constant features — the optimised split search picks
    /// exactly the same `(feature, threshold, gain)` as the reference.
    #[test]
    fn optimized_split_matches_reference() {
        Runner::new("split_equivalence").cases(192).run(
            |rng| {
                let n_classes = 2 + rng.next_below(3);
                let n = 2 + rng.next_below(40);
                let dim = 1 + rng.next_below(5);
                let rows: Vec<Vec<u8>> = (0..n)
                    .map(|_| (0..dim).map(|_| rng.next_below(4) as u8).collect())
                    .collect();
                let labels: Vec<u8> = (0..n).map(|_| rng.next_below(n_classes) as u8).collect();
                (n_classes as u8, rows, labels)
            },
            |(n_classes, rows, labels)| {
                let n_classes = (*n_classes).max(1) as usize;
                let n = rows.len().min(labels.len());
                if n < 2 {
                    return Ok(()); // shrinking may drop below a splittable size
                }
                let dim = rows[0].len();
                if dim == 0 || rows[..n].iter().any(|r| r.len() != dim) {
                    return Ok(()); // shrinking may desync row dimensions
                }
                let mut ds = Dataset::new(n_classes);
                for i in 0..n {
                    // Map the integer grid to halves so thresholds land
                    // between representable values, including ties.
                    let row: Vec<f64> = rows[i].iter().map(|&v| v as f64 / 2.0).collect();
                    ds.push(row, labels[i] as usize % n_classes);
                }
                let indices: Vec<usize> = (0..n).collect();
                let candidates: Vec<usize> = (0..dim).collect();
                let mut remap = ClassRemap::new(n_classes);
                let mut counts = Vec::new();
                remap.begin(&ds, &indices, &mut counts);
                let parent_gini = gini_from_sq(sum_sq(&counts), n);
                let mut scratch = SplitScratch::new();
                let fast =
                    scratch.find_best(&ds, &indices, &candidates, &counts, &remap, parent_gini);
                let naive =
                    reference::best_split(&ds, &indices, &candidates, &counts, &remap, parent_gini);
                prop_assert_eq!(fast, naive, "split search diverged");
                Ok(())
            },
        );
    }

    /// Satellite regression test: a NaN feature value must not corrupt
    /// the splitter. `total_cmp` keeps the sort total (NaN last), so
    /// training stays deterministic and the finite structure is still
    /// learned.
    #[test]
    fn nan_row_does_not_corrupt_the_splitter() {
        let mut ds = Dataset::new(2);
        for i in 0..12 {
            let label = usize::from(i >= 6);
            // Feature 0 separates cleanly at 5.5.
            ds.push_unchecked(vec![i as f64, 1.0], label);
        }
        ds.push_unchecked(vec![f64::NAN, 1.0], 0);
        let cfg = TreeConfig {
            max_features: MaxFeatures::All,
            ..TreeConfig::default()
        };
        let t1 = DecisionTree::fit(&ds, &cfg, &mut Pcg64::new(3));
        let t2 = DecisionTree::fit(&ds, &cfg, &mut Pcg64::new(3));
        // Deterministic despite the NaN...
        for i in 0..12 {
            assert_eq!(t1.predict(ds.row(i)), t2.predict(ds.row(i)), "row {i}");
        }
        // ...and the finite separation is still learned.
        assert_eq!(t1.predict(&[1.0, 1.0]), 0);
        assert_eq!(t1.predict(&[10.0, 1.0]), 1);
    }

    #[test]
    fn sort_key_round_trips_and_orders_like_total_cmp() {
        let specials = [
            f64::NEG_INFINITY,
            -1.5e300,
            -1.0,
            -f64::MIN_POSITIVE / 2.0, // negative subnormal
            -0.0,
            0.0,
            f64::MIN_POSITIVE / 2.0,
            1.0,
            1.5e300,
            f64::INFINITY,
            f64::NAN,
            -f64::NAN,
        ];
        for &a in &specials {
            // Bit-exact round trip (NaN payloads included).
            assert_eq!(key_to_f64(total_cmp_key(a)).to_bits(), a.to_bits());
            for &b in &specials {
                assert_eq!(
                    total_cmp_key(a).cmp(&total_cmp_key(b)),
                    a.total_cmp(&b),
                    "key order diverges from total_cmp for {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn sparse_leaves_agree_with_dense_reconstruction() {
        // The sparse leaf representation must carry exactly the
        // classes present, reconstruct the same dense vector, and make
        // the same argmax call as the dense tie-break.
        let ds = gridded_dataset(5, 80, 3, 4);
        let tree = DecisionTree::fit(&ds, &TreeConfig::default(), &mut Pcg64::new(5));
        for i in 0..ds.len() {
            let dist = tree.leaf_dist(ds.row(i));
            assert!(!dist.is_empty(), "row {i}: empty leaf");
            assert!(
                dist.windows(2).all(|w| w[0].0 < w[1].0),
                "row {i}: classes not strictly ascending"
            );
            assert!(dist.iter().all(|&(_, p)| p > 0.0), "row {i}: stored zero");
            let dense = tree.predict_proba(ds.row(i));
            assert_eq!(dense.len(), 4);
            for (class, p) in dense.iter().enumerate() {
                let sparse = dist
                    .iter()
                    .find(|e| e.0 as usize == class)
                    .map_or(0.0, |e| e.1);
                assert_eq!(*p, sparse, "row {i} class {class}");
            }
            assert_eq!(tree.predict(ds.row(i)), argmax(&dense), "row {i}");
        }
    }

    #[test]
    fn class_remap_assigns_dense_first_seen_slots() {
        let mut ds = Dataset::new(6);
        for &(label, v) in &[(4usize, 0.0), (1, 1.0), (4, 2.0), (5, 3.0), (1, 4.0)] {
            ds.push(vec![v], label);
        }
        let mut remap = ClassRemap::new(6);
        let mut counts = Vec::new();
        remap.begin(&ds, &[0, 1, 2, 3, 4], &mut counts);
        assert_eq!(remap.classes(), &[4, 1, 5]);
        assert_eq!(counts, vec![2, 2, 1]);
        assert_eq!(remap.local(4), 0);
        assert_eq!(remap.local(1), 1);
        assert_eq!(remap.local(5), 2);
        // A later node sees a different subset; stamps invalidate the
        // old slots without any O(C) clearing.
        remap.begin(&ds, &[3, 4], &mut counts);
        assert_eq!(remap.classes(), &[5, 1]);
        assert_eq!(counts, vec![1, 1]);
        assert_eq!(remap.local(5), 0);
        assert_eq!(remap.local(1), 1);
    }

    #[test]
    fn gini_helpers_agree_with_definition() {
        // counts [1, 2] over 3 samples: 1 - (1 + 4) / 9.
        assert_eq!(sum_sq(&[1, 2]), 5);
        let g = gini_from_sq(5, 3);
        assert!((g - (1.0 - 5.0 / 9.0)).abs() < 1e-15, "{g}");
        assert_eq!(gini_from_sq(0, 0), 0.0);
        // Pure node: zero impurity, exactly.
        assert_eq!(gini_from_sq(sum_sq(&[4, 0]), 4), 0.0);
    }
}
