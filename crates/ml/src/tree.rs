//! CART decision trees with Gini impurity and per-node feature
//! subsampling (the randomized trees inside the forest).

use crate::dataset::Dataset;
use synthattr_util::Pcg64;

/// How many candidate features each split considers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaxFeatures {
    /// `ceil(sqrt(d))` — the standard random-forest default.
    Sqrt,
    /// All features — classic single CART tree.
    All,
    /// A fixed count (clamped to `d`).
    Count(usize),
}

impl MaxFeatures {
    fn resolve(self, dim: usize) -> usize {
        match self {
            MaxFeatures::Sqrt => (dim as f64).sqrt().ceil() as usize,
            MaxFeatures::All => dim,
            MaxFeatures::Count(k) => k.min(dim),
        }
        .max(1)
    }
}

/// Tree growth limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples a node needs to be split further.
    pub min_samples_split: usize,
    /// Split candidate feature count.
    pub max_features: MaxFeatures,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 40,
            min_samples_split: 2,
            max_features: MaxFeatures::Sqrt,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        /// Normalized class distribution at the leaf.
        probs: Vec<f32>,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Index of the left child in the node arena.
        left: usize,
        /// Index of the right child in the node arena.
        right: usize,
    },
}

/// A trained CART decision tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_classes: usize,
}

impl DecisionTree {
    /// Fits a tree on `data`, optionally restricted to the sample
    /// indices in `indices` (bootstrap support).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or `indices` is empty.
    pub fn fit_on(
        data: &Dataset,
        indices: &[usize],
        config: &TreeConfig,
        rng: &mut Pcg64,
    ) -> Self {
        assert!(!indices.is_empty(), "cannot fit a tree on zero samples");
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            n_classes: data.n_classes(),
        };
        let mut idx = indices.to_vec();
        tree.build(data, &mut idx, 0, config, rng);
        tree
    }

    /// Fits on every sample of `data`.
    pub fn fit(data: &Dataset, config: &TreeConfig, rng: &mut Pcg64) -> Self {
        let all: Vec<usize> = (0..data.len()).collect();
        Self::fit_on(data, &all, config, rng)
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Maximum depth actually reached.
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], at: usize) -> usize {
            match &nodes[at] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + depth_of(nodes, *left).max(depth_of(nodes, *right))
                }
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            depth_of(&self.nodes, 0)
        }
    }

    /// Builds a subtree over `indices`; returns its arena slot.
    fn build(
        &mut self,
        data: &Dataset,
        indices: &mut [usize],
        depth: usize,
        config: &TreeConfig,
        rng: &mut Pcg64,
    ) -> usize {
        let counts = class_counts(data, indices, self.n_classes);
        let total = indices.len();
        let pure = counts.contains(&total);
        if pure || depth >= config.max_depth || total < config.min_samples_split {
            return self.leaf(&counts, total);
        }

        let dim = data.dim();
        let k = config.max_features.resolve(dim);
        let candidates = rng.sample_indices(dim, k);

        let parent_gini = gini(&counts, total);
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
        let mut scratch: Vec<(f64, usize)> = Vec::with_capacity(total);
        for &feature in &candidates {
            scratch.clear();
            scratch.extend(
                indices
                    .iter()
                    .map(|&i| (data.row(i)[feature], data.label(i))),
            );
            scratch.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            if scratch[0].0 == scratch[total - 1].0 {
                continue; // constant feature in this node
            }
            let mut left_counts = vec![0usize; self.n_classes];
            for split_at in 1..total {
                left_counts[scratch[split_at - 1].1] += 1;
                let (prev_val, cur_val) = (scratch[split_at - 1].0, scratch[split_at].0);
                if prev_val == cur_val {
                    continue; // cannot split between equal values
                }
                let right_counts: Vec<usize> = counts
                    .iter()
                    .zip(&left_counts)
                    .map(|(&c, &l)| c - l)
                    .collect();
                let n_left = split_at;
                let n_right = total - split_at;
                let weighted = (n_left as f64 * gini(&left_counts, n_left)
                    + n_right as f64 * gini(&right_counts, n_right))
                    / total as f64;
                let gain = parent_gini - weighted;
                // Zero-gain splits are accepted on impure nodes (XOR-like
                // structure has no first-split gain); recursion still
                // terminates because both children are strictly smaller.
                if best.is_none_or(|(_, _, g)| gain > g) {
                    let threshold = 0.5 * (prev_val + cur_val);
                    best = Some((feature, threshold, gain));
                }
            }
        }

        let Some((feature, threshold, _)) = best else {
            return self.leaf(&counts, total);
        };

        // Partition indices in place around the threshold.
        let mid = partition(indices, |&i| data.row(i)[feature] <= threshold);
        if mid == 0 || mid == total {
            return self.leaf(&counts, total);
        }
        // Reserve the slot before children so the parent sits above them.
        let slot = self.nodes.len();
        self.nodes.push(Node::Leaf { probs: Vec::new() });
        let (left_idx, right_idx) = indices.split_at_mut(mid);
        let left = self.build(data, left_idx, depth + 1, config, rng);
        let right = self.build(data, right_idx, depth + 1, config, rng);
        self.nodes[slot] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        slot
    }

    fn leaf(&mut self, counts: &[usize], total: usize) -> usize {
        let probs: Vec<f32> = counts
            .iter()
            .map(|&c| c as f32 / total.max(1) as f32)
            .collect();
        self.nodes.push(Node::Leaf { probs });
        self.nodes.len() - 1
    }

    /// Class-probability estimate for one sample.
    pub fn predict_proba(&self, features: &[f64]) -> &[f32] {
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                Node::Leaf { probs } => return probs,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    at = if features[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Predicted class for one sample (argmax probability; ties break
    /// to the lowest class id).
    pub fn predict(&self, features: &[f64]) -> usize {
        argmax(self.predict_proba(features))
    }
}

/// Index of the maximum element; ties break low.
pub(crate) fn argmax(xs: &[f32]) -> usize {
    let mut best = 0usize;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

fn class_counts(data: &Dataset, indices: &[usize], n_classes: usize) -> Vec<usize> {
    let mut counts = vec![0usize; n_classes];
    for &i in indices {
        counts[data.label(i)] += 1;
    }
    counts
}

fn gini(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c as f64 / t;
            p * p
        })
        .sum::<f64>()
}

/// Stable-enough in-place partition; returns the count of elements
/// satisfying the predicate (moved to the front).
fn partition<T, F: Fn(&T) -> bool>(xs: &mut [T], pred: F) -> usize {
    let mut store = 0usize;
    for i in 0..xs.len() {
        if pred(&xs[i]) {
            xs.swap(store, i);
            store += 1;
        }
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_dataset() -> Dataset {
        // XOR with noise-free corners replicated: not linearly
        // separable, requires depth >= 2.
        let mut ds = Dataset::new(2);
        for _ in 0..10 {
            ds.push(vec![0.0, 0.0], 0);
            ds.push(vec![1.0, 1.0], 0);
            ds.push(vec![0.0, 1.0], 1);
            ds.push(vec![1.0, 0.0], 1);
        }
        ds
    }

    #[test]
    fn learns_xor_with_all_features() {
        let ds = xor_dataset();
        let cfg = TreeConfig {
            max_features: MaxFeatures::All,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&ds, &cfg, &mut Pcg64::new(1));
        assert_eq!(tree.predict(&[0.0, 0.0]), 0);
        assert_eq!(tree.predict(&[1.0, 1.0]), 0);
        assert_eq!(tree.predict(&[0.0, 1.0]), 1);
        assert_eq!(tree.predict(&[1.0, 0.0]), 1);
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn pure_node_is_single_leaf() {
        let mut ds = Dataset::new(2);
        for i in 0..5 {
            ds.push(vec![i as f64], 1);
        }
        let tree = DecisionTree::fit(&ds, &TreeConfig::default(), &mut Pcg64::new(1));
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict(&[2.0]), 1);
    }

    #[test]
    fn max_depth_limits_growth() {
        let ds = xor_dataset();
        let cfg = TreeConfig {
            max_depth: 1,
            max_features: MaxFeatures::All,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&ds, &cfg, &mut Pcg64::new(1));
        assert!(tree.depth() <= 1);
    }

    #[test]
    fn constant_features_yield_leaf() {
        let mut ds = Dataset::new(2);
        ds.push(vec![5.0, 5.0], 0);
        ds.push(vec![5.0, 5.0], 1);
        ds.push(vec![5.0, 5.0], 0);
        let tree = DecisionTree::fit(&ds, &TreeConfig::default(), &mut Pcg64::new(3));
        assert_eq!(tree.node_count(), 1);
        // Majority class wins.
        assert_eq!(tree.predict(&[5.0, 5.0]), 0);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let ds = xor_dataset();
        let tree = DecisionTree::fit(
            &ds,
            &TreeConfig {
                max_depth: 1,
                max_features: MaxFeatures::All,
                ..TreeConfig::default()
            },
            &mut Pcg64::new(5),
        );
        let p = tree.predict_proba(&[0.0, 0.0]);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = xor_dataset();
        let cfg = TreeConfig::default();
        let t1 = DecisionTree::fit(&ds, &cfg, &mut Pcg64::new(9));
        let t2 = DecisionTree::fit(&ds, &cfg, &mut Pcg64::new(9));
        for pt in [[0.0, 0.0], [0.3, 0.8], [0.9, 0.2]] {
            assert_eq!(t1.predict(&pt), t2.predict(&pt));
        }
    }

    #[test]
    fn fit_on_subset_uses_only_those_rows() {
        let mut ds = Dataset::new(2);
        // Rows 0..4 say feature>0 means class 1; row 4 is a contrary point.
        ds.push(vec![1.0], 1);
        ds.push(vec![2.0], 1);
        ds.push(vec![-1.0], 0);
        ds.push(vec![-2.0], 0);
        ds.push(vec![3.0], 0); // excluded outlier
        let tree = DecisionTree::fit_on(
            &ds,
            &[0, 1, 2, 3],
            &TreeConfig {
                max_features: MaxFeatures::All,
                ..TreeConfig::default()
            },
            &mut Pcg64::new(2),
        );
        assert_eq!(tree.predict(&[3.0]), 1);
    }

    #[test]
    fn max_features_resolution() {
        assert_eq!(MaxFeatures::Sqrt.resolve(100), 10);
        assert_eq!(MaxFeatures::All.resolve(7), 7);
        assert_eq!(MaxFeatures::Count(3).resolve(2), 2);
        assert_eq!(MaxFeatures::Count(0).resolve(5), 1);
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn empty_fit_panics() {
        let ds = Dataset::new(2);
        DecisionTree::fit_on(&ds, &[], &TreeConfig::default(), &mut Pcg64::new(1));
    }
}
