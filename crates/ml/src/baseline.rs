//! Trivial baselines used as sanity floors.
//!
//! A stylometry model is only meaningful if it beats (a) always
//! predicting the most common class and (b) a geometric
//! nearest-centroid rule; the test suites and ablation benches compare
//! against both.

use crate::dataset::Dataset;

/// Always predicts the training set's most common class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MajorityClassifier {
    class: usize,
}

impl MajorityClassifier {
    /// Learns the majority class (ties break low).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn fit(data: &Dataset) -> Self {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let counts = data.class_counts();
        let class = counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i)
            .unwrap_or(0);
        MajorityClassifier { class }
    }

    /// The constant prediction.
    pub fn predict(&self, _features: &[f64]) -> usize {
        self.class
    }

    /// Predicts every row of `data`.
    pub fn predict_all(&self, data: &Dataset) -> Vec<usize> {
        vec![self.class; data.len()]
    }
}

/// Classifies by Euclidean distance to per-class mean vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct NearestCentroid {
    centroids: Vec<Option<Vec<f64>>>,
}

impl NearestCentroid {
    /// Computes per-class centroids.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn fit(data: &Dataset) -> Self {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let dim = data.dim();
        let mut sums: Vec<Vec<f64>> = vec![vec![0.0; dim]; data.n_classes()];
        let mut counts = vec![0usize; data.n_classes()];
        for i in 0..data.len() {
            let l = data.label(i);
            counts[l] += 1;
            for (s, &x) in sums[l].iter_mut().zip(data.row(i)) {
                *s += x;
            }
        }
        let centroids = sums
            .into_iter()
            .zip(&counts)
            .map(|(sum, &c)| {
                if c == 0 {
                    None
                } else {
                    Some(sum.into_iter().map(|s| s / c as f64).collect())
                }
            })
            .collect();
        NearestCentroid { centroids }
    }

    /// Predicts the class with the nearest centroid (ties break low;
    /// classes absent from training are never predicted).
    pub fn predict(&self, features: &[f64]) -> usize {
        let mut best = 0usize;
        let mut best_dist = f64::INFINITY;
        for (c, centroid) in self.centroids.iter().enumerate() {
            if let Some(centroid) = centroid {
                let dist: f64 = centroid
                    .iter()
                    .zip(features)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                if dist < best_dist {
                    best_dist = dist;
                    best = c;
                }
            }
        }
        best
    }

    /// Predicts every row of `data`.
    pub fn predict_all(&self, data: &Dataset) -> Vec<usize> {
        (0..data.len()).map(|i| self.predict(data.row(i))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    fn blobs() -> Dataset {
        let mut ds = Dataset::new(3);
        for i in 0..10 {
            let jitter = i as f64 * 0.01;
            ds.push(vec![0.0 + jitter, 0.0], 0);
            ds.push(vec![10.0 + jitter, 0.0], 1);
        }
        // Class 2 has fewer samples.
        ds.push(vec![0.0, 10.0], 2);
        ds
    }

    #[test]
    fn majority_picks_most_common() {
        let mut ds = blobs();
        ds.push(vec![0.5, 0.5], 0);
        let m = MajorityClassifier::fit(&ds);
        assert_eq!(m.predict(&[100.0, 100.0]), 0);
        assert_eq!(m.predict_all(&ds).len(), ds.len());
    }

    #[test]
    fn centroid_separates_blobs() {
        let ds = blobs();
        let nc = NearestCentroid::fit(&ds);
        assert_eq!(nc.predict(&[0.1, 0.1]), 0);
        assert_eq!(nc.predict(&[9.8, 0.2]), 1);
        assert_eq!(nc.predict(&[0.0, 9.0]), 2);
    }

    #[test]
    fn centroid_beats_majority_on_balanced_data() {
        let ds = blobs();
        let nc = NearestCentroid::fit(&ds);
        let mj = MajorityClassifier::fit(&ds);
        let nc_acc = accuracy(&nc.predict_all(&ds), ds.labels());
        let mj_acc = accuracy(&mj.predict_all(&ds), ds.labels());
        assert!(nc_acc > mj_acc);
        assert!(nc_acc > 0.99);
    }

    #[test]
    fn centroid_never_predicts_absent_class() {
        let mut ds = Dataset::new(5);
        ds.push(vec![0.0], 1);
        ds.push(vec![1.0], 3);
        let nc = NearestCentroid::fit(&ds);
        for x in [-5.0, 0.0, 0.6, 9.0] {
            let p = nc.predict(&[x]);
            assert!(p == 1 || p == 3);
        }
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn fit_on_empty_panics() {
        MajorityClassifier::fit(&Dataset::new(2));
    }
}
