//! An on-disk columnar feature store for out-of-core training.
//!
//! The corpus scale-out path featurizes 10k–20k authors; one in-RAM
//! [`Dataset`] of every row is exactly what it must avoid. A
//! [`ColumnStoreWriter`] streams rows straight to disk while holding
//! at most one chunk in memory, and the finished [`ColumnStore`] hands
//! row ranges back as small in-RAM `Dataset`s through the
//! [`DatasetSource`](crate::source::DatasetSource) abstraction, so
//! sharded forest training never sees the whole matrix at once.
//!
//! # Layout
//!
//! Fixed-width little-endian binary, no compression, no mmap — plain
//! sequential reads with `seek` between chunks:
//!
//! ```text
//! header (40 bytes):
//!   0..8   magic  "SYNCOLS1"
//!   8..12  dim         u32   feature columns per row
//!   12..16 n_classes   u32   label space size
//!   16..20 chunk_rows  u32   rows per chunk (last chunk may be short)
//!   20..24 reserved    u32   zero
//!   24..32 n_rows      u64   total rows
//!   32..40 checksum    u64   FNV-1a over bytes 0..32
//! data: chunks back to back; chunk k holds rows
//!   [k·chunk_rows, min(n_rows, (k+1)·chunk_rows)) as
//!   column-major f64 feature columns (dim × r values), then r u32
//!   labels.
//! ```
//!
//! Column-major chunks keep the writer's staging buffer at
//! `chunk_rows × dim` floats and make per-column scans cheap, while
//! `chunk_rows` bounds reader memory; every chunk before the last has
//! the same byte length, so chunk offsets are pure arithmetic.
//!
//! The header checksum plus an exact file-length check at
//! [`ColumnStore::open`] catch the two realistic corruption modes for
//! a local artifact — truncated writes and stale/garbled headers —
//! without paying for per-chunk hashing on the hot path. Values are
//! validated on *read* (finite features, in-range labels), so a
//! corrupt body surfaces as a typed error instead of a downstream
//! assertion panic.

use crate::dataset::Dataset;
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"SYNCOLS1";
const HEADER_LEN: u64 = 40;

/// Everything that can go wrong creating, writing, or opening a store.
#[derive(Debug)]
pub enum ColStoreError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// The file does not start with the `SYNCOLS1` magic.
    BadMagic,
    /// The header checksum does not match its fields.
    BadChecksum { stored: u64, computed: u64 },
    /// The file length disagrees with the header (truncation or
    /// trailing garbage).
    BadLength { expected: u64, actual: u64 },
    /// A row failed validation (non-finite feature, out-of-range
    /// label, wrong dimension) — on write or on read-back.
    BadRow { row: u64, message: String },
    /// A structurally invalid header field (zero dim or chunk size).
    BadHeader(&'static str),
}

impl fmt::Display for ColStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColStoreError::Io(e) => write!(f, "colstore io error: {e}"),
            ColStoreError::BadMagic => write!(f, "colstore: bad magic (not a SYNCOLS1 file)"),
            ColStoreError::BadChecksum { stored, computed } => write!(
                f,
                "colstore: header checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
            ),
            ColStoreError::BadLength { expected, actual } => write!(
                f,
                "colstore: file length {actual} does not match header (expected {expected})"
            ),
            ColStoreError::BadRow { row, message } => {
                write!(f, "colstore: invalid row {row}: {message}")
            }
            ColStoreError::BadHeader(what) => write!(f, "colstore: invalid header: {what}"),
        }
    }
}

impl std::error::Error for ColStoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ColStoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ColStoreError {
    fn from(e: io::Error) -> Self {
        ColStoreError::Io(e)
    }
}

impl From<ColStoreError> for io::Error {
    fn from(e: ColStoreError) -> Self {
        match e {
            ColStoreError::Io(inner) => inner,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// FNV-1a over `bytes` (the same fold the seed-derivation RNG uses;
/// kept local so the store's file format is self-contained).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serialized header minus the checksum (bytes 0..32).
fn header_prefix(dim: u32, n_classes: u32, chunk_rows: u32, n_rows: u64) -> [u8; 32] {
    let mut buf = [0u8; 32];
    buf[0..8].copy_from_slice(MAGIC);
    buf[8..12].copy_from_slice(&dim.to_le_bytes());
    buf[12..16].copy_from_slice(&n_classes.to_le_bytes());
    buf[16..20].copy_from_slice(&chunk_rows.to_le_bytes());
    // bytes 20..24 reserved, zero
    buf[24..32].copy_from_slice(&n_rows.to_le_bytes());
    buf
}

/// Streams rows into a column store without ever holding more than one
/// chunk in memory.
///
/// Rows are staged column-major; each time `chunk_rows` accumulate the
/// chunk is flushed to disk and the staging buffers rewind. Call
/// [`finish`](Self::finish) to flush the tail chunk, patch the header
/// (row count + checksum), and reopen the file as a validated
/// [`ColumnStore`].
pub struct ColumnStoreWriter {
    file: BufWriter<File>,
    path: PathBuf,
    dim: usize,
    n_classes: usize,
    chunk_rows: usize,
    n_rows: u64,
    cols: Vec<Vec<f64>>,
    labels: Vec<u32>,
}

impl ColumnStoreWriter {
    /// Creates (truncating) `path` for a store of `dim`-wide rows with
    /// labels in `[0, n_classes)`, `chunk_rows` rows per chunk.
    pub fn create(
        path: impl AsRef<Path>,
        dim: usize,
        n_classes: usize,
        chunk_rows: usize,
    ) -> Result<Self, ColStoreError> {
        if dim == 0 || dim > u32::MAX as usize {
            return Err(ColStoreError::BadHeader("dim must be in 1..=u32::MAX"));
        }
        if n_classes == 0 || n_classes > u32::MAX as usize {
            return Err(ColStoreError::BadHeader(
                "n_classes must be in 1..=u32::MAX",
            ));
        }
        if chunk_rows == 0 || chunk_rows > u32::MAX as usize {
            return Err(ColStoreError::BadHeader(
                "chunk_rows must be in 1..=u32::MAX",
            ));
        }
        let path = path.as_ref().to_path_buf();
        let mut file = BufWriter::new(File::create(&path)?);
        // Placeholder header; finish() rewrites it with the real row
        // count and checksum. An unfinished file fails open() on the
        // zero checksum, which is the behavior we want for a crashed
        // writer.
        file.write_all(&[0u8; HEADER_LEN as usize])?;
        Ok(ColumnStoreWriter {
            file,
            path,
            dim,
            n_classes,
            chunk_rows,
            n_rows: 0,
            cols: vec![Vec::with_capacity(chunk_rows); dim],
            labels: Vec::with_capacity(chunk_rows),
        })
    }

    /// Rows written so far.
    pub fn len(&self) -> usize {
        self.n_rows as usize
    }

    /// Whether no rows have been written yet.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Appends one row. Validates exactly what [`Dataset::push`]
    /// asserts — dimension, label range, finiteness — but as a typed
    /// error, since a streaming build must be able to reject one bad
    /// sample without tearing down the run.
    pub fn push_row(&mut self, features: &[f64], label: usize) -> Result<(), ColStoreError> {
        if features.len() != self.dim {
            return Err(ColStoreError::BadRow {
                row: self.n_rows,
                message: format!("dimension {} != store dim {}", features.len(), self.dim),
            });
        }
        if label >= self.n_classes {
            return Err(ColStoreError::BadRow {
                row: self.n_rows,
                message: format!("label {label} out of range (n_classes {})", self.n_classes),
            });
        }
        if let Some(pos) = features.iter().position(|v| !v.is_finite()) {
            return Err(ColStoreError::BadRow {
                row: self.n_rows,
                message: format!("non-finite feature value at column {pos}"),
            });
        }
        for (col, &v) in self.cols.iter_mut().zip(features) {
            col.push(v);
        }
        self.labels.push(label as u32);
        self.n_rows += 1;
        if self.labels.len() == self.chunk_rows {
            self.flush_chunk()?;
        }
        Ok(())
    }

    fn flush_chunk(&mut self) -> Result<(), ColStoreError> {
        for col in &mut self.cols {
            for v in col.iter() {
                self.file.write_all(&v.to_bits().to_le_bytes())?;
            }
            col.clear();
        }
        for l in &self.labels {
            self.file.write_all(&l.to_le_bytes())?;
        }
        self.labels.clear();
        Ok(())
    }

    /// Flushes the tail chunk, writes the final header, and reopens
    /// the store read-side (which re-validates the header round-trip).
    pub fn finish(mut self) -> Result<ColumnStore, ColStoreError> {
        if !self.labels.is_empty() {
            self.flush_chunk()?;
        }
        let prefix = header_prefix(
            self.dim as u32,
            self.n_classes as u32,
            self.chunk_rows as u32,
            self.n_rows,
        );
        let checksum = fnv1a(&prefix);
        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(&prefix)?;
        self.file.write_all(&checksum.to_le_bytes())?;
        self.file.flush()?;
        drop(self.file);
        ColumnStore::open(&self.path)
    }
}

/// A validated, read-only handle to an on-disk column store.
///
/// The handle holds only the header — every read opens the file
/// fresh, so `&ColumnStore` is freely shareable across the worker
/// pool during sharded training.
#[derive(Debug, Clone)]
pub struct ColumnStore {
    path: PathBuf,
    dim: usize,
    n_classes: usize,
    chunk_rows: usize,
    n_rows: u64,
}

impl ColumnStore {
    /// Opens and validates a store: magic, header checksum, and exact
    /// expected file length.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, ColStoreError> {
        let path = path.as_ref().to_path_buf();
        let mut file = File::open(&path)?;
        let mut header = [0u8; HEADER_LEN as usize];
        file.read_exact(&mut header).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                ColStoreError::BadLength {
                    expected: HEADER_LEN,
                    actual: file.metadata().map(|m| m.len()).unwrap_or(0),
                }
            } else {
                ColStoreError::Io(e)
            }
        })?;
        if &header[0..8] != MAGIC {
            return Err(ColStoreError::BadMagic);
        }
        let stored = u64::from_le_bytes(header[32..40].try_into().unwrap());
        let computed = fnv1a(&header[0..32]);
        if stored != computed {
            return Err(ColStoreError::BadChecksum { stored, computed });
        }
        let dim = u32::from_le_bytes(header[8..12].try_into().unwrap()) as usize;
        let n_classes = u32::from_le_bytes(header[12..16].try_into().unwrap()) as usize;
        let chunk_rows = u32::from_le_bytes(header[16..20].try_into().unwrap()) as usize;
        let n_rows = u64::from_le_bytes(header[24..32].try_into().unwrap());
        if dim == 0 {
            return Err(ColStoreError::BadHeader("dim is zero"));
        }
        if n_classes == 0 {
            return Err(ColStoreError::BadHeader("n_classes is zero"));
        }
        if chunk_rows == 0 {
            return Err(ColStoreError::BadHeader("chunk_rows is zero"));
        }
        let store = ColumnStore {
            path,
            dim,
            n_classes,
            chunk_rows,
            n_rows,
        };
        let expected = store.expected_len();
        let actual = file.metadata()?.len();
        if actual != expected {
            return Err(ColStoreError::BadLength { expected, actual });
        }
        Ok(store)
    }

    fn chunk_byte_len(&self, rows: usize) -> u64 {
        rows as u64 * (8 * self.dim as u64 + 4)
    }

    fn expected_len(&self) -> u64 {
        HEADER_LEN + self.chunk_byte_len(self.n_rows as usize)
    }

    /// Total rows.
    pub fn len(&self) -> usize {
        self.n_rows as usize
    }

    /// Whether the store holds no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Feature columns per row.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Label space size.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Rows per chunk (reader memory granularity).
    pub fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    /// The backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Materializes rows `[start, start + count)` as an in-RAM
    /// [`Dataset`], reading only the chunks that overlap the range.
    /// Values are validated here (finite features, in-range labels),
    /// so body corruption surfaces as [`ColStoreError::BadRow`].
    pub fn read_rows(&self, start: usize, count: usize) -> Result<Dataset, ColStoreError> {
        let n = self.n_rows as usize;
        if start.checked_add(count).is_none_or(|end| end > n) {
            return Err(ColStoreError::BadRow {
                row: start as u64,
                message: format!("range {start}+{count} out of bounds (n_rows {n})"),
            });
        }
        let mut ds = Dataset::new(self.n_classes);
        if count == 0 {
            return Ok(ds);
        }
        let mut file = File::open(&self.path)?;
        let mut rows: Vec<Vec<f64>> = vec![vec![0.0; self.dim]; count];
        let mut labels: Vec<usize> = vec![0; count];
        let first_chunk = start / self.chunk_rows;
        let last_chunk = (start + count - 1) / self.chunk_rows;
        let mut buf: Vec<u8> = Vec::new();
        for chunk in first_chunk..=last_chunk {
            let chunk_start = chunk * self.chunk_rows;
            let chunk_len = self.chunk_rows.min(n - chunk_start);
            let offset = HEADER_LEN + chunk as u64 * self.chunk_byte_len(self.chunk_rows);
            file.seek(SeekFrom::Start(offset))?;
            buf.resize(self.chunk_byte_len(chunk_len) as usize, 0);
            file.read_exact(&mut buf)?;
            // Rows of this chunk that fall inside the request.
            let lo = start.max(chunk_start) - chunk_start;
            let hi = (start + count).min(chunk_start + chunk_len) - chunk_start;
            for r in lo..hi {
                let row = &mut rows[chunk_start + r - start];
                for (col, slot) in row.iter_mut().enumerate().take(self.dim) {
                    let at = col * chunk_len * 8 + r * 8;
                    let bits = u64::from_le_bytes(buf[at..at + 8].try_into().unwrap());
                    let v = f64::from_bits(bits);
                    if !v.is_finite() {
                        return Err(ColStoreError::BadRow {
                            row: (chunk_start + r) as u64,
                            message: format!("non-finite feature value at column {col}"),
                        });
                    }
                    *slot = v;
                }
            }
            let labels_base = self.dim * chunk_len * 8;
            for r in lo..hi {
                let at = labels_base + r * 4;
                let label = u32::from_le_bytes(buf[at..at + 4].try_into().unwrap()) as usize;
                if label >= self.n_classes {
                    return Err(ColStoreError::BadRow {
                        row: (chunk_start + r) as u64,
                        message: format!(
                            "label {label} out of range (n_classes {})",
                            self.n_classes
                        ),
                    });
                }
                labels[chunk_start + r - start] = label;
            }
        }
        for (row, label) in rows.into_iter().zip(labels) {
            ds.push(row, label);
        }
        Ok(ds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synthattr_util::Pcg64;

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("synthattr_colstore_{}_{name}", std::process::id()));
        p
    }

    fn seeded_rows(
        seed: u64,
        n: usize,
        dim: usize,
        n_classes: usize,
    ) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = Pcg64::new(seed);
        let rows = (0..n)
            .map(|_| {
                (0..dim)
                    .map(|_| rng.next_gaussian(0.0, 10.0))
                    .collect::<Vec<f64>>()
            })
            .collect();
        let labels = (0..n).map(|_| rng.next_below(n_classes)).collect();
        (rows, labels)
    }

    fn write_store(
        path: &Path,
        rows: &[Vec<f64>],
        labels: &[usize],
        n_classes: usize,
        chunk_rows: usize,
    ) -> ColumnStore {
        let dim = rows[0].len();
        let mut w = ColumnStoreWriter::create(path, dim, n_classes, chunk_rows).unwrap();
        for (row, &label) in rows.iter().zip(labels) {
            w.push_row(row, label).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn round_trip_is_bit_identical() {
        // Chunk sizes straddling the row count: exact divisor, ragged
        // tail, single chunk, chunk-per-row.
        for (n, chunk_rows) in [(96usize, 32usize), (97, 32), (10, 1024), (7, 1)] {
            let path = tmp_path(&format!("roundtrip_{n}_{chunk_rows}"));
            let (rows, labels) = seeded_rows(n as u64, n, 5, 11);
            let store = write_store(&path, &rows, &labels, 11, chunk_rows);
            assert_eq!(store.len(), n);
            assert_eq!(store.dim(), 5);
            assert_eq!(store.n_classes(), 11);
            let ds = store.read_rows(0, n).unwrap();
            assert_eq!(ds.len(), n);
            for i in 0..n {
                // Bit-exact: compare the raw f64 bits, not approximate
                // values.
                for (a, b) in ds.row(i).iter().zip(&rows[i]) {
                    assert_eq!(a.to_bits(), b.to_bits(), "row {i}");
                }
                assert_eq!(ds.label(i), labels[i], "row {i}");
            }
            std::fs::remove_file(&path).unwrap();
        }
    }

    /// Property: any seeded (shape, chunk size) round-trips bit-exact
    /// through the store, including ragged tail chunks.
    #[test]
    fn round_trip_property() {
        use synthattr_util::prop::Runner;
        use synthattr_util::prop_assert_eq;
        let case = std::sync::atomic::AtomicUsize::new(0);
        Runner::new("colstore_round_trip").cases(24).run(
            |rng| {
                let n = 1 + rng.next_below(60);
                let dim = 1 + rng.next_below(6);
                let chunk_rows = 1 + rng.next_below(24);
                let n_classes = 1 + rng.next_below(9);
                (n as u32, dim as u8, chunk_rows as u8, n_classes as u8)
            },
            |&(n, dim, chunk_rows, n_classes)| {
                let (n, dim, chunk_rows, n_classes) = (
                    (n as usize).max(1),
                    (dim as usize).max(1),
                    (chunk_rows as usize).max(1),
                    (n_classes as usize).max(1),
                );
                let id = case.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let path = tmp_path(&format!("prop_{id}"));
                let (rows, labels) = seeded_rows(id as u64 + 100, n, dim, n_classes);
                let store = write_store(&path, &rows, &labels, n_classes, chunk_rows);
                let ds = store.read_rows(0, n).unwrap();
                for i in 0..n {
                    for (a, b) in ds.row(i).iter().zip(&rows[i]) {
                        prop_assert_eq!(a.to_bits(), b.to_bits(), "feature bits diverged");
                    }
                    prop_assert_eq!(ds.label(i), labels[i], "label diverged");
                }
                std::fs::remove_file(&path).ok();
                Ok(())
            },
        );
    }

    #[test]
    fn partial_ranges_match_full_read() {
        let path = tmp_path("ranges");
        let (rows, labels) = seeded_rows(3, 50, 4, 6);
        let store = write_store(&path, &rows, &labels, 6, 16);
        let full = store.read_rows(0, 50).unwrap();
        for (start, count) in [
            (0usize, 1usize),
            (15, 2),
            (16, 16),
            (13, 20),
            (49, 1),
            (20, 0),
        ] {
            let part = store.read_rows(start, count).unwrap();
            assert_eq!(part.len(), count, "range {start}+{count}");
            for i in 0..count {
                assert_eq!(
                    part.row(i),
                    full.row(start + i),
                    "range {start}+{count} row {i}"
                );
                assert_eq!(part.label(i), full.label(start + i));
            }
        }
        assert!(store.read_rows(40, 11).is_err(), "out of bounds");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_file_fails_open() {
        let path = tmp_path("truncated");
        let (rows, labels) = seeded_rows(9, 40, 3, 4);
        let store = write_store(&path, &rows, &labels, 4, 8);
        let full_len = std::fs::metadata(&path).unwrap().len();
        drop(store);
        // Chop the last label off.
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full_len - 4).unwrap();
        drop(f);
        match ColumnStore::open(&path) {
            Err(ColStoreError::BadLength { expected, actual }) => {
                assert_eq!(expected, full_len);
                assert_eq!(actual, full_len - 4);
            }
            other => panic!("expected BadLength, got {other:?}"),
        }
        // A file shorter than the header is also a length error, not a
        // panic.
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(10).unwrap();
        drop(f);
        assert!(matches!(
            ColumnStore::open(&path),
            Err(ColStoreError::BadLength { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_header_fails_checksum() {
        let path = tmp_path("checksum");
        let (rows, labels) = seeded_rows(11, 20, 3, 4);
        write_store(&path, &rows, &labels, 4, 8);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[24] ^= 0xff; // flip a bit inside n_rows
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            ColumnStore::open(&path),
            Err(ColStoreError::BadChecksum { .. })
        ));
        // Wrong magic is reported as such, before the checksum.
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            ColumnStore::open(&path),
            Err(ColStoreError::BadMagic)
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unfinished_writer_leaves_an_unopenable_file() {
        let path = tmp_path("unfinished");
        {
            let mut w = ColumnStoreWriter::create(&path, 3, 4, 8).unwrap();
            w.push_row(&[1.0, 2.0, 3.0], 1).unwrap();
            // Dropped without finish(): header stays zeroed.
        }
        assert!(ColumnStore::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_body_is_a_typed_read_error() {
        let path = tmp_path("body");
        let (rows, labels) = seeded_rows(13, 16, 2, 4);
        write_store(&path, &rows, &labels, 4, 8);
        let mut bytes = std::fs::read(&path).unwrap();
        // First f64 of the first column: all-ones exponent = NaN.
        for b in bytes.iter_mut().take(48).skip(40) {
            *b = 0xff;
        }
        std::fs::write(&path, &bytes).unwrap();
        let store = ColumnStore::open(&path).unwrap(); // header is intact
        match store.read_rows(0, 16) {
            Err(ColStoreError::BadRow { row, .. }) => assert_eq!(row, 0),
            other => panic!("expected BadRow, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn writer_rejects_bad_rows() {
        let path = tmp_path("badrows");
        let mut w = ColumnStoreWriter::create(&path, 2, 3, 8).unwrap();
        assert!(matches!(
            w.push_row(&[1.0], 0),
            Err(ColStoreError::BadRow { .. })
        ));
        assert!(matches!(
            w.push_row(&[1.0, 2.0], 3),
            Err(ColStoreError::BadRow { .. })
        ));
        assert!(matches!(
            w.push_row(&[1.0, f64::NAN], 0),
            Err(ColStoreError::BadRow { .. })
        ));
        // Rejected rows must not advance the row counter.
        assert!(w.is_empty());
        w.push_row(&[1.0, 2.0], 2).unwrap();
        assert_eq!(w.len(), 1);
        let store = w.finish().unwrap();
        assert_eq!(store.len(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn create_rejects_degenerate_shapes() {
        let path = tmp_path("shapes");
        assert!(matches!(
            ColumnStoreWriter::create(&path, 0, 3, 8),
            Err(ColStoreError::BadHeader(_))
        ));
        assert!(matches!(
            ColumnStoreWriter::create(&path, 2, 0, 8),
            Err(ColStoreError::BadHeader(_))
        ));
        assert!(matches!(
            ColumnStoreWriter::create(&path, 2, 3, 0),
            Err(ColStoreError::BadHeader(_))
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_store_round_trips() {
        let path = tmp_path("empty");
        let w = ColumnStoreWriter::create(&path, 2, 3, 8).unwrap();
        let store = w.finish().unwrap();
        assert!(store.is_empty());
        assert_eq!(store.read_rows(0, 0).unwrap().len(), 0);
        assert!(store.read_rows(0, 1).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
