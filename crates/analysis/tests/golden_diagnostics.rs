//! Golden diagnostics tests: small C++ snippets with known defects
//! must produce *exactly* the expected diagnostic set — and defect-free
//! twins of each snippet must keep every pass silent.
//!
//! Each of the five built-in passes gets at least one firing golden and
//! one silent golden, per the analysis subsystem's acceptance criteria.

use synthattr_analysis::{Analyzer, Severity};

/// Renders the analyzer's output as sorted `severity[pass] at site`
/// lines (message text is covered by unit tests; goldens pin the
/// pass/site/severity triple, which is what gates compare).
fn lint(src: &str) -> Vec<String> {
    let mut lines: Vec<String> = Analyzer::new()
        .analyze_source(src)
        .expect("golden snippet parses")
        .iter()
        .map(|d| format!("{}[{}] at {}", d.severity.label(), d.pass, d.site))
        .collect();
    lines.sort();
    lines
}

#[test]
fn undeclared_identifier_fires() {
    assert_eq!(
        lint("int main() { return result; }"),
        vec!["error[undeclared-identifier] at main/[0]"]
    );
}

#[test]
fn undeclared_identifier_stays_silent_when_declared() {
    assert_eq!(
        lint("int main() { int result = 4; return result; }"),
        Vec::<String>::new()
    );
}

#[test]
fn undeclared_identifier_fires_for_std_without_include() {
    // `cout` without any include or `using namespace std` in scope.
    assert_eq!(
        lint("int main() { cout << 1; return 0; }"),
        vec!["error[undeclared-identifier] at main/[0]"]
    );
}

#[test]
fn duplicate_declaration_fires() {
    // The redeclaration is an error; the orphaned first binding (all
    // later uses resolve to the newer `x`) is additionally unused, and
    // its initializer is a store nothing can read.
    assert_eq!(
        lint("int main() { int x = 1; int x = 2; return x; }"),
        vec![
            "error[duplicate-declaration] at main/[1]",
            "warning[dead-store] at main/[0]",
            "warning[unused-variable] at main/[0]",
        ]
    );
}

#[test]
fn duplicate_declaration_stays_silent_across_scopes() {
    // Two `i` declarations, but each in its own for-init scope.
    assert_eq!(
        lint(
            "int main() { int s = 0; for (int i = 0; i < 2; i++) { s = s + i; } for (int i = 0; i < 3; i++) { s = s + i; } return s; }"
        ),
        Vec::<String>::new()
    );
}

#[test]
fn variable_shadowing_fires() {
    assert_eq!(
        lint("int main() { int v = 1; if (v > 0) { int v = 2; return v; } return v; }"),
        vec!["warning[variable-shadowing] at main/[1]/then/[0]"]
    );
}

#[test]
fn variable_shadowing_stays_silent_for_distinct_names() {
    assert_eq!(
        lint("int main() { int v = 1; if (v > 0) { int w = 2; return w; } return v; }"),
        Vec::<String>::new()
    );
}

#[test]
fn unused_variable_fires() {
    // A never-mentioned local keeps the original PR 3 message (pinned
    // by `unused_variable_message_is_unchanged`); its initializer is
    // also a dead store.
    assert_eq!(
        lint("int main() { int used = 1; int spare = 2; return used; }"),
        vec![
            "warning[dead-store] at main/[1]",
            "warning[unused-variable] at main/[1]",
        ]
    );
}

#[test]
fn unused_variable_message_is_unchanged() {
    // The liveness reconciliation must not disturb the historical
    // never-used verdict text.
    let diags = Analyzer::new()
        .analyze_source("int main() { int used = 1; int spare = 2; return used; }")
        .unwrap();
    let unused: Vec<_> = diags
        .iter()
        .filter(|d| d.pass == "unused-variable")
        .collect();
    assert_eq!(unused.len(), 1);
    assert_eq!(unused[0].message, "variable `spare` is never used");
}

#[test]
fn write_only_variable_is_assigned_but_never_read() {
    // `sink` is mentioned (so the old pass stayed silent) but every
    // mention stores: the reconciled pass and the liveness-based
    // dead-store pass now agree it is write-only.
    assert_eq!(
        lint("int main() { int sink = 1; sink = 2; return 0; }"),
        vec![
            "warning[dead-store] at main/[0]",
            "warning[dead-store] at main/[1]",
            "warning[unused-variable] at main/[0]",
        ]
    );
    let diags = Analyzer::new()
        .analyze_source("int main() { int sink = 1; sink = 2; return 0; }")
        .unwrap();
    let unused: Vec<_> = diags
        .iter()
        .filter(|d| d.pass == "unused-variable")
        .collect();
    assert_eq!(
        unused[0].message,
        "variable `sink` is assigned but never read"
    );
}

#[test]
fn write_only_reconciliation_stays_silent_for_compound_assign() {
    // `s += i` reads the old value of `s`: not write-only.
    assert_eq!(
        lint("int main() { int s = 0; for (int i = 0; i < 3; i++) { s += i; } return s; }"),
        Vec::<String>::new()
    );
}

#[test]
fn unused_variable_stays_silent_when_read() {
    assert_eq!(
        lint("int main() { int a = 1; int b = 2; return a + b; }"),
        Vec::<String>::new()
    );
}

#[test]
fn unreachable_code_fires_after_return() {
    assert_eq!(
        lint("int main() { int x = 1; return x; x = 2; }"),
        vec!["warning[unreachable-code] at main/[2]"]
    );
}

#[test]
fn unreachable_code_fires_after_break() {
    assert_eq!(
        lint("int main() { int n = 3; while (n > 0) { break; n = n - 1; } return n; }"),
        vec!["warning[unreachable-code] at main/[1]/[1]"]
    );
}

#[test]
fn unreachable_code_stays_silent_for_trailing_terminator() {
    // A `break` as the last statement (the generator's prime-count
    // shape) is fine; so is the final `return`.
    assert_eq!(
        lint(
            "int main() { int n = 9; while (n > 0) { if (n == 5) { break; } n = n - 1; } return n; }"
        ),
        Vec::<String>::new()
    );
}

#[test]
fn use_before_init_fires() {
    assert_eq!(
        lint("int main() { int x; return x; }"),
        vec!["error[use-before-init] at main/[1]"]
    );
}

#[test]
fn use_before_init_stays_silent_when_all_paths_assign() {
    assert_eq!(
        lint("int main() { int x; int c = 2; if (c > 0) { x = 1; } else { x = 2; } return x; }"),
        Vec::<String>::new()
    );
}

#[test]
fn use_before_init_stays_silent_for_io_reads() {
    // `cin >> n` and `scanf("%d", &m)` both assign their targets.
    assert_eq!(
        lint(
            "#include <iostream>\n#include <cstdio>\nusing namespace std;\nint main() { int n; int m; cin >> n; scanf(\"%d\", &m); return n + m; }"
        ),
        Vec::<String>::new()
    );
}

#[test]
fn dead_store_fires_for_overwritten_value() {
    assert_eq!(
        lint("int main() { int x = 1; x = 2; return x; }"),
        vec!["warning[dead-store] at main/[0]"]
    );
}

#[test]
fn dead_store_stays_silent_for_loop_carried_values() {
    assert_eq!(
        lint("int main() { int s = 0; for (int i = 0; i < 4; i++) { s = s + i; } return s; }"),
        Vec::<String>::new()
    );
}

#[test]
fn multiple_defects_report_together() {
    // One snippet, four passes firing at once — counts and sites all
    // pinned. Every initializer here feeds a value nothing reads.
    assert_eq!(
        lint("int main() { int dead = 1; int x = 2; int x = 3; return missing; }"),
        vec![
            "error[duplicate-declaration] at main/[2]",
            "error[undeclared-identifier] at main/[3]",
            "warning[dead-store] at main/[0]",
            "warning[dead-store] at main/[1]",
            "warning[dead-store] at main/[2]",
            "warning[unused-variable] at main/[0]",
            "warning[unused-variable] at main/[1]",
        ]
    );
}

#[test]
fn resolver_bindings_agree_with_declared_names() {
    // Differential regression for the `visit::declared_names` fix:
    // every name the resolver binds (other than `main`, which the
    // renamers deliberately exclude) must be visible to
    // `declared_names`, including parameters, for-init declarations,
    // range-for variables, typedef/using aliases, and macros.
    use std::collections::BTreeSet;
    use synthattr_analysis::resolve;
    use synthattr_lang::parse;
    use synthattr_lang::visit::declared_names;

    let snippets = [
        "int scale(int factor) { return factor * 2; }\nint main() { return scale(3); }",
        "int main() { for (int idx = 0; idx < 3; idx++) { } return 0; }",
        "#include <vector>\nusing namespace std;\nint main() { vector<int> xs; int s = 0; for (int x : xs) { s = s + x; } return s; }",
        "#define MAXN 100\ntypedef long long ll;\nusing vi = int;\nint total;\nint main() { total = MAXN; return total; }",
        "int helper() { int inner = 4; return inner; }\nint main() { int outer = helper(); return outer; }",
    ];
    for src in snippets {
        let unit = parse(src).expect("snippet parses");
        let declared: BTreeSet<String> = declared_names(&unit).into_iter().collect();
        let bound: BTreeSet<String> = resolve(&unit)
            .bindings
            .iter()
            .map(|b| b.name.clone())
            .filter(|n| n != "main")
            .collect();
        assert_eq!(declared, bound, "mismatch for:\n{src}");
    }
}

#[test]
fn severity_split_matches_pass_contract() {
    let diags = Analyzer::new()
        .analyze_source("int main() { int x = 1; int x = 2; int y = 9; return z; }")
        .unwrap();
    for d in &diags {
        let expected = match d.pass {
            "undeclared-identifier" | "duplicate-declaration" | "use-before-init" => {
                Severity::Error
            }
            _ => Severity::Warning,
        };
        assert_eq!(d.severity, expected, "{d}");
    }
    assert_eq!(
        diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count(),
        2
    );
}
