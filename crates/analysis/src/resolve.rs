//! Block-scoped symbol resolution over the C++ subset AST.
//!
//! The resolver walks a [`TranslationUnit`] once and produces a
//! [`Resolution`]: every declaration it saw (with use counts, shadowing
//! and duplicate links) plus every identifier use it could not resolve.
//! File scope is handled leniently — all top-level names are registered
//! before any function body is resolved, mirroring how competitive
//! programs rely on forward references — and a fixed set of standard
//! library names counts as declared whenever the unit has at least one
//! `#include` or a `using namespace` directive.
//!
//! Diagnostic sites are *structural paths* (e.g. `main/[3]/for/body/[0]`)
//! rather than line/column spans. The analyzer compares diagnostics
//! across differently-rendered texts of the same program (pre- and
//! post-transformation), and structural paths are stable under
//! re-rendering where source spans are not.

use crate::cfg::is_cin_chain;
use std::collections::HashMap;
use synthattr_lang::ast::*;

/// What kind of declaration a [`Binding`] came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BindingKind {
    /// A file-scope variable.
    Global,
    /// A function definition.
    Function,
    /// A function parameter.
    Param,
    /// A block-local variable (including `for`-init declarations).
    Local,
    /// A range-`for` loop variable.
    ForEachVar,
    /// A `typedef` or `using` alias name.
    TypeAlias,
    /// A `#define`d macro name.
    Macro,
}

impl BindingKind {
    /// Whether the binding names a runtime variable (the kinds the
    /// unused-variable pass cares about).
    pub fn is_variable(self) -> bool {
        matches!(
            self,
            BindingKind::Global | BindingKind::Param | BindingKind::Local | BindingKind::ForEachVar
        )
    }
}

/// One declaration site.
#[derive(Debug, Clone)]
pub struct Binding {
    /// Declared name.
    pub name: String,
    /// Declaration kind.
    pub kind: BindingKind,
    /// Structural path of the declaration site.
    pub site: String,
    /// Number of resolved uses.
    pub uses: usize,
    /// Number of resolved uses that *read* the value. A use that only
    /// stores (simple-assignment target, `cin >>` target, `&x` handed
    /// to `scanf`, `getline`'s destination) counts toward `uses` but
    /// not `reads`; compound assignments and `++`/`--` read first, so
    /// they count toward both.
    pub reads: usize,
    /// Index of an outer-scope binding this one shadows, if any.
    pub shadows: Option<usize>,
    /// Index of a same-scope binding this one duplicates, if any.
    pub duplicate_of: Option<usize>,
}

/// An identifier use that resolved to nothing.
#[derive(Debug, Clone)]
pub struct Undeclared {
    /// The unresolved name.
    pub name: String,
    /// Structural path of the use site.
    pub site: String,
}

/// The result of resolving a unit.
#[derive(Debug, Clone, Default)]
pub struct Resolution {
    /// Every declaration site, in visit order.
    pub bindings: Vec<Binding>,
    /// Every unresolved identifier use, in visit order.
    pub undeclared: Vec<Undeclared>,
    /// Whether std names were considered in scope.
    pub std_in_scope: bool,
}

impl Resolution {
    /// Names of all bindings of the given kinds, in visit order.
    pub fn names_of(&self, pred: impl Fn(BindingKind) -> bool) -> Vec<&str> {
        self.bindings
            .iter()
            .filter(|b| pred(b.kind))
            .map(|b| b.name.as_str())
            .collect()
    }
}

/// Standard-library names treated as declared when the unit includes
/// headers or opens `namespace std`. The set mirrors (and extends) the
/// transformer's reserved-name list so that nothing the generator or
/// the style simulator emits can be reported as undeclared.
pub const STD_NAMES: &[&str] = &[
    "cin",
    "cout",
    "cerr",
    "endl",
    "string",
    "vector",
    "pair",
    "map",
    "set",
    "max",
    "min",
    "abs",
    "sort",
    "swap",
    "printf",
    "scanf",
    "puts",
    "getline",
    "to_string",
    "make_pair",
    "sqrt",
    "pow",
    "floor",
    "ceil",
    "round",
    "fabs",
    "memset",
    "strlen",
    "isdigit",
    "isalpha",
    "tolower",
    "toupper",
    "INT_MAX",
    "INT_MIN",
    "LLONG_MAX",
    "LLONG_MIN",
    "EOF",
    "NULL",
    "size_t",
    "std",
    "fixed",
    "setprecision",
];

/// Whether `name` is a standard-library name per [`STD_NAMES`].
///
/// Namespace-qualified names (`ios_base::sync_with_stdio`) are always
/// library names: the parser only produces them for non-`std`
/// qualifiers, and user code cannot declare one.
pub fn is_std_name(name: &str) -> bool {
    STD_NAMES.contains(&name) || name.contains("::")
}

/// Resolves `unit`, producing bindings, use counts and unresolved uses.
pub fn resolve(unit: &TranslationUnit) -> Resolution {
    let mut r = Resolver {
        res: Resolution {
            std_in_scope: unit
                .items
                .iter()
                .any(|i| matches!(i, Item::Include { .. }) || matches!(i, Item::UsingNamespace(_))),
            ..Resolution::default()
        },
        scopes: vec![HashMap::new()],
        path: Vec::new(),
    };
    r.file_scope_prepass(unit);
    r.resolve_items(unit);
    r.res
}

struct Resolver {
    res: Resolution,
    /// Innermost scope last; each maps name -> binding index.
    scopes: Vec<HashMap<String, usize>>,
    path: Vec<String>,
}

impl Resolver {
    fn site(&self) -> String {
        self.path.join("/")
    }

    fn push_scope(&mut self) {
        self.scopes.push(HashMap::new());
    }

    fn pop_scope(&mut self) {
        self.scopes.pop();
    }

    /// Registers a declaration in the current scope, recording shadow
    /// and duplicate links against already-visible bindings.
    fn bind(&mut self, name: &str, kind: BindingKind) {
        let idx = self.res.bindings.len();
        let duplicate_of = self.scopes.last().and_then(|s| s.get(name)).copied();
        let shadows = if duplicate_of.is_none() {
            self.scopes[..self.scopes.len() - 1]
                .iter()
                .rev()
                .find_map(|s| s.get(name))
                .copied()
        } else {
            None
        };
        self.res.bindings.push(Binding {
            name: name.to_string(),
            kind,
            site: self.site(),
            uses: 0,
            reads: 0,
            shadows,
            duplicate_of,
        });
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_string(), idx);
    }

    /// Resolves a name use: innermost binding wins, then std names,
    /// otherwise the use is recorded as undeclared.
    fn use_name(&mut self, name: &str) {
        self.use_name_ctx(name, true);
    }

    /// Resolves a use that only stores into the name (no read).
    fn use_name_write(&mut self, name: &str) {
        self.use_name_ctx(name, false);
    }

    fn use_name_ctx(&mut self, name: &str, is_read: bool) {
        for scope in self.scopes.iter().rev() {
            if let Some(&idx) = scope.get(name) {
                self.res.bindings[idx].uses += 1;
                if is_read {
                    self.res.bindings[idx].reads += 1;
                }
                return;
            }
        }
        if self.res.std_in_scope && is_std_name(name) {
            return;
        }
        self.res.undeclared.push(Undeclared {
            name: name.to_string(),
            site: self.site(),
        });
    }

    /// Marks typedef/alias names referenced from a type as used.
    /// Unknown named types are ignored: the subset routinely mentions
    /// library types the resolver has no declaration for.
    fn use_type(&mut self, ty: &Type) {
        match ty {
            Type::Named(n) => {
                for scope in self.scopes.iter().rev() {
                    if let Some(&idx) = scope.get(n) {
                        self.res.bindings[idx].uses += 1;
                        return;
                    }
                }
            }
            Type::Vector(t) | Type::Set(t) | Type::Ref(t) | Type::Const(t) => self.use_type(t),
            Type::Pair(a, b) | Type::Map(a, b) => {
                self.use_type(a);
                self.use_type(b);
            }
            _ => {}
        }
    }

    /// Registers every file-scope name before resolving bodies, so
    /// forward references (`main` calling a helper defined later,
    /// globals initialized from a later function) resolve.
    fn file_scope_prepass(&mut self, unit: &TranslationUnit) {
        for (i, item) in unit.items.iter().enumerate() {
            self.path.push(format!("[{i}]"));
            match item {
                Item::GlobalVar(d) => {
                    for dd in &d.declarators {
                        self.bind(&dd.name, BindingKind::Global);
                    }
                }
                Item::Function(f) => self.bind(&f.name, BindingKind::Function),
                Item::Typedef { name, .. } | Item::UsingAlias { name, .. } => {
                    self.bind(name, BindingKind::TypeAlias)
                }
                Item::Define { text } => {
                    if let Some(name) = define_name(text) {
                        self.bind(name, BindingKind::Macro);
                    }
                }
                _ => {}
            }
            self.path.pop();
        }
    }

    fn resolve_items(&mut self, unit: &TranslationUnit) {
        for item in &unit.items {
            match item {
                Item::GlobalVar(d) => {
                    self.path.push("global".into());
                    // Names were bound in the prepass; only the
                    // initializer expressions remain to resolve.
                    for dd in &d.declarators {
                        self.declarator_exprs(dd);
                    }
                    self.use_type(&d.ty);
                    self.path.pop();
                }
                Item::Typedef { ty, .. } | Item::UsingAlias { ty, .. } => self.use_type(ty),
                Item::Function(f) => self.resolve_function(f),
                _ => {}
            }
        }
    }

    fn resolve_function(&mut self, f: &Function) {
        self.path.push(f.name.clone());
        self.use_type(&f.ret);
        // Parameters live in the same scope as the body's top level:
        // redeclaring a parameter name there is an error in C++.
        self.push_scope();
        for p in &f.params {
            self.use_type(&p.ty);
            self.bind(&p.name, BindingKind::Param);
        }
        self.stmts(&f.body.stmts);
        self.pop_scope();
        self.path.pop();
    }

    fn stmts(&mut self, stmts: &[Stmt]) {
        for (i, stmt) in stmts.iter().enumerate() {
            self.path.push(format!("[{i}]"));
            self.stmt(stmt);
            self.path.pop();
        }
    }

    fn block(&mut self, label: &str, b: &Block) {
        self.path.push(label.to_string());
        self.push_scope();
        self.stmts(&b.stmts);
        self.pop_scope();
        self.path.pop();
    }

    fn stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Decl(d) => self.declaration(d),
            Stmt::Expr(e) => self.expr(e),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.expr(cond);
                self.block("then", then_branch);
                if let Some(e) = else_branch {
                    self.block("else", e);
                }
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                // The for-init scope encloses cond, step and body; the
                // body is its own scope (shadowing the induction
                // variable there is legal, redeclaring it is not).
                self.path.push("for".into());
                self.push_scope();
                if let Some(i) = init {
                    self.path.push("init".into());
                    self.stmt(i);
                    self.path.pop();
                }
                if let Some(c) = cond {
                    self.expr(c);
                }
                if let Some(s) = step {
                    self.expr(s);
                }
                self.block("body", body);
                self.pop_scope();
                self.path.pop();
            }
            Stmt::ForEach {
                ty,
                name,
                iterable,
                body,
                by_ref: _,
            } => {
                // The iterable is evaluated in the enclosing scope; the
                // loop variable is only visible in the body.
                self.expr(iterable);
                self.path.push("foreach".into());
                self.push_scope();
                self.use_type(ty);
                self.bind(name, BindingKind::ForEachVar);
                self.block("body", body);
                self.pop_scope();
                self.path.pop();
            }
            Stmt::While { cond, body } => {
                self.expr(cond);
                self.block("while", body);
            }
            Stmt::DoWhile { body, cond } => {
                self.block("do", body);
                self.expr(cond);
            }
            Stmt::Return(e) => {
                if let Some(e) = e {
                    self.expr(e);
                }
            }
            Stmt::Block(b) => self.block("block", b),
            Stmt::Break | Stmt::Continue | Stmt::Comment(_) | Stmt::Empty => {}
        }
    }

    fn declaration(&mut self, d: &Declaration) {
        self.use_type(&d.ty);
        // Left-to-right: each declarator's initializer resolves before
        // its own name is bound (`int n = m, k = n;` binds `n` before
        // `k`'s initializer, but `int x = x;` must not resolve to
        // itself — that is exactly the orphaned-variable shape a bad
        // helper extraction produces).
        for dd in &d.declarators {
            self.declarator_exprs(dd);
            self.bind(&dd.name, BindingKind::Local);
        }
    }

    fn declarator_exprs(&mut self, dd: &Declarator) {
        if let Some(extent) = &dd.array {
            self.expr(extent);
        }
        match &dd.init {
            Some(Initializer::Assign(e)) => self.expr(e),
            Some(Initializer::Ctor(args)) => {
                for a in args {
                    self.expr(a);
                }
            }
            None => {}
        }
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Ident(name) => self.use_name(name),
            // `&x` in this subset only ever feeds `scanf`, which stores
            // into the target.
            Expr::Unary {
                op: UnaryOp::AddrOf,
                expr,
            } => match expr.unparenthesized() {
                Expr::Ident(name) => self.use_name_write(name),
                _ => self.expr(expr),
            },
            Expr::Unary { expr, .. } => self.expr(expr),
            // A simple-assignment target is stored to, not read;
            // compound assignments (`+=` …) read the old value first
            // and fall through to the general arm.
            Expr::Assign {
                op: AssignOp::Assign,
                lhs,
                rhs,
            } => {
                match lhs.unparenthesized() {
                    Expr::Ident(name) => self.use_name_write(name),
                    _ => self.expr(lhs),
                }
                self.expr(rhs);
            }
            // `cin >> x` stores into `x`; chains associate left, so the
            // lhs recursion re-enters this arm for every target.
            Expr::Binary {
                op: BinaryOp::Shr,
                lhs,
                rhs,
            } if is_cin_chain(lhs) => {
                self.expr(lhs);
                match rhs.unparenthesized() {
                    Expr::Ident(name) => self.use_name_write(name),
                    _ => self.expr(rhs),
                }
            }
            Expr::Binary { lhs, rhs, .. } | Expr::Assign { lhs, rhs, .. } => {
                self.expr(lhs);
                self.expr(rhs);
            }
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                self.expr(cond);
                self.expr(then_expr);
                self.expr(else_expr);
            }
            Expr::Call { callee, args } => {
                self.expr(callee);
                // `getline(cin, s)` stores into its second argument.
                let getline_target = match callee.unparenthesized() {
                    Expr::Ident(n) if n == "getline" && args.len() >= 2 => Some(1),
                    _ => None,
                };
                for (i, a) in args.iter().enumerate() {
                    match (Some(i) == getline_target, a.unparenthesized()) {
                        (true, Expr::Ident(name)) => self.use_name_write(name),
                        _ => self.expr(a),
                    }
                }
            }
            // Member names are not scoped identifiers; only the base
            // expression resolves.
            Expr::Member { base, .. } => self.expr(base),
            Expr::Index { base, index } => {
                self.expr(base);
                self.expr(index);
            }
            Expr::Cast { ty, expr } | Expr::StaticCast { ty, expr } => {
                self.use_type(ty);
                self.expr(expr);
            }
            Expr::Paren(inner) => self.expr(inner),
            Expr::InitList(elems) => {
                for e in elems {
                    self.expr(e);
                }
            }
            Expr::Int(_) | Expr::Float(_) | Expr::Str(_) | Expr::Char(_) | Expr::Bool(_) => {}
        }
    }
}

pub use synthattr_lang::visit::define_name;

#[cfg(test)]
mod tests {
    use super::*;
    use synthattr_lang::parse;

    fn resolve_src(src: &str) -> Resolution {
        resolve(&parse(src).expect("test source parses"))
    }

    #[test]
    fn clean_program_has_no_undeclared() {
        let r = resolve_src(
            r#"
#include <iostream>
using namespace std;
int main() {
    int n;
    cin >> n;
    for (int i = 0; i < n; ++i) cout << i << endl;
    return 0;
}
"#,
        );
        assert!(r.undeclared.is_empty(), "{:?}", r.undeclared);
        assert!(r.std_in_scope);
    }

    #[test]
    fn undeclared_use_is_reported() {
        let r = resolve_src("#include <iostream>\nint main() { int a = b; return a; }");
        assert_eq!(r.undeclared.len(), 1);
        assert_eq!(r.undeclared[0].name, "b");
    }

    #[test]
    fn std_names_require_an_include_or_using() {
        let r = resolve_src("int main() { cout << 1; return 0; }");
        assert_eq!(r.undeclared.len(), 1);
        assert_eq!(r.undeclared[0].name, "cout");
    }

    #[test]
    fn self_initialization_does_not_resolve_to_itself() {
        let r = resolve_src("#include <iostream>\nint main() { int x = x; return x; }");
        assert_eq!(r.undeclared.len(), 1, "{:?}", r.undeclared);
        assert_eq!(r.undeclared[0].name, "x");
    }

    #[test]
    fn forward_function_references_resolve() {
        let r = resolve_src(
            "#include <iostream>\nint main() { return helper(); }\nint helper() { return 1; }",
        );
        assert!(r.undeclared.is_empty(), "{:?}", r.undeclared);
    }

    #[test]
    fn for_init_binds_in_loop_scope_only() {
        let r = resolve_src(
            "#include <iostream>\nint main() { for (int i = 0; i < 3; i++) { } return i; }",
        );
        assert_eq!(r.undeclared.len(), 1);
        assert_eq!(r.undeclared[0].name, "i");
    }

    #[test]
    fn duplicate_and_shadow_links() {
        let r = resolve_src(
            "#include <iostream>\nint main() { int a = 1; int a = 2; { int b = a; int n = b; } int n = 3; return n; }",
        );
        let dups: Vec<&Binding> = r
            .bindings
            .iter()
            .filter(|b| b.duplicate_of.is_some())
            .collect();
        assert_eq!(dups.len(), 1);
        assert_eq!(dups[0].name, "a");
        // The inner `n` precedes the outer `n`, so neither shadows.
        assert!(r.bindings.iter().all(|b| b.shadows.is_none()));
    }

    #[test]
    fn shadowing_is_linked_across_scopes() {
        let r = resolve_src(
            "#include <iostream>\nint x;\nint main() { int x = 1; { int x = 2; cout << x; } return x; }",
        );
        let shadowers: Vec<&Binding> = r.bindings.iter().filter(|b| b.shadows.is_some()).collect();
        assert_eq!(shadowers.len(), 2, "{:?}", shadowers);
    }

    #[test]
    fn typedef_names_count_as_used_from_types() {
        let r = resolve_src("typedef long long ll;\nint main() { ll x = 1; return (int)x; }");
        let td = r
            .bindings
            .iter()
            .find(|b| b.kind == BindingKind::TypeAlias)
            .expect("typedef binding");
        assert_eq!(td.name, "ll");
        assert!(td.uses > 0);
    }

    #[test]
    fn define_name_extraction() {
        assert_eq!(define_name("define MAXN 100"), Some("MAXN"));
        assert_eq!(define_name("define SQ(x) ((x)*(x))"), Some("SQ"));
        assert_eq!(define_name("pragma once"), None);
    }

    #[test]
    fn foreach_variable_scopes_to_body() {
        let r = resolve_src(
            "#include <vector>\nusing namespace std;\nint main() { vector<int> v; for (int x : v) { cout << x; } return x; }",
        );
        assert_eq!(r.undeclared.len(), 1, "{:?}", r.undeclared);
        assert_eq!(r.undeclared[0].name, "x");
    }
}
