//! Semantic fingerprinting: a normalized AST hash that is invariant
//! under every style rewrite the `synthattr-gpt` simulator performs.
//!
//! `fingerprint(c0) == fingerprint(GPT(c0))` is the checked form of the
//! paper's core assumption — that an LLM "rewrite" changes *style*, not
//! *semantics*. The normalizer maps both programs onto one canonical
//! representative of their shared equivalence class:
//!
//! 1. comments are dropped (pure annotation);
//! 2. parentheses, `static_cast` spelling and `.c_str()` adapters are
//!    erased; `endl` becomes the string `"\n"`;
//! 3. trivially-outlined helpers (zero parameters, a single trailing
//!    `return`, exactly one call site) are inlined back — the inverse
//!    of the paper's Figure 4a helper extraction;
//! 4. multi-declarator statements are split (`int a, b;` → two decls);
//! 5. read-only range-`for` loops over a named container are lowered to
//!    indexed loops, exactly as the transformer lowers them;
//! 6. every conditioned `for` becomes its `while` form (init hoisted
//!    into a wrapper block, step appended to the body);
//! 7. statement-position `x++`/`x--` become prefix form, compound
//!    assignments are expanded (`x += v` → `x = x + v`), and
//!    ternary-assignments are distributed back into `if`/`else`;
//! 8. stdio IO is rewritten to the stream idiom (`printf` → `cout`
//!    chain, `scanf` → `cin` chain) and adjacent string operands merge;
//! 9. declared names are α-renamed to position-canonical names.
//!
//! The result is hashed with the AST's structural hash. Two programs
//! with equal fingerprints are therefore identical modulo naming,
//! layout, loop form, sugar, IO idiom and helper outlining.

use std::collections::HashSet;
use synthattr_lang::ast::*;
use synthattr_lang::visit::{declared_names, for_each_block_mut, rename_idents};
use synthattr_lang::{parse, ParseError};

/// The normalized-AST hash of `unit`.
pub fn fingerprint(unit: &TranslationUnit) -> u64 {
    normalize(unit).shape_hash()
}

/// Parses `source` and fingerprints it.
///
/// # Errors
///
/// Returns the parse error when `source` is outside the subset.
pub fn fingerprint_source(source: &str) -> Result<u64, ParseError> {
    Ok(fingerprint(&parse(source)?))
}

/// Produces the canonical representative of `unit`'s style-equivalence
/// class. Exposed (rather than kept private to [`fingerprint`]) so
/// tests and debugging tools can render the normal form.
pub fn normalize(unit: &TranslationUnit) -> TranslationUnit {
    let mut u = unit.clone();
    strip_comments(&mut u);
    scrub_exprs(&mut u);
    inline_trivial_helpers(&mut u);
    split_declarations(&mut u);
    lower_all_foreach(&mut u);
    normalize_io(&mut u);
    normalize_stmts(&mut u);
    canonicalize_names(&mut u);
    u
}

// ---------------------------------------------------------------------------
// 1. Comments
// ---------------------------------------------------------------------------

fn strip_comments(u: &mut TranslationUnit) {
    // Includes and `using namespace` are environment preamble: they
    // gate which names a program may reference (a lint concern, see
    // `resolve`) but contribute nothing to what it computes, and
    // equivalent programs legitimately differ in them (`<cstdio>` vs
    // `<iostream>` for the two IO idioms).
    u.items.retain(|i| {
        !matches!(
            i,
            Item::Comment(_) | Item::Include { .. } | Item::UsingNamespace(_)
        )
    });
    for_each_block_mut(u, &mut |b| {
        b.stmts.retain(|s| !matches!(s, Stmt::Comment(_)));
    });
}

// ---------------------------------------------------------------------------
// 2. Expression-level scrubbing: parens, cast spelling, c_str, endl
// ---------------------------------------------------------------------------

fn scrub_exprs(u: &mut TranslationUnit) {
    for_each_expr_mut(u, &mut |e| loop {
        match e {
            Expr::Paren(inner) => {
                *e = std::mem::replace(inner, Expr::Int(0));
            }
            Expr::StaticCast { ty, expr } => {
                *e = Expr::Cast {
                    ty: ty.clone(),
                    expr: std::mem::replace(expr, Box::new(Expr::Int(0))),
                };
            }
            Expr::Call { callee, args } if args.is_empty() => {
                if let Expr::Member { base, member, .. } = callee.as_mut() {
                    if member == "c_str" {
                        *e = std::mem::replace(base, Expr::Int(0));
                        continue;
                    }
                }
                break;
            }
            Expr::Ident(name) if name == "endl" => {
                *e = Expr::Str("\n".into());
            }
            _ => break,
        }
    });
}

// ---------------------------------------------------------------------------
// 3. Helper inlining (inverse of Figure 4a extraction)
// ---------------------------------------------------------------------------

fn count_returns(b: &Block) -> usize {
    let mut n = 0;
    each_stmt(b, &mut |s| {
        if matches!(s, Stmt::Return(_)) {
            n += 1;
        }
    });
    n
}

fn count_calls_in_block(b: &Block, name: &str) -> usize {
    let mut n = 0;
    each_stmt(b, &mut |s| {
        stmt_exprs(s, &mut |e| {
            if let Expr::Call { callee, .. } = e {
                if matches!(callee.unparenthesized(), Expr::Ident(f) if f == name) {
                    n += 1;
                }
            }
        });
    });
    n
}

fn inline_trivial_helpers(u: &mut TranslationUnit) {
    loop {
        let Some((name, body)) = find_inline_candidate(u) else {
            return;
        };
        let n = body.stmts.len();
        let work: Vec<Stmt> = body.stmts[..n - 1].to_vec();
        let Some(Stmt::Return(Some(value))) = body.stmts.last() else {
            unreachable!("candidate shape checked");
        };
        let value = value.clone();
        if !splice_call_site(u, &name, work, value) {
            return;
        }
        u.items
            .retain(|i| !matches!(i, Item::Function(f) if f.name == name));
    }
}

/// A helper is inlineable when it could have been produced by the
/// transformer's case-helper extraction: no parameters, not `main`, a
/// single `return` as its final statement, no self-call, and exactly
/// one zero-argument call site in the rest of the unit.
fn find_inline_candidate(u: &TranslationUnit) -> Option<(String, Block)> {
    for f in u.functions() {
        if f.name == "main" || !f.params.is_empty() {
            continue;
        }
        if !matches!(f.body.stmts.last(), Some(Stmt::Return(Some(_)))) {
            continue;
        }
        if count_returns(&f.body) != 1 || count_calls_in_block(&f.body, &f.name) != 0 {
            continue;
        }
        let calls: usize = u
            .functions()
            .filter(|g| g.name != f.name)
            .map(|g| count_calls_in_block(&g.body, &f.name))
            .sum();
        if calls == 1 {
            return Some((f.name.clone(), f.body.clone()));
        }
    }
    None
}

/// Finds the unique statement containing `name()`, splices `work`
/// before it, and replaces the call with `value`.
fn splice_call_site(u: &mut TranslationUnit, name: &str, work: Vec<Stmt>, value: Expr) -> bool {
    let mut done = false;
    for item in &mut u.items {
        let Item::Function(f) = item else { continue };
        if f.name == name || done {
            continue;
        }
        done = splice_in_block(&mut f.body, name, &work, &value);
    }
    done
}

fn splice_in_block(b: &mut Block, name: &str, work: &[Stmt], value: &Expr) -> bool {
    for i in 0..b.stmts.len() {
        let mut replaced = false;
        stmt_exprs_mut(&mut b.stmts[i], &mut |e| {
            if replaced {
                return;
            }
            if let Expr::Call { callee, args } = e {
                if args.is_empty()
                    && matches!(callee.unparenthesized(), Expr::Ident(f) if f == name)
                {
                    *e = value.clone();
                    replaced = true;
                }
            }
        });
        if replaced {
            b.stmts.splice(i..i, work.iter().cloned());
            return true;
        }
        // Recurse into nested blocks of this statement.
        let found = match &mut b.stmts[i] {
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                splice_in_block(then_branch, name, work, value)
                    || else_branch
                        .as_mut()
                        .is_some_and(|e| splice_in_block(e, name, work, value))
            }
            Stmt::For { body, .. }
            | Stmt::ForEach { body, .. }
            | Stmt::While { body, .. }
            | Stmt::DoWhile { body, .. } => splice_in_block(body, name, work, value),
            Stmt::Block(inner) => splice_in_block(inner, name, work, value),
            _ => false,
        };
        if found {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// 4. Declaration splitting
// ---------------------------------------------------------------------------

fn split_declarations(u: &mut TranslationUnit) {
    for_each_block_mut(u, &mut |block| {
        let mut out: Vec<Stmt> = Vec::with_capacity(block.stmts.len());
        for stmt in block.stmts.drain(..) {
            if let Stmt::Decl(d) = &stmt {
                if d.declarators.len() > 1 {
                    for dd in &d.declarators {
                        out.push(Stmt::Decl(Declaration {
                            ty: d.ty.clone(),
                            declarators: vec![dd.clone()],
                        }));
                    }
                    continue;
                }
            }
            out.push(stmt);
        }
        block.stmts = out;
    });
}

// ---------------------------------------------------------------------------
// 5. Range-for lowering (mirrors the transformer's `lower_foreach`)
// ---------------------------------------------------------------------------

fn lower_all_foreach(u: &mut TranslationUnit) {
    let taken: HashSet<String> = declared_names(u).into_iter().collect();
    let mut counter = 0usize;
    for_each_block_mut(u, &mut |block| {
        for stmt in &mut block.stmts {
            let Stmt::ForEach {
                by_ref: false,
                iterable: Expr::Ident(_),
                ..
            } = stmt
            else {
                continue;
            };
            let Stmt::ForEach {
                ty,
                name,
                iterable: Expr::Ident(container),
                body,
                ..
            } = std::mem::replace(stmt, Stmt::Empty)
            else {
                unreachable!();
            };
            let mut idx = format!("__fe{counter}");
            while taken.contains(&idx) || idx == name {
                counter += 1;
                idx = format!("__fe{counter}");
            }
            counter += 1;
            let elem_ty = match ty {
                Type::Auto => Type::Int,
                other => other,
            };
            let mut inner = vec![Stmt::Decl(Declaration {
                ty: elem_ty,
                declarators: vec![Declarator::init(
                    name,
                    Expr::index(Expr::ident(container.clone()), Expr::ident(idx.clone())),
                )],
            })];
            inner.extend(body.stmts);
            let bound = Expr::Cast {
                ty: Type::Int,
                expr: Box::new(Expr::method(Expr::ident(container), "size", vec![])),
            };
            *stmt = Stmt::For {
                init: Some(Box::new(Stmt::Decl(Declaration {
                    ty: Type::Int,
                    declarators: vec![Declarator::init(idx.clone(), Expr::Int(0))],
                }))),
                cond: Some(Expr::bin(BinaryOp::Lt, Expr::ident(idx.clone()), bound)),
                step: Some(Expr::Unary {
                    op: UnaryOp::PostInc,
                    expr: Box::new(Expr::ident(idx)),
                }),
                body: Block::new(inner),
            };
        }
    });
}

// ---------------------------------------------------------------------------
// 6. IO idiom: stdio -> stream, merged string operands
// ---------------------------------------------------------------------------

fn normalize_io(u: &mut TranslationUnit) {
    for_each_block_mut(u, &mut |block| {
        for stmt in &mut block.stmts {
            let Stmt::Expr(e) = stmt else { continue };
            stdio_call_to_chain(e);
            merge_cout_strings(e);
        }
    });
}

fn stdio_call_to_chain(e: &mut Expr) {
    let Expr::Call { callee, args } = e else {
        return;
    };
    let Expr::Ident(name) = callee.unparenthesized() else {
        return;
    };
    if name == "scanf" && args.len() >= 2 {
        let operands: Vec<Expr> = args[1..]
            .iter()
            .map(|a| match a {
                Expr::Unary {
                    op: UnaryOp::AddrOf,
                    expr,
                } => (**expr).clone(),
                other => other.clone(),
            })
            .collect();
        *e = rebuild_chain("cin", BinaryOp::Shr, operands);
    } else if name == "printf" && !args.is_empty() {
        let Expr::Str(fmt) = &args[0] else { return };
        let Some(operands) = printf_operands(fmt, &args[1..]) else {
            return;
        };
        *e = rebuild_chain("cout", BinaryOp::Shl, operands);
    }
}

/// Splits a printf format into cout operands (same grammar as the
/// transformer's converter: optional flags, `l` length modifiers, and
/// the `d`/`f`/`s`/`c`/`u` conversions; `%%` is a literal percent).
fn printf_operands(fmt: &str, args: &[Expr]) -> Option<Vec<Expr>> {
    let mut operands = Vec::new();
    let mut text = String::new();
    let mut arg_iter = args.iter();
    let chars: Vec<char> = fmt.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == '%' {
            if i + 1 < chars.len() && chars[i + 1] == '%' {
                text.push('%');
                i += 2;
                continue;
            }
            let mut j = i + 1;
            while j < chars.len() && !chars[j].is_ascii_alphabetic() {
                j += 1;
            }
            while j < chars.len() && chars[j] == 'l' {
                j += 1;
            }
            if j >= chars.len() || !matches!(chars[j], 'd' | 'f' | 's' | 'c' | 'u') {
                return None;
            }
            if !text.is_empty() {
                operands.push(Expr::Str(std::mem::take(&mut text)));
            }
            operands.push(arg_iter.next()?.clone());
            i = j + 1;
        } else {
            text.push(chars[i]);
            i += 1;
        }
    }
    if !text.is_empty() {
        operands.push(Expr::Str(text));
    }
    Some(operands)
}

fn rebuild_chain(root: &str, op: BinaryOp, operands: Vec<Expr>) -> Expr {
    let mut e = Expr::ident(root);
    for operand in operands {
        e = Expr::bin(op, e, operand);
    }
    e
}

fn chain_operands(e: &Expr, op: BinaryOp, root: &str) -> Option<Vec<Expr>> {
    match e {
        Expr::Binary {
            op: actual,
            lhs,
            rhs,
        } if *actual == op => {
            let mut left = chain_operands(lhs, op, root)?;
            left.push((**rhs).clone());
            Some(left)
        }
        Expr::Ident(name) if name == root => Some(Vec::new()),
        _ => None,
    }
}

/// `cout << "a" << "b"` and `cout << "ab"` are the same output; merge
/// adjacent string operands so the printf round-trip (which splits
/// format text around conversions) cannot distinguish them.
fn merge_cout_strings(e: &mut Expr) {
    let Some(ops) = chain_operands(e, BinaryOp::Shl, "cout") else {
        return;
    };
    if ops.len() < 2 {
        return;
    }
    let mut merged: Vec<Expr> = Vec::with_capacity(ops.len());
    for op in ops {
        if let (Expr::Str(next), Some(Expr::Str(prev))) = (&op, merged.last_mut()) {
            prev.push_str(next);
            continue;
        }
        merged.push(op);
    }
    *e = rebuild_chain("cout", BinaryOp::Shl, merged);
}

// ---------------------------------------------------------------------------
// 7. Statement normal forms: loop shape, inc/dec, compound sugar,
//    ternary-assignment distribution
// ---------------------------------------------------------------------------

fn normalize_stmts(u: &mut TranslationUnit) {
    for item in &mut u.items {
        if let Item::Function(f) = item {
            norm_stmt_list(&mut f.body.stmts);
        }
    }
}

fn norm_stmt_list(stmts: &mut [Stmt]) {
    for stmt in stmts.iter_mut() {
        norm_stmt(stmt);
    }
}

fn norm_stmt(stmt: &mut Stmt) {
    // Rewrite this node to a fixed point before recursing.
    loop {
        match stmt {
            // Conditioned `for` -> canonical `while` form. The init is
            // hoisted into a wrapper block exactly as the transformer's
            // for->while conversion does, so both directions land on
            // the same shape.
            Stmt::For { cond: Some(_), .. } => {
                let Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                } = std::mem::replace(stmt, Stmt::Empty)
                else {
                    unreachable!();
                };
                let mut inner = body.stmts;
                if let Some(s) = step {
                    inner.push(Stmt::Expr(s));
                }
                let while_stmt = Stmt::While {
                    cond: cond.expect("matched above"),
                    body: Block::new(inner),
                };
                *stmt = match init {
                    Some(init) => Stmt::Block(Block::new(vec![*init, while_stmt])),
                    None => while_stmt,
                };
                continue;
            }
            Stmt::Expr(e) => {
                if norm_value_dropped_expr(e) {
                    continue;
                }
                // Ternary-assignment -> if/else (inverse of the
                // transformer's conditional conversion, generalized to
                // the compound-expanded form `x = x op (c ? a : b)`).
                if let Some(rewritten) = distribute_ternary(e) {
                    *stmt = rewritten;
                    continue;
                }
                break;
            }
            _ => break,
        }
    }
    // Canonicalize the step of any remaining (condition-less) `for`.
    if let Stmt::For { step: Some(s), .. } = stmt {
        norm_value_dropped_expr(s);
    }
    // Recurse into child blocks.
    match stmt {
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            norm_stmt_list(&mut then_branch.stmts);
            if let Some(e) = else_branch {
                norm_stmt_list(&mut e.stmts);
            }
        }
        Stmt::For { body, .. }
        | Stmt::ForEach { body, .. }
        | Stmt::While { body, .. }
        | Stmt::DoWhile { body, .. } => norm_stmt_list(&mut body.stmts),
        Stmt::Block(b) => norm_stmt_list(&mut b.stmts),
        _ => {}
    }
}

/// Rewrites an expression whose value is dropped (statement or for-step
/// position): postfix inc/dec becomes prefix, compound assignment is
/// expanded. Returns whether anything changed.
fn norm_value_dropped_expr(e: &mut Expr) -> bool {
    match e {
        Expr::Unary { op, .. } => {
            let fixed = match *op {
                UnaryOp::PostInc => UnaryOp::PreInc,
                UnaryOp::PostDec => UnaryOp::PreDec,
                _ => return false,
            };
            *op = fixed;
            true
        }
        Expr::Assign { op, lhs, rhs } => {
            let bop = match op {
                AssignOp::Add => BinaryOp::Add,
                AssignOp::Sub => BinaryOp::Sub,
                AssignOp::Mul => BinaryOp::Mul,
                AssignOp::Div => BinaryOp::Div,
                AssignOp::Mod => BinaryOp::Mod,
                AssignOp::Assign => return false,
            };
            let target = lhs.clone();
            let value = std::mem::replace(rhs, Box::new(Expr::Int(0)));
            *e = Expr::Assign {
                op: AssignOp::Assign,
                lhs: target.clone(),
                rhs: Box::new(Expr::Binary {
                    op: bop,
                    lhs: target,
                    rhs: value,
                }),
            };
            true
        }
        _ => false,
    }
}

/// `x = c ? a : b`            -> `if (c) x = a; else x = b;`
/// `x = x op (c ? a : b)`     -> `if (c) x = x op a; else x = x op b;`
/// (the second shape is what compound expansion makes of `x += c?a:b`).
fn distribute_ternary(e: &Expr) -> Option<Stmt> {
    let Expr::Assign {
        op: AssignOp::Assign,
        lhs,
        rhs,
    } = e
    else {
        return None;
    };
    let branch = |value: Expr| {
        Block::new(vec![Stmt::Expr(Expr::Assign {
            op: AssignOp::Assign,
            lhs: lhs.clone(),
            rhs: Box::new(value),
        })])
    };
    match rhs.as_ref() {
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
        } => Some(Stmt::If {
            cond: (**cond).clone(),
            then_branch: branch((**then_expr).clone()),
            else_branch: Some(branch((**else_expr).clone())),
        }),
        Expr::Binary {
            op,
            lhs: base,
            rhs: operand,
        } => {
            let Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            } = operand.as_ref()
            else {
                return None;
            };
            if base != lhs {
                return None;
            }
            let apply = |value: &Expr| Expr::Binary {
                op: *op,
                lhs: base.clone(),
                rhs: Box::new(value.clone()),
            };
            Some(Stmt::If {
                cond: (**cond).clone(),
                then_branch: branch(apply(then_expr)),
                else_branch: Some(branch(apply(else_expr))),
            })
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// 8. α-renaming to position-canonical names
// ---------------------------------------------------------------------------

/// Renames every user-declared name to `__v{N}` where `N` is the order
/// of the name's first declaration site in a pre-order walk. Because
/// the transformer renames via a single name-level bijection, two
/// α-equivalent programs collect the same name *positions* and land on
/// identical canonical trees. (`main`, typedef/alias names and library
/// names are left untouched — the transformer never renames them.)
fn canonicalize_names(u: &mut TranslationUnit) {
    let mut order: Vec<String> = Vec::new();
    let mut seen: HashSet<String> = HashSet::new();
    let mut note = |name: &str| {
        if seen.insert(name.to_string()) {
            order.push(name.to_string());
        }
    };
    for item in &u.items {
        match item {
            Item::GlobalVar(d) => {
                for dd in &d.declarators {
                    note(&dd.name);
                }
            }
            Item::Function(f) => {
                if f.name != "main" {
                    note(&f.name);
                }
                for p in &f.params {
                    note(&p.name);
                }
                collect_decl_order(&f.body, &mut note);
            }
            _ => {}
        }
    }
    let mapping: std::collections::HashMap<String, String> = order
        .into_iter()
        .enumerate()
        .map(|(i, name)| (name, format!("__v{i}")))
        .collect();
    rename_idents(u, &mapping);
}

fn collect_decl_order(b: &Block, note: &mut impl FnMut(&str)) {
    for stmt in &b.stmts {
        collect_stmt_decl_order(stmt, note);
    }
}

fn collect_stmt_decl_order(stmt: &Stmt, note: &mut impl FnMut(&str)) {
    match stmt {
        Stmt::Decl(d) => {
            for dd in &d.declarators {
                note(&dd.name);
            }
        }
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            collect_decl_order(then_branch, note);
            if let Some(e) = else_branch {
                collect_decl_order(e, note);
            }
        }
        Stmt::For { init, body, .. } => {
            if let Some(i) = init {
                collect_stmt_decl_order(i, note);
            }
            collect_decl_order(body, note);
        }
        Stmt::ForEach { name, body, .. } => {
            note(name);
            collect_decl_order(body, note);
        }
        Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => collect_decl_order(body, note),
        Stmt::Block(b) => collect_decl_order(b, note),
        _ => {}
    }
}

// ---------------------------------------------------------------------------
// Local walkers
// ---------------------------------------------------------------------------

fn each_stmt(b: &Block, f: &mut impl FnMut(&Stmt)) {
    for stmt in &b.stmts {
        f(stmt);
        match stmt {
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                each_stmt(then_branch, f);
                if let Some(e) = else_branch {
                    each_stmt(e, f);
                }
            }
            Stmt::For { init, body, .. } => {
                if let Some(i) = init {
                    f(i);
                }
                each_stmt(body, f);
            }
            Stmt::ForEach { body, .. } | Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => {
                each_stmt(body, f)
            }
            Stmt::Block(inner) => each_stmt(inner, f),
            _ => {}
        }
    }
}

/// Applies `f` to every expression in the statement, pre-order.
fn stmt_exprs(stmt: &Stmt, f: &mut impl FnMut(&Expr)) {
    match stmt {
        Stmt::Decl(d) => {
            for dd in &d.declarators {
                if let Some(a) = &dd.array {
                    each_expr(a, f);
                }
                match &dd.init {
                    Some(Initializer::Assign(e)) => each_expr(e, f),
                    Some(Initializer::Ctor(args)) => {
                        for a in args {
                            each_expr(a, f);
                        }
                    }
                    None => {}
                }
            }
        }
        Stmt::Expr(e) | Stmt::Return(Some(e)) => each_expr(e, f),
        Stmt::If { cond, .. } | Stmt::While { cond, .. } | Stmt::DoWhile { cond, .. } => {
            each_expr(cond, f)
        }
        Stmt::For {
            init, cond, step, ..
        } => {
            if let Some(i) = init {
                stmt_exprs(i, f);
            }
            if let Some(c) = cond {
                each_expr(c, f);
            }
            if let Some(s) = step {
                each_expr(s, f);
            }
        }
        Stmt::ForEach { iterable, .. } => each_expr(iterable, f),
        _ => {}
    }
}

fn each_expr(e: &Expr, f: &mut impl FnMut(&Expr)) {
    f(e);
    match e {
        Expr::Unary { expr, .. }
        | Expr::Cast { expr, .. }
        | Expr::StaticCast { expr, .. }
        | Expr::Paren(expr) => each_expr(expr, f),
        Expr::Binary { lhs, rhs, .. } | Expr::Assign { lhs, rhs, .. } => {
            each_expr(lhs, f);
            each_expr(rhs, f);
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
        } => {
            each_expr(cond, f);
            each_expr(then_expr, f);
            each_expr(else_expr, f);
        }
        Expr::Call { callee, args } => {
            each_expr(callee, f);
            for a in args {
                each_expr(a, f);
            }
        }
        Expr::Member { base, .. } => each_expr(base, f),
        Expr::Index { base, index } => {
            each_expr(base, f);
            each_expr(index, f);
        }
        Expr::InitList(elems) => {
            for x in elems {
                each_expr(x, f);
            }
        }
        _ => {}
    }
}

/// Mutable pre-order expression walker over the whole unit. The
/// callback runs before descent, so a callback that rewrites the node
/// in place (looping internally, as [`scrub_exprs`] does) still has its
/// children visited afterwards.
fn for_each_expr_mut(u: &mut TranslationUnit, f: &mut impl FnMut(&mut Expr)) {
    for item in &mut u.items {
        match item {
            Item::GlobalVar(d) => decl_exprs_mut(d, f),
            Item::Function(func) => block_exprs_mut(&mut func.body, f),
            _ => {}
        }
    }
}

fn decl_exprs_mut(d: &mut Declaration, f: &mut impl FnMut(&mut Expr)) {
    for dd in &mut d.declarators {
        if let Some(a) = &mut dd.array {
            expr_mut(a, f);
        }
        match &mut dd.init {
            Some(Initializer::Assign(e)) => expr_mut(e, f),
            Some(Initializer::Ctor(args)) => {
                for a in args {
                    expr_mut(a, f);
                }
            }
            None => {}
        }
    }
}

fn block_exprs_mut(b: &mut Block, f: &mut impl FnMut(&mut Expr)) {
    for stmt in &mut b.stmts {
        stmt_exprs_mut(stmt, f);
        match stmt {
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                block_exprs_mut(then_branch, f);
                if let Some(e) = else_branch {
                    block_exprs_mut(e, f);
                }
            }
            Stmt::For { body, .. }
            | Stmt::ForEach { body, .. }
            | Stmt::While { body, .. }
            | Stmt::DoWhile { body, .. } => block_exprs_mut(body, f),
            Stmt::Block(inner) => block_exprs_mut(inner, f),
            _ => {}
        }
    }
}

fn stmt_exprs_mut(stmt: &mut Stmt, f: &mut impl FnMut(&mut Expr)) {
    match stmt {
        Stmt::Decl(d) => decl_exprs_mut(d, f),
        Stmt::Expr(e) | Stmt::Return(Some(e)) => expr_mut(e, f),
        Stmt::If { cond, .. } | Stmt::While { cond, .. } | Stmt::DoWhile { cond, .. } => {
            expr_mut(cond, f)
        }
        Stmt::For {
            init, cond, step, ..
        } => {
            if let Some(i) = init {
                stmt_exprs_mut(i, f);
            }
            if let Some(c) = cond {
                expr_mut(c, f);
            }
            if let Some(s) = step {
                expr_mut(s, f);
            }
        }
        Stmt::ForEach { iterable, .. } => expr_mut(iterable, f),
        _ => {}
    }
}

fn expr_mut(e: &mut Expr, f: &mut impl FnMut(&mut Expr)) {
    f(e);
    match e {
        Expr::Unary { expr, .. }
        | Expr::Cast { expr, .. }
        | Expr::StaticCast { expr, .. }
        | Expr::Paren(expr) => expr_mut(expr, f),
        Expr::Binary { lhs, rhs, .. } | Expr::Assign { lhs, rhs, .. } => {
            expr_mut(lhs, f);
            expr_mut(rhs, f);
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
        } => {
            expr_mut(cond, f);
            expr_mut(then_expr, f);
            expr_mut(else_expr, f);
        }
        Expr::Call { callee, args } => {
            expr_mut(callee, f);
            for a in args {
                expr_mut(a, f);
            }
        }
        Expr::Member { base, .. } => expr_mut(base, f),
        Expr::Index { base, index } => {
            expr_mut(base, f);
            expr_mut(index, f);
        }
        Expr::InitList(elems) => {
            for x in elems {
                expr_mut(x, f);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(src: &str) -> u64 {
        fingerprint_source(src).expect("test source parses")
    }

    #[test]
    fn fingerprint_ignores_layout_and_names() {
        let a = fp("int main() { int total = 0; total += 2; return total; }");
        let b = fp("int main()\n{\n\tint s=0;\n\ts=s+2;\n\treturn s;\n}");
        assert_eq!(a, b);
    }

    #[test]
    fn fingerprint_quotients_loop_form() {
        let a = fp("int main() { for (int i = 0; i < 9; i++) { } return 0; }");
        let b = fp("int main() { { int i = 0; while (i < 9) { ++i; } } return 0; }");
        assert_eq!(a, b);
    }

    #[test]
    fn fingerprint_quotients_ternary_and_compound() {
        let a = fp("int main() { int x = 1; if (x > 0) x = 5; else x = 7; return x; }");
        let b = fp("int main() { int y = 1; y = y > 0 ? 5 : 7; return y; }");
        assert_eq!(a, b);
        let c = fp("int main() { int x = 1; if (x > 0) x += 5; else x += 7; return x; }");
        let d = fp("int main() { int y = 1; y += y > 0 ? 5 : 7; return y; }");
        assert_eq!(c, d);
    }

    #[test]
    fn fingerprint_quotients_io_idiom() {
        let a = fp(
            "#include <iostream>\nusing namespace std;\nint main() { int n; cin >> n; cout << \"n: \" << n << endl; return 0; }",
        );
        let b = fp(
            "#include <iostream>\n#include <cstdio>\nusing namespace std;\nint main() { int v; scanf(\"%d\", &v); printf(\"n: %d\\n\", v); return 0; }",
        );
        assert_eq!(a, b);
    }

    #[test]
    fn fingerprint_quotients_helper_outlining() {
        let flat = fp(
            "#include <iostream>\nusing namespace std;\nint main() { int t; cin >> t; for (int i = 1; i <= t; i++) { int n; cin >> n; int r = n * 2; cout << \"Case #\" << i << \": \" << r << \"\\n\"; } return 0; }",
        );
        let outlined = fp(
            "#include <iostream>\nusing namespace std;\nint solve() { int n; cin >> n; int r = n * 2; return r; }\nint main() { int t; cin >> t; for (int i = 1; i <= t; i++) { cout << \"Case #\" << i << \": \" << solve() << \"\\n\"; } return 0; }",
        );
        assert_eq!(flat, outlined);
    }

    #[test]
    fn fingerprint_distinguishes_semantics() {
        let a = fp("int main() { return 0; }");
        let b = fp("int main() { return 1; }");
        assert_ne!(a, b);
        let c = fp("int main() { int x = 1; x = x + 2; return x; }");
        let d = fp("int main() { int x = 1; x = x - 2; return x; }");
        assert_ne!(c, d);
    }

    #[test]
    fn fingerprint_quotients_foreach_lowering() {
        let a = fp(
            "#include <vector>\nusing namespace std;\nint main() { vector<int> v; int s = 0; for (int x : v) { s += x; } return s; }",
        );
        let b = fp(
            "#include <vector>\nusing namespace std;\nint main() { vector<int> v; int s = 0; for (int k = 0; k < (int)v.size(); k++) { int x = v[k]; s += x; } return s; }",
        );
        assert_eq!(a, b);
    }

    #[test]
    fn fingerprint_quotients_casts_parens_comments() {
        let a = fp("int main() { double d = 1.5; int x = (int)d; /* note */ return x; }");
        let b = fp("int main() { double d = 1.5; int x = static_cast<int>(d); return (x); }");
        assert_eq!(a, b);
    }

    #[test]
    fn normalize_is_idempotent() {
        let unit = synthattr_lang::parse(
            "#include <iostream>\nusing namespace std;\nint main() { int t; cin >> t; for (int i = 0; i < t; i++) { cout << i << endl; } return 0; }",
        )
        .unwrap();
        let once = normalize(&unit);
        let twice = normalize(&once);
        assert_eq!(once.shape_hash(), twice.shape_hash());
    }
}
