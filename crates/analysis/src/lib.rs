//! `synthattr-analysis`: a semantic lint engine over the
//! `synthattr_lang` C++ subset AST.
//!
//! The crate turns the paper's implicit assumption — that a ChatGPT
//! rewrite preserves program semantics — into a checked invariant.
//! It provides three layers:
//!
//! - [`resolve`]: a block-scoped symbol resolver that binds every
//!   identifier use to its declaration (params, for-init declarations,
//!   typedef/`using` aliases, `#define` macros, and the std names
//!   implied by includes / `using namespace std`).
//! - [`passes`]: a [`Pass`] framework with an [`Analyzer`] registry and
//!   severity-tagged [`Diagnostic`]s. Five built-in passes detect
//!   undeclared identifiers, duplicate declarations, shadowing, unused
//!   variables, and unreachable code after `return`/`break`/`continue`.
//! - [`fingerprint`]: a normalized AST hash that quotients out names,
//!   layout, loop form, compound-assignment sugar, IO idiom and helper
//!   outlining, so `fingerprint(c0) == fingerprint(GPT(c0))` is
//!   assertable for every transform the simulator performs.
//! - [`cfg`] and [`dataflow`]: per-function control-flow graphs and a
//!   worklist fixed-point framework (reaching definitions, liveness,
//!   definite-uninitialization, constant propagation) powering the
//!   `use-before-init`/`dead-store` passes and the `df.*` attribution
//!   feature family.
//!
//! Diagnostics carry structural paths (`main/[3]/for/body/[0]`) rather
//! than source spans: paths stay stable across re-rendering, which is
//! what the transform pre/post gates compare.

pub mod cfg;
pub mod dataflow;
pub mod fingerprint;
pub mod passes;
pub mod resolve;

pub use cfg::Cfg;
pub use dataflow::{dead_stores, solve, use_before_init, Analysis, DataflowSummary, Direction};
pub use fingerprint::{fingerprint, fingerprint_source, normalize};
pub use passes::{error_count, new_errors, Analyzer, Context, Diagnostic, Pass, Severity};
pub use resolve::{resolve, Binding, BindingKind, Resolution, Undeclared};
