//! Per-function control-flow graphs over the C++ subset AST.
//!
//! [`Cfg::build_all`] lowers every function of a translation unit into
//! basic blocks of [`CfgStmt`]s — flat def/use records plus a lowered
//! arithmetic form ([`CExpr`]) for constant propagation — connected by
//! the edges `if`/`while`/`for`/range-`for`/`do-while`/`break`/
//! `continue`/`return` induce. The graph deliberately mirrors the
//! resolver's view of the program:
//!
//! * **Variable identity is scope-precise.** A scope stack identical to
//!   [`crate::resolve`]'s (params share the body's top-level scope, the
//!   `for`-init scope encloses cond/step/body, the range-`for` variable
//!   scopes to the body) maps each mention to a distinct [`VarId`], so
//!   shadowed names never alias.
//! * **Sites are structural paths.** Every [`CfgStmt`] carries the same
//!   `main/[3]/for/body/[0]`-shaped site string the resolver produces,
//!   so dataflow diagnostics land next to the existing passes' and stay
//!   stable under re-rendering.
//! * **IO defines.** `cin >> x` chains, `scanf("%d", &x)`-style
//!   address-of arguments, and `getline(cin, s)` all *assign* their
//!   target — without this every generated program would read
//!   "uninitialized" input variables.
//!
//! Only function-local variables (params, locals, range-`for`
//! variables) are tracked; globals, std names and functions are
//! invisible to the dataflow layer. Aggregate writes through an index
//! or member lvalue are conservatively recorded as *uses* of the base
//! (the previous contents survive a partial write, so the base must
//! stay live and its stores are never dead).

use std::collections::HashMap;
use synthattr_lang::ast::*;

/// Index of a basic block within [`Cfg::blocks`].
pub type BlockId = usize;

/// Index of a tracked variable within [`Cfg::vars`].
pub type VarId = usize;

/// One tracked function-local variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarInfo {
    /// Declared name (possibly shadowing another `VarInfo` of the same
    /// name — identity is the [`VarId`]).
    pub name: String,
    /// Structural path of the declaration site.
    pub site: String,
    /// Whether the variable is born uninitialized: a scalar local
    /// declared without an initializer. Params, range-`for` variables,
    /// arrays, containers and unknown named types are all considered
    /// initialized at birth (C++ value/default construction, or
    /// conservatism where the type is opaque).
    pub uninit_at_birth: bool,
    /// Whether the variable's address was taken outside a recognized
    /// IO idiom. Address-taken variables are excluded from the
    /// use-before-init and dead-store verdicts.
    pub addr_taken: bool,
}

/// Lowered right-hand side for constant propagation. Anything the
/// lattice cannot reason about folds to [`CExpr::Unknown`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CExpr {
    /// An integer constant (bools lower to 0/1, chars to their code).
    Const(i64),
    /// A tracked variable.
    Var(VarId),
    /// A unary operation.
    Unary(UnaryOp, Box<CExpr>),
    /// A binary operation.
    Binary(BinaryOp, Box<CExpr>, Box<CExpr>),
    /// Not representable in the constant lattice.
    Unknown,
}

/// One definition produced by a [`CfgStmt`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DefRec {
    /// The defined variable.
    pub var: VarId,
    /// Whether the dead-store pass may report this definition. IO
    /// reads, range-`for` headers and constructor initializers assign
    /// as a side effect of doing something else, so a dead value is
    /// not a *store* the author wrote for nothing.
    pub report_dead: bool,
}

/// One flattened statement inside a basic block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CfgStmt {
    /// Structural path (resolver-compatible).
    pub site: String,
    /// Tracked variables read, in evaluation order (duplicates kept).
    pub uses: Vec<VarId>,
    /// Variables fully (re)defined by this statement.
    pub defs: Vec<DefRec>,
    /// Lowered RHS when the statement is a single-target simple
    /// assignment or initialization; drives constant propagation.
    pub rhs: Option<CExpr>,
}

/// A maximal straight-line run of statements.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BasicBlock {
    /// Statements in execution order.
    pub stmts: Vec<CfgStmt>,
    /// Successor edges, in creation order (deterministic).
    pub succs: Vec<BlockId>,
    /// Predecessor edges (derived from `succs`).
    pub preds: Vec<BlockId>,
}

/// The control-flow graph of one function.
#[derive(Debug, Clone, PartialEq)]
pub struct Cfg {
    /// Function name.
    pub func: String,
    /// Basic blocks; `blocks[entry]` is the entry, `blocks[exit]` the
    /// single synthetic exit every `return` (and the fall-off end)
    /// feeds.
    pub blocks: Vec<BasicBlock>,
    /// Entry block id (always 0).
    pub entry: BlockId,
    /// Exit block id (always 1).
    pub exit: BlockId,
    /// Tracked variables, in declaration order.
    pub vars: Vec<VarInfo>,
}

impl Cfg {
    /// Builds one CFG per function definition in `unit`, in item
    /// order.
    pub fn build_all(unit: &TranslationUnit) -> Vec<Cfg> {
        let scalars = scalar_alias_map(unit);
        unit.items
            .iter()
            .filter_map(|item| match item {
                Item::Function(f) => Some(Cfg::build(f, &scalars)),
                _ => None,
            })
            .collect()
    }

    /// Builds the CFG of a single function. `scalar_aliases` maps
    /// typedef/using names to whether they resolve to a scalar type
    /// (see [`scalar_alias_map`]).
    pub fn build(f: &Function, scalar_aliases: &HashMap<String, bool>) -> Cfg {
        let mut b = Builder::new(f.name.clone(), scalar_aliases);
        // Parameters share the body's top-level scope and are defined
        // at entry.
        for p in &f.params {
            let v = b.declare(&p.name, false);
            b.blocks[b.cur].stmts.push(CfgStmt {
                site: f.name.clone(),
                uses: Vec::new(),
                defs: vec![DefRec {
                    var: v,
                    report_dead: false,
                }],
                rhs: None,
            });
        }
        b.stmts(&f.body.stmts);
        // Fall off the end of the body.
        b.edge(b.cur, EXIT);
        b.scopes.pop();
        let mut blocks = b.blocks;
        let nblocks = blocks.len();
        for id in 0..nblocks {
            let succs = blocks[id].succs.clone();
            for s in succs {
                blocks[s].preds.push(id);
            }
        }
        Cfg {
            func: f.name.clone(),
            blocks,
            entry: ENTRY,
            exit: EXIT,
            vars: b.vars,
        }
    }

    /// Blocks reachable from the entry, as a boolean per block.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        let mut stack = vec![self.entry];
        seen[self.entry] = true;
        while let Some(b) = stack.pop() {
            for &s in &self.blocks[b].succs {
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        seen
    }

    /// Reverse post-order over reachable blocks starting at the entry.
    /// This is the deterministic iteration order the fixed-point solver
    /// sweeps in; unreachable blocks are appended afterwards in index
    /// order so their facts still converge.
    pub fn rpo(&self) -> Vec<BlockId> {
        let mut visited = vec![false; self.blocks.len()];
        let mut post = Vec::with_capacity(self.blocks.len());
        // Iterative DFS with an explicit phase marker to emit
        // post-order without recursion.
        let mut stack: Vec<(BlockId, usize)> = vec![(self.entry, 0)];
        visited[self.entry] = true;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            if *next < self.blocks[b].succs.len() {
                let s = self.blocks[b].succs[*next];
                *next += 1;
                if !visited[s] {
                    visited[s] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        for (id, v) in visited.iter().enumerate() {
            if !v {
                post.push(id);
            }
        }
        post
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.blocks.iter().map(|b| b.succs.len()).sum()
    }
}

/// Maps every typedef/`using` alias in `unit` to whether it names a
/// scalar type (so `ll x;` with `typedef long long ll;` is tracked as
/// born-uninitialized). Aliases of aliases resolve through the map in
/// item order, matching how the subset's single-pass declarations work.
pub fn scalar_alias_map(unit: &TranslationUnit) -> HashMap<String, bool> {
    let mut map = HashMap::new();
    for item in &unit.items {
        if let Item::Typedef { ty, name } | Item::UsingAlias { name, ty } = item {
            map.insert(name.clone(), type_is_scalar(ty, &map));
        }
    }
    map
}

/// Whether a declared type is a scalar whose locals start life with an
/// indeterminate value. Containers, strings, `auto` and unknown named
/// types default-construct (or are opaque) and count as initialized.
fn type_is_scalar(ty: &Type, aliases: &HashMap<String, bool>) -> bool {
    match ty {
        Type::Bool
        | Type::Char
        | Type::Int
        | Type::Long
        | Type::LongLong
        | Type::Unsigned
        | Type::Float
        | Type::Double => true,
        Type::Named(n) => aliases.get(n.as_str()).copied().unwrap_or(false),
        Type::Const(inner) => type_is_scalar(inner, aliases),
        _ => false,
    }
}

const ENTRY: BlockId = 0;
const EXIT: BlockId = 1;

/// Break/continue targets of the innermost loop.
struct LoopCtx {
    brk: BlockId,
    cont: BlockId,
}

struct Builder<'a> {
    blocks: Vec<BasicBlock>,
    cur: BlockId,
    vars: Vec<VarInfo>,
    /// Innermost scope last; name -> VarId.
    scopes: Vec<HashMap<String, VarId>>,
    loops: Vec<LoopCtx>,
    path: Vec<String>,
    scalar_aliases: &'a HashMap<String, bool>,
}

impl<'a> Builder<'a> {
    fn new(func: String, scalar_aliases: &'a HashMap<String, bool>) -> Self {
        Builder {
            blocks: vec![BasicBlock::default(), BasicBlock::default()],
            cur: ENTRY,
            vars: Vec::new(),
            scopes: vec![HashMap::new()],
            loops: Vec::new(),
            path: vec![func],
            scalar_aliases,
        }
    }

    fn site(&self) -> String {
        self.path.join("/")
    }

    fn new_block(&mut self) -> BlockId {
        self.blocks.push(BasicBlock::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: BlockId, to: BlockId) {
        if !self.blocks[from].succs.contains(&to) {
            self.blocks[from].succs.push(to);
        }
    }

    fn declare(&mut self, name: &str, uninit: bool) -> VarId {
        let id = self.vars.len();
        self.vars.push(VarInfo {
            name: name.to_string(),
            site: self.site(),
            uninit_at_birth: uninit,
            addr_taken: false,
        });
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_string(), id);
        id
    }

    fn lookup(&self, name: &str) -> Option<VarId> {
        self.scopes.iter().rev().find_map(|s| s.get(name)).copied()
    }

    fn push_stmt(&mut self, stmt: CfgStmt) {
        self.blocks[self.cur].stmts.push(stmt);
    }

    fn stmts(&mut self, stmts: &[Stmt]) {
        for (i, stmt) in stmts.iter().enumerate() {
            self.path.push(format!("[{i}]"));
            self.stmt(stmt);
            self.path.pop();
        }
    }

    fn block(&mut self, label: &str, b: &Block) {
        self.path.push(label.to_string());
        self.scopes.push(HashMap::new());
        self.stmts(&b.stmts);
        self.scopes.pop();
        self.path.pop();
    }

    fn stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Decl(d) => self.declaration(d),
            Stmt::Expr(e) => {
                let s = self.flatten_expr(e);
                self.push_stmt(s);
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = self.flatten_cond(cond);
                self.push_stmt(c);
                let here = self.cur;
                let after = self.new_block();
                let then_b = self.new_block();
                self.edge(here, then_b);
                self.cur = then_b;
                self.block("then", then_branch);
                self.edge(self.cur, after);
                match else_branch {
                    Some(e) => {
                        let else_b = self.new_block();
                        self.edge(here, else_b);
                        self.cur = else_b;
                        self.block("else", e);
                        self.edge(self.cur, after);
                    }
                    None => self.edge(here, after),
                }
                self.cur = after;
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.path.push("for".into());
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.path.push("init".into());
                    self.stmt(i);
                    self.path.pop();
                }
                let cond_b = self.new_block();
                let body_b = self.new_block();
                let step_b = self.new_block();
                let after = self.new_block();
                self.edge(self.cur, cond_b);
                self.cur = cond_b;
                match cond {
                    Some(c) => {
                        let s = self.flatten_cond(c);
                        self.push_stmt(s);
                        self.edge(cond_b, body_b);
                        self.edge(cond_b, after);
                    }
                    None => self.edge(cond_b, body_b),
                }
                self.loops.push(LoopCtx {
                    brk: after,
                    cont: step_b,
                });
                self.cur = body_b;
                self.block("body", body);
                self.edge(self.cur, step_b);
                self.loops.pop();
                self.cur = step_b;
                if let Some(s) = step {
                    let st = self.flatten_expr(s);
                    self.push_stmt(st);
                }
                self.edge(step_b, cond_b);
                self.scopes.pop();
                self.path.pop();
                self.cur = after;
            }
            Stmt::ForEach {
                ty: _,
                name,
                by_ref: _,
                iterable,
                body,
            } => {
                // The iterable is evaluated once, in the enclosing
                // scope.
                let it = self.flatten_cond(iterable);
                self.push_stmt(it);
                let head = self.new_block();
                let body_b = self.new_block();
                let after = self.new_block();
                self.edge(self.cur, head);
                self.path.push("foreach".into());
                self.scopes.push(HashMap::new());
                // The header defines the loop variable each iteration.
                let v = self.declare(name, false);
                let head_site = self.site();
                self.blocks[head].stmts.push(CfgStmt {
                    site: head_site,
                    uses: Vec::new(),
                    defs: vec![DefRec {
                        var: v,
                        report_dead: false,
                    }],
                    rhs: None,
                });
                self.edge(head, body_b);
                self.edge(head, after);
                self.loops.push(LoopCtx {
                    brk: after,
                    cont: head,
                });
                self.cur = body_b;
                self.block("body", body);
                self.edge(self.cur, head);
                self.loops.pop();
                self.scopes.pop();
                self.path.pop();
                self.cur = after;
            }
            Stmt::While { cond, body } => {
                let cond_b = self.new_block();
                let body_b = self.new_block();
                let after = self.new_block();
                self.edge(self.cur, cond_b);
                self.cur = cond_b;
                let c = self.flatten_cond(cond);
                self.push_stmt(c);
                self.edge(cond_b, body_b);
                self.edge(cond_b, after);
                self.loops.push(LoopCtx {
                    brk: after,
                    cont: cond_b,
                });
                self.cur = body_b;
                self.block("while", body);
                self.edge(self.cur, cond_b);
                self.loops.pop();
                self.cur = after;
            }
            Stmt::DoWhile { body, cond } => {
                let body_b = self.new_block();
                let cond_b = self.new_block();
                let after = self.new_block();
                self.edge(self.cur, body_b);
                self.loops.push(LoopCtx {
                    brk: after,
                    cont: cond_b,
                });
                self.cur = body_b;
                self.block("do", body);
                self.edge(self.cur, cond_b);
                self.loops.pop();
                self.cur = cond_b;
                let c = self.flatten_cond(cond);
                self.push_stmt(c);
                self.edge(cond_b, body_b);
                self.edge(cond_b, after);
                self.cur = after;
            }
            Stmt::Return(e) => {
                if let Some(e) = e {
                    let s = self.flatten_cond(e);
                    self.push_stmt(s);
                }
                self.edge(self.cur, EXIT);
                // Anything after a return in the same block is
                // unreachable; give it a fresh, predecessor-less block.
                self.cur = self.new_block();
            }
            Stmt::Break => {
                if let Some(l) = self.loops.last() {
                    let t = l.brk;
                    self.edge(self.cur, t);
                }
                self.cur = self.new_block();
            }
            Stmt::Continue => {
                if let Some(l) = self.loops.last() {
                    let t = l.cont;
                    self.edge(self.cur, t);
                }
                self.cur = self.new_block();
            }
            Stmt::Block(b) => self.block("block", b),
            Stmt::Comment(_) | Stmt::Empty => {}
        }
    }

    fn declaration(&mut self, d: &Declaration) {
        let scalar = type_is_scalar(&d.ty, self.scalar_aliases);
        for dd in &d.declarators {
            let mut acc = Acc::default();
            if let Some(extent) = &dd.array {
                self.scan_expr(extent, &mut acc);
            }
            match &dd.init {
                Some(Initializer::Assign(e)) => {
                    self.scan_expr(e, &mut acc);
                    // Scan and lower *before* the name binds (`int x =
                    // x;` must not see itself), mirroring the resolver.
                    let rhs = self.lower(e);
                    let v = self.declare(&dd.name, false);
                    acc.defs.push(DefRec {
                        var: v,
                        report_dead: dd.array.is_none(),
                    });
                    self.push_stmt(CfgStmt {
                        site: self.site(),
                        uses: acc.uses,
                        defs: acc.defs,
                        rhs: Some(rhs),
                    });
                }
                Some(Initializer::Ctor(args)) => {
                    for a in args {
                        self.scan_expr(a, &mut acc);
                    }
                    let v = self.declare(&dd.name, false);
                    acc.defs.push(DefRec {
                        var: v,
                        report_dead: false,
                    });
                    self.push_stmt(CfgStmt {
                        site: self.site(),
                        uses: acc.uses,
                        defs: acc.defs,
                        rhs: None,
                    });
                }
                None => {
                    // Born uninitialized only when scalar and not an
                    // array (aggregate element tracking is out of
                    // scope).
                    let uninit = scalar && dd.array.is_none();
                    self.declare(&dd.name, uninit);
                    if !acc.uses.is_empty() {
                        // Array extents may still read variables.
                        self.push_stmt(CfgStmt {
                            site: self.site(),
                            uses: acc.uses,
                            defs: Vec::new(),
                            rhs: None,
                        });
                    }
                }
            }
        }
    }

    /// Flattens a full expression statement into one [`CfgStmt`].
    fn flatten_expr(&mut self, e: &Expr) -> CfgStmt {
        let mut acc = Acc::default();
        self.scan_expr(e, &mut acc);
        // A single simple assignment to a tracked variable carries a
        // lowered RHS for constant propagation.
        let rhs = match e.unparenthesized() {
            Expr::Assign {
                op: AssignOp::Assign,
                lhs,
                rhs,
            } if matches!(lhs.unparenthesized(), Expr::Ident(n) if self.lookup(n).is_some()) => {
                Some(self.lower(rhs))
            }
            _ => None,
        };
        CfgStmt {
            site: self.site(),
            uses: acc.uses,
            defs: acc.defs,
            rhs,
        }
    }

    /// Flattens a condition or value expression (no lowered RHS).
    fn flatten_cond(&mut self, e: &Expr) -> CfgStmt {
        let mut acc = Acc::default();
        self.scan_expr(e, &mut acc);
        CfgStmt {
            site: self.site(),
            uses: acc.uses,
            defs: acc.defs,
            rhs: None,
        }
    }

    /// Collects uses and defs of `e` in evaluation order.
    fn scan_expr(&mut self, e: &Expr, acc: &mut Acc) {
        match e {
            Expr::Ident(name) => {
                if let Some(v) = self.lookup(name) {
                    acc.uses.push(v);
                }
            }
            Expr::Unary { op, expr } => match op {
                UnaryOp::PreInc | UnaryOp::PreDec | UnaryOp::PostInc | UnaryOp::PostDec => {
                    match expr.unparenthesized() {
                        Expr::Ident(name) => {
                            if let Some(v) = self.lookup(name) {
                                // Read-modify-write.
                                acc.uses.push(v);
                                acc.defs.push(DefRec {
                                    var: v,
                                    report_dead: true,
                                });
                            }
                        }
                        other => self.scan_expr(other, acc),
                    }
                }
                UnaryOp::AddrOf => match expr.unparenthesized() {
                    // `&x` exists in the subset for scanf-style IO:
                    // the callee writes through it, so it defines.
                    Expr::Ident(name) => {
                        if let Some(v) = self.lookup(name) {
                            self.vars[v].addr_taken = true;
                            acc.defs.push(DefRec {
                                var: v,
                                report_dead: false,
                            });
                        }
                    }
                    other => self.scan_expr(other, acc),
                },
                _ => self.scan_expr(expr, acc),
            },
            Expr::Binary { op, lhs, rhs } => {
                if *op == BinaryOp::Shr && is_cin_chain(lhs) {
                    // `cin >> x >> y`: every chained target is defined.
                    self.scan_expr(lhs, acc);
                    match rhs.unparenthesized() {
                        Expr::Ident(name) => {
                            if let Some(v) = self.lookup(name) {
                                acc.defs.push(DefRec {
                                    var: v,
                                    report_dead: false,
                                });
                            }
                        }
                        other => self.scan_expr(other, acc),
                    }
                } else {
                    self.scan_expr(lhs, acc);
                    self.scan_expr(rhs, acc);
                }
            }
            Expr::Assign { op, lhs, rhs } => {
                // RHS evaluates first.
                self.scan_expr(rhs, acc);
                match lhs.unparenthesized() {
                    Expr::Ident(name) => {
                        if let Some(v) = self.lookup(name) {
                            if *op != AssignOp::Assign {
                                acc.uses.push(v);
                            }
                            acc.defs.push(DefRec {
                                var: v,
                                report_dead: true,
                            });
                        }
                    }
                    // A write through an index or member lvalue only
                    // *partially* updates the base: record the whole
                    // lvalue as uses so the base stays live.
                    other => self.scan_expr(other, acc),
                }
            }
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                self.scan_expr(cond, acc);
                self.scan_expr(then_expr, acc);
                self.scan_expr(else_expr, acc);
            }
            Expr::Call { callee, args } => {
                if let Expr::Ident(name) = callee.unparenthesized() {
                    if name == "getline" && args.len() >= 2 {
                        // `getline(cin, s)` assigns its second
                        // argument.
                        self.scan_expr(&args[0], acc);
                        if let Expr::Ident(target) = args[1].unparenthesized() {
                            if let Some(v) = self.lookup(target) {
                                acc.defs.push(DefRec {
                                    var: v,
                                    report_dead: false,
                                });
                            }
                        } else {
                            self.scan_expr(&args[1], acc);
                        }
                        for a in &args[2..] {
                            self.scan_expr(a, acc);
                        }
                        return;
                    }
                }
                self.scan_expr(callee, acc);
                for a in args {
                    self.scan_expr(a, acc);
                }
            }
            Expr::Member { base, .. } => self.scan_expr(base, acc),
            Expr::Index { base, index } => {
                self.scan_expr(base, acc);
                self.scan_expr(index, acc);
            }
            Expr::Cast { expr, .. } | Expr::StaticCast { expr, .. } | Expr::Paren(expr) => {
                self.scan_expr(expr, acc)
            }
            Expr::InitList(elems) => {
                for e in elems {
                    self.scan_expr(e, acc);
                }
            }
            Expr::Int(_) | Expr::Float(_) | Expr::Str(_) | Expr::Char(_) | Expr::Bool(_) => {}
        }
    }

    /// Lowers an expression into the constant-propagation form.
    fn lower(&self, e: &Expr) -> CExpr {
        match e {
            Expr::Int(v) => CExpr::Const(*v),
            Expr::Bool(b) => CExpr::Const(*b as i64),
            Expr::Char(c) => CExpr::Const(*c as i64),
            Expr::Ident(name) => match self.lookup(name) {
                Some(v) => CExpr::Var(v),
                None => CExpr::Unknown,
            },
            Expr::Unary { op, expr } => match op {
                UnaryOp::Neg | UnaryOp::Plus | UnaryOp::Not | UnaryOp::BitNot => {
                    CExpr::Unary(*op, Box::new(self.lower(expr)))
                }
                _ => CExpr::Unknown,
            },
            Expr::Binary { op, lhs, rhs } => match op {
                BinaryOp::Shl | BinaryOp::Shr => CExpr::Unknown,
                _ => CExpr::Binary(*op, Box::new(self.lower(lhs)), Box::new(self.lower(rhs))),
            },
            Expr::Paren(inner) => self.lower(inner),
            Expr::Cast { expr, ty } | Expr::StaticCast { expr, ty } => {
                // Integer-to-integer casts preserve small constants.
                if type_is_scalar(ty, self.scalar_aliases)
                    && !matches!(ty, Type::Float | Type::Double)
                {
                    self.lower(expr)
                } else {
                    CExpr::Unknown
                }
            }
            _ => CExpr::Unknown,
        }
    }
}

/// Whether `e` is a `cin`-rooted `>>` chain (the lhs of a stream read).
pub(crate) fn is_cin_chain(e: &Expr) -> bool {
    match e.unparenthesized() {
        Expr::Ident(n) => n == "cin",
        Expr::Binary {
            op: BinaryOp::Shr,
            lhs,
            ..
        } => is_cin_chain(lhs),
        _ => false,
    }
}

/// Accumulated uses/defs of one statement.
#[derive(Default)]
struct Acc {
    uses: Vec<VarId>,
    defs: Vec<DefRec>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use synthattr_lang::parse;

    fn cfg_of(src: &str) -> Cfg {
        let unit = parse(src).expect("test source parses");
        let mut cfgs = Cfg::build_all(&unit);
        assert!(!cfgs.is_empty(), "no functions in test source");
        cfgs.remove(0)
    }

    fn var(cfg: &Cfg, name: &str) -> VarId {
        cfg.vars
            .iter()
            .position(|v| v.name == name)
            .unwrap_or_else(|| panic!("no var {name}"))
    }

    #[test]
    fn straight_line_is_one_block_plus_exit() {
        let cfg = cfg_of("int main() { int a = 1; int b = a + 2; return b; }");
        assert_eq!(cfg.blocks[cfg.entry].stmts.len(), 3);
        assert_eq!(cfg.blocks[cfg.entry].succs, vec![cfg.exit]);
        assert!(cfg.blocks[cfg.exit].succs.is_empty());
    }

    #[test]
    fn if_else_diamonds() {
        let cfg =
            cfg_of("int main() { int x = 1; if (x > 0) { x = 2; } else { x = 3; } return x; }");
        // entry -> then, else; then -> after; else -> after.
        let entry_succs = &cfg.blocks[cfg.entry].succs;
        assert_eq!(entry_succs.len(), 2);
        let after = cfg.blocks[entry_succs[0]].succs[0];
        assert_eq!(cfg.blocks[entry_succs[1]].succs, vec![after]);
        assert_eq!(cfg.blocks[after].preds.len(), 2);
    }

    #[test]
    fn while_loop_has_back_edge() {
        let cfg = cfg_of("int main() { int n = 3; while (n > 0) { n = n - 1; } return n; }");
        let rpo = cfg.rpo();
        let pos: HashMap<BlockId, usize> = rpo.iter().enumerate().map(|(i, &b)| (b, i)).collect();
        let reach = cfg.reachable();
        let mut back = 0;
        for (id, b) in cfg.blocks.iter().enumerate() {
            if !reach[id] {
                continue;
            }
            for &s in &b.succs {
                if pos[&s] <= pos[&id] {
                    back += 1;
                }
            }
        }
        assert_eq!(back, 1, "one back edge for one loop");
    }

    #[test]
    fn break_and_continue_target_the_right_blocks() {
        let cfg = cfg_of(
            "int main() { int s = 0; for (int i = 0; i < 9; i++) { if (i == 2) { continue; } if (i == 5) { break; } s = s + i; } return s; }",
        );
        // Both exits exist and the graph stays connected: every
        // reachable non-exit block has a successor.
        let reach = cfg.reachable();
        for (id, b) in cfg.blocks.iter().enumerate() {
            if reach[id] && id != cfg.exit {
                assert!(!b.succs.is_empty(), "reachable block {id} dead-ends");
            }
        }
    }

    #[test]
    fn cin_chain_defines_all_targets() {
        let cfg = cfg_of(
            "#include <iostream>\nusing namespace std;\nint main() { int a; int b; cin >> a >> b; return a + b; }",
        );
        let read = cfg.blocks[cfg.entry]
            .stmts
            .iter()
            .find(|s| !s.defs.is_empty())
            .expect("read stmt");
        let defined: Vec<&str> = read
            .defs
            .iter()
            .map(|d| cfg.vars[d.var].name.as_str())
            .collect();
        assert_eq!(defined, vec!["a", "b"]);
        assert!(read.defs.iter().all(|d| !d.report_dead));
    }

    #[test]
    fn scanf_addrof_defines() {
        let cfg = cfg_of("#include <cstdio>\nint main() { int n; scanf(\"%d\", &n); return n; }");
        let n = var(&cfg, "n");
        assert!(cfg.vars[n].uninit_at_birth);
        assert!(cfg.vars[n].addr_taken);
        let has_def = cfg.blocks[cfg.entry]
            .stmts
            .iter()
            .any(|s| s.defs.iter().any(|d| d.var == n));
        assert!(has_def, "scanf must define n");
    }

    #[test]
    fn index_write_uses_base_without_defining() {
        let cfg = cfg_of("int main() { int a[10]; int i = 0; a[i] = 5; return a[0]; }");
        let a = var(&cfg, "a");
        assert!(
            !cfg.vars[a].uninit_at_birth,
            "arrays are not uninit-tracked"
        );
        for b in &cfg.blocks {
            for s in &b.stmts {
                assert!(
                    s.defs.iter().all(|d| d.var != a),
                    "array base must never be fully defined"
                );
            }
        }
    }

    #[test]
    fn shadowed_names_get_distinct_var_ids() {
        let cfg =
            cfg_of("int main() { int v = 1; if (v > 0) { int v = 2; v = v + 1; } return v; }");
        let ids: Vec<VarId> = cfg
            .vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.name == "v")
            .map(|(i, _)| i)
            .collect();
        assert_eq!(ids.len(), 2, "{:?}", cfg.vars);
    }

    #[test]
    fn typedef_scalars_are_uninit_tracked() {
        let cfg = cfg_of("typedef long long ll;\nint main() { ll x; x = 4; return (int)x; }");
        let x = var(&cfg, "x");
        assert!(cfg.vars[x].uninit_at_birth);
    }

    #[test]
    fn foreach_header_defines_loop_var() {
        let cfg = cfg_of(
            "#include <vector>\nusing namespace std;\nint main() { vector<int> v; int s = 0; for (int x : v) { s = s + x; } return s; }",
        );
        let x = var(&cfg, "x");
        let defs_x = cfg
            .blocks
            .iter()
            .flat_map(|b| &b.stmts)
            .filter(|s| s.defs.iter().any(|d| d.var == x))
            .count();
        assert_eq!(defs_x, 1);
    }

    #[test]
    fn do_while_body_precedes_cond() {
        let cfg = cfg_of("int main() { int n = 0; do { n = n + 1; } while (n < 3); return n; }");
        // Entry flows into the body, not a condition block.
        let body = cfg.blocks[cfg.entry].succs[0];
        assert!(
            cfg.blocks[body].stmts.iter().any(|s| !s.defs.is_empty()),
            "entry successor must be the body"
        );
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable_blocks() {
        let cfg = cfg_of(
            "int main() { int s = 0; for (int i = 0; i < 4; i++) { if (i % 2 == 0) { s = s + i; } } return s; }",
        );
        let rpo = cfg.rpo();
        assert_eq!(rpo[0], cfg.entry);
        assert_eq!(rpo.len(), cfg.blocks.len());
        let mut sorted = rpo.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), cfg.blocks.len(), "rpo must be a permutation");
    }

    #[test]
    fn sites_match_resolver_conventions() {
        let cfg = cfg_of(
            "int main() { int x = 0; for (int i = 0; i < 3; i++) { x = x + i; } return x; }",
        );
        let sites: Vec<&str> = cfg
            .blocks
            .iter()
            .flat_map(|b| &b.stmts)
            .map(|s| s.site.as_str())
            .collect();
        assert!(sites.contains(&"main/[0]"), "{sites:?}");
        assert!(sites.contains(&"main/[1]/for/init"), "{sites:?}");
        assert!(sites.contains(&"main/[1]/for/body/[0]"), "{sites:?}");
    }
}
