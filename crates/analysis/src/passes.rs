//! The diagnostic pass framework and the built-in passes.
//!
//! A [`Pass`] inspects a resolved translation unit and appends
//! [`Diagnostic`]s. The [`Analyzer`] owns a pass registry, resolves the
//! unit once, and hands every pass the shared [`Context`].
//!
//! Severity policy: anything that would fail to compile or read an
//! unbound name is an [`Severity::Error`]; style and dead-code findings
//! are [`Severity::Warning`]s. The transformation gates only reject
//! *new* errors, so a warning-heavy human seed still transforms.

use crate::cfg::Cfg;
use crate::dataflow::{dead_stores, use_before_init};
use crate::resolve::{resolve, Resolution};
use std::collections::HashMap;
use std::sync::OnceLock;
use synthattr_lang::ast::*;
use synthattr_lang::{parse, ParseError};

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but well-formed code.
    Warning,
    /// Code that is broken (unbound name, conflicting declaration).
    Error,
}

impl Severity {
    /// Lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding from one pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Name of the pass that produced the finding.
    pub pass: &'static str,
    /// Severity of the finding.
    pub severity: Severity,
    /// Structural path of the offending node (see [`crate::resolve`]).
    pub site: String,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}[{}] at {}: {}",
            self.severity.label(),
            self.pass,
            self.site,
            self.message
        )
    }
}

/// Shared input handed to every pass.
pub struct Context<'a> {
    /// The unit under analysis.
    pub unit: &'a TranslationUnit,
    /// Its resolution (bindings, use counts, unresolved uses).
    pub resolution: &'a Resolution,
    /// Per-function CFGs, built on first demand and shared by every
    /// dataflow pass.
    cfgs: OnceLock<Vec<Cfg>>,
}

impl<'a> Context<'a> {
    /// A context over `unit` and its `resolution`.
    pub fn new(unit: &'a TranslationUnit, resolution: &'a Resolution) -> Self {
        Context {
            unit,
            resolution,
            cfgs: OnceLock::new(),
        }
    }

    /// The unit's per-function CFGs (built at most once per context).
    pub fn cfgs(&self) -> &[Cfg] {
        self.cfgs.get_or_init(|| Cfg::build_all(self.unit))
    }
}

/// A single analysis pass.
pub trait Pass {
    /// Stable pass name (used in reports and gate accounting).
    fn name(&self) -> &'static str;

    /// The severity of every diagnostic this pass emits. Gates reject
    /// on [`Severity::Error`] only, so this is the pass's contract with
    /// the pipeline, not a per-finding judgment call.
    fn severity(&self) -> Severity;

    /// Appends findings for `ctx` to `out`.
    fn run(&self, ctx: &Context<'_>, out: &mut Vec<Diagnostic>);
}

/// The pass registry: resolves once, runs every registered pass.
pub struct Analyzer {
    passes: Vec<Box<dyn Pass + Send + Sync>>,
}

impl Analyzer {
    /// An analyzer with every built-in pass registered.
    pub fn new() -> Self {
        Analyzer {
            passes: vec![
                Box::new(UndeclaredIdentifier),
                Box::new(DuplicateDeclaration),
                Box::new(UseBeforeInit),
                Box::new(VariableShadowing),
                Box::new(UnusedVariable),
                Box::new(DeadStore),
                Box::new(UnreachableCode),
            ],
        }
    }

    /// An analyzer with no passes; use [`Analyzer::register`].
    pub fn empty() -> Self {
        Analyzer { passes: Vec::new() }
    }

    /// Adds a pass to the registry.
    pub fn register(&mut self, pass: Box<dyn Pass + Send + Sync>) -> &mut Self {
        self.passes.push(pass);
        self
    }

    /// Names of the registered passes, in run order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Name and severity of the registered passes, in run order.
    pub fn pass_summaries(&self) -> Vec<(&'static str, Severity)> {
        self.passes
            .iter()
            .map(|p| (p.name(), p.severity()))
            .collect()
    }

    /// Runs every pass over `unit`.
    pub fn analyze(&self, unit: &TranslationUnit) -> Vec<Diagnostic> {
        let resolution = resolve(unit);
        let ctx = Context::new(unit, &resolution);
        let mut out = Vec::new();
        for pass in &self.passes {
            pass.run(&ctx, &mut out);
        }
        out
    }

    /// Parses `source` and runs every pass.
    ///
    /// # Errors
    ///
    /// Returns the parse error when `source` is outside the subset.
    pub fn analyze_source(&self, source: &str) -> Result<Vec<Diagnostic>, ParseError> {
        Ok(self.analyze(&parse(source)?))
    }
}

impl Default for Analyzer {
    fn default() -> Self {
        Self::new()
    }
}

/// Number of error-severity diagnostics in `diags`.
pub fn error_count(diags: &[Diagnostic]) -> usize {
    diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count()
}

/// Errors present in `post` beyond the per-pass error budget set by
/// `pre`.
///
/// Diagnostics are compared by per-pass *count*, not by site: structural
/// rewrites legitimately move statements around, so sites shift, but a
/// semantics-preserving transformation can never increase the number of
/// errors a pass reports.
pub fn new_errors<'a>(pre: &[Diagnostic], post: &'a [Diagnostic]) -> Vec<&'a Diagnostic> {
    let mut budget: HashMap<&'static str, usize> = HashMap::new();
    for d in pre {
        if d.severity == Severity::Error {
            *budget.entry(d.pass).or_insert(0) += 1;
        }
    }
    let mut fresh = Vec::new();
    for d in post {
        if d.severity != Severity::Error {
            continue;
        }
        match budget.get_mut(d.pass) {
            Some(n) if *n > 0 => *n -= 1,
            _ => fresh.push(d),
        }
    }
    fresh
}

// ---------------------------------------------------------------------------
// Built-in passes
// ---------------------------------------------------------------------------

/// Reports identifier uses that resolve to no binding and no std name.
/// One diagnostic per distinct name (the first site), to keep a single
/// orphaned variable from flooding the report.
pub struct UndeclaredIdentifier;

impl Pass for UndeclaredIdentifier {
    fn name(&self) -> &'static str {
        "undeclared-identifier"
    }

    fn severity(&self) -> Severity {
        Severity::Error
    }

    fn run(&self, ctx: &Context<'_>, out: &mut Vec<Diagnostic>) {
        let mut counts: Vec<(&str, &str, usize)> = Vec::new();
        for u in &ctx.resolution.undeclared {
            match counts.iter_mut().find(|(n, _, _)| *n == u.name) {
                Some((_, _, c)) => *c += 1,
                None => counts.push((&u.name, &u.site, 1)),
            }
        }
        for (name, site, uses) in counts {
            out.push(Diagnostic {
                pass: self.name(),
                severity: self.severity(),
                site: site.to_string(),
                message: if uses == 1 {
                    format!("use of undeclared identifier `{name}`")
                } else {
                    format!("use of undeclared identifier `{name}` ({uses} uses)")
                },
            });
        }
    }
}

/// Reports two declarations of the same name in the same scope.
pub struct DuplicateDeclaration;

impl Pass for DuplicateDeclaration {
    fn name(&self) -> &'static str {
        "duplicate-declaration"
    }

    fn severity(&self) -> Severity {
        Severity::Error
    }

    fn run(&self, ctx: &Context<'_>, out: &mut Vec<Diagnostic>) {
        for b in &ctx.resolution.bindings {
            if let Some(first) = b.duplicate_of {
                let original = &ctx.resolution.bindings[first];
                out.push(Diagnostic {
                    pass: self.name(),
                    severity: self.severity(),
                    site: b.site.clone(),
                    message: format!(
                        "`{}` redeclared in the same scope (first declared at {})",
                        b.name, original.site
                    ),
                });
            }
        }
    }
}

/// Reports an inner-scope declaration hiding an outer one.
pub struct VariableShadowing;

impl Pass for VariableShadowing {
    fn name(&self) -> &'static str {
        "variable-shadowing"
    }

    fn severity(&self) -> Severity {
        Severity::Warning
    }

    fn run(&self, ctx: &Context<'_>, out: &mut Vec<Diagnostic>) {
        for b in &ctx.resolution.bindings {
            if let Some(outer) = b.shadows {
                let hidden = &ctx.resolution.bindings[outer];
                out.push(Diagnostic {
                    pass: self.name(),
                    severity: self.severity(),
                    site: b.site.clone(),
                    message: format!("`{}` shadows the declaration at {}", b.name, hidden.site),
                });
            }
        }
    }
}

/// Reports variables (globals, params, locals, loop variables) that are
/// never mentioned after declaration, and — reconciled with the
/// liveness-based [`DeadStore`] pass — write-only variables that are
/// assigned but never read back.
pub struct UnusedVariable;

impl Pass for UnusedVariable {
    fn name(&self) -> &'static str {
        "unused-variable"
    }

    fn severity(&self) -> Severity {
        Severity::Warning
    }

    fn run(&self, ctx: &Context<'_>, out: &mut Vec<Diagnostic>) {
        for b in &ctx.resolution.bindings {
            if !b.kind.is_variable() || b.duplicate_of.is_some() {
                continue;
            }
            if b.uses == 0 {
                out.push(Diagnostic {
                    pass: self.name(),
                    severity: self.severity(),
                    site: b.site.clone(),
                    message: format!("variable `{}` is never used", b.name),
                });
            } else if b.reads == 0 {
                out.push(Diagnostic {
                    pass: self.name(),
                    severity: self.severity(),
                    site: b.site.clone(),
                    message: format!("variable `{}` is assigned but never read", b.name),
                });
            }
        }
    }
}

/// Reports reads of variables that are definitely unassigned — no path
/// from function entry stores a value first. Backed by the must-variant
/// uninitialized-variable analysis over the per-function CFGs, so
/// "assigned on one branch only" patterns (which semantics-preserving
/// transforms rearrange freely) are deliberately not reported.
pub struct UseBeforeInit;

impl Pass for UseBeforeInit {
    fn name(&self) -> &'static str {
        "use-before-init"
    }

    fn severity(&self) -> Severity {
        Severity::Error
    }

    fn run(&self, ctx: &Context<'_>, out: &mut Vec<Diagnostic>) {
        for cfg in ctx.cfgs() {
            for (site, name) in use_before_init(cfg) {
                out.push(Diagnostic {
                    pass: self.name(),
                    severity: self.severity(),
                    site,
                    message: format!("`{name}` is read before any value is assigned"),
                });
            }
        }
    }
}

/// Reports stores whose value can never be read (liveness-based, over
/// the per-function CFGs). Only explicit assignments and scalar
/// initializers are eligible; IO-written and address-taken variables
/// are exempt.
pub struct DeadStore;

impl Pass for DeadStore {
    fn name(&self) -> &'static str {
        "dead-store"
    }

    fn severity(&self) -> Severity {
        Severity::Warning
    }

    fn run(&self, ctx: &Context<'_>, out: &mut Vec<Diagnostic>) {
        for cfg in ctx.cfgs() {
            for (site, name) in dead_stores(cfg) {
                out.push(Diagnostic {
                    pass: self.name(),
                    severity: self.severity(),
                    site,
                    message: format!("value assigned to `{name}` is never read"),
                });
            }
        }
    }
}

/// Reports statements that follow an unconditional `return`, `break` or
/// `continue` inside the same block (one diagnostic per block).
pub struct UnreachableCode;

impl Pass for UnreachableCode {
    fn name(&self) -> &'static str {
        "unreachable-code"
    }

    fn severity(&self) -> Severity {
        Severity::Warning
    }

    fn run(&self, ctx: &Context<'_>, out: &mut Vec<Diagnostic>) {
        for item in &ctx.unit.items {
            if let Item::Function(f) = item {
                let mut path = vec![f.name.clone()];
                check_block(&f.body, &mut path, self.name(), out);
            }
        }
    }
}

fn check_block(
    block: &Block,
    path: &mut Vec<String>,
    pass: &'static str,
    out: &mut Vec<Diagnostic>,
) {
    let mut terminated_at: Option<(usize, &'static str)> = None;
    for (i, stmt) in block.stmts.iter().enumerate() {
        if let Some((t, what)) = terminated_at {
            if !matches!(stmt, Stmt::Comment(_) | Stmt::Empty) {
                out.push(Diagnostic {
                    pass,
                    severity: UnreachableCode.severity(),
                    site: format!("{}/[{}]", path.join("/"), i),
                    message: format!("statement is unreachable after the `{what}` at [{t}]"),
                });
                break;
            }
            continue;
        }
        match stmt {
            Stmt::Return(_) => terminated_at = Some((i, "return")),
            Stmt::Break => terminated_at = Some((i, "break")),
            Stmt::Continue => terminated_at = Some((i, "continue")),
            _ => {}
        }
    }
    // Recurse into nested blocks (reachable ones and all — nested dead
    // code inside an unreachable region is reported once, at the top).
    for (i, stmt) in block.stmts.iter().enumerate() {
        path.push(format!("[{i}]"));
        match stmt {
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                path.push("then".into());
                check_block(then_branch, path, pass, out);
                path.pop();
                if let Some(e) = else_branch {
                    path.push("else".into());
                    check_block(e, path, pass, out);
                    path.pop();
                }
            }
            Stmt::For { body, .. }
            | Stmt::ForEach { body, .. }
            | Stmt::While { body, .. }
            | Stmt::DoWhile { body, .. } => check_block(body, path, pass, out),
            Stmt::Block(b) => check_block(b, path, pass, out),
            _ => {}
        }
        path.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(src: &str) -> Vec<Diagnostic> {
        Analyzer::new()
            .analyze_source(src)
            .expect("test source parses")
    }

    #[test]
    fn clean_unit_is_clean() {
        let d = diags(
            "#include <iostream>\nusing namespace std;\nint main() { int n = 2; cout << n; return 0; }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn new_errors_respects_preexisting_budget() {
        let pre = diags("#include <iostream>\nint main() { return ghost; }");
        assert_eq!(error_count(&pre), 1);
        // Same error still present: not new.
        assert!(new_errors(&pre, &pre).is_empty());
        // A second distinct undeclared name exceeds the budget.
        let post = diags("#include <iostream>\nint main() { int a = ghost; return phantom; }");
        assert_eq!(new_errors(&pre, &post).len(), 1);
        // Against an empty baseline everything is new.
        assert_eq!(new_errors(&[], &post).len(), 2);
    }

    #[test]
    fn analyzer_reports_each_defect_kind() {
        let d = diags(
            r#"
#include <iostream>
using namespace std;
int main() {
    int a = 1;
    int a = 2;
    int dead;
    if (a > 0) {
        int a = 3;
        cout << a << missing;
    }
    return 0;
    cout << a;
}
"#,
        );
        let passes: Vec<&str> = d.iter().map(|x| x.pass).collect();
        assert!(passes.contains(&"undeclared-identifier"), "{d:?}");
        assert!(passes.contains(&"duplicate-declaration"), "{d:?}");
        assert!(passes.contains(&"variable-shadowing"), "{d:?}");
        assert!(passes.contains(&"unused-variable"), "{d:?}");
        assert!(passes.contains(&"unreachable-code"), "{d:?}");
    }

    #[test]
    fn display_formats_site_and_pass() {
        let d = diags("#include <iostream>\nint main() { return ghost; }");
        let text = d[0].to_string();
        assert!(text.contains("error[undeclared-identifier]"), "{text}");
        assert!(text.contains("ghost"), "{text}");
    }
}
