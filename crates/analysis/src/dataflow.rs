//! Generic worklist fixed-point dataflow over [`crate::cfg`], and the
//! four analyses the lint passes and feature extractor consume.
//!
//! The framework is the classic iterative scheme: an [`Analysis`]
//! names its [`Direction`], a boundary fact (function entry for
//! forward analyses, the synthetic exit for backward ones), an
//! optimistic initial fact for every other block, a lattice `join`,
//! and a per-block `transfer`. [`solve`] sweeps the blocks in reverse
//! post-order (post-order for backward analyses) until no fact
//! changes. Sweeping a fixed, deterministic order — rather than
//! popping from a hashed worklist — costs a handful of redundant
//! transfers on these tiny graphs and buys bit-identical results on
//! every run, which the A/B and worker-invariance suites assert.
//!
//! Instantiations:
//!
//! * [`ReachingDefs`] — forward, may (union): which definitions reach
//!   each block; powers the def-use chain features.
//! * [`Liveness`] — backward, may (union): which variables are read
//!   before redefinition; powers dead-store detection and the
//!   live-range features.
//! * [`DefiniteUninit`] — forward, must (intersection): which
//!   born-uninitialized variables have been assigned on *no* path.
//!   A read of such a variable is the `use-before-init` error; the
//!   must-formulation keeps "assigned on one branch only" patterns —
//!   which semantics-preserving transforms rearrange freely — out of
//!   the error set.
//! * [`ConstProp`] — forward, flat lattice per variable: which
//!   variables hold a known compile-time constant; powers the
//!   constant-foldable fraction feature.

use crate::cfg::{BlockId, CExpr, Cfg, CfgStmt, VarId};
use synthattr_lang::ast::{BinaryOp, UnaryOp};

// ---------------------------------------------------------------------------
// Bit sets
// ---------------------------------------------------------------------------

/// A fixed-capacity bit set over `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// An empty set with capacity for `n` elements.
    pub fn new(n: usize) -> Self {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// A set containing every element in `[0, n)`.
    pub fn full(n: usize) -> Self {
        let mut s = Self::new(n);
        for i in 0..n {
            s.insert(i);
        }
        s
    }

    /// Adds `i`.
    pub fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Removes `i`.
    pub fn remove(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// `self |= other`; returns whether `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | *b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// `self &= other`; returns whether `self` changed.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a & *b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Iterates the elements in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter_map(move |b| {
                if w >> b & 1 == 1 {
                    Some(wi * 64 + b)
                } else {
                    None
                }
            })
        })
    }
}

// ---------------------------------------------------------------------------
// The framework
// ---------------------------------------------------------------------------

/// Which way facts flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from predecessors to successors.
    Forward,
    /// Facts flow from successors to predecessors.
    Backward,
}

/// One dataflow analysis: a lattice of facts, a boundary condition,
/// and a block transfer function.
pub trait Analysis {
    /// The lattice element attached to each block edge.
    type Fact: Clone + PartialEq;

    /// Flow direction.
    fn direction(&self) -> Direction;

    /// The fact at the boundary block (entry for forward, exit for
    /// backward).
    fn boundary(&self, cfg: &Cfg) -> Self::Fact;

    /// The optimistic initial fact for every non-boundary block.
    fn init(&self, cfg: &Cfg) -> Self::Fact;

    /// Joins `from` into `into`; returns whether `into` changed.
    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool;

    /// Applies block `b`'s statements to `fact`, producing the
    /// outgoing fact.
    fn transfer(&self, cfg: &Cfg, b: BlockId, fact: &Self::Fact) -> Self::Fact;
}

/// Per-block input and output facts at the fixed point.
#[derive(Debug, Clone)]
pub struct Solution<F> {
    /// Fact entering each block (in flow direction).
    pub inputs: Vec<F>,
    /// Fact leaving each block (in flow direction).
    pub outputs: Vec<F>,
}

/// Runs `analysis` to its fixed point over `cfg`.
///
/// Iteration order is the CFG's reverse post-order for forward
/// analyses and its reverse (post-order) for backward ones — the
/// orders that converge in one or two sweeps on reducible graphs —
/// repeated until a full sweep changes nothing.
pub fn solve<A: Analysis>(analysis: &A, cfg: &Cfg) -> Solution<A::Fact> {
    let n = cfg.blocks.len();
    let mut order = cfg.rpo();
    let dir = analysis.direction();
    if dir == Direction::Backward {
        order.reverse();
    }
    let boundary_block = match dir {
        Direction::Forward => cfg.entry,
        Direction::Backward => cfg.exit,
    };
    let init = analysis.init(cfg);
    let mut inputs: Vec<A::Fact> = vec![init.clone(); n];
    let mut outputs: Vec<A::Fact> = vec![init; n];
    inputs[boundary_block] = analysis.boundary(cfg);
    outputs[boundary_block] = analysis.transfer(cfg, boundary_block, &inputs[boundary_block]);

    loop {
        let mut changed = false;
        for &b in &order {
            if b != boundary_block {
                let mut acc: Option<A::Fact> = None;
                let feeders: &[BlockId] = match dir {
                    Direction::Forward => &cfg.blocks[b].preds,
                    Direction::Backward => &cfg.blocks[b].succs,
                };
                for &f in feeders {
                    match &mut acc {
                        None => acc = Some(outputs[f].clone()),
                        Some(a) => {
                            analysis.join(a, &outputs[f]);
                        }
                    }
                }
                if let Some(a) = acc {
                    if inputs[b] != a {
                        inputs[b] = a;
                        changed = true;
                    }
                }
            }
            let out = analysis.transfer(cfg, b, &inputs[b]);
            if outputs[b] != out {
                outputs[b] = out;
                changed = true;
            }
        }
        if !changed {
            return Solution { inputs, outputs };
        }
    }
}

// ---------------------------------------------------------------------------
// Definition numbering (shared by reaching definitions and the
// def-use chain features)
// ---------------------------------------------------------------------------

/// A numbering of every definition in a CFG. Ids `0..vars` are the
/// synthetic birth definitions (one per variable, standing for "the
/// value the variable holds before any real assignment"); real
/// definitions follow in block/statement/def order.
#[derive(Debug, Clone)]
pub struct DefMap {
    /// Variable each definition id defines.
    pub def_var: Vec<VarId>,
    /// For every real definition: `(block, stmt index, def index)`.
    /// Indexed by `def id - vars`.
    pub real_site: Vec<(BlockId, usize, usize)>,
    /// Number of tracked variables (= number of synthetic defs).
    pub vars: usize,
    /// `per_stmt[block][stmt]` lists the def ids that statement
    /// produces, in def order.
    pub per_stmt: Vec<Vec<Vec<usize>>>,
}

impl DefMap {
    /// Numbers all definitions of `cfg`.
    pub fn build(cfg: &Cfg) -> Self {
        let vars = cfg.vars.len();
        let mut def_var: Vec<VarId> = (0..vars).collect();
        let mut real_site = Vec::new();
        let mut per_stmt = Vec::with_capacity(cfg.blocks.len());
        for (bi, block) in cfg.blocks.iter().enumerate() {
            let mut stmt_ids = Vec::with_capacity(block.stmts.len());
            for (si, stmt) in block.stmts.iter().enumerate() {
                let mut ids = Vec::with_capacity(stmt.defs.len());
                for (di, d) in stmt.defs.iter().enumerate() {
                    ids.push(def_var.len());
                    def_var.push(d.var);
                    real_site.push((bi, si, di));
                }
                stmt_ids.push(ids);
            }
            per_stmt.push(stmt_ids);
        }
        DefMap {
            def_var,
            real_site,
            vars,
            per_stmt,
        }
    }

    /// Total definitions (synthetic + real).
    pub fn len(&self) -> usize {
        self.def_var.len()
    }

    /// Whether there are no definitions at all.
    pub fn is_empty(&self) -> bool {
        self.def_var.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Reaching definitions
// ---------------------------------------------------------------------------

/// Forward may-analysis: the set of definitions that reach a point.
pub struct ReachingDefs<'a> {
    /// The definition numbering facts are expressed in.
    pub defs: &'a DefMap,
}

impl ReachingDefs<'_> {
    /// Applies one statement to a fact: every def of a variable kills
    /// all other defs of that variable, then adds itself.
    pub fn step(&self, fact: &mut BitSet, stmt_defs: &[usize]) {
        for &d in stmt_defs {
            let v = self.defs.def_var[d];
            // Kill every definition of v.
            for (other, &ov) in self.defs.def_var.iter().enumerate() {
                if ov == v {
                    fact.remove(other);
                }
            }
            fact.insert(d);
        }
    }
}

impl Analysis for ReachingDefs<'_> {
    type Fact = BitSet;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self, _cfg: &Cfg) -> BitSet {
        // Every variable's synthetic birth definition reaches entry.
        let mut s = BitSet::new(self.defs.len());
        for v in 0..self.defs.vars {
            s.insert(v);
        }
        s
    }

    fn init(&self, _cfg: &Cfg) -> BitSet {
        BitSet::new(self.defs.len())
    }

    fn join(&self, into: &mut BitSet, from: &BitSet) -> bool {
        into.union_with(from)
    }

    fn transfer(&self, _cfg: &Cfg, b: BlockId, fact: &BitSet) -> BitSet {
        let mut out = fact.clone();
        for ids in &self.defs.per_stmt[b] {
            self.step(&mut out, ids);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Liveness
// ---------------------------------------------------------------------------

/// Backward may-analysis: the set of variables whose current value may
/// still be read.
pub struct Liveness;

impl Liveness {
    /// Applies one statement backwards: defs kill, then uses gen.
    pub fn step(fact: &mut BitSet, stmt: &CfgStmt) {
        for d in &stmt.defs {
            fact.remove(d.var);
        }
        for &u in &stmt.uses {
            fact.insert(u);
        }
    }
}

impl Analysis for Liveness {
    type Fact = BitSet;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn boundary(&self, cfg: &Cfg) -> BitSet {
        BitSet::new(cfg.vars.len())
    }

    fn init(&self, cfg: &Cfg) -> BitSet {
        BitSet::new(cfg.vars.len())
    }

    fn join(&self, into: &mut BitSet, from: &BitSet) -> bool {
        into.union_with(from)
    }

    fn transfer(&self, cfg: &Cfg, b: BlockId, fact: &BitSet) -> BitSet {
        let mut out = fact.clone();
        for stmt in cfg.blocks[b].stmts.iter().rev() {
            Self::step(&mut out, stmt);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Definitely-uninitialized
// ---------------------------------------------------------------------------

/// Forward must-analysis: variables assigned on *no* path from entry.
pub struct DefiniteUninit;

impl Analysis for DefiniteUninit {
    type Fact = BitSet;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self, cfg: &Cfg) -> BitSet {
        let mut s = BitSet::new(cfg.vars.len());
        for (i, v) in cfg.vars.iter().enumerate() {
            if v.uninit_at_birth {
                s.insert(i);
            }
        }
        s
    }

    fn init(&self, cfg: &Cfg) -> BitSet {
        // Top for intersection: everything still unassigned.
        BitSet::full(cfg.vars.len())
    }

    fn join(&self, into: &mut BitSet, from: &BitSet) -> bool {
        into.intersect_with(from)
    }

    fn transfer(&self, cfg: &Cfg, b: BlockId, fact: &BitSet) -> BitSet {
        let mut out = fact.clone();
        for stmt in &cfg.blocks[b].stmts {
            for d in &stmt.defs {
                out.remove(d.var);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Constant propagation
// ---------------------------------------------------------------------------

/// One variable's place in the flat constant lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flat {
    /// No assignment seen yet (lattice top).
    Top,
    /// Holds this known constant.
    Const(i64),
    /// Not a constant (lattice bottom).
    Nac,
}

impl Flat {
    fn meet(self, other: Flat) -> Flat {
        match (self, other) {
            (Flat::Top, x) | (x, Flat::Top) => x,
            (Flat::Const(a), Flat::Const(b)) if a == b => Flat::Const(a),
            _ => Flat::Nac,
        }
    }
}

/// Forward analysis over the flat constant lattice, one element per
/// tracked variable.
pub struct ConstProp;

impl ConstProp {
    /// Evaluates a lowered expression in `env`.
    pub fn eval(env: &[Flat], e: &CExpr) -> Flat {
        match e {
            CExpr::Const(v) => Flat::Const(*v),
            CExpr::Var(v) => env[*v],
            CExpr::Unary(op, inner) => match Self::eval(env, inner) {
                Flat::Const(v) => match op {
                    UnaryOp::Neg => Flat::Const(v.wrapping_neg()),
                    UnaryOp::Plus => Flat::Const(v),
                    UnaryOp::Not => Flat::Const((v == 0) as i64),
                    UnaryOp::BitNot => Flat::Const(!v),
                    _ => Flat::Nac,
                },
                x => x,
            },
            CExpr::Binary(op, l, r) => match (Self::eval(env, l), Self::eval(env, r)) {
                (Flat::Const(a), Flat::Const(b)) => Self::eval_bin(*op, a, b),
                (Flat::Top, _) | (_, Flat::Top) => Flat::Top,
                _ => Flat::Nac,
            },
            CExpr::Unknown => Flat::Nac,
        }
    }

    fn eval_bin(op: BinaryOp, a: i64, b: i64) -> Flat {
        use BinaryOp::*;
        match op {
            Add => Flat::Const(a.wrapping_add(b)),
            Sub => Flat::Const(a.wrapping_sub(b)),
            Mul => Flat::Const(a.wrapping_mul(b)),
            Div if b != 0 => Flat::Const(a.wrapping_div(b)),
            Mod if b != 0 => Flat::Const(a.wrapping_rem(b)),
            Lt => Flat::Const((a < b) as i64),
            Gt => Flat::Const((a > b) as i64),
            Le => Flat::Const((a <= b) as i64),
            Ge => Flat::Const((a >= b) as i64),
            Eq => Flat::Const((a == b) as i64),
            Ne => Flat::Const((a != b) as i64),
            And => Flat::Const((a != 0 && b != 0) as i64),
            Or => Flat::Const((a != 0 || b != 0) as i64),
            BitAnd => Flat::Const(a & b),
            BitOr => Flat::Const(a | b),
            BitXor => Flat::Const(a ^ b),
            _ => Flat::Nac,
        }
    }

    /// Applies one statement to the environment: the lowered RHS (by
    /// convention the value of the statement's *last* definition, the
    /// assignment target) evaluates first, every other def goes to
    /// not-a-constant.
    pub fn step(env: &mut [Flat], stmt: &CfgStmt) {
        let rhs_val = stmt.rhs.as_ref().map(|r| Self::eval(env, r));
        for (i, d) in stmt.defs.iter().enumerate() {
            let last = i + 1 == stmt.defs.len();
            env[d.var] = match (&rhs_val, last) {
                (Some(v), true) => *v,
                _ => Flat::Nac,
            };
        }
    }
}

impl Analysis for ConstProp {
    type Fact = Vec<Flat>;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self, cfg: &Cfg) -> Vec<Flat> {
        cfg.vars
            .iter()
            .map(|v| {
                if v.uninit_at_birth {
                    Flat::Top
                } else {
                    Flat::Nac
                }
            })
            .collect()
    }

    fn init(&self, cfg: &Cfg) -> Vec<Flat> {
        vec![Flat::Top; cfg.vars.len()]
    }

    fn join(&self, into: &mut Vec<Flat>, from: &Vec<Flat>) -> bool {
        let mut changed = false;
        for (a, b) in into.iter_mut().zip(from) {
            let next = a.meet(*b);
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    fn transfer(&self, cfg: &Cfg, b: BlockId, fact: &Vec<Flat>) -> Vec<Flat> {
        let mut env = fact.clone();
        for stmt in &cfg.blocks[b].stmts {
            Self::step(&mut env, stmt);
        }
        env
    }
}

// ---------------------------------------------------------------------------
// Verdicts: the two lint clients
// ---------------------------------------------------------------------------

/// One dataflow lint finding: `(site, variable name)`.
pub type Finding = (String, String);

/// Reads of definitely-uninitialized variables, in block/statement
/// order. Only reachable blocks are inspected (dead code cannot read
/// anything at run time), and address-taken variables are exempt.
pub fn use_before_init(cfg: &Cfg) -> Vec<Finding> {
    let sol = solve(&DefiniteUninit, cfg);
    let reach = cfg.reachable();
    let mut out = Vec::new();
    let mut reported = BitSet::new(cfg.vars.len());
    for (bi, block) in cfg.blocks.iter().enumerate() {
        if !reach[bi] {
            continue;
        }
        let mut fact = sol.inputs[bi].clone();
        for stmt in &block.stmts {
            for &u in &stmt.uses {
                if fact.contains(u)
                    && cfg.vars[u].uninit_at_birth
                    && !cfg.vars[u].addr_taken
                    && !reported.contains(u)
                {
                    reported.insert(u);
                    out.push((stmt.site.clone(), cfg.vars[u].name.clone()));
                }
            }
            for d in &stmt.defs {
                fact.remove(d.var);
            }
        }
    }
    out
}

/// Stores whose value can never be read, in block/statement order.
/// Only explicit assignments and scalar initializers are eligible
/// (see [`crate::cfg::DefRec::report_dead`]); address-taken variables
/// are exempt because an IO call may read them invisibly.
pub fn dead_stores(cfg: &Cfg) -> Vec<Finding> {
    let sol = solve(&Liveness, cfg);
    let reach = cfg.reachable();
    let mut out = Vec::new();
    for (bi, block) in cfg.blocks.iter().enumerate() {
        if !reach[bi] {
            continue;
        }
        // Walk backwards so each statement sees the liveness *after*
        // itself.
        let mut live = sol.inputs[bi].clone(); // backward input = live-out
        for stmt in block.stmts.iter().rev() {
            for d in &stmt.defs {
                if d.report_dead && !live.contains(d.var) && !cfg.vars[d.var].addr_taken {
                    out.push((stmt.site.clone(), cfg.vars[d.var].name.clone()));
                }
            }
            Liveness::step(&mut live, stmt);
        }
    }
    // Backward block walks discover stores bottom-up; report top-down.
    out.reverse();
    out
}

// ---------------------------------------------------------------------------
// Feature summary
// ---------------------------------------------------------------------------

/// Raw integer dataflow measurements of one function (or a merged
/// set of functions). All fields are sums or maxima, so merging
/// per-function (or per-item) summaries is exact and order-free —
/// the property the incremental frontend's bit-identity proof needs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DataflowSummary {
    /// Function count.
    pub functions: u64,
    /// Basic blocks.
    pub blocks: u64,
    /// CFG edges.
    pub edges: u64,
    /// Edges into an already-visited reverse-post-order position
    /// (loop back edges, on reducible graphs).
    pub back_edges: u64,
    /// Blocks with two or more successors.
    pub branch_blocks: u64,
    /// Flattened statements.
    pub stmts: u64,
    /// Real (non-synthetic) definitions.
    pub defs: u64,
    /// Variable reads.
    pub uses: u64,
    /// Def-use pairs: a definition reaching a read of its variable.
    pub du_edges: u64,
    /// Largest single definition fan-out.
    pub du_max: u64,
    /// Σ over blocks of live-in set size.
    pub live_in_sum: u64,
    /// Largest live-in set.
    pub live_in_max: u64,
    /// Σ over variables of the number of blocks whose live-in set
    /// contains the variable (the block-granular live-range span).
    pub span_sum: u64,
    /// Tracked variables.
    pub vars: u64,
    /// Dead stores found.
    pub dead_stores: u64,
    /// Reads of definitely-uninitialized variables found.
    pub uninit_uses: u64,
    /// Statements with a lowered RHS that constant propagation proved
    /// constant.
    pub const_stmts: u64,
    /// Statements with a lowered RHS.
    pub rhs_stmts: u64,
}

impl DataflowSummary {
    /// Measures one function's CFG with all four analyses.
    pub fn of_cfg(cfg: &Cfg) -> Self {
        let mut s = DataflowSummary {
            functions: 1,
            blocks: cfg.blocks.len() as u64,
            edges: cfg.edge_count() as u64,
            vars: cfg.vars.len() as u64,
            ..DataflowSummary::default()
        };
        let rpo = cfg.rpo();
        let mut pos = vec![0usize; cfg.blocks.len()];
        for (i, &b) in rpo.iter().enumerate() {
            pos[b] = i;
        }
        let reach = cfg.reachable();
        for (bi, block) in cfg.blocks.iter().enumerate() {
            for &succ in &block.succs {
                // Fall-off edges from unreachable trailing blocks land
                // late in RPO; only reachable sources can close loops.
                if reach[bi] && pos[succ] <= pos[bi] {
                    s.back_edges += 1;
                }
            }
            if block.succs.len() >= 2 {
                s.branch_blocks += 1;
            }
            s.stmts += block.stmts.len() as u64;
            for stmt in &block.stmts {
                s.defs += stmt.defs.len() as u64;
                s.uses += stmt.uses.len() as u64;
            }
        }

        // Def-use chains from reaching definitions.
        let defs = DefMap::build(cfg);
        let rd = ReachingDefs { defs: &defs };
        let rd_sol = solve(&rd, cfg);
        let mut fanout = vec![0u64; defs.len()];
        for (bi, block) in cfg.blocks.iter().enumerate() {
            let mut fact = rd_sol.inputs[bi].clone();
            for (si, stmt) in block.stmts.iter().enumerate() {
                for &u in &stmt.uses {
                    for d in fact.iter() {
                        if defs.def_var[d] == u {
                            s.du_edges += 1;
                            fanout[d] += 1;
                        }
                    }
                }
                rd.step(&mut fact, &defs.per_stmt[bi][si]);
            }
        }
        // Only real definitions count toward the fan-out maximum.
        s.du_max = fanout[defs.vars..].iter().copied().max().unwrap_or(0);

        // Liveness: pressure and spans.
        let lv_sol = solve(&Liveness, cfg);
        let mut span = vec![0u64; cfg.vars.len()];
        for bi in 0..cfg.blocks.len() {
            // For a backward analysis `outputs` is the fact leaving in
            // flow direction, i.e. the live-in set.
            let live_in = &lv_sol.outputs[bi];
            let k = live_in.len() as u64;
            s.live_in_sum += k;
            s.live_in_max = s.live_in_max.max(k);
            for v in live_in.iter() {
                span[v] += 1;
            }
        }
        s.span_sum = span.iter().sum();

        // Verdict counts.
        s.dead_stores = dead_stores(cfg).len() as u64;
        s.uninit_uses = use_before_init(cfg).len() as u64;

        // Constant propagation: how much of the function is
        // compile-time computable.
        let cp_sol = solve(&ConstProp, cfg);
        for (bi, block) in cfg.blocks.iter().enumerate() {
            let mut env = cp_sol.inputs[bi].clone();
            for stmt in &block.stmts {
                if let Some(rhs) = &stmt.rhs {
                    s.rhs_stmts += 1;
                    if matches!(ConstProp::eval(&env, rhs), Flat::Const(_)) {
                        s.const_stmts += 1;
                    }
                }
                ConstProp::step(&mut env, stmt);
            }
        }
        s
    }

    /// Merges `other` into `self` (sums and maxima — commutative and
    /// associative, so any merge order gives identical bits).
    pub fn merge(&mut self, other: &DataflowSummary) {
        // Exhaustive destructuring: adding a field without deciding
        // how it merges is a compile error.
        let DataflowSummary {
            functions,
            blocks,
            edges,
            back_edges,
            branch_blocks,
            stmts,
            defs,
            uses,
            du_edges,
            du_max,
            live_in_sum,
            live_in_max,
            span_sum,
            vars,
            dead_stores,
            uninit_uses,
            const_stmts,
            rhs_stmts,
        } = other;
        self.functions += functions;
        self.blocks += blocks;
        self.edges += edges;
        self.back_edges += back_edges;
        self.branch_blocks += branch_blocks;
        self.stmts += stmts;
        self.defs += defs;
        self.uses += uses;
        self.du_edges += du_edges;
        self.du_max = self.du_max.max(*du_max);
        self.live_in_sum += live_in_sum;
        self.live_in_max = self.live_in_max.max(*live_in_max);
        self.span_sum += span_sum;
        self.vars += vars;
        self.dead_stores += dead_stores;
        self.uninit_uses += uninit_uses;
        self.const_stmts += const_stmts;
        self.rhs_stmts += rhs_stmts;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synthattr_lang::parse;

    fn cfg_of(src: &str) -> Cfg {
        let unit = parse(src).expect("test source parses");
        Cfg::build_all(&unit).remove(0)
    }

    #[test]
    fn bitset_ops() {
        let mut a = BitSet::new(130);
        a.insert(0);
        a.insert(64);
        a.insert(129);
        assert_eq!(a.len(), 3);
        assert!(a.contains(64));
        let mut b = BitSet::new(130);
        b.insert(64);
        assert!(b.union_with(&a), "union adds elements");
        assert_eq!(b.len(), 3);
        b.remove(0);
        b.remove(129);
        let mut c = a.clone();
        assert!(c.intersect_with(&b));
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![64]);
        assert!(!c.is_empty());
    }

    #[test]
    fn uninit_read_on_all_paths_is_flagged() {
        let cfg = cfg_of("int main() { int x; return x; }");
        let f = use_before_init(&cfg);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].1, "x");
        assert_eq!(f[0].0, "main/[1]");
    }

    #[test]
    fn branch_assigned_var_is_not_flagged() {
        // One branch assigns: a *may*-uninit read, deliberately not an
        // error (semantics-preserving transforms rearrange branches).
        let cfg = cfg_of("int main() { int x; int c = 1; if (c > 0) { x = 1; } return x; }");
        assert!(use_before_init(&cfg).is_empty());
    }

    #[test]
    fn both_branches_assigning_clears_the_verdict() {
        let cfg = cfg_of(
            "int main() { int x; int c = 1; if (c > 0) { x = 1; } else { x = 2; } return x; }",
        );
        assert!(use_before_init(&cfg).is_empty());
    }

    #[test]
    fn cin_read_initializes() {
        let cfg = cfg_of(
            "#include <iostream>\nusing namespace std;\nint main() { int n; cin >> n; return n; }",
        );
        assert!(use_before_init(&cfg).is_empty());
    }

    #[test]
    fn loop_conditional_assignment_is_not_flagged() {
        let cfg = cfg_of(
            "int main() { int x; int n = 3; while (n > 0) { x = n; n = n - 1; } return x; }",
        );
        // `while` may run zero times, but may-uninit is not reported.
        assert!(use_before_init(&cfg).is_empty());
    }

    #[test]
    fn self_increment_of_uninit_is_flagged() {
        let cfg = cfg_of("int main() { int x; x = x + 1; return x; }");
        let f = use_before_init(&cfg);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].0, "main/[1]");
    }

    #[test]
    fn dead_store_between_two_assignments() {
        let cfg = cfg_of("int main() { int x = 1; x = 2; return x; }");
        let f = dead_stores(&cfg);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].0, "main/[0]");
        assert_eq!(f[0].1, "x");
    }

    #[test]
    fn loop_carried_value_is_live() {
        let cfg = cfg_of(
            "int main() { int s = 0; for (int i = 0; i < 4; i++) { s = s + i; } return s; }",
        );
        assert!(dead_stores(&cfg).is_empty(), "{:?}", dead_stores(&cfg));
    }

    #[test]
    fn store_never_read_is_dead() {
        let cfg = cfg_of("int main() { int x = 1; int y = 2; x = y; return y; }");
        let f = dead_stores(&cfg);
        // Both stores to x are dead (x is never read).
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|(_, n)| n == "x"));
    }

    #[test]
    fn io_reads_are_not_dead_stores() {
        let cfg = cfg_of(
            "#include <iostream>\nusing namespace std;\nint main() { int waste; cin >> waste; return 0; }",
        );
        assert!(dead_stores(&cfg).is_empty());
    }

    #[test]
    fn const_prop_folds_through_branches_that_agree() {
        let cfg = cfg_of("int main() { int a = 2; int b = a * 3; int c = b + a; return c; }");
        let s = DataflowSummary::of_cfg(&cfg);
        assert_eq!(s.rhs_stmts, 3);
        assert_eq!(s.const_stmts, 3, "{s:?}");
    }

    #[test]
    fn const_prop_meets_to_nac_on_disagreement() {
        let cfg = cfg_of(
            "int main() { int c = 1; int x = 0; if (c > 0) { x = 1; } else { x = 2; } int y = x + 1; return y; }",
        );
        let sol = solve(&ConstProp, &cfg);
        let x = cfg.vars.iter().position(|v| v.name == "x").unwrap();
        // At exit, x met 1 and 2.
        assert_eq!(sol.inputs[cfg.exit][x], Flat::Nac);
    }

    #[test]
    fn reaching_defs_count_du_edges() {
        let cfg = cfg_of("int main() { int a = 1; int b = a + a; return b; }");
        let s = DataflowSummary::of_cfg(&cfg);
        // a's def reaches two reads; b's def reaches one.
        assert_eq!(s.du_edges, 3);
        assert_eq!(s.du_max, 2);
    }

    #[test]
    fn liveness_spans_and_pressure_are_positive() {
        let cfg = cfg_of(
            "int main() { int s = 0; for (int i = 0; i < 9; i++) { s = s + i; } return s; }",
        );
        let s = DataflowSummary::of_cfg(&cfg);
        assert!(s.live_in_sum > 0);
        assert!(s.live_in_max >= 2, "{s:?}"); // s and i live in the loop
        assert!(s.span_sum >= s.live_in_max);
    }

    #[test]
    fn summary_merge_is_commutative_and_exhaustive() {
        let a = DataflowSummary::of_cfg(&cfg_of("int main() { int x = 1; return x; }"));
        let b = DataflowSummary::of_cfg(&cfg_of(
            "int helper(int k) { return k * 2; }\nint main() { return helper(3); }",
        ));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.functions, a.functions + b.functions);
    }

    #[test]
    fn solver_is_deterministic() {
        let src = "int main() { int s = 0; int p = 1; for (int i = 1; i < 9; i++) { if (i % 2 == 0) { s = s + i; } else { p = p * i; } } return s + p; }";
        let a = DataflowSummary::of_cfg(&cfg_of(src));
        for _ in 0..5 {
            assert_eq!(a, DataflowSummary::of_cfg(&cfg_of(src)));
        }
    }

    #[test]
    fn do_while_first_iteration_assignment_initializes() {
        let cfg = cfg_of(
            "int main() { int x; int n = 3; do { x = n; n = n - 1; } while (n > 0); return x; }",
        );
        // The do-while body runs at least once, so x is assigned on
        // every path to the return.
        assert!(use_before_init(&cfg).is_empty());
    }
}
