//! Concept-based identifier synthesis.
//!
//! Challenge templates request names by *semantic concept* ("the test
//! case counter", "the accumulator"); the [`Namer`] renders each
//! concept in the author's naming convention, consistently within a
//! file, without colliding with names already handed out.

use std::collections::HashMap;
use synthattr_util::Pcg64;

/// Identifier casing convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Case {
    /// `numCases`
    Camel,
    /// `NumCases`
    Pascal,
    /// `num_cases`
    Snake,
    /// `numcases`
    Flat,
}

/// How verbose the author's names are.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verbosity {
    /// Single letters / terse abbreviations (`t`, `tc`).
    Short,
    /// One or two words (`nCase`, `num_cases`).
    Medium,
    /// Fully spelled out (`numberOfTestCases`).
    Long,
}

/// A complete naming convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NamingStyle {
    /// Casing for multi-word names.
    pub case_style: Case,
    /// Synonym-set tier.
    pub verbosity: Verbosity,
    /// Author-stable rotation applied to every synonym draw: two
    /// authors with the same case and verbosity but different flavors
    /// still pick different words for the same concepts. Widens the
    /// naming space 4x for large-population separability.
    pub flavor: u8,
}

impl NamingStyle {
    /// Samples a naming style.
    ///
    /// `flavor` stays 0 here: [`crate::style::AuthorStyle::sample`]
    /// draws it at the end of the profile so pre-existing seeded
    /// corpora keep their original case/verbosity assignments.
    pub fn sample(rng: &mut Pcg64) -> Self {
        let case_style = match rng.choose_weighted(&[4.0, 1.0, 3.0, 1.5]) {
            0 => Case::Camel,
            1 => Case::Pascal,
            2 => Case::Snake,
            _ => Case::Flat,
        };
        let verbosity = match rng.choose_weighted(&[3.0, 4.0, 1.5]) {
            0 => Verbosity::Short,
            1 => Verbosity::Medium,
            _ => Verbosity::Long,
        };
        NamingStyle {
            case_style,
            verbosity,
            flavor: 0,
        }
    }
}

/// Renders a word sequence in a casing convention.
pub fn apply_case(words: &[&str], case: Case) -> String {
    let cap = |w: &str| {
        let mut c = w.chars();
        match c.next() {
            Some(first) => first.to_ascii_uppercase().to_string() + c.as_str(),
            None => String::new(),
        }
    };
    match case {
        Case::Camel => {
            let mut out = String::new();
            for (i, w) in words.iter().enumerate() {
                if i == 0 {
                    out.push_str(&w.to_ascii_lowercase());
                } else {
                    out.push_str(&cap(w));
                }
            }
            out
        }
        Case::Pascal => words.iter().map(|w| cap(w)).collect(),
        Case::Snake => words
            .iter()
            .map(|w| w.to_ascii_lowercase())
            .collect::<Vec<_>>()
            .join("_"),
        Case::Flat => words
            .iter()
            .map(|w| w.to_ascii_lowercase())
            .collect::<Vec<_>>()
            .join(""),
    }
}

/// Short / medium / long candidate spellings for one concept.
struct Synonyms {
    short: &'static [&'static str],
    medium: &'static [&'static [&'static str]],
    long: &'static [&'static [&'static str]],
}

fn synonyms(concept: &str) -> Synonyms {
    macro_rules! syn {
        ([$($s:expr),*], [$([$($m:expr),*]),*], [$([$($l:expr),*]),*]) => {
            Synonyms {
                short: &[$($s),*],
                medium: &[$(&[$($m),*]),*],
                long: &[$(&[$($l),*]),*],
            }
        };
    }
    match concept {
        "num_cases" => syn!(
            ["t", "tc", "q"],
            [["n", "case"], ["num", "cases"], ["cases"], ["n", "tests"]],
            [
                ["number", "of", "cases"],
                ["total", "test", "cases"],
                ["num", "test", "cases"]
            ]
        ),
        "case_index" => syn!(
            ["i", "tt", "cs"],
            [["i", "case"], ["case", "num"], ["test"], ["case", "id"]],
            [
                ["case", "number"],
                ["current", "test", "case"],
                ["test", "case", "index"]
            ]
        ),
        "loop_index" => syn!(
            ["i", "j", "k"],
            [["i"], ["idx"], ["pos"]],
            [["index"], ["iter", "index"], ["position"]]
        ),
        "loop_index2" => syn!(
            ["j", "k", "p"],
            [["j"], ["jdx"], ["inner"]],
            [
                ["inner", "index"],
                ["second", "index"],
                ["other", "position"]
            ]
        ),
        "loop_index3" => syn!(
            ["p", "u", "a"],
            [["p"], ["first"], ["outer"]],
            [["first", "index"], ["outer", "position"], ["scan", "index"]]
        ),
        "count" => syn!(
            ["c", "cnt", "k"],
            [["count"], ["cnt"], ["num", "found"]],
            [
                ["total", "count"],
                ["matching", "count"],
                ["found", "count"]
            ]
        ),
        "sum" => syn!(
            ["s", "sm", "acc"],
            [["sum"], ["total"], ["acc"]],
            [
                ["running", "total"],
                ["overall", "sum"],
                ["accumulated", "value"]
            ]
        ),
        "answer" => syn!(
            ["r", "res", "ans"],
            [["ans"], ["result"], ["answer"], ["out"]],
            [
                ["final", "answer"],
                ["case", "result"],
                ["computed", "result"]
            ]
        ),
        "n_items" => syn!(
            ["n", "m", "sz"],
            [["n"], ["size"], ["len"], ["count"]],
            [["item", "count"], ["num", "items"], ["array", "size"]]
        ),
        "value" => syn!(
            ["x", "v", "w"],
            [["val"], ["x"], ["item"], ["num"]],
            [
                ["current", "value"],
                ["input", "value"],
                ["element", "value"]
            ]
        ),
        "value2" => syn!(
            ["y", "u", "z"],
            [["val2"], ["y"], ["other"]],
            [["second", "value"], ["other", "value"], ["paired", "value"]]
        ),
        "best" => syn!(
            ["b", "mx", "opt"],
            [["best"], ["max", "val"], ["top"]],
            [
                ["best", "so", "far"],
                ["maximum", "value"],
                ["optimal", "value"]
            ]
        ),
        "worst" => syn!(
            ["w", "mn", "lo"],
            [["worst"], ["min", "val"], ["low"]],
            [
                ["minimum", "value"],
                ["smallest", "value"],
                ["lowest", "seen"]
            ]
        ),
        "distance" => syn!(
            ["d", "dd", "ds"],
            [["d"], ["dist"], ["track"]],
            [["distance"], ["track", "length"], ["total", "distance"]]
        ),
        "speed" => syn!(
            ["v", "sp", "y"],
            [["speed"], ["vel"], ["rate"]],
            [["horse", "speed"], ["current", "speed"], ["velocity"]]
        ),
        "time_val" => syn!(
            ["t", "tm", "tt"],
            [["t"], ["time"], ["max", "time"]],
            [["time", "needed"], ["arrival", "time"], ["slowest", "time"]]
        ),
        "position" => syn!(
            ["x", "p", "ps"],
            [["pos"], ["x"], ["start"]],
            [["position"], ["start", "position"], ["horse", "position"]]
        ),
        "text" => syn!(
            ["s", "w", "st"],
            [["s"], ["str"], ["word"], ["line"]],
            [["input", "string"], ["the", "word"], ["text", "line"]]
        ),
        "target" => syn!(
            ["k", "g", "tg"],
            [["k"], ["target"], ["goal"]],
            [["target", "value"], ["goal", "value"], ["wanted", "sum"]]
        ),
        "arr" => syn!(
            ["a", "v", "xs"],
            [["a"], ["arr"], ["vals"], ["nums"], ["data"]],
            [["values"], ["numbers"], ["input", "array"], ["elements"]]
        ),
        "flag" => syn!(
            ["f", "ok", "b"],
            [["ok"], ["flag"], ["good"], ["valid"]],
            [["is", "valid"], ["all", "good"], ["check", "passed"]]
        ),
        "left" => syn!(
            ["l", "lo", "p"],
            [["l"], ["lo"], ["left"]],
            [["left", "ptr"], ["low", "bound"], ["left", "index"]]
        ),
        "right" => syn!(
            ["r", "hi", "q"],
            [["r"], ["hi"], ["right"]],
            [["right", "ptr"], ["high", "bound"], ["right", "index"]]
        ),
        "temp" => syn!(
            ["t", "tmp", "h"],
            [["tmp"], ["temp"], ["aux"]],
            [["temp", "value"], ["scratch"], ["holding", "value"]]
        ),
        "digit" => syn!(
            ["d", "dg", "c"],
            [["d"], ["digit"], ["dig"]],
            [["current", "digit"], ["digit", "value"], ["last", "digit"]]
        ),
        "solve_fn" => syn!(
            ["f", "go", "run"],
            [["solve"], ["process"], ["work"], ["calc"]],
            [
                ["solve", "case"],
                ["process", "case"],
                ["handle", "test", "case"],
                ["solve", "test", "case"]
            ]
        ),
        "helper_fn" => syn!(
            ["g", "h", "aux"],
            [["helper"], ["compute"], ["check"], ["eval"]],
            [
                ["compute", "value"],
                ["check", "condition"],
                ["evaluate", "item"]
            ]
        ),
        "a_val" => syn!(
            ["a", "p", "m"],
            [["a"], ["first"], ["x1"]],
            [["first", "number"], ["value", "a"], ["left", "operand"]]
        ),
        "b_val" => syn!(
            ["b", "q", "n"],
            [["b"], ["second"], ["x2"]],
            [["second", "number"], ["value", "b"], ["right", "operand"]]
        ),
        "limit" => syn!(
            ["n", "l", "up"],
            [["limit"], ["bound"], ["max", "n"]],
            [["upper", "limit"], ["upper", "bound"], ["search", "limit"]]
        ),
        other => {
            // Unknown concepts degrade gracefully to their own words.
            let _ = other;
            syn!(
                ["x", "y", "z"],
                [["var"], ["item"], ["thing"]],
                [["generic", "value"], ["misc", "value"]]
            )
        }
    }
}

/// Hands out identifiers for semantic concepts, memoized per concept,
/// collision-free within one file.
#[derive(Debug, Clone)]
pub struct Namer {
    style: NamingStyle,
    rng: Pcg64,
    assigned: HashMap<String, String>,
    used: Vec<String>,
}

impl Namer {
    /// Creates a namer with the author's convention and a private
    /// random stream (determines synonym choice).
    pub fn new(style: NamingStyle, rng: Pcg64) -> Self {
        Namer {
            style,
            rng,
            assigned: HashMap::new(),
            used: Vec::new(),
        }
    }

    /// The convention in use.
    pub fn style(&self) -> NamingStyle {
        self.style
    }

    /// Returns the (stable) name for `concept`, creating it on first
    /// request.
    pub fn name(&mut self, concept: &str) -> String {
        if let Some(existing) = self.assigned.get(concept) {
            return existing.clone();
        }
        let syn = synonyms(concept);
        // The per-file draw picks a slot, the per-author flavor
        // rotates it: file-to-file variety is preserved while two
        // otherwise-identical authors still diverge on word choice.
        let flavor = self.style.flavor as usize;
        let mut candidate = match self.style.verbosity {
            Verbosity::Short => {
                let i = self.rng.next_below(syn.short.len());
                syn.short[(i + flavor) % syn.short.len()].to_string()
            }
            Verbosity::Medium => {
                let i = self.rng.next_below(syn.medium.len());
                let words = syn.medium[(i + flavor) % syn.medium.len()];
                apply_case(words, self.style.case_style)
            }
            Verbosity::Long => {
                let i = self.rng.next_below(syn.long.len());
                let words = syn.long[(i + flavor) % syn.long.len()];
                apply_case(words, self.style.case_style)
            }
        };
        // Keyword and collision avoidance.
        if is_reserved(&candidate) {
            candidate.push('v');
        }
        while self.used.iter().any(|u| u == &candidate) {
            candidate.push(match self.style.verbosity {
                Verbosity::Short => '2',
                _ => 'X',
            });
        }
        self.used.push(candidate.clone());
        self.assigned.insert(concept.to_string(), candidate.clone());
        candidate
    }
}

fn is_reserved(name: &str) -> bool {
    matches!(
        name,
        "int"
            | "long"
            | "char"
            | "bool"
            | "float"
            | "double"
            | "void"
            | "auto"
            | "const"
            | "if"
            | "else"
            | "for"
            | "while"
            | "do"
            | "return"
            | "break"
            | "continue"
            | "true"
            | "false"
            | "using"
            | "namespace"
            | "typedef"
            | "struct"
            | "switch"
            | "case"
            | "default"
            | "string"
            | "vector"
            | "pair"
            | "map"
            | "set"
            | "cin"
            | "cout"
            | "cerr"
            | "endl"
            | "std"
            | "main"
            | "max"
            | "min"
            | "abs"
            | "sort"
            | "swap"
            | "printf"
            | "scanf"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn namer(case_style: Case, verbosity: Verbosity, seed: u64) -> Namer {
        Namer::new(
            NamingStyle {
                case_style,
                verbosity,
                flavor: 0,
            },
            Pcg64::new(seed),
        )
    }

    #[test]
    fn flavor_rotates_word_choice_per_author() {
        // Same convention, same per-file seed, different flavor =>
        // different (rotated) synonym picks for at least one concept.
        let name_with = |flavor: u8| {
            let mut n = Namer::new(
                NamingStyle {
                    case_style: Case::Camel,
                    verbosity: Verbosity::Medium,
                    flavor,
                },
                Pcg64::new(11),
            );
            ["num_cases", "answer", "sum", "arr"].map(|c| n.name(c))
        };
        let base = name_with(0);
        assert_ne!(base, name_with(1));
        assert_ne!(base, name_with(2));
        // And each flavor is internally deterministic.
        assert_eq!(name_with(3), name_with(3));
    }

    #[test]
    fn apply_case_conventions() {
        let words = ["num", "test", "cases"];
        assert_eq!(apply_case(&words, Case::Camel), "numTestCases");
        assert_eq!(apply_case(&words, Case::Pascal), "NumTestCases");
        assert_eq!(apply_case(&words, Case::Snake), "num_test_cases");
        assert_eq!(apply_case(&words, Case::Flat), "numtestcases");
    }

    #[test]
    fn names_are_memoized() {
        let mut n = namer(Case::Camel, Verbosity::Medium, 1);
        let a = n.name("num_cases");
        let b = n.name("num_cases");
        assert_eq!(a, b);
    }

    #[test]
    fn different_concepts_get_different_names() {
        let mut n = namer(Case::Snake, Verbosity::Short, 2);
        let mut seen = std::collections::HashSet::new();
        for concept in [
            "num_cases",
            "case_index",
            "loop_index",
            "count",
            "sum",
            "answer",
            "n_items",
            "value",
            "best",
        ] {
            assert!(seen.insert(n.name(concept)), "collision on {concept}");
        }
    }

    #[test]
    fn snake_style_contains_underscores_for_multiword() {
        let mut n = namer(Case::Snake, Verbosity::Long, 3);
        let name = n.name("num_cases");
        assert!(name.contains('_'), "{name}");
        assert_eq!(name, name.to_ascii_lowercase());
    }

    #[test]
    fn short_style_is_terse() {
        let mut n = namer(Case::Camel, Verbosity::Short, 4);
        assert!(n.name("loop_index").len() <= 3);
    }

    #[test]
    fn reserved_words_are_never_produced() {
        // Concept "time_val" has short form "t"; fine. But exhaust many
        // concepts under every style and check nothing reserved leaks.
        for seed in 0..20 {
            for case in [Case::Camel, Case::Pascal, Case::Snake, Case::Flat] {
                for verb in [Verbosity::Short, Verbosity::Medium, Verbosity::Long] {
                    let mut n = namer(case, verb, seed);
                    for concept in ["num_cases", "count", "text", "best", "time_val"] {
                        assert!(!is_reserved(&n.name(concept)));
                    }
                }
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = namer(Case::Camel, Verbosity::Medium, 9);
        let mut b = namer(Case::Camel, Verbosity::Medium, 9);
        for concept in ["sum", "answer", "loop_index"] {
            assert_eq!(a.name(concept), b.name(concept));
        }
    }

    #[test]
    fn unknown_concept_degrades_gracefully() {
        let mut n = namer(Case::Camel, Verbosity::Medium, 5);
        let name = n.name("never_heard_of_it");
        assert!(!name.is_empty());
    }

    #[test]
    fn sampled_styles_cover_conventions() {
        let mut rng = Pcg64::new(77);
        let mut cases = std::collections::HashSet::new();
        let mut verbs = std::collections::HashSet::new();
        for _ in 0..200 {
            let s = NamingStyle::sample(&mut rng);
            cases.insert(s.case_style);
            verbs.insert(s.verbosity);
        }
        assert_eq!(cases.len(), 4);
        assert_eq!(verbs.len(), 3);
    }
}
