//! Challenge templates: GCJ-round-style problems built directly as
//! ASTs, with structure that bends to the author's habits.
//!
//! Each template describes per-case work as "(statements, result
//! expression)"; an internal scaffold wraps it in the author's preferred
//! program shape — per-case helper function (the paper's Figure 4a
//! transformation target) or everything inline in `main` — and adds the
//! prologue and the `Case #k:` output protocol.

use crate::builder::CodeBuilder;
use crate::style::AuthorStyle;
use synthattr_lang::ast::*;
use synthattr_lang::render::render;
use synthattr_util::Pcg64;

/// The challenge catalogue. Years draw 8-challenge windows from this
/// pool (see [`crate::corpus::YearSpec`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ChallengeId {
    /// The paper's Figure 3: last horse constrains your max speed.
    HorseRace,
    /// Sum of a series of integers.
    SumSeries,
    /// Maximum minus minimum of a series.
    MinMaxDiff,
    /// Count elements divisible by `k`.
    CountDivisible,
    /// Is the word a palindrome?
    Palindrome,
    /// Count vowels in a word.
    VowelCount,
    /// Greatest common divisor of two numbers.
    Gcd,
    /// n-th Fibonacci number.
    Fibonacci,
    /// Median after sorting.
    SortMedian,
    /// Count pairs summing to a target.
    PairSum,
    /// Balanced-parentheses check.
    BracketBalance,
    /// Total absolute day-to-day temperature change.
    TemperatureRange,
    /// Count primes up to `n`.
    PrimeCount,
    /// Repeated digit sum (digital root).
    DigitRoot,
    /// Longest run of equal adjacent values.
    LongestRun,
    /// Modular exponentiation `a^b mod m`.
    ModPow,
}

impl ChallengeId {
    /// Every challenge, in catalogue order.
    pub fn all() -> [ChallengeId; 16] {
        use ChallengeId::*;
        [
            HorseRace,
            SumSeries,
            MinMaxDiff,
            CountDivisible,
            Palindrome,
            VowelCount,
            Gcd,
            Fibonacci,
            SortMedian,
            PairSum,
            BracketBalance,
            TemperatureRange,
            PrimeCount,
            DigitRoot,
            LongestRun,
            ModPow,
        ]
    }

    /// Stable kebab-case name.
    pub fn name(self) -> &'static str {
        use ChallengeId::*;
        match self {
            HorseRace => "horse-race",
            SumSeries => "sum-series",
            MinMaxDiff => "min-max-diff",
            CountDivisible => "count-divisible",
            Palindrome => "palindrome",
            VowelCount => "vowel-count",
            Gcd => "gcd",
            Fibonacci => "fibonacci",
            SortMedian => "sort-median",
            PairSum => "pair-sum",
            BracketBalance => "bracket-balance",
            TemperatureRange => "temperature-range",
            PrimeCount => "prime-count",
            DigitRoot => "digit-root",
            LongestRun => "longest-run",
            ModPow => "mod-pow",
        }
    }

    /// Builds a complete solution AST in the builder's style.
    pub fn build(self, b: &mut CodeBuilder) -> TranslationUnit {
        use ChallengeId::*;
        match self {
            HorseRace => scaffold(b, &["iostream", "algorithm"], Result_::Double, &horse_race),
            SumSeries => scaffold(b, &["iostream"], Result_::Long, &sum_series),
            MinMaxDiff => scaffold(b, &["iostream", "algorithm"], Result_::Int, &min_max_diff),
            CountDivisible => scaffold(b, &["iostream"], Result_::Int, &count_divisible),
            Palindrome => scaffold(b, &["iostream", "string"], Result_::Str, &palindrome),
            VowelCount => scaffold(b, &["iostream", "string"], Result_::Int, &vowel_count),
            Gcd => gcd_program(b),
            Fibonacci => scaffold(b, &["iostream"], Result_::Long, &fibonacci),
            SortMedian => scaffold(
                b,
                &["iostream", "vector", "algorithm"],
                Result_::Int,
                &sort_median,
            ),
            PairSum => scaffold(b, &["iostream", "vector"], Result_::Int, &pair_sum),
            BracketBalance => scaffold(b, &["iostream", "string"], Result_::Str, &bracket_balance),
            TemperatureRange => scaffold(b, &["iostream"], Result_::Int, &temperature_range),
            PrimeCount => scaffold(b, &["iostream"], Result_::Int, &prime_count),
            DigitRoot => scaffold(b, &["iostream"], Result_::Int, &digit_root),
            LongestRun => scaffold(b, &["iostream", "algorithm"], Result_::Int, &longest_run),
            ModPow => scaffold(b, &["iostream"], Result_::Long, &mod_pow),
        }
    }

    /// Renders a full solution in `style` (convenience used by the
    /// corpus generator and the LLM simulator).
    pub fn render_solution(self, style: &AuthorStyle, rng: Pcg64) -> String {
        let mut b = CodeBuilder::new(style.clone(), rng);
        let unit = self.build(&mut b);
        // Gate: every synthesized program must be diagnostic-clean —
        // an error here is a generator bug, never bad input.
        #[cfg(debug_assertions)]
        {
            let diags = synthattr_analysis::Analyzer::new().analyze(&unit);
            let errors: Vec<String> = diags
                .iter()
                .filter(|d| d.severity == synthattr_analysis::Severity::Error)
                .map(|d| d.to_string())
                .collect();
            assert!(
                errors.is_empty(),
                "{self:?} synthesized a program with error diagnostics:\n{}\n--- source ---\n{}",
                errors.join("\n"),
                render(&unit, &style.render)
            );
        }
        render(&unit, &style.render)
    }
}

/// Result type of the per-case computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Result_ {
    Int,
    Long,
    Double,
    Str,
}

impl Result_ {
    fn ty(self, b: &CodeBuilder) -> Type {
        match self {
            Result_::Int => Type::Int,
            Result_::Long => {
                if b.style.prologue.long_long_alias > 0 {
                    Type::Named("ll".into())
                } else {
                    Type::LongLong
                }
            }
            Result_::Double => Type::Double,
            Result_::Str => Type::Str,
        }
    }
}

type CaseBody = dyn Fn(&mut CodeBuilder) -> (Vec<Stmt>, Expr);

/// Wraps per-case work in the author's program shape.
fn scaffold(
    b: &mut CodeBuilder,
    headers: &[&str],
    result: Result_,
    case_body: &CaseBody,
) -> TranslationUnit {
    let double_result = result == Result_::Double;
    // Stream-printed doubles go through `setprecision`, which needs
    // <iomanip> when headers are spelled individually.
    let mut headers: Vec<&str> = headers.to_vec();
    if double_result && !b.style.io.stdio && !headers.contains(&"iomanip") {
        headers.push("iomanip");
    }
    let mut items = b.prologue(&headers);
    let result_ty = result.ty(b);

    if let Some(Stmt::Comment(c)) = b.maybe_comment("solution") {
        items.push(Item::Comment(c));
    }

    if b.wants_helper() {
        let fname = b.n("solve_fn");
        let (mut body_stmts, result_expr) = case_body(b);
        body_stmts.push(Stmt::Return(Some(result_expr)));
        items.push(Item::Function(Function {
            ret: result_ty,
            name: fname.clone(),
            params: vec![],
            body: Block::new(body_stmts),
        }));
        let main_stmts = b.case_loop(|b, case| {
            let call = Expr::call(fname.clone(), vec![]);
            let stmt = if result == Result_::Str {
                b.print_case_str(case, call)
            } else {
                b.print_case(case, call, double_result)
            };
            vec![stmt]
        });
        items.push(main_fn(b, main_stmts));
    } else {
        let main_stmts = b.case_loop(|b, case| {
            let (mut stmts, result_expr) = case_body(b);
            let stmt = if result == Result_::Str {
                b.print_case_str(case, result_expr)
            } else {
                b.print_case(case, result_expr, double_result)
            };
            stmts.push(stmt);
            stmts
        });
        items.push(main_fn(b, main_stmts));
    }
    TranslationUnit { items }
}

fn main_fn(b: &CodeBuilder, mut stmts: Vec<Stmt>) -> Item {
    if b.style.structure.explicit_return {
        stmts.push(Stmt::Return(Some(Expr::Int(0))));
    }
    Item::Function(Function {
        ret: Type::Int,
        name: "main".into(),
        params: vec![],
        body: Block::new(stmts),
    })
}

/// `i < (int)s.size()` in the author's cast style.
fn size_bound(_b: &mut CodeBuilder, container: &str) -> Expr {
    let size = Expr::method(Expr::ident(container), "size", vec![]);
    Expr::Cast {
        ty: Type::Int,
        expr: Box::new(Expr::Paren(Box::new(size)).unparen_cast()),
    }
}

trait UnparenCast {
    fn unparen_cast(self) -> Expr;
}

impl UnparenCast for Expr {
    fn unparen_cast(self) -> Expr {
        // Method calls are postfix-tight; no parens needed under a cast.
        match self {
            Expr::Paren(inner) if matches!(*inner, Expr::Call { .. }) => *inner,
            other => other,
        }
    }
}

// ---------------------------------------------------------------------------
// Per-case bodies
// ---------------------------------------------------------------------------

fn horse_race(b: &mut CodeBuilder) -> (Vec<Stmt>, Expr) {
    let mut s = Vec::new();
    b.push_comment(&mut s, "read track length and number of horses");
    s.extend(b.read_vars(&[("distance", Type::Int), ("n_items", Type::Int)]));
    let d = b.n("distance");
    let n = b.n("n_items");
    let t = b.n("time_val");
    s.push(b.decl(Type::Double, &t, Expr::Float("0".into())));
    let i = b.n("loop_index");

    let mut loop_body = Vec::new();
    loop_body.extend(b.read_vars(&[("position", Type::Int), ("speed", Type::Int)]));
    let x = b.n("position");
    let y = b.n("speed");
    // x = d - x;
    loop_body.push(Stmt::Expr(Expr::assign(
        AssignOp::Assign,
        Expr::ident(x.clone()),
        Expr::bin(
            BinaryOp::Sub,
            Expr::ident(d.clone()),
            Expr::ident(x.clone()),
        ),
    )));
    // t = max(t, (double)x / (double)y);
    let ratio = Expr::bin(
        BinaryOp::Div,
        b.cast_double(Expr::ident(x)),
        b.cast_double(Expr::ident(y)),
    );
    loop_body.push(b.max_update(&t, ratio));
    s.extend(b.count_loop(&i, Expr::Int(0), Expr::ident(n), loop_body));

    let result = Expr::bin(BinaryOp::Div, b.cast_double(Expr::ident(d)), Expr::ident(t));
    (s, result)
}

fn sum_series(b: &mut CodeBuilder) -> (Vec<Stmt>, Expr) {
    let mut s = Vec::new();
    s.extend(b.read_vars(&[("n_items", Type::Int)]));
    let n = b.n("n_items");
    let sum = b.n("sum");
    let sum_ty = Result_::Long.ty(b);
    s.push(b.decl(sum_ty, &sum, Expr::Int(0)));
    let i = b.n("loop_index");
    let mut body = Vec::new();
    body.extend(b.read_vars(&[("value", Type::Int)]));
    let v = b.n("value");
    body.push(b.accumulate(&sum, AssignOp::Add, Expr::ident(v)));
    s.extend(b.count_loop(&i, Expr::Int(0), Expr::ident(n), body));
    (s, Expr::ident(sum))
}

fn min_max_diff(b: &mut CodeBuilder) -> (Vec<Stmt>, Expr) {
    let mut s = Vec::new();
    s.extend(b.read_vars(&[("n_items", Type::Int)]));
    let n = b.n("n_items");
    let best = b.n("best");
    let worst = b.n("worst");
    s.push(b.decl(Type::Int, &best, Expr::Int(-1000000000)));
    s.push(b.decl(Type::Int, &worst, Expr::Int(1000000000)));
    let i = b.n("loop_index");
    let mut body = Vec::new();
    body.extend(b.read_vars(&[("value", Type::Int)]));
    let v = b.n("value");
    body.push(b.max_update(&best, Expr::ident(v.clone())));
    // worst = min(worst, v) — spelled as an if to vary from max_update.
    body.push(Stmt::If {
        cond: Expr::bin(
            BinaryOp::Lt,
            Expr::ident(v.clone()),
            Expr::ident(worst.clone()),
        ),
        then_branch: Block::new(vec![Stmt::Expr(Expr::assign(
            AssignOp::Assign,
            Expr::ident(worst.clone()),
            Expr::ident(v),
        ))]),
        else_branch: None,
    });
    s.extend(b.count_loop(&i, Expr::Int(0), Expr::ident(n), body));
    (
        s,
        Expr::bin(BinaryOp::Sub, Expr::ident(best), Expr::ident(worst)),
    )
}

fn count_divisible(b: &mut CodeBuilder) -> (Vec<Stmt>, Expr) {
    let mut s = Vec::new();
    s.extend(b.read_vars(&[("n_items", Type::Int), ("target", Type::Int)]));
    let n = b.n("n_items");
    let k = b.n("target");
    let count = b.n("count");
    s.push(b.decl(Type::Int, &count, Expr::Int(0)));
    let i = b.n("loop_index");
    let mut body = Vec::new();
    body.extend(b.read_vars(&[("value", Type::Int)]));
    let v = b.n("value");
    let divisible = Expr::bin(
        BinaryOp::Eq,
        Expr::bin(BinaryOp::Mod, Expr::ident(v), Expr::ident(k)),
        Expr::Int(0),
    );
    let bump = b.incr(&count);
    body.push(Stmt::If {
        cond: divisible,
        then_branch: Block::new(vec![Stmt::Expr(bump)]),
        else_branch: None,
    });
    s.extend(b.count_loop(&i, Expr::Int(0), Expr::ident(n), body));
    (s, Expr::ident(count))
}

fn palindrome(b: &mut CodeBuilder) -> (Vec<Stmt>, Expr) {
    let mut s = Vec::new();
    s.extend(b.read_vars(&[("text", Type::Str)]));
    let text = b.n("text");
    let flag = b.n("flag");
    s.push(b.decl(Type::Bool, &flag, Expr::Bool(true)));
    let i = b.n("loop_index");
    let len = size_bound(b, &text);
    // mirror index: s[len - 1 - i]
    let mirror = Expr::index(
        Expr::ident(text.clone()),
        Expr::bin(
            BinaryOp::Sub,
            Expr::bin(BinaryOp::Sub, len.clone(), Expr::Int(1)),
            Expr::ident(i.clone()),
        ),
    );
    let body = vec![Stmt::If {
        cond: Expr::bin(
            BinaryOp::Ne,
            Expr::index(Expr::ident(text.clone()), Expr::ident(i.clone())),
            mirror,
        ),
        then_branch: Block::new(vec![Stmt::Expr(Expr::assign(
            AssignOp::Assign,
            Expr::ident(flag.clone()),
            Expr::Bool(false),
        ))]),
        else_branch: None,
    }];
    let half = Expr::bin(BinaryOp::Div, len, Expr::Int(2));
    s.extend(b.count_loop(&i, Expr::Int(0), half, body));
    let ans = b.n("answer");
    s.push(b.decl(Type::Str, &ans, Expr::Str("YES".into())));
    s.push(Stmt::If {
        cond: Expr::Unary {
            op: UnaryOp::Not,
            expr: Box::new(Expr::ident(flag)),
        },
        then_branch: Block::new(vec![Stmt::Expr(Expr::assign(
            AssignOp::Assign,
            Expr::ident(ans.clone()),
            Expr::Str("NO".into()),
        ))]),
        else_branch: None,
    });
    (s, Expr::ident(ans))
}

fn vowel_count(b: &mut CodeBuilder) -> (Vec<Stmt>, Expr) {
    let mut s = Vec::new();
    s.extend(b.read_vars(&[("text", Type::Str)]));
    let text = b.n("text");
    let count = b.n("count");
    s.push(b.decl(Type::Int, &count, Expr::Int(0)));
    let is_vowel = |c: Expr| {
        let eq = |ch: char, e: &Expr| Expr::bin(BinaryOp::Eq, e.clone(), Expr::Char(ch));
        let mut cond = eq('a', &c);
        for ch in ['e', 'i', 'o', 'u'] {
            cond = Expr::bin(BinaryOp::Or, cond, eq(ch, &c));
        }
        cond
    };
    let bump = b.incr(&count);
    // Structural fork: range-for over chars vs indexed loop.
    if b.rng.next_bool(0.5) {
        let ch = b.n("value");
        let body = vec![Stmt::If {
            cond: is_vowel(Expr::ident(ch.clone())),
            then_branch: Block::new(vec![Stmt::Expr(bump)]),
            else_branch: None,
        }];
        s.push(Stmt::ForEach {
            ty: Type::Char,
            name: ch,
            by_ref: false,
            iterable: Expr::ident(text),
            body: Block::new(body),
        });
    } else {
        let i = b.n("loop_index");
        let body = vec![Stmt::If {
            cond: is_vowel(Expr::index(
                Expr::ident(text.clone()),
                Expr::ident(i.clone()),
            )),
            then_branch: Block::new(vec![Stmt::Expr(bump)]),
            else_branch: None,
        }];
        let bound = size_bound(b, &text);
        s.extend(b.count_loop(&i, Expr::Int(0), bound, body));
    }
    (s, Expr::ident(count))
}

/// GCD gets its own program shape: the recursive variant defines a
/// standalone helper (classic competitive idiom).
fn gcd_program(b: &mut CodeBuilder) -> TranslationUnit {
    let mut items = b.prologue(&["iostream"]);
    let recursive = b.wants_helper();
    if recursive {
        let g = b.n("helper_fn");
        let a = b.n("a_val");
        let bn = b.n("b_val");
        let recurse = Expr::call(
            g.clone(),
            vec![
                Expr::ident(bn.clone()),
                Expr::bin(
                    BinaryOp::Mod,
                    Expr::ident(a.clone()),
                    Expr::ident(bn.clone()),
                ),
            ],
        );
        let body = if b.style.structure.ternary {
            vec![Stmt::Return(Some(Expr::Ternary {
                cond: Box::new(Expr::bin(
                    BinaryOp::Eq,
                    Expr::ident(bn.clone()),
                    Expr::Int(0),
                )),
                then_expr: Box::new(Expr::ident(a.clone())),
                else_expr: Box::new(recurse),
            }))]
        } else {
            vec![
                Stmt::If {
                    cond: Expr::bin(BinaryOp::Eq, Expr::ident(bn.clone()), Expr::Int(0)),
                    then_branch: Block::new(vec![Stmt::Return(Some(Expr::ident(a.clone())))]),
                    else_branch: None,
                },
                Stmt::Return(Some(recurse)),
            ]
        };
        items.push(Item::Function(Function {
            ret: Type::Int,
            name: g.clone(),
            params: vec![
                Param {
                    ty: Type::Int,
                    name: a,
                },
                Param {
                    ty: Type::Int,
                    name: bn,
                },
            ],
            body: Block::new(body),
        }));
        let main_stmts = b.case_loop(|b, case| {
            let mut stmts = b.read_vars(&[("value", Type::Int), ("value2", Type::Int)]);
            let x = b.n("value");
            let y = b.n("value2");
            let call = Expr::call(g.clone(), vec![Expr::ident(x), Expr::ident(y)]);
            stmts.push(b.print_case(case, call, false));
            stmts
        });
        items.push(main_fn(b, main_stmts));
    } else {
        let main_stmts = b.case_loop(|b, case| {
            let mut stmts = b.read_vars(&[("value", Type::Int), ("value2", Type::Int)]);
            let x = b.n("value");
            let y = b.n("value2");
            let tmp = b.n("temp");
            stmts.push(Stmt::While {
                cond: Expr::bin(BinaryOp::Ne, Expr::ident(y.clone()), Expr::Int(0)),
                body: Block::new(vec![
                    Stmt::Decl(Declaration {
                        ty: Type::Int,
                        declarators: vec![Declarator::init(tmp.clone(), Expr::ident(y.clone()))],
                    }),
                    Stmt::Expr(Expr::assign(
                        AssignOp::Assign,
                        Expr::ident(y.clone()),
                        Expr::bin(
                            BinaryOp::Mod,
                            Expr::ident(x.clone()),
                            Expr::ident(y.clone()),
                        ),
                    )),
                    Stmt::Expr(Expr::assign(
                        AssignOp::Assign,
                        Expr::ident(x.clone()),
                        Expr::ident(tmp.clone()),
                    )),
                ]),
            });
            stmts.push(b.print_case(case, Expr::ident(x), false));
            stmts
        });
        items.push(main_fn(b, main_stmts));
    }
    TranslationUnit { items }
}

fn fibonacci(b: &mut CodeBuilder) -> (Vec<Stmt>, Expr) {
    let mut s = Vec::new();
    s.extend(b.read_vars(&[("n_items", Type::Int)]));
    let n = b.n("n_items");
    let a = b.n("a_val");
    let bb = b.n("b_val");
    let ty = Result_::Long.ty(b);
    s.push(b.decl(ty.clone(), &a, Expr::Int(0)));
    s.push(b.decl(ty.clone(), &bb, Expr::Int(1)));
    let i = b.n("loop_index");
    let tmp = b.n("temp");
    let body = vec![
        Stmt::Decl(Declaration {
            ty,
            declarators: vec![Declarator::init(
                tmp.clone(),
                Expr::bin(
                    BinaryOp::Add,
                    Expr::ident(a.clone()),
                    Expr::ident(bb.clone()),
                ),
            )],
        }),
        Stmt::Expr(Expr::assign(
            AssignOp::Assign,
            Expr::ident(a.clone()),
            Expr::ident(bb.clone()),
        )),
        Stmt::Expr(Expr::assign(
            AssignOp::Assign,
            Expr::ident(bb.clone()),
            Expr::ident(tmp),
        )),
    ];
    s.extend(b.count_loop(&i, Expr::Int(0), Expr::ident(n), body));
    (s, Expr::ident(a))
}

fn sort_median(b: &mut CodeBuilder) -> (Vec<Stmt>, Expr) {
    let mut s = Vec::new();
    s.extend(b.read_vars(&[("n_items", Type::Int)]));
    let n = b.n("n_items");
    let arr = b.n("arr");
    s.push(Stmt::Decl(Declaration {
        ty: Type::Vector(Box::new(Type::Int)),
        declarators: vec![Declarator::ctor(arr.clone(), vec![Expr::ident(n.clone())])],
    }));
    let i = b.n("loop_index");
    let body = vec![Stmt::Expr(Expr::bin(
        BinaryOp::Shr,
        Expr::ident("cin"),
        Expr::index(Expr::ident(arr.clone()), Expr::ident(i.clone())),
    ))];
    s.extend(b.count_loop(&i, Expr::Int(0), Expr::ident(n.clone()), body));
    s.push(Stmt::Expr(Expr::call(
        "sort",
        vec![
            Expr::method(Expr::ident(arr.clone()), "begin", vec![]),
            Expr::method(Expr::ident(arr.clone()), "end", vec![]),
        ],
    )));
    let median = Expr::index(
        Expr::ident(arr),
        Expr::bin(BinaryOp::Div, Expr::ident(n), Expr::Int(2)),
    );
    (s, median)
}

fn pair_sum(b: &mut CodeBuilder) -> (Vec<Stmt>, Expr) {
    let mut s = Vec::new();
    s.extend(b.read_vars(&[("n_items", Type::Int), ("target", Type::Int)]));
    let n = b.n("n_items");
    let k = b.n("target");
    let arr = b.n("arr");
    s.push(Stmt::Decl(Declaration {
        ty: Type::Vector(Box::new(Type::Int)),
        declarators: vec![Declarator::ctor(arr.clone(), vec![Expr::ident(n.clone())])],
    }));
    let i = b.n("loop_index");
    let read_body = vec![Stmt::Expr(Expr::bin(
        BinaryOp::Shr,
        Expr::ident("cin"),
        Expr::index(Expr::ident(arr.clone()), Expr::ident(i.clone())),
    ))];
    s.extend(b.count_loop(&i, Expr::Int(0), Expr::ident(n.clone()), read_body));
    let count = b.n("count");
    s.push(b.decl(Type::Int, &count, Expr::Int(0)));
    let j = b.n("loop_index2");
    // The pair scan needs its own counter: reusing the read-loop's
    // would redeclare it in the same scope when both loops come out
    // in the while-form spelling.
    let p = b.n("loop_index3");
    let bump = b.incr(&count);
    let inner_body = vec![Stmt::If {
        cond: Expr::bin(
            BinaryOp::Eq,
            Expr::bin(
                BinaryOp::Add,
                Expr::index(Expr::ident(arr.clone()), Expr::ident(p.clone())),
                Expr::index(Expr::ident(arr.clone()), Expr::ident(j.clone())),
            ),
            Expr::ident(k),
        ),
        then_branch: Block::new(vec![Stmt::Expr(bump)]),
        else_branch: None,
    }];
    let inner = b.count_loop(
        &j,
        Expr::bin(BinaryOp::Add, Expr::ident(p.clone()), Expr::Int(1)),
        Expr::ident(n.clone()),
        inner_body,
    );
    s.extend(b.count_loop(&p, Expr::Int(0), Expr::ident(n), inner));
    (s, Expr::ident(count))
}

fn bracket_balance(b: &mut CodeBuilder) -> (Vec<Stmt>, Expr) {
    let mut s = Vec::new();
    s.extend(b.read_vars(&[("text", Type::Str)]));
    let text = b.n("text");
    let depth = b.n("count");
    let flag = b.n("flag");
    s.push(b.decl(Type::Int, &depth, Expr::Int(0)));
    s.push(b.decl(Type::Bool, &flag, Expr::Bool(true)));
    let i = b.n("loop_index");
    let c = Expr::index(Expr::ident(text.clone()), Expr::ident(i.clone()));
    let body = vec![
        Stmt::If {
            cond: Expr::bin(BinaryOp::Eq, c.clone(), Expr::Char('(')),
            then_branch: Block::new(vec![Stmt::Expr(b.incr(&depth))]),
            else_branch: Some(Block::new(vec![Stmt::Expr(Expr::assign(
                AssignOp::Assign,
                Expr::ident(depth.clone()),
                Expr::bin(BinaryOp::Sub, Expr::ident(depth.clone()), Expr::Int(1)),
            ))])),
        },
        Stmt::If {
            cond: Expr::bin(BinaryOp::Lt, Expr::ident(depth.clone()), Expr::Int(0)),
            then_branch: Block::new(vec![Stmt::Expr(Expr::assign(
                AssignOp::Assign,
                Expr::ident(flag.clone()),
                Expr::Bool(false),
            ))]),
            else_branch: None,
        },
    ];
    let bound = size_bound(b, &text);
    s.extend(b.count_loop(&i, Expr::Int(0), bound, body));
    let ans = b.n("answer");
    s.push(b.decl(Type::Str, &ans, Expr::Str("YES".into())));
    let bad = Expr::bin(
        BinaryOp::Or,
        Expr::Unary {
            op: UnaryOp::Not,
            expr: Box::new(Expr::ident(flag)),
        },
        Expr::bin(BinaryOp::Ne, Expr::ident(depth), Expr::Int(0)),
    );
    s.push(Stmt::If {
        cond: bad,
        then_branch: Block::new(vec![Stmt::Expr(Expr::assign(
            AssignOp::Assign,
            Expr::ident(ans.clone()),
            Expr::Str("NO".into()),
        ))]),
        else_branch: None,
    });
    (s, Expr::ident(ans))
}

fn temperature_range(b: &mut CodeBuilder) -> (Vec<Stmt>, Expr) {
    let mut s = Vec::new();
    s.extend(b.read_vars(&[("n_items", Type::Int)]));
    let n = b.n("n_items");
    s.extend(b.read_vars(&[("value", Type::Int)]));
    let prev = b.n("value");
    let sum = b.n("sum");
    s.push(b.decl(Type::Int, &sum, Expr::Int(0)));
    let i = b.n("loop_index");
    let mut body = b.read_vars(&[("value2", Type::Int)]);
    let cur = b.n("value2");
    let diff = b.n("temp");
    body.push(Stmt::Decl(Declaration {
        ty: Type::Int,
        declarators: vec![Declarator::init(
            diff.clone(),
            Expr::bin(
                BinaryOp::Sub,
                Expr::ident(cur.clone()),
                Expr::ident(prev.clone()),
            ),
        )],
    }));
    body.push(Stmt::If {
        cond: Expr::bin(BinaryOp::Lt, Expr::ident(diff.clone()), Expr::Int(0)),
        then_branch: Block::new(vec![Stmt::Expr(Expr::assign(
            AssignOp::Assign,
            Expr::ident(diff.clone()),
            Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(Expr::ident(diff.clone())),
            },
        ))]),
        else_branch: None,
    });
    body.push(b.accumulate(&sum, AssignOp::Add, Expr::ident(diff)));
    body.push(Stmt::Expr(Expr::assign(
        AssignOp::Assign,
        Expr::ident(prev),
        Expr::ident(cur),
    )));
    s.extend(b.count_loop(&i, Expr::Int(1), Expr::ident(n), body));
    (s, Expr::ident(sum))
}

fn prime_count(b: &mut CodeBuilder) -> (Vec<Stmt>, Expr) {
    let mut s = Vec::new();
    s.extend(b.read_vars(&[("limit", Type::Int)]));
    let n = b.n("limit");
    let count = b.n("count");
    s.push(b.decl(Type::Int, &count, Expr::Int(0)));
    let i = b.n("value");
    let j = b.n("loop_index2");
    let flag = b.n("flag");
    let bump = b.incr(&count);
    let inner = vec![Stmt::If {
        cond: Expr::bin(
            BinaryOp::Eq,
            Expr::bin(
                BinaryOp::Mod,
                Expr::ident(i.clone()),
                Expr::ident(j.clone()),
            ),
            Expr::Int(0),
        ),
        then_branch: Block::new(vec![
            Stmt::Expr(Expr::assign(
                AssignOp::Assign,
                Expr::ident(flag.clone()),
                Expr::Bool(false),
            )),
            Stmt::Break,
        ]),
        else_branch: None,
    }];
    let mut outer = vec![b.decl(Type::Bool, &flag, Expr::Bool(true))];
    // j * j <= i
    let j_loop = Stmt::For {
        init: Some(Box::new(Stmt::Decl(Declaration {
            ty: Type::Int,
            declarators: vec![Declarator::init(j.clone(), Expr::Int(2))],
        }))),
        cond: Some(Expr::bin(
            BinaryOp::Le,
            Expr::bin(
                BinaryOp::Mul,
                Expr::ident(j.clone()),
                Expr::ident(j.clone()),
            ),
            Expr::ident(i.clone()),
        )),
        step: Some(b.incr(&j)),
        body: Block::new(inner),
    };
    outer.push(j_loop);
    outer.push(Stmt::If {
        cond: Expr::ident(flag),
        then_branch: Block::new(vec![Stmt::Expr(bump)]),
        else_branch: None,
    });
    s.extend(b.count_loop(
        &i,
        Expr::Int(2),
        Expr::bin(BinaryOp::Add, Expr::ident(n), Expr::Int(1)),
        outer,
    ));
    (s, Expr::ident(count))
}

fn digit_root(b: &mut CodeBuilder) -> (Vec<Stmt>, Expr) {
    let mut s = Vec::new();
    s.extend(b.read_vars(&[("value", Type::Int)]));
    let n = b.n("value");
    let sum = b.n("sum");
    let outer_body = vec![
        Stmt::Decl(Declaration {
            ty: Type::Int,
            declarators: vec![Declarator::init(sum.clone(), Expr::Int(0))],
        }),
        Stmt::While {
            cond: Expr::bin(BinaryOp::Gt, Expr::ident(n.clone()), Expr::Int(0)),
            body: Block::new(vec![
                b.accumulate(
                    &sum,
                    AssignOp::Add,
                    Expr::bin(BinaryOp::Mod, Expr::ident(n.clone()), Expr::Int(10)),
                ),
                Stmt::Expr(Expr::assign(
                    AssignOp::Div,
                    Expr::ident(n.clone()),
                    Expr::Int(10),
                )),
            ]),
        },
        Stmt::Expr(Expr::assign(
            AssignOp::Assign,
            Expr::ident(n.clone()),
            Expr::ident(sum.clone()),
        )),
    ];
    s.push(Stmt::While {
        cond: Expr::bin(BinaryOp::Ge, Expr::ident(n.clone()), Expr::Int(10)),
        body: Block::new(outer_body),
    });
    (s, Expr::ident(n))
}

fn longest_run(b: &mut CodeBuilder) -> (Vec<Stmt>, Expr) {
    let mut s = Vec::new();
    s.extend(b.read_vars(&[("n_items", Type::Int)]));
    let n = b.n("n_items");
    s.extend(b.read_vars(&[("value", Type::Int)]));
    let prev = b.n("value");
    let cur_run = b.n("count");
    let best = b.n("best");
    s.push(b.decl(Type::Int, &cur_run, Expr::Int(1)));
    s.push(b.decl(Type::Int, &best, Expr::Int(1)));
    let i = b.n("loop_index");
    let mut body = b.read_vars(&[("value2", Type::Int)]);
    let cur = b.n("value2");
    // if (cur == prev) run++ else run = 1
    let bump = b.incr(&cur_run);
    body.push(Stmt::If {
        cond: Expr::bin(
            BinaryOp::Eq,
            Expr::ident(cur.clone()),
            Expr::ident(prev.clone()),
        ),
        then_branch: Block::new(vec![Stmt::Expr(bump)]),
        else_branch: Some(Block::new(vec![Stmt::Expr(Expr::assign(
            AssignOp::Assign,
            Expr::ident(cur_run.clone()),
            Expr::Int(1),
        ))])),
    });
    body.push(b.max_update(&best, Expr::ident(cur_run.clone())));
    body.push(Stmt::Expr(Expr::assign(
        AssignOp::Assign,
        Expr::ident(prev),
        Expr::ident(cur),
    )));
    s.extend(b.count_loop(&i, Expr::Int(1), Expr::ident(n), body));
    (s, Expr::ident(best))
}

fn mod_pow(b: &mut CodeBuilder) -> (Vec<Stmt>, Expr) {
    let mut s = Vec::new();
    s.extend(b.read_vars(&[
        ("a_val", Type::Int),
        ("b_val", Type::Int),
        ("limit", Type::Int),
    ]));
    let a = b.n("a_val");
    let e = b.n("b_val");
    let m = b.n("limit");
    let acc = b.n("answer");
    let base = b.n("temp");
    let ty = Result_::Long.ty(b);
    s.push(b.decl(ty.clone(), &acc, Expr::Int(1)));
    s.push(b.decl(
        ty,
        &base,
        Expr::bin(BinaryOp::Mod, Expr::ident(a), Expr::ident(m.clone())),
    ));
    // while (e > 0) { if (e % 2 == 1) acc = acc * base % m; base = base * base % m; e /= 2; }
    let odd = Expr::bin(
        BinaryOp::Eq,
        Expr::bin(BinaryOp::Mod, Expr::ident(e.clone()), Expr::Int(2)),
        Expr::Int(1),
    );
    let mul_mod = |lhs: &str, rhs: &str, m: &str| {
        Expr::bin(
            BinaryOp::Mod,
            Expr::bin(BinaryOp::Mul, Expr::ident(lhs), Expr::ident(rhs)),
            Expr::ident(m),
        )
    };
    let body = vec![
        Stmt::If {
            cond: odd,
            then_branch: Block::new(vec![Stmt::Expr(Expr::assign(
                AssignOp::Assign,
                Expr::ident(acc.clone()),
                mul_mod(&acc, &base, &m),
            ))]),
            else_branch: None,
        },
        Stmt::Expr(Expr::assign(
            AssignOp::Assign,
            Expr::ident(base.clone()),
            mul_mod(&base, &base, &m),
        )),
        Stmt::Expr(Expr::assign(
            AssignOp::Div,
            Expr::ident(e.clone()),
            Expr::Int(2),
        )),
    ];
    s.push(Stmt::While {
        cond: Expr::bin(BinaryOp::Gt, Expr::ident(e), Expr::Int(0)),
        body: Block::new(body),
    });
    (s, Expr::ident(acc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use synthattr_lang::parse;

    fn build_one(ch: ChallengeId, seed: u64) -> String {
        let mut rng = Pcg64::new(seed);
        let style = AuthorStyle::sample(&mut rng);
        ch.render_solution(&style, rng.fork(&["file"]))
    }

    #[test]
    fn every_challenge_renders_parseable_code_across_styles() {
        for ch in ChallengeId::all() {
            for seed in 0..25 {
                let text = build_one(ch, seed);
                parse(&text).unwrap_or_else(|e| panic!("{} seed {seed}: {e}\n{text}", ch.name()));
            }
        }
    }

    #[test]
    fn solutions_have_main_and_case_output() {
        for ch in ChallengeId::all() {
            let text = build_one(ch, 7);
            assert!(text.contains("main"), "{}: {text}", ch.name());
            assert!(text.contains("Case #"), "{}: {text}", ch.name());
        }
    }

    #[test]
    fn same_style_same_seed_is_reproducible() {
        let a = build_one(ChallengeId::HorseRace, 3);
        let b = build_one(ChallengeId::HorseRace, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn different_authors_differ_textually() {
        let mut distinct = std::collections::HashSet::new();
        for seed in 0..20 {
            distinct.insert(build_one(ChallengeId::SumSeries, seed));
        }
        assert!(
            distinct.len() >= 18,
            "authors should rarely collide, got {} distinct",
            distinct.len()
        );
    }

    #[test]
    fn helper_extraction_actually_happens_for_helper_authors() {
        let mut seen_helper = false;
        let mut seen_inline = false;
        for seed in 0..40 {
            let text = build_one(ChallengeId::SumSeries, seed);
            let unit = parse(&text).unwrap();
            let fns = unit.functions().count();
            if fns >= 2 {
                seen_helper = true;
            } else {
                seen_inline = true;
            }
        }
        assert!(seen_helper && seen_inline);
    }

    #[test]
    fn horse_race_matches_figure3_shape() {
        // Force the paper's Figure 3 shape: inline, stream reads,
        // printf output happens in some styles; here we just check the
        // computation skeleton exists.
        let text = build_one(ChallengeId::HorseRace, 11);
        let unit = parse(&text).unwrap();
        use synthattr_lang::metrics::AstMetrics;
        let m = AstMetrics::measure(&unit);
        use synthattr_lang::ast::NodeKind;
        // Two nested loops => at least 2 loop nodes; a division; casts.
        let loops = m.kind_count(NodeKind::ForStmt) + m.kind_count(NodeKind::WhileStmt);
        assert!(loops >= 2, "{text}");
        assert!(
            m.kind_count(NodeKind::Cast) + m.kind_count(NodeKind::StaticCastNode) >= 1,
            "{text}"
        );
    }

    #[test]
    fn challenge_names_are_unique() {
        let mut names: Vec<&str> = ChallengeId::all().iter().map(|c| c.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), ChallengeId::all().len());
    }
}
