//! Synthetic Google-Code-Jam-style corpus generation.
//!
//! The reproduced paper trains per-year authorship models on 204 GCJ
//! authors × 8 challenges (Table I). Those corpora are not
//! redistributable, so this crate synthesizes an equivalent learning
//! problem:
//!
//! * [`style`] — an [`style::AuthorStyle`] bundles every stylistic
//!   degree of freedom the feature set can observe: layout
//!   ([`synthattr_lang::render::RenderStyle`]), naming conventions, IO
//!   idioms, loop/cast/comment habits, and prologue habits. Styles are
//!   sampled per author from a seeded PRNG.
//! * [`naming`] — concept-based identifier synthesis: each semantic
//!   concept (`"num_cases"`, `"accumulator"`, …) maps to
//!   per-verbosity synonym sets rendered in the author's casing
//!   convention.
//! * [`challenges`] — 14 algorithmic challenge templates (including
//!   the paper's Figure 3 horse-race problem) built directly as ASTs,
//!   with structure that varies with the author's habits (helper
//!   functions, loop forms, ternaries, …).
//! * [`corpus`] — assembles per-year corpora: 204 authors × 8
//!   challenges, mirroring Table I.
//!
//! # Example
//!
//! ```
//! use synthattr_gen::corpus::{YearSpec, generate_year};
//!
//! let year = generate_year(&YearSpec::tiny(2017, 4, 3), 42);
//! assert_eq!(year.samples.len(), 4 * 3);
//! // Every sample is valid C++ in the supported subset.
//! for s in &year.samples {
//!     synthattr_lang::parse(&s.source).unwrap();
//! }
//! ```

pub mod builder;
pub mod challenges;
pub mod corpus;
pub mod naming;
pub mod style;

pub use challenges::ChallengeId;
pub use corpus::{generate_year, CodeSample, Origin, YearCorpus, YearSpec};
pub use style::AuthorStyle;
