//! Style-aware AST construction helpers.
//!
//! Challenge templates describe *what* a program does; the
//! [`CodeBuilder`] decides *how it is spelled* according to the
//! author's [`AuthorStyle`]: IO idiom, loop form, increment spelling,
//! cast spelling, comment habits, declaration merging, and naming.

use crate::naming::Namer;
use crate::style::AuthorStyle;
use synthattr_lang::ast::*;
use synthattr_util::Pcg64;

/// Builds style-conforming AST fragments.
#[derive(Debug, Clone)]
pub struct CodeBuilder {
    /// The author profile driving every choice.
    pub style: AuthorStyle,
    /// Name synthesis (memoized per concept).
    pub namer: Namer,
    /// Per-file random stream (structural coin flips).
    pub rng: Pcg64,
}

impl CodeBuilder {
    /// Creates a builder for one file.
    pub fn new(style: AuthorStyle, rng: Pcg64) -> Self {
        let namer_rng = rng.fork(&["namer"]);
        CodeBuilder {
            namer: Namer::new(style.naming, namer_rng),
            style,
            rng,
        }
    }

    /// Shorthand: the identifier for `concept`.
    pub fn n(&mut self, concept: &str) -> String {
        self.namer.name(concept)
    }

    /// Shorthand: an identifier expression for `concept`.
    pub fn var(&mut self, concept: &str) -> Expr {
        let name = self.n(concept);
        Expr::Ident(name)
    }

    // -- prologue ---------------------------------------------------------

    /// Emits includes (respecting the `bits/stdc++.h` habit), `using
    /// namespace std;`, and the author's `long long` alias if any.
    ///
    /// `headers` are the headers the program actually needs (e.g.
    /// `["iostream", "vector", "algorithm"]`).
    pub fn prologue(&mut self, headers: &[&str]) -> Vec<Item> {
        let mut items = Vec::new();
        if self.style.comments.banner {
            items.push(Item::Comment(Comment {
                text: "solution".into(),
                block: self.style.comments.block,
            }));
        }
        if self.style.prologue.bits_stdcpp {
            items.push(Item::Include {
                path: "bits/stdc++.h".into(),
                system: true,
            });
        } else {
            let mut list: Vec<&str> = headers.to_vec();
            if self.style.io.stdio && !list.contains(&"cstdio") {
                list.push("cstdio");
            }
            if self.style.prologue.extra_headers {
                for h in ["cmath", "cstring"] {
                    if !list.contains(&h) {
                        list.push(h);
                    }
                }
            }
            for h in list {
                items.push(Item::Include {
                    path: h.into(),
                    system: true,
                });
            }
        }
        if self.style.prologue.using_namespace {
            items.push(Item::UsingNamespace("std".into()));
        }
        match self.style.prologue.long_long_alias {
            1 => items.push(Item::Typedef {
                ty: Type::LongLong,
                name: "ll".into(),
            }),
            2 => items.push(Item::UsingAlias {
                name: "ll".into(),
                ty: Type::LongLong,
            }),
            _ => {}
        }
        items
    }

    // -- comments -----------------------------------------------------------

    /// Possibly emits a comment (per the author's comment density).
    pub fn maybe_comment(&mut self, text: &str) -> Option<Stmt> {
        if self.rng.next_bool(self.style.comments.density) {
            Some(Stmt::Comment(Comment {
                text: text.to_string(),
                block: self.style.comments.block,
            }))
        } else {
            None
        }
    }

    /// Appends `maybe_comment` to `out` when it fires.
    pub fn push_comment(&mut self, out: &mut Vec<Stmt>, text: &str) {
        if let Some(c) = self.maybe_comment(text) {
            out.push(c);
        }
    }

    // -- IO ------------------------------------------------------------------

    fn scanf_spec(ty: &Type) -> &'static str {
        match ty {
            Type::Int => "%d",
            Type::Long | Type::LongLong => "%lld",
            Type::Double | Type::Float => "%lf",
            _ => "%d",
        }
    }

    /// Declares the variables and reads them from input, honoring the
    /// IO idiom and declaration-merging habits. Variables are given by
    /// `(concept, type)`.
    pub fn read_vars(&mut self, vars: &[(&str, Type)]) -> Vec<Stmt> {
        let names: Vec<(String, Type)> = vars.iter().map(|(c, t)| (self.n(c), t.clone())).collect();
        let mut out = Vec::new();
        // Declarations: merged per type when the habit says so.
        if self.style.structure.merge_decls {
            let mut i = 0;
            while i < names.len() {
                let ty = names[i].1.clone();
                let mut declarators = vec![Declarator::plain(names[i].0.clone())];
                let mut j = i + 1;
                while j < names.len() && names[j].1 == ty {
                    declarators.push(Declarator::plain(names[j].0.clone()));
                    j += 1;
                }
                out.push(Stmt::Decl(Declaration { ty, declarators }));
                i = j;
            }
        } else {
            for (name, ty) in &names {
                out.push(Stmt::Decl(Declaration {
                    ty: ty.clone(),
                    declarators: vec![Declarator::plain(name.clone())],
                }));
            }
        }
        out.extend(self.read_named(&names));
        out
    }

    /// Reads already-declared `(name, type)` variables.
    pub fn read_named(&mut self, names: &[(String, Type)]) -> Vec<Stmt> {
        let mut out = Vec::new();
        if self.style.io.stdio
            && names
                .iter()
                .all(|(_, t)| !matches!(t, Type::Str | Type::Vector(_)))
        {
            if self.style.io.merge_reads {
                let fmt: Vec<&str> = names.iter().map(|(_, t)| Self::scanf_spec(t)).collect();
                let args = std::iter::once(Expr::Str(fmt.join(" ")))
                    .chain(names.iter().map(|(n, _)| addr_of(Expr::Ident(n.clone()))))
                    .collect();
                out.push(Stmt::Expr(Expr::call("scanf", args)));
            } else {
                for (n, t) in names {
                    out.push(Stmt::Expr(Expr::call(
                        "scanf",
                        vec![
                            Expr::Str(Self::scanf_spec(t).to_string()),
                            addr_of(Expr::Ident(n.clone())),
                        ],
                    )));
                }
            }
        } else if self.style.io.merge_reads && names.len() > 1 {
            let mut chain = Expr::bin(
                BinaryOp::Shr,
                Expr::ident("cin"),
                Expr::Ident(names[0].0.clone()),
            );
            for (n, _) in &names[1..] {
                chain = Expr::bin(BinaryOp::Shr, chain, Expr::Ident(n.clone()));
            }
            out.push(Stmt::Expr(chain));
        } else {
            for (n, _) in names {
                out.push(Stmt::Expr(Expr::bin(
                    BinaryOp::Shr,
                    Expr::ident("cin"),
                    Expr::Ident(n.clone()),
                )));
            }
        }
        out
    }

    /// Emits the `Case #k: value` output line of a GCJ solution.
    ///
    /// `double_result` switches the formatting (`%.6lf` for printf).
    pub fn print_case(&mut self, case_expr: Expr, value: Expr, double_result: bool) -> Stmt {
        if self.style.io.stdio {
            let fmt = if double_result {
                "Case #%d: %.6lf\n"
            } else {
                "Case #%d: %d\n"
            };
            Stmt::Expr(Expr::call(
                "printf",
                vec![Expr::Str(fmt.into()), case_expr, value],
            ))
        } else {
            let mut chain = Expr::bin(
                BinaryOp::Shl,
                Expr::ident("cout"),
                Expr::Str("Case #".into()),
            );
            chain = Expr::bin(BinaryOp::Shl, chain, case_expr);
            chain = Expr::bin(BinaryOp::Shl, chain, Expr::Str(": ".into()));
            if double_result {
                chain = Expr::bin(BinaryOp::Shl, chain, Expr::ident("fixed"));
                chain = Expr::bin(
                    BinaryOp::Shl,
                    chain,
                    Expr::call(
                        "setprecision",
                        vec![Expr::Int(i64::from(self.style.io.precision))],
                    ),
                );
            }
            chain = Expr::bin(BinaryOp::Shl, chain, value);
            chain = Expr::bin(
                BinaryOp::Shl,
                chain,
                if self.style.io.endl {
                    Expr::ident("endl")
                } else {
                    Expr::Str("\n".into())
                },
            );
            Stmt::Expr(chain)
        }
    }

    /// Emits the case line for a string-valued result.
    pub fn print_case_str(&mut self, case_expr: Expr, value: Expr) -> Stmt {
        if self.style.io.stdio {
            Stmt::Expr(Expr::call(
                "printf",
                vec![
                    Expr::Str("Case #%d: %s\n".into()),
                    case_expr,
                    Expr::method(value, "c_str", vec![]),
                ],
            ))
        } else {
            self.print_case(case_expr, value, false)
        }
    }

    // -- loops -------------------------------------------------------------

    /// The author's increment expression for `name`.
    pub fn incr(&mut self, name: &str) -> Expr {
        let op = if self.style.loops.post_increment {
            UnaryOp::PostInc
        } else {
            UnaryOp::PreInc
        };
        Expr::Unary {
            op,
            expr: Box::new(Expr::ident(name)),
        }
    }

    /// A counting loop `for name in [from, to_exclusive)`, spelled as
    /// `for` or `while` per the author's habit.
    pub fn count_loop(
        &mut self,
        name: &str,
        from: Expr,
        to_exclusive: Expr,
        body: Vec<Stmt>,
    ) -> Vec<Stmt> {
        let step = self.incr(name);
        let cond = Expr::bin(BinaryOp::Lt, Expr::ident(name), to_exclusive);
        if self.rng.next_bool(self.style.loops.while_bias) {
            // while-form: declaration before, increment inside.
            let mut inner = body;
            inner.push(Stmt::Expr(step));
            vec![
                Stmt::Decl(Declaration {
                    ty: Type::Int,
                    declarators: vec![Declarator::init(name, from)],
                }),
                Stmt::While {
                    cond,
                    body: Block::new(inner),
                },
            ]
        } else if self.style.loops.predeclare_counter {
            // `int i; for (i = from; ...)` — the counter outlives the
            // loop, as some authors habitually write it.
            vec![
                Stmt::Decl(Declaration {
                    ty: Type::Int,
                    declarators: vec![Declarator::plain(name)],
                }),
                Stmt::For {
                    init: Some(Box::new(Stmt::Expr(Expr::assign(
                        AssignOp::Assign,
                        Expr::ident(name),
                        from,
                    )))),
                    cond: Some(cond),
                    step: Some(step),
                    body: Block::new(body),
                },
            ]
        } else {
            vec![Stmt::For {
                init: Some(Box::new(Stmt::Decl(Declaration {
                    ty: Type::Int,
                    declarators: vec![Declarator::init(name, from)],
                }))),
                cond: Some(cond),
                step: Some(step),
                body: Block::new(body),
            }]
        }
    }

    /// Reads the number of test cases and loops over them.
    ///
    /// The `body` closure receives the builder and the *case-number
    /// expression* (1-based, ready for `Case #`): either the loop
    /// variable itself (one-based habit) or `i + 1`.
    pub fn case_loop(
        &mut self,
        body: impl FnOnce(&mut CodeBuilder, Expr) -> Vec<Stmt>,
    ) -> Vec<Stmt> {
        let mut out = Vec::new();
        if self.style.io.fast_io && !self.style.io.stdio {
            // The competitive-programming fast-IO incantation.
            out.push(Stmt::Expr(Expr::call(
                "ios_base::sync_with_stdio",
                vec![Expr::Bool(false)],
            )));
            out.push(Stmt::Expr(Expr::method(
                Expr::ident("cin"),
                "tie",
                vec![Expr::Int(0)],
            )));
        }
        out.extend(self.read_vars(&[("num_cases", Type::Int)]));
        let t = self.n("num_cases");
        let i = self.n("case_index");
        if self.style.loops.one_based_cases {
            let stmts = body(self, Expr::ident(i.clone()));
            let step = self.incr(&i);
            if self.style.loops.predeclare_counter {
                out.push(Stmt::Decl(Declaration {
                    ty: Type::Int,
                    declarators: vec![Declarator::plain(i.clone())],
                }));
                out.push(Stmt::For {
                    init: Some(Box::new(Stmt::Expr(Expr::assign(
                        AssignOp::Assign,
                        Expr::ident(i.clone()),
                        Expr::Int(1),
                    )))),
                    cond: Some(Expr::bin(BinaryOp::Le, Expr::ident(i), Expr::ident(t))),
                    step: Some(step),
                    body: Block::new(stmts),
                });
            } else {
                out.push(Stmt::For {
                    init: Some(Box::new(Stmt::Decl(Declaration {
                        ty: Type::Int,
                        declarators: vec![Declarator::init(i.clone(), Expr::Int(1))],
                    }))),
                    cond: Some(Expr::bin(BinaryOp::Le, Expr::ident(i), Expr::ident(t))),
                    step: Some(step),
                    body: Block::new(stmts),
                });
            }
        } else {
            let case_expr = Expr::bin(BinaryOp::Add, Expr::ident(i.clone()), Expr::Int(1));
            let stmts = body(self, case_expr);
            out.extend(self.count_loop(&i.clone(), Expr::Int(0), Expr::ident(t), stmts));
        }
        out
    }

    // -- expressions ----------------------------------------------------------

    /// `target op= value` or `target = target op value` per habit.
    pub fn accumulate(&mut self, target: &str, op: AssignOp, value: Expr) -> Stmt {
        if self.style.structure.compound_assign && op != AssignOp::Assign {
            Stmt::Expr(Expr::assign(op, Expr::ident(target), value))
        } else {
            let bin_op = match op {
                AssignOp::Add => BinaryOp::Add,
                AssignOp::Sub => BinaryOp::Sub,
                AssignOp::Mul => BinaryOp::Mul,
                AssignOp::Div => BinaryOp::Div,
                AssignOp::Mod => BinaryOp::Mod,
                AssignOp::Assign => {
                    return Stmt::Expr(Expr::assign(AssignOp::Assign, Expr::ident(target), value))
                }
            };
            Stmt::Expr(Expr::assign(
                AssignOp::Assign,
                Expr::ident(target),
                Expr::bin(bin_op, Expr::ident(target), value),
            ))
        }
    }

    /// `target = max(target, value)`, or the `if`/ternary spellings,
    /// per habit.
    pub fn max_update(&mut self, target: &str, value: Expr) -> Stmt {
        if self.style.structure.ternary && self.rng.next_bool(0.6) {
            // target = value > target ? value : target;
            Stmt::Expr(Expr::assign(
                AssignOp::Assign,
                Expr::ident(target),
                Expr::Ternary {
                    cond: Box::new(Expr::bin(BinaryOp::Gt, value.clone(), Expr::ident(target))),
                    then_expr: Box::new(value),
                    else_expr: Box::new(Expr::ident(target)),
                },
            ))
        } else if self.rng.next_bool(0.5) {
            Stmt::Expr(Expr::assign(
                AssignOp::Assign,
                Expr::ident(target),
                Expr::call("max", vec![Expr::ident(target), value]),
            ))
        } else {
            Stmt::If {
                cond: Expr::bin(BinaryOp::Gt, value.clone(), Expr::ident(target)),
                then_branch: Block::new(vec![Stmt::Expr(Expr::assign(
                    AssignOp::Assign,
                    Expr::ident(target),
                    value,
                ))]),
                else_branch: None,
            }
        }
    }

    /// A `double` cast in the author's spelling.
    pub fn cast_double(&mut self, e: Expr) -> Expr {
        if self.style.structure.static_cast {
            // `static_cast<T>(...)` supplies its own parentheses.
            Expr::StaticCast {
                ty: Type::Double,
                expr: Box::new(e.unparen_simple()),
            }
        } else {
            Expr::Cast {
                ty: Type::Double,
                expr: Box::new(wrap_for_cast(e)),
            }
        }
    }

    /// Whether this file should use a helper function for per-case work.
    pub fn wants_helper(&mut self) -> bool {
        let bias = self.style.structure.helper_bias;
        self.rng.next_bool(bias)
    }

    /// A declaration statement `ty name = init;`.
    pub fn decl(&mut self, ty: Type, name: &str, init: Expr) -> Stmt {
        Stmt::Decl(Declaration {
            ty,
            declarators: vec![Declarator::init(name, init)],
        })
    }
}

/// `&e` (scanf argument form).
pub fn addr_of(e: Expr) -> Expr {
    Expr::Unary {
        op: UnaryOp::AddrOf,
        expr: Box::new(e),
    }
}

/// Casts bind tightly; wrap non-primary operands in parens so the
/// rendered text means what the tree means.
fn wrap_for_cast(e: Expr) -> Expr {
    match &e {
        Expr::Int(_)
        | Expr::Float(_)
        | Expr::Ident(_)
        | Expr::Paren(_)
        | Expr::Call { .. }
        | Expr::Member { .. }
        | Expr::Index { .. } => e,
        _ => Expr::Paren(Box::new(e)),
    }
}

trait UnparenSimple {
    /// `static_cast<T>(x)` already parenthesizes its operand; drop an
    /// outer `Paren` so we don't render `static_cast<double>((x))`.
    fn unparen_simple(self) -> Expr;
}

impl UnparenSimple for Expr {
    fn unparen_simple(self) -> Expr {
        match self {
            Expr::Paren(inner) => *inner,
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synthattr_lang::parse;
    use synthattr_lang::render::{render, RenderStyle};

    fn builder(seed: u64) -> CodeBuilder {
        let mut rng = Pcg64::new(seed);
        let style = AuthorStyle::sample(&mut rng);
        CodeBuilder::new(style, rng)
    }

    fn render_stmts(stmts: Vec<Stmt>) -> String {
        let unit = TranslationUnit {
            items: vec![Item::Function(Function {
                ret: Type::Int,
                name: "main".into(),
                params: vec![],
                body: Block::new(stmts),
            })],
        };
        let text = render(&unit, &RenderStyle::default());
        // The fragment must re-parse.
        parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        text
    }

    #[test]
    fn read_vars_emits_valid_code_for_many_styles() {
        for seed in 0..30 {
            let mut b = builder(seed);
            let stmts = b.read_vars(&[("n_items", Type::Int), ("target", Type::Int)]);
            let text = render_stmts(stmts);
            assert!(
                text.contains("cin") || text.contains("scanf"),
                "seed {seed}: {text}"
            );
        }
    }

    #[test]
    fn stdio_style_uses_scanf_with_addresses() {
        let mut b = builder(3);
        b.style.io.stdio = true;
        b.style.io.merge_reads = true;
        let stmts = b.read_vars(&[("a_val", Type::Int), ("b_val", Type::Int)]);
        let text = render_stmts(stmts);
        assert!(text.contains("scanf(\"%d %d\""), "{text}");
        assert!(text.contains('&'), "{text}");
    }

    #[test]
    fn string_reads_fall_back_to_cin() {
        let mut b = builder(4);
        b.style.io.stdio = true;
        let stmts = b.read_vars(&[("text", Type::Str)]);
        let text = render_stmts(stmts);
        assert!(text.contains("cin"), "{text}");
    }

    #[test]
    fn print_case_formats_both_idioms() {
        let mut b = builder(5);
        b.style.io.stdio = false;
        b.style.io.endl = true;
        let s1 = b.print_case(Expr::Int(1), Expr::Int(7), false);
        let text1 = render_stmts(vec![s1]);
        assert!(text1.contains("cout << \"Case #\" << 1"), "{text1}");
        assert!(text1.contains("endl"), "{text1}");

        let mut b2 = builder(6);
        b2.style.io.stdio = true;
        let s2 = b2.print_case(Expr::Int(1), Expr::Int(7), true);
        let text2 = render_stmts(vec![s2]);
        assert!(text2.contains("printf(\"Case #%d: %.6lf\\n\""), "{text2}");
    }

    #[test]
    fn case_loop_one_based_vs_zero_based() {
        let mut b = builder(7);
        b.style.loops.one_based_cases = true;
        b.style.loops.while_bias = 0.0;
        let stmts = b.case_loop(|b, case| vec![b.print_case(case, Expr::Int(0), false)]);
        let text = render_stmts(stmts);
        assert!(text.contains("= 1;"), "{text}");
        assert!(text.contains("<="), "{text}");

        let mut b = builder(8);
        b.style.loops.one_based_cases = false;
        b.style.loops.while_bias = 0.0;
        let stmts = b.case_loop(|b, case| vec![b.print_case(case, Expr::Int(0), false)]);
        let text = render_stmts(stmts);
        assert!(text.contains("= 0;"), "{text}");
        assert!(text.contains("+ 1"), "{text}");
    }

    #[test]
    fn count_loop_while_form() {
        let mut b = builder(9);
        b.style.loops.while_bias = 1.0;
        let stmts = b.count_loop("i", Expr::Int(0), Expr::Int(5), vec![Stmt::Empty]);
        let text = render_stmts(stmts);
        assert!(text.contains("while"), "{text}");
        assert!(!text.contains("for"), "{text}");
    }

    #[test]
    fn accumulate_respects_compound_habit() {
        let mut b = builder(10);
        b.style.structure.compound_assign = true;
        let text = render_stmts(vec![
            b.decl(Type::Int, "x", Expr::Int(0)),
            b.accumulate("x", AssignOp::Add, Expr::Int(2)),
        ]);
        assert!(text.contains("x += 2"), "{text}");

        let mut b = builder(11);
        b.style.structure.compound_assign = false;
        let text = render_stmts(vec![
            b.decl(Type::Int, "x", Expr::Int(0)),
            b.accumulate("x", AssignOp::Add, Expr::Int(2)),
        ]);
        assert!(text.contains("x = x + 2"), "{text}");
    }

    #[test]
    fn cast_double_respects_habit() {
        let mut b = builder(12);
        b.style.structure.static_cast = false;
        let cast = b.cast_double(Expr::ident("x"));
        let text = render_stmts(vec![b.decl(Type::Double, "d", cast)]);
        assert!(text.contains("(double)x"), "{text}");

        let mut b = builder(13);
        b.style.structure.static_cast = true;
        let cast = b.cast_double(Expr::ident("x"));
        let text = render_stmts(vec![b.decl(Type::Double, "d", cast)]);
        assert!(text.contains("static_cast<double>(x)"), "{text}");
    }

    #[test]
    fn cast_of_binary_operand_is_parenthesized() {
        let mut b = builder(14);
        b.style.structure.static_cast = false;
        let e = b.cast_double(Expr::bin(BinaryOp::Add, Expr::ident("x"), Expr::Int(1)));
        let text = render_stmts(vec![b.decl(Type::Double, "d", e)]);
        assert!(text.contains("(double)(x + 1)"), "{text}");
    }

    #[test]
    fn max_update_variants_all_reparse() {
        for seed in 0..20 {
            let mut b = builder(seed);
            let v = Expr::ident("x");
            let stmts = vec![
                b.decl(Type::Int, "t", Expr::Int(0)),
                b.decl(Type::Int, "x", Expr::Int(3)),
                b.max_update("t", v),
            ];
            render_stmts(stmts); // asserts reparse internally
        }
    }

    #[test]
    fn prologue_variants() {
        let mut b = builder(15);
        b.style.prologue.bits_stdcpp = true;
        b.style.prologue.using_namespace = true;
        b.style.prologue.long_long_alias = 1;
        let items = b.prologue(&["iostream", "vector"]);
        let unit = TranslationUnit { items };
        let text = render(&unit, &RenderStyle::default());
        assert!(text.contains("bits/stdc++.h"), "{text}");
        assert!(!text.contains("iostream"), "{text}");
        assert!(text.contains("typedef long long ll;"), "{text}");

        let mut b = builder(16);
        b.style.prologue.bits_stdcpp = false;
        b.style.io.stdio = true;
        b.style.prologue.long_long_alias = 2;
        let items = b.prologue(&["iostream"]);
        let unit = TranslationUnit { items };
        let text = render(&unit, &RenderStyle::default());
        assert!(
            text.contains("iostream") && text.contains("cstdio"),
            "{text}"
        );
        assert!(text.contains("using ll = long long;"), "{text}");
    }

    #[test]
    fn fast_io_prelude_opens_stream_mains() {
        let mut b = builder(20);
        b.style.io.stdio = false;
        b.style.io.fast_io = true;
        b.style.loops.while_bias = 0.0;
        let stmts = b.case_loop(|b, case| vec![b.print_case(case, Expr::Int(0), false)]);
        let text = render_stmts(stmts);
        assert!(text.contains("ios_base::sync_with_stdio(false)"), "{text}");
        assert!(text.contains("tie(0)"), "{text}");

        // stdio authors never emit it, fast_io habit or not.
        let mut b = builder(21);
        b.style.io.stdio = true;
        b.style.io.fast_io = true;
        b.style.loops.while_bias = 0.0;
        let stmts = b.case_loop(|b, case| vec![b.print_case(case, Expr::Int(0), false)]);
        let text = render_stmts(stmts);
        assert!(!text.contains("sync_with_stdio"), "{text}");
    }

    #[test]
    fn predeclared_counters_split_decl_from_for_init() {
        let mut b = builder(22);
        b.style.loops.predeclare_counter = true;
        b.style.loops.while_bias = 0.0;
        let stmts = b.count_loop("i", Expr::Int(0), Expr::Int(5), vec![Stmt::Empty]);
        let text = render_stmts(stmts);
        assert!(text.contains("int i;"), "{text}");
        assert!(
            text.contains("for (i = 0") || text.contains("for(i=0"),
            "{text}"
        );

        // One-based case loops honor the habit too.
        let mut b = builder(23);
        b.style.io.stdio = false;
        b.style.io.fast_io = false;
        b.style.loops.one_based_cases = true;
        b.style.loops.predeclare_counter = true;
        let stmts = b.case_loop(|b, case| vec![b.print_case(case, Expr::Int(0), false)]);
        let text = render_stmts(stmts);
        assert!(text.contains("= 1;"), "{text}");
    }

    #[test]
    fn stream_doubles_carry_the_author_precision() {
        let mut b = builder(24);
        b.style.io.stdio = false;
        b.style.io.precision = 9;
        let s = b.print_case(Expr::Int(1), Expr::ident("x"), true);
        let text = render_stmts(vec![b.decl(Type::Double, "x", Expr::Float("0".into())), s]);
        assert!(text.contains("fixed"), "{text}");
        assert!(text.contains("setprecision(9)"), "{text}");

        // Integer results never pick up the precision chain.
        let mut b = builder(25);
        b.style.io.stdio = false;
        let s = b.print_case(Expr::Int(1), Expr::Int(7), false);
        let text = render_stmts(vec![s]);
        assert!(!text.contains("setprecision"), "{text}");
    }

    #[test]
    fn banner_and_extra_headers_shape_the_prologue() {
        let mut b = builder(26);
        b.style.comments.banner = true;
        b.style.comments.block = false;
        b.style.prologue.bits_stdcpp = false;
        b.style.prologue.extra_headers = true;
        let items = b.prologue(&["iostream"]);
        assert!(matches!(items[0], Item::Comment(_)), "{items:?}");
        let unit = TranslationUnit { items };
        let text = render(&unit, &RenderStyle::default());
        assert!(text.contains("cmath") && text.contains("cstring"), "{text}");

        // bits/stdc++.h subsumes the extra headers.
        let mut b = builder(27);
        b.style.comments.banner = false;
        b.style.prologue.bits_stdcpp = true;
        b.style.prologue.extra_headers = true;
        let items = b.prologue(&["iostream"]);
        let unit = TranslationUnit { items };
        let text = render(&unit, &RenderStyle::default());
        assert!(!text.contains("cmath"), "{text}");
    }

    #[test]
    fn comments_fire_at_configured_density() {
        let mut b = builder(17);
        b.style.comments.density = 1.0;
        assert!(b.maybe_comment("always").is_some());
        b.style.comments.density = 0.0;
        assert!(b.maybe_comment("never").is_none());
    }
}
