//! Year-corpus assembly (the paper's Table I datasets).

use crate::challenges::ChallengeId;
use crate::style::AuthorStyle;
use synthattr_util::Pcg64;

/// Where a code sample came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Origin {
    /// Written by a (synthetic) human author.
    Human,
    /// Produced by the (simulated) LLM.
    ChatGpt,
}

/// One code sample with its provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct CodeSample {
    /// The C++ source text.
    pub source: String,
    /// Author index within the year (`0..authors`); the convention
    /// matches the paper's `A<k>` labels.
    pub author: usize,
    /// Challenge index within the year (`0..challenges.len()`).
    pub challenge: usize,
    /// Corpus year (2017/2018/2019).
    pub year: u32,
    /// Provenance.
    pub origin: Origin,
}

/// Specification of one GCJ-style year.
#[derive(Debug, Clone, PartialEq)]
pub struct YearSpec {
    /// The year label.
    pub year: u32,
    /// Number of authors (the paper uses 204).
    pub authors: usize,
    /// The year's challenge set (the paper uses 8).
    pub challenges: Vec<ChallengeId>,
}

impl YearSpec {
    /// The paper-scale spec for one of the three studied years.
    ///
    /// Each year uses a different 8-challenge window of the catalogue,
    /// mimicking GCJ rounds changing problems year over year.
    ///
    /// # Panics
    ///
    /// Panics if `year` is not 2017, 2018, or 2019.
    pub fn paper(year: u32) -> Self {
        let all = ChallengeId::all();
        let offset = match year {
            2017 => 0,
            2018 => 3,
            2019 => 6,
            other => panic!("paper years are 2017-2019, got {other}"),
        };
        YearSpec {
            year,
            authors: 204,
            challenges: all[offset..offset + 8].to_vec(),
        }
    }

    /// A reduced spec for tests and examples.
    pub fn tiny(year: u32, authors: usize, n_challenges: usize) -> Self {
        let all = ChallengeId::all();
        YearSpec {
            year,
            authors,
            challenges: all[..n_challenges.min(all.len())].to_vec(),
        }
    }
}

/// A generated year corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct YearCorpus {
    /// The spec this corpus was generated from.
    pub spec: YearSpec,
    /// `authors × challenges` samples, author-major order.
    pub samples: Vec<CodeSample>,
}

impl YearCorpus {
    /// Samples belonging to `author`.
    pub fn by_author(&self, author: usize) -> impl Iterator<Item = &CodeSample> {
        self.samples.iter().filter(move |s| s.author == author)
    }

    /// Samples belonging to challenge index `challenge`.
    pub fn by_challenge(&self, challenge: usize) -> impl Iterator<Item = &CodeSample> {
        self.samples
            .iter()
            .filter(move |s| s.challenge == challenge)
    }

    /// Total sample count (`authors × challenges`).
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// Generates the year corpus: every author solves every challenge in
/// their own persistent style, with a small per-file *wobble* — real
/// programmers are not perfectly consistent, and the wobble keeps the
/// attribution task realistically hard (per-challenge-fold oracle
/// accuracy lands in the paper's 80–90% band instead of saturating).
pub fn generate_year(spec: &YearSpec, root_seed: u64) -> YearCorpus {
    let mut samples = Vec::with_capacity(spec.authors * spec.challenges.len());
    for author in 0..spec.authors {
        let base_style = AuthorStyle::for_author(root_seed, spec.year, author);
        for (ci, &challenge) in spec.challenges.iter().enumerate() {
            samples.push(one_sample(
                spec,
                root_seed,
                &base_style,
                author,
                ci,
                challenge,
            ));
        }
    }
    YearCorpus {
        spec: spec.clone(),
        samples,
    }
}

/// Streams the same corpus [`generate_year`] builds, yielding authors
/// in chunks of `chunk_authors` so a 20 000-author year never has to
/// be resident at once.
///
/// Every sample is generated from the same per-`(year, author,
/// challenge)` seed derivation as `generate_year`, so concatenating
/// the chunks reproduces `generate_year(spec, root_seed).samples`
/// exactly — the equivalence test pins this. Callers featurize (or
/// write to a [`ColumnStore`](../../synthattr_ml/colstore/index.html))
/// each chunk and drop it before pulling the next.
pub fn stream_year(
    spec: &YearSpec,
    root_seed: u64,
    chunk_authors: usize,
) -> impl Iterator<Item = Vec<CodeSample>> + '_ {
    let chunk_authors = chunk_authors.max(1);
    let n_chunks = spec.authors.div_ceil(chunk_authors);
    (0..n_chunks).map(move |c| {
        let lo = c * chunk_authors;
        let hi = (lo + chunk_authors).min(spec.authors);
        let mut samples = Vec::with_capacity((hi - lo) * spec.challenges.len());
        for author in lo..hi {
            let base_style = AuthorStyle::for_author(root_seed, spec.year, author);
            for (ci, &challenge) in spec.challenges.iter().enumerate() {
                samples.push(one_sample(
                    spec,
                    root_seed,
                    &base_style,
                    author,
                    ci,
                    challenge,
                ));
            }
        }
        samples
    })
}

/// Generates the `(author, challenge)` sample — the shared inner step
/// of [`generate_year`] and [`stream_year`].
fn one_sample(
    spec: &YearSpec,
    root_seed: u64,
    base_style: &AuthorStyle,
    author: usize,
    ci: usize,
    challenge: ChallengeId,
) -> CodeSample {
    let mut rng = Pcg64::seed_from(
        root_seed,
        &[
            "sample",
            &spec.year.to_string(),
            &author.to_string(),
            &ci.to_string(),
        ],
    );
    let mut style = base_style.clone();
    wobble_style(&mut style, &mut rng);
    let source = challenge.render_solution(&style, rng.fork(&["file"]));
    CodeSample {
        source,
        author,
        challenge: ci,
        year: spec.year,
        origin: Origin::Human,
    }
}

/// Applies small per-file deviations from the author's base style
/// (each minor habit flips with a low, independent probability).
fn wobble_style(style: &mut AuthorStyle, rng: &mut Pcg64) {
    const P: f64 = 0.08;
    if rng.next_bool(P) {
        style.io.endl = !style.io.endl;
    }
    if rng.next_bool(P) {
        style.loops.post_increment = !style.loops.post_increment;
    }
    if rng.next_bool(P) {
        style.structure.compound_assign = !style.structure.compound_assign;
    }
    if rng.next_bool(P) {
        style.structure.merge_decls = !style.structure.merge_decls;
    }
    if rng.next_bool(P) {
        style.io.merge_reads = !style.io.merge_reads;
    }
    if rng.next_bool(P) {
        style.render.braceless_single_stmt = !style.render.braceless_single_stmt;
    }
    if rng.next_bool(P) {
        style.render.blank_line_after_prologue = !style.render.blank_line_after_prologue;
    }
}

/// Renders one solution for `challenge` in an arbitrary style (used by
/// the LLM simulator's generation path).
pub fn solution_in_style(
    challenge: ChallengeId,
    style: &AuthorStyle,
    seed: u64,
    tags: &[&str],
) -> String {
    let rng = Pcg64::seed_from(seed, tags);
    challenge.render_solution(style, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use synthattr_lang::parse;

    #[test]
    fn tiny_corpus_has_expected_shape() {
        let spec = YearSpec::tiny(2017, 5, 4);
        let corpus = generate_year(&spec, 7);
        assert_eq!(corpus.len(), 20);
        assert!(!corpus.is_empty());
        assert_eq!(corpus.by_author(0).count(), 4);
        assert_eq!(corpus.by_challenge(2).count(), 5);
        for s in &corpus.samples {
            assert_eq!(s.origin, Origin::Human);
            parse(&s.source).unwrap_or_else(|e| panic!("{e}\n{}", s.source));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = YearSpec::tiny(2018, 3, 3);
        let a = generate_year(&spec, 99);
        let b = generate_year(&spec, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_corpora() {
        let spec = YearSpec::tiny(2018, 3, 3);
        let a = generate_year(&spec, 1);
        let b = generate_year(&spec, 2);
        assert_ne!(a.samples[0].source, b.samples[0].source);
    }

    #[test]
    fn author_style_is_consistent_across_challenges() {
        // An author's two solutions must share layout habits: check the
        // indentation character matches.
        let spec = YearSpec::tiny(2019, 6, 3);
        let corpus = generate_year(&spec, 5);
        for author in 0..6 {
            let samples: Vec<&CodeSample> = corpus.by_author(author).collect();
            let tab_counts: Vec<bool> = samples.iter().map(|s| s.source.contains("\n\t")).collect();
            assert!(
                tab_counts.iter().all(|&t| t == tab_counts[0]),
                "author {author} switched indentation mid-year"
            );
        }
    }

    #[test]
    fn streaming_reproduces_the_batch_corpus_exactly() {
        let spec = YearSpec::tiny(2017, 7, 3);
        let batch = generate_year(&spec, 41);
        for chunk_authors in [1usize, 2, 3, 7, 50] {
            let streamed: Vec<CodeSample> =
                stream_year(&spec, 41, chunk_authors).flatten().collect();
            assert_eq!(
                streamed, batch.samples,
                "chunk size {chunk_authors} diverged from generate_year"
            );
        }
    }

    #[test]
    fn streaming_chunks_are_author_aligned() {
        let spec = YearSpec::tiny(2018, 5, 2);
        let chunks: Vec<Vec<CodeSample>> = stream_year(&spec, 9, 2).collect();
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].len(), 4); // 2 authors x 2 challenges
        assert_eq!(chunks[2].len(), 2); // tail author
        assert!(chunks[1].iter().all(|s| s.author == 2 || s.author == 3));
    }

    #[test]
    fn paper_specs_window_the_catalogue() {
        let y17 = YearSpec::paper(2017);
        let y18 = YearSpec::paper(2018);
        let y19 = YearSpec::paper(2019);
        assert_eq!(y17.authors, 204);
        assert_eq!(y17.challenges.len(), 8);
        assert_eq!(y18.challenges.len(), 8);
        // Overlapping but distinct windows.
        assert_ne!(y17.challenges, y18.challenges);
        assert_ne!(y18.challenges, y19.challenges);
        assert!(y18.challenges.contains(&y17.challenges[7]));
    }

    #[test]
    #[should_panic(expected = "paper years")]
    fn paper_spec_rejects_unknown_year() {
        YearSpec::paper(2020);
    }

    #[test]
    fn solution_in_style_is_deterministic() {
        let mut rng = Pcg64::new(3);
        let style = AuthorStyle::sample(&mut rng);
        let a = solution_in_style(ChallengeId::Gcd, &style, 11, &["x"]);
        let b = solution_in_style(ChallengeId::Gcd, &style, 11, &["x"]);
        let c = solution_in_style(ChallengeId::Gcd, &style, 11, &["y"]);
        assert_eq!(a, b);
        // Different tags can vary structure (helper vs inline) but both
        // must parse.
        parse(&c).unwrap();
    }
}
