//! Author style profiles.
//!
//! An [`AuthorStyle`] is the generator's model of "one programmer":
//! every stylistic degree of freedom the feature set can observe, fixed
//! per author, sampled once from a seeded PRNG. The LLM simulator
//! (`synthattr-gpt`) reuses the same type for its latent style pool.

use crate::naming::NamingStyle;
use synthattr_lang::render::{BraceStyle, Indent, RenderStyle};
use synthattr_util::Pcg64;

/// IO idiom habits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoStyle {
    /// `scanf`/`printf` instead of `cin`/`cout`.
    pub stdio: bool,
    /// Chain reads into one statement (`cin >> a >> b`) vs one per line.
    pub merge_reads: bool,
    /// Terminate output with `endl` (vs `"\n"`). Only meaningful for
    /// stream IO.
    pub endl: bool,
    /// Open `main` with `ios_base::sync_with_stdio(false)` +
    /// `cin.tie(0)` (stream IO only).
    pub fast_io: bool,
    /// `setprecision` digits for stream-printed doubles (6, 9, or 10).
    pub precision: u8,
}

/// Loop-writing habits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoopStyle {
    /// Probability of writing a counting loop as `while` instead of `for`.
    pub while_bias: f64,
    /// `i++` (true) vs `++i` (false).
    pub post_increment: bool,
    /// Count cases from 1 with `<=` (true) vs from 0 with `<` offsets.
    pub one_based_cases: bool,
    /// Declare the counter before the loop (`int i; for (i = 0; ...)`)
    /// instead of in the `for`-init.
    pub predeclare_counter: bool,
}

/// Structural habits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StructureStyle {
    /// Probability of extracting per-case work into a helper function.
    pub helper_bias: f64,
    /// Prefer ternaries over small if/else.
    pub ternary: bool,
    /// Prefer compound assignment (`x += y`) over `x = x + y`.
    pub compound_assign: bool,
    /// Prefer `static_cast<double>` over C-style casts.
    pub static_cast: bool,
    /// Declare several variables in one statement (`int a, b;`).
    pub merge_decls: bool,
    /// End `main` with an explicit `return 0;` (vs falling off).
    pub explicit_return: bool,
}

/// Commenting habits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommentStyle {
    /// Probability of a comment above a major section.
    pub density: f64,
    /// `/* block */` instead of `// line`.
    pub block: bool,
    /// Open the file with a banner comment above the includes.
    pub banner: bool,
}

/// File-prologue habits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrologueStyle {
    /// `#include <bits/stdc++.h>` instead of individual headers.
    pub bits_stdcpp: bool,
    /// Emit `typedef long long ll;` (0 = none, 1 = typedef, 2 = using).
    pub long_long_alias: u8,
    /// Emit `using namespace std;`.
    pub using_namespace: bool,
    /// Include habitual headers (`cmath`, `cstring`) whether or not
    /// the program needs them (individual-header mode only).
    pub extra_headers: bool,
}

/// A complete per-author style profile.
#[derive(Debug, Clone, PartialEq)]
pub struct AuthorStyle {
    /// Layout (handed to the renderer).
    pub render: RenderStyle,
    /// Naming convention.
    pub naming: NamingStyle,
    /// IO idioms.
    pub io: IoStyle,
    /// Loop habits.
    pub loops: LoopStyle,
    /// Structural habits.
    pub structure: StructureStyle,
    /// Comment habits.
    pub comments: CommentStyle,
    /// Prologue habits.
    pub prologue: PrologueStyle,
}

impl AuthorStyle {
    /// Samples one author profile from `rng`.
    ///
    /// The marginal distributions are chosen to mirror what GCJ code
    /// actually looks like (mostly 2/4-space indents, mostly same-line
    /// braces, mostly stream IO, a camel/snake split on naming).
    pub fn sample(rng: &mut Pcg64) -> Self {
        let indent = match rng.choose_weighted(&[3.0, 4.0, 1.0, 2.0]) {
            0 => Indent::Spaces(2),
            1 => Indent::Spaces(4),
            2 => Indent::Spaces(3),
            _ => Indent::Tab,
        };
        let brace = if rng.next_bool(0.7) {
            BraceStyle::SameLine
        } else {
            BraceStyle::NextLine
        };
        let spacing = rng.next_bool(0.75);
        let render = RenderStyle {
            indent,
            brace,
            space_around_binary: spacing,
            space_around_assign: rng.next_bool(0.85),
            space_after_comma: rng.next_bool(0.8),
            space_after_keyword: rng.next_bool(0.7),
            space_in_template_close: rng.next_bool(0.2),
            braceless_single_stmt: rng.next_bool(0.35),
            collapse_else_if: rng.next_bool(0.9),
            blank_lines_between_fns: if rng.next_bool(0.75) { 1 } else { 0 },
            blank_line_after_prologue: rng.next_bool(0.8),
        };
        let stdio = rng.next_bool(0.2);
        let mut style = AuthorStyle {
            render,
            naming: NamingStyle::sample(rng),
            io: IoStyle {
                stdio,
                merge_reads: rng.next_bool(0.6),
                endl: rng.next_bool(0.45),
                fast_io: false,
                precision: 6,
            },
            loops: LoopStyle {
                while_bias: if rng.next_bool(0.2) { 0.8 } else { 0.05 },
                post_increment: rng.next_bool(0.55),
                one_based_cases: rng.next_bool(0.8),
                predeclare_counter: false,
            },
            structure: StructureStyle {
                helper_bias: if rng.next_bool(0.35) { 0.9 } else { 0.1 },
                ternary: rng.next_bool(0.3),
                compound_assign: rng.next_bool(0.7),
                static_cast: rng.next_bool(0.15),
                merge_decls: rng.next_bool(0.5),
                explicit_return: true,
            },
            comments: CommentStyle {
                density: if rng.next_bool(0.3) { 0.5 } else { 0.05 },
                block: rng.next_bool(0.2),
                banner: false,
            },
            prologue: PrologueStyle {
                bits_stdcpp: rng.next_bool(0.3),
                long_long_alias: match rng.choose_weighted(&[5.0, 2.0, 1.0]) {
                    0 => 0,
                    1 => 1,
                    _ => 2,
                },
                using_namespace: rng.next_bool(0.92),
                extra_headers: false,
            },
        };
        // Second-generation dimensions, drawn strictly *after* every
        // draw above: the fields a given seed produced before these
        // dimensions existed are unchanged, so seeded corpora stay
        // comparable release over release. Together they add ~7 bits
        // of collision (Renyi-2) entropy, which is what keeps 20k
        // sampled profiles essentially duplicate-free (see
        // `twenty_thousand_profiles_rarely_collide`).
        style.io.fast_io = rng.next_bool(0.4);
        style.io.precision = match rng.choose_weighted(&[3.0, 2.0, 1.0]) {
            0 => 6,
            1 => 9,
            _ => 10,
        };
        style.naming.flavor = rng.next_below(4) as u8;
        style.loops.predeclare_counter = rng.next_bool(0.25);
        style.structure.explicit_return = rng.next_bool(0.75);
        style.comments.banner = rng.next_bool(0.25);
        style.prologue.extra_headers = rng.next_bool(0.35);
        style
    }

    /// The deterministic style of author `author` in year `year`
    /// (derived from a corpus root seed).
    pub fn for_author(root_seed: u64, year: u32, author: usize) -> Self {
        let mut rng = Pcg64::seed_from(
            root_seed,
            &["author-style", &year.to_string(), &author.to_string()],
        );
        Self::sample(&mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic() {
        let a = AuthorStyle::sample(&mut Pcg64::new(5));
        let b = AuthorStyle::sample(&mut Pcg64::new(5));
        assert_eq!(a, b);
    }

    #[test]
    fn for_author_is_stable_and_distinct() {
        let a = AuthorStyle::for_author(1, 2017, 0);
        let a2 = AuthorStyle::for_author(1, 2017, 0);
        let b = AuthorStyle::for_author(1, 2017, 1);
        let c = AuthorStyle::for_author(1, 2018, 0);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn population_is_diverse() {
        let mut rng = Pcg64::new(42);
        let styles: Vec<AuthorStyle> = (0..100).map(|_| AuthorStyle::sample(&mut rng)).collect();
        let stdio = styles.iter().filter(|s| s.io.stdio).count();
        let tabs = styles
            .iter()
            .filter(|s| s.render.indent == Indent::Tab)
            .count();
        let next_line = styles
            .iter()
            .filter(|s| s.render.brace == BraceStyle::NextLine)
            .count();
        assert!(stdio > 5 && stdio < 50, "stdio {stdio}");
        assert!(tabs > 5 && tabs < 50, "tabs {tabs}");
        assert!(next_line > 10 && next_line < 60, "next_line {next_line}");
    }

    #[test]
    fn styles_mostly_unique_in_population() {
        let mut rng = Pcg64::new(7);
        let mut seen = Vec::new();
        let mut dupes = 0;
        for _ in 0..204 {
            let s = AuthorStyle::sample(&mut rng);
            if seen.contains(&s) {
                dupes += 1;
            } else {
                seen.push(s);
            }
        }
        // Some collisions are expected (and realistic); most profiles
        // must be unique for a 204-author attribution task to be
        // well-posed.
        assert!(dupes < 20, "too many duplicate styles: {dupes}");
    }

    /// The scale-out collision audit. The profile space carries
    /// roughly 27 bits of collision (Renyi-2) entropy across its ~30
    /// dimensions, so by the birthday bound a 20 000-author draw
    /// expects about `n^2 / 2^(H+1) ~ 1.5` exact duplicate pairs —
    /// i.e. the population stays essentially duplicate-free at two
    /// orders of magnitude beyond the paper's 204 authors. The seed is
    /// fixed, so the observed count is deterministic; the bound leaves
    /// slack for distributional lumpiness, not for randomness.
    #[test]
    fn twenty_thousand_profiles_rarely_collide() {
        use std::collections::HashMap;
        let n = 20_000usize;
        let mut rng = Pcg64::new(20_000);
        // AuthorStyle is not Hash (f64 fields); bucket by a cheap
        // fingerprint, then confirm duplicates by full equality so the
        // audit runs in O(n) instead of O(n^2).
        let mut buckets: HashMap<u64, Vec<AuthorStyle>> = HashMap::new();
        let mut dup_pairs = 0usize;
        for _ in 0..n {
            let s = AuthorStyle::sample(&mut rng);
            let key = (u64::from(s.io.stdio) << 40)
                | (u64::from(s.io.fast_io) << 39)
                | u64::from(s.io.precision) << 32
                | u64::from(s.naming.flavor) << 24
                | u64::from(s.prologue.long_long_alias) << 16
                | (u64::from(s.render.brace == BraceStyle::SameLine) << 8)
                | match s.render.indent {
                    Indent::Spaces(k) => u64::from(k),
                    Indent::Tab => 7,
                };
            let bucket = buckets.entry(key).or_default();
            dup_pairs += bucket.iter().filter(|t| **t == s).count();
            bucket.push(s);
        }
        assert!(
            dup_pairs < 10,
            "20k-author profile space too coarse: {dup_pairs} duplicate pairs"
        );
    }
}
