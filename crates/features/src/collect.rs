//! A single-pass AST statistics collector shared by the lexical and
//! syntactic feature families.

use synthattr_lang::ast::*;
use synthattr_lang::visit::{walk_unit, Visitor};

/// The per-identifier summary every name-derived feature reads: byte
/// length, the three casing/underscore predicates, and the stable
/// unigram hash. Collected once per name at walk time so merging
/// per-item partials is a flat copy instead of a `String` clone per
/// identifier (the walk itself also stops allocating).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdentStat {
    /// `name.len()` in bytes.
    pub len: u32,
    /// `name.contains('_')`.
    pub snake: bool,
    /// Starts lowercase and contains an uppercase letter (camelCase).
    pub camel: bool,
    /// Starts with an uppercase letter.
    pub upper: bool,
    /// [`crate::stable_hash`] of the name (unigram bucketing).
    pub hash: u64,
}

impl IdentStat {
    /// Summarises one identifier name.
    pub fn of(name: &str) -> Self {
        IdentStat {
            len: name.len() as u32,
            snake: name.contains('_'),
            camel: name.chars().next().is_some_and(|c| c.is_ascii_lowercase())
                && name.chars().any(|c| c.is_ascii_uppercase()),
            upper: name.chars().next().is_some_and(|c| c.is_ascii_uppercase()),
            hash: crate::stable_hash(name),
        }
    }
}

/// Raw counts harvested from one translation unit in a single walk.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CodeStats {
    /// `if` statements.
    pub if_count: usize,
    /// `if` statements carrying an `else` branch.
    pub else_count: usize,
    /// Classic `for` loops.
    pub for_count: usize,
    /// Range-based `for` loops.
    pub foreach_count: usize,
    /// `while` loops.
    pub while_count: usize,
    /// `do`-`while` loops.
    pub do_count: usize,
    /// `return` statements.
    pub return_count: usize,
    /// `break` / `continue` statements.
    pub jump_count: usize,
    /// Ternary expressions.
    pub ternary_count: usize,
    /// Function definitions.
    pub function_count: usize,
    /// Total parameters over all functions.
    pub param_count: usize,
    /// Local + global declarations (declarators).
    pub declarator_count: usize,
    /// Declarations with multiple declarators (`int a, b;`).
    pub multi_declarations: usize,
    /// Literals of all kinds.
    pub literal_count: usize,
    /// String literals.
    pub string_count: usize,
    /// Call expressions.
    pub call_count: usize,
    /// Identifier *uses* (expression positions).
    pub ident_uses: usize,
    /// Every identifier observed (uses + declarations), summarised in
    /// observation order.
    pub ident_names: Vec<IdentStat>,
    /// `cin >>` / `cout <<` stream expressions.
    pub stream_io_count: usize,
    /// `scanf` / `printf` call count.
    pub stdio_count: usize,
    /// Uses of `endl` (vs `"\n"`).
    pub endl_count: usize,
    /// Newline string literals used for output.
    pub newline_literal_count: usize,
    /// Pre-increment/decrement unary expressions.
    pub pre_incdec: usize,
    /// Post-increment/decrement unary expressions.
    pub post_incdec: usize,
    /// C-style casts.
    pub c_casts: usize,
    /// `static_cast` casts.
    pub static_casts: usize,
    /// Compound assignments (`+=` etc., not plain `=`).
    pub compound_assign: usize,
    /// Plain assignments.
    pub plain_assign: usize,
    /// Line comments.
    pub line_comments: usize,
    /// Block comments.
    pub block_comments: usize,
    /// `#include` directives.
    pub include_count: usize,
    /// Other directives (`#define`, ...).
    pub define_count: usize,
    /// `typedef` + `using` alias items.
    pub alias_count: usize,
    /// `using namespace` present.
    pub using_namespace: bool,
    /// Total AST nodes (from the kind stream).
    pub node_count: usize,
}

impl CodeStats {
    /// Collects statistics for `unit`.
    pub fn collect(unit: &TranslationUnit) -> Self {
        let mut stats = CodeStats::default();
        walk_unit(unit, &mut stats);
        stats
    }

    /// Collects statistics for one top-level item, exactly as a
    /// whole-unit walk would have contributed them (items sit at depth
    /// 1; only `node_count` observes depth-free node events, so the
    /// partial is the item's slice of the whole-unit walk verbatim).
    pub fn collect_item(item: &Item) -> Self {
        let mut stats = CodeStats::default();
        synthattr_lang::visit::walk_item(item, &mut stats, 1);
        stats
    }

    /// Merges per-item partials into whole-unit statistics, adding the
    /// unit root's own node. Bit-identical to [`CodeStats::collect`] on
    /// the whole unit: every field is an integer count, a bool OR, or
    /// an order-preserving name concatenation.
    pub fn merge<'a>(parts: impl IntoIterator<Item = &'a Self>) -> Self {
        let mut total = CodeStats::default();
        for p in parts {
            // Exhaustive destructuring: adding a field to CodeStats
            // without deciding how it merges is a compile error.
            let CodeStats {
                if_count,
                else_count,
                for_count,
                foreach_count,
                while_count,
                do_count,
                return_count,
                jump_count,
                ternary_count,
                function_count,
                param_count,
                declarator_count,
                multi_declarations,
                literal_count,
                string_count,
                call_count,
                ident_uses,
                ident_names,
                stream_io_count,
                stdio_count,
                endl_count,
                newline_literal_count,
                pre_incdec,
                post_incdec,
                c_casts,
                static_casts,
                compound_assign,
                plain_assign,
                line_comments,
                block_comments,
                include_count,
                define_count,
                alias_count,
                using_namespace,
                node_count,
            } = p;
            total.if_count += if_count;
            total.else_count += else_count;
            total.for_count += for_count;
            total.foreach_count += foreach_count;
            total.while_count += while_count;
            total.do_count += do_count;
            total.return_count += return_count;
            total.jump_count += jump_count;
            total.ternary_count += ternary_count;
            total.function_count += function_count;
            total.param_count += param_count;
            total.declarator_count += declarator_count;
            total.multi_declarations += multi_declarations;
            total.literal_count += literal_count;
            total.string_count += string_count;
            total.call_count += call_count;
            total.ident_uses += ident_uses;
            total.ident_names.extend_from_slice(ident_names);
            total.stream_io_count += stream_io_count;
            total.stdio_count += stdio_count;
            total.endl_count += endl_count;
            total.newline_literal_count += newline_literal_count;
            total.pre_incdec += pre_incdec;
            total.post_incdec += post_incdec;
            total.c_casts += c_casts;
            total.static_casts += static_casts;
            total.compound_assign += compound_assign;
            total.plain_assign += plain_assign;
            total.line_comments += line_comments;
            total.block_comments += block_comments;
            total.include_count += include_count;
            total.define_count += define_count;
            total.alias_count += alias_count;
            total.using_namespace |= using_namespace;
            total.node_count += node_count;
        }
        // The unit root node itself.
        total.node_count += 1;
        total
    }

    /// All loops of any kind.
    pub fn loop_count(&self) -> usize {
        self.for_count + self.foreach_count + self.while_count + self.do_count
    }

    /// Identifier name lengths.
    pub fn ident_lengths(&self) -> Vec<f64> {
        self.ident_names.iter().map(|n| n.len as f64).collect()
    }
}

impl Visitor for CodeStats {
    fn visit(&mut self, _kind: NodeKind, _depth: usize) {
        self.node_count += 1;
    }

    fn visit_item(&mut self, item: &Item) {
        match item {
            Item::Include { .. } => self.include_count += 1,
            Item::Define { .. } => self.define_count += 1,
            Item::UsingNamespace(_) => self.using_namespace = true,
            Item::Typedef { .. } | Item::UsingAlias { .. } => self.alias_count += 1,
            Item::Comment(c) => {
                if c.block {
                    self.block_comments += 1;
                } else {
                    self.line_comments += 1;
                }
            }
            Item::Function(f) => {
                self.function_count += 1;
                self.param_count += f.params.len();
                self.ident_names.push(IdentStat::of(&f.name));
                for p in &f.params {
                    self.ident_names.push(IdentStat::of(&p.name));
                }
            }
            Item::GlobalVar(d) => self.note_declaration(d),
        }
    }

    fn visit_stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Decl(d) => self.note_declaration(d),
            Stmt::If { else_branch, .. } => {
                self.if_count += 1;
                if else_branch.is_some() {
                    self.else_count += 1;
                }
            }
            Stmt::For { .. } => self.for_count += 1,
            Stmt::ForEach { name, .. } => {
                self.foreach_count += 1;
                self.ident_names.push(IdentStat::of(name));
            }
            Stmt::While { .. } => self.while_count += 1,
            Stmt::DoWhile { .. } => self.do_count += 1,
            Stmt::Return(_) => self.return_count += 1,
            Stmt::Break | Stmt::Continue => self.jump_count += 1,
            Stmt::Comment(c) => {
                if c.block {
                    self.block_comments += 1;
                } else {
                    self.line_comments += 1;
                }
            }
            _ => {}
        }
    }

    fn visit_expr(&mut self, expr: &Expr) {
        match expr {
            Expr::Int(_) | Expr::Float(_) | Expr::Char(_) | Expr::Bool(_) => {
                self.literal_count += 1;
            }
            Expr::Str(s) => {
                self.literal_count += 1;
                self.string_count += 1;
                if s.contains('\n') {
                    self.newline_literal_count += 1;
                }
            }
            Expr::Ident(name) => {
                self.ident_uses += 1;
                match name.as_str() {
                    "endl" => self.endl_count += 1,
                    // Library names are not stylistic identifiers.
                    "cin" | "cout" | "cerr" | "std" | "max" | "min" | "abs" | "sort" | "swap"
                    | "sqrt" | "pow" | "floor" | "ceil" | "printf" | "scanf" | "puts"
                    | "getline" | "to_string" => {}
                    _ => self.ident_names.push(IdentStat::of(name)),
                }
            }
            Expr::Ternary { .. } => self.ternary_count += 1,
            Expr::Unary { op, .. } => match op {
                UnaryOp::PreInc | UnaryOp::PreDec => self.pre_incdec += 1,
                UnaryOp::PostInc | UnaryOp::PostDec => self.post_incdec += 1,
                _ => {}
            },
            Expr::Binary { op, lhs, .. } => {
                if matches!(op, BinaryOp::Shl | BinaryOp::Shr) {
                    // A chained stream expression like `cout << a << b`
                    // nests left, so exactly one node in the chain has
                    // the stream object as its *direct* left operand —
                    // counting that node counts each chain once.
                    if let Expr::Ident(base) = lhs.unparenthesized() {
                        if base == "cin" || base == "cout" || base == "cerr" {
                            self.stream_io_count += 1;
                        }
                    }
                }
            }
            Expr::Assign { op, .. } => {
                if matches!(op, AssignOp::Assign) {
                    self.plain_assign += 1;
                } else {
                    self.compound_assign += 1;
                }
            }
            Expr::Call { callee, .. } => {
                self.call_count += 1;
                if let Expr::Ident(name) = callee.unparenthesized() {
                    if name == "printf" || name == "scanf" {
                        self.stdio_count += 1;
                    }
                }
            }
            Expr::Cast { .. } => self.c_casts += 1,
            Expr::StaticCast { .. } => self.static_casts += 1,
            _ => {}
        }
    }
}

impl CodeStats {
    fn note_declaration(&mut self, d: &Declaration) {
        self.declarator_count += d.declarators.len();
        if d.declarators.len() > 1 {
            self.multi_declarations += 1;
        }
        for dd in &d.declarators {
            self.ident_names.push(IdentStat::of(&dd.name));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synthattr_lang::parse;

    const SRC: &str = r#"
#include <iostream>
#include <vector>
#define MAXN 100
using namespace std;
typedef long long ll;
// a helper
int helper(int a, int b) {
    return a > b ? a : b;
}
int main() {
    int n, m;
    double total = 0.5;
    cin >> n >> m;
    for (int i = 0; i < n; ++i) {
        total += (double)i;
        if (i % 2 == 0) {
            total = total * 2;
        } else {
            continue;
        }
    }
    while (m > 0) m--;
    printf("%d\n", n);
    cout << helper(n, m) << endl;
    return 0;
}
"#;

    fn stats() -> CodeStats {
        CodeStats::collect(&parse(SRC).unwrap())
    }

    #[test]
    fn counts_control_flow() {
        let s = stats();
        assert_eq!(s.if_count, 1);
        assert_eq!(s.else_count, 1);
        assert_eq!(s.for_count, 1);
        assert_eq!(s.while_count, 1);
        assert_eq!(s.return_count, 2);
        assert_eq!(s.jump_count, 1);
        assert_eq!(s.ternary_count, 1);
        assert_eq!(s.loop_count(), 2);
    }

    #[test]
    fn counts_io_idioms() {
        let s = stats();
        assert_eq!(s.stream_io_count, 2); // one cin chain + one cout chain
        assert_eq!(s.stdio_count, 1); // printf
        assert_eq!(s.endl_count, 1);
        assert_eq!(s.newline_literal_count, 1); // "%d\n"
    }

    #[test]
    fn counts_declarations_and_functions() {
        let s = stats();
        assert_eq!(s.function_count, 2);
        assert_eq!(s.param_count, 2);
        assert!(s.declarator_count >= 4); // n, m, total, i
        assert_eq!(s.multi_declarations, 1); // int n, m;
        assert_eq!(s.include_count, 2);
        assert_eq!(s.define_count, 1);
        assert_eq!(s.alias_count, 1);
        assert!(s.using_namespace);
        assert_eq!(s.line_comments, 1);
    }

    #[test]
    fn counts_operators_and_casts() {
        let s = stats();
        assert_eq!(s.pre_incdec, 1); // ++i
        assert_eq!(s.post_incdec, 1); // m--
        assert_eq!(s.c_casts, 1);
        assert_eq!(s.compound_assign, 1); // total +=
        assert!(s.plain_assign >= 1); // total = total * 2
    }

    #[test]
    fn ident_names_exclude_library_names() {
        let s = stats();
        let has = |name: &str| {
            let stat = IdentStat::of(name);
            s.ident_names.contains(&stat)
        };
        assert!(has("total"));
        assert!(has("helper"));
        assert!(!has("cin"));
        assert!(!has("endl"));
        assert!(!has("printf"));
    }

    #[test]
    fn empty_program_has_zero_stats() {
        let s = CodeStats::collect(&parse("").unwrap());
        assert_eq!(s.function_count, 0);
        assert_eq!(s.loop_count(), 0);
        assert_eq!(s.node_count, 1);
    }

    #[test]
    fn merged_item_partials_equal_whole_unit_collect() {
        for src in ["", "int x;", SRC] {
            let unit = parse(src).unwrap();
            let parts: Vec<CodeStats> = unit.items.iter().map(CodeStats::collect_item).collect();
            let merged = CodeStats::merge(&parts);
            assert_eq!(merged, CodeStats::collect(&unit), "mismatch for {src:?}");
        }
    }
}
