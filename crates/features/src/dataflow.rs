//! Dataflow feature family: semantic measurements the surface families
//! cannot see, taken from per-function control-flow graphs and the
//! fixed-point analyses in `synthattr_analysis::dataflow`.
//!
//! The family summarizes def-use chain fan-out, live-range pressure
//! and spans, dead stores, and the constant-foldable fraction of a
//! program — structure that survives the renaming/layout rewrites the
//! style transforms perform, which is exactly why it earns a place in
//! the attribution vector.
//!
//! **Per-item construction.** Both extraction paths build each
//! function's CFG *in isolation* ([`DataflowPartial::of_item`]), with
//! no cross-item typedef context: a partial keyed by an item's
//! structural hash must never change because a sibling item did. The
//! only cost is that scalars declared through a file-level alias
//! (`typedef long long ll; ll x;`) are not birth-tracked by the
//! feature counters; the lint passes, which analyze whole units, still
//! track them.

use synthattr_analysis::cfg::Cfg;
use synthattr_analysis::dataflow::DataflowSummary;
use synthattr_lang::ast::Item;

/// Number of dataflow features.
pub const DIM: usize = 12;

/// Pushes one feature name per dataflow feature, in extraction order.
pub fn push_names(names: &mut Vec<String>) {
    for n in [
        "df.avg_blocks_per_fn",
        "df.branch_block_ratio",
        "df.back_edge_ratio",
        "df.defs_per_stmt",
        "df.uses_per_stmt",
        "df.du_fanout_mean",
        "df.ln_du_fanout_max",
        "df.live_in_mean",
        "df.ln_live_in_max",
        "df.live_span_mean",
        "df.dead_store_ratio",
        "df.const_stmt_ratio",
    ] {
        names.push(n.to_string());
    }
}

/// The dataflow measurements of one top-level item, mergeable across
/// items in any order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DataflowPartial {
    summary: DataflowSummary,
}

impl DataflowPartial {
    /// Measures one item. Non-function items contribute nothing.
    pub fn of_item(item: &Item) -> Self {
        let summary = match item {
            Item::Function(f) => {
                DataflowSummary::of_cfg(&Cfg::build(f, &std::collections::HashMap::new()))
            }
            _ => DataflowSummary::default(),
        };
        DataflowPartial { summary }
    }

    /// Merges per-item partials into one unit-level summary. All the
    /// underlying counters are sums or maxima, so the result is
    /// independent of merge order.
    pub fn merge<'a>(parts: impl IntoIterator<Item = &'a DataflowPartial>) -> DataflowSummary {
        let mut total = DataflowSummary::default();
        for p in parts {
            total.merge(&p.summary);
        }
        total
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Pushes the dataflow features for one (merged) summary.
pub fn push_features(s: &DataflowSummary, out: &mut Vec<f64>) {
    out.push(ratio(s.blocks, s.functions));
    out.push(ratio(s.branch_blocks, s.blocks));
    out.push(ratio(s.back_edges, s.edges));
    out.push(ratio(s.defs, s.stmts));
    out.push(ratio(s.uses, s.stmts));
    out.push(ratio(s.du_edges, s.defs));
    out.push((1.0 + s.du_max as f64).ln());
    out.push(ratio(s.live_in_sum, s.blocks));
    out.push((1.0 + s.live_in_max as f64).ln());
    out.push(ratio(s.span_sum, s.vars));
    out.push(ratio(s.dead_stores, s.defs));
    out.push(ratio(s.const_stmts, s.rhs_stmts));
}

#[cfg(test)]
mod tests {
    use super::*;
    use synthattr_lang::parse;

    #[test]
    fn names_match_dim() {
        let mut names = Vec::new();
        push_names(&mut names);
        assert_eq!(names.len(), DIM);
        assert!(names.iter().all(|n| n.starts_with("df.")));
    }

    #[test]
    fn features_match_dim_and_stay_finite() {
        for src in [
            "",
            "int x;",
            "int main() { return 0; }",
            "int main() { int s = 0; for (int i = 0; i < 9; i++) { if (i % 2 == 0) { s = s + i; } } return s; }",
        ] {
            let unit = parse(src).unwrap();
            let parts: Vec<DataflowPartial> =
                unit.items.iter().map(DataflowPartial::of_item).collect();
            let total = DataflowPartial::merge(&parts);
            let mut out = Vec::new();
            push_features(&total, &mut out);
            assert_eq!(out.len(), DIM);
            assert!(out.iter().all(|v| v.is_finite()), "{out:?} for {src:?}");
        }
    }

    #[test]
    fn merge_is_order_independent() {
        let unit = parse(
            "int helper(int a) { return a * 2; }\nint other(int b) { int c = b + 1; return c; }\nint main() { return helper(other(3)); }",
        )
        .unwrap();
        let parts: Vec<DataflowPartial> = unit.items.iter().map(DataflowPartial::of_item).collect();
        let forward = DataflowPartial::merge(&parts);
        let reversed = DataflowPartial::merge(parts.iter().rev());
        assert_eq!(forward, reversed);
        assert_eq!(forward.functions, 3);
    }

    #[test]
    fn loops_move_the_back_edge_feature() {
        let straight = parse("int main() { int a = 1; int b = a + 1; return b; }").unwrap();
        let looped =
            parse("int main() { int s = 0; for (int i = 0; i < 9; i++) { s = s + i; } return s; }")
                .unwrap();
        let f = |u: &synthattr_lang::ast::TranslationUnit| {
            let parts: Vec<DataflowPartial> =
                u.items.iter().map(DataflowPartial::of_item).collect();
            let mut out = Vec::new();
            push_features(&DataflowPartial::merge(&parts), &mut out);
            out
        };
        let a = f(&straight);
        let b = f(&looped);
        // Feature 2 is the back-edge ratio.
        assert_eq!(a[2], 0.0);
        assert!(b[2] > 0.0);
    }
}
