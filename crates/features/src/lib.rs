//! Code stylometry feature extraction.
//!
//! This crate implements a Caliskan-Islam-style *code stylometry
//! feature set* (the basis of the authorship models in the reproduced
//! paper), organized into the paper's three families:
//!
//! * **lexical** ([`lexical`]) — keyword/term frequencies, identifier
//!   length and casing statistics, literal densities, IO-idiom usage,
//!   hashed identifier unigram term frequencies;
//! * **layout** ([`layout`]) — indentation, whitespace, brace
//!   placement, spacing and comment-style measurements taken from the
//!   raw text;
//! * **syntactic** ([`syntactic`]) — AST depth statistics, node-kind
//!   term frequencies, and hashed parent–child bigram frequencies;
//! * **dataflow** ([`dataflow`]) — CFG shape, def-use chain fan-out,
//!   live-range pressure/spans, dead-store and constant-foldable
//!   fractions from the fixed-point analyses in `synthattr_analysis`.
//!
//! The entry point is [`FeatureExtractor`]:
//!
//! ```
//! use synthattr_features::{FeatureConfig, FeatureExtractor};
//!
//! let extractor = FeatureExtractor::new(FeatureConfig::default());
//! let v = extractor.extract("int main() { return 0; }")?;
//! assert_eq!(v.len(), extractor.dim());
//! # Ok::<(), synthattr_lang::ParseError>(())
//! ```
//!
//! Feature vectors are plain `Vec<f64>` of a fixed, named dimension:
//! [`FeatureExtractor::names`] returns one human-readable name per
//! position, which the ML layer uses to report information gain.

pub mod collect;
pub mod dataflow;
pub mod extractor;
pub mod incr;
pub mod layout;
pub mod lexical;
pub mod syntactic;

pub use extractor::{FeatureConfig, FeatureExtractor};

/// Stable FNV-1a hash used to bucket identifier unigrams and AST
/// bigrams. Exposed so tests can predict bucket assignment.
pub fn stable_hash(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_hash_is_deterministic_and_spread() {
        assert_eq!(stable_hash("abc"), stable_hash("abc"));
        assert_ne!(stable_hash("abc"), stable_hash("abd"));
        // Buckets should spread over a small modulus.
        let buckets: std::collections::HashSet<u64> = (0..100)
            .map(|i| stable_hash(&format!("ident{i}")) % 16)
            .collect();
        assert!(buckets.len() >= 12);
    }
}
