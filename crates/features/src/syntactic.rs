//! Syntactic feature family: AST depth statistics, node-kind term
//! frequencies, and hashed parent–child bigram frequencies.

use crate::stable_hash;
use synthattr_lang::ast::NodeKind;
use synthattr_lang::metrics::AstMetrics;
use synthattr_util::stats::log_ratio;

/// Pushes one feature name per syntactic feature, in extraction order.
pub fn push_names(bigram_buckets: usize, names: &mut Vec<String>) {
    names.push("syn.max_depth".to_string());
    names.push("syn.avg_depth".to_string());
    names.push("syn.avg_branching".to_string());
    for kind in NodeKind::all() {
        names.push(format!("syn.kind_{kind:?}"));
    }
    for b in 0..bigram_buckets {
        names.push(format!("syn.bigram_{b}"));
    }
}

/// Pushes the syntactic features for one sample.
pub fn push_features(metrics: &AstMetrics, bigram_buckets: usize, out: &mut Vec<f64>) {
    out.push(metrics.max_depth as f64 / 10.0);
    out.push(metrics.avg_depth / 10.0);
    out.push(metrics.avg_branching);
    let total = metrics.node_count.max(1);
    for kind in NodeKind::all() {
        out.push(log_ratio(metrics.kind_counts[kind.index()], total));
    }
    let mut buckets = vec![0usize; bigram_buckets];
    let mut bigram_total = 0usize;
    for ((parent, child), count) in &metrics.bigram_counts {
        let key = format!("{parent:?}>{child:?}");
        let b = (stable_hash(&key) % bigram_buckets as u64) as usize;
        buckets[b] += count;
        bigram_total += count;
    }
    for count in buckets {
        out.push(log_ratio(count, bigram_total.max(1)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synthattr_lang::metrics::AstMetrics;
    use synthattr_lang::parse;

    fn extract(src: &str, buckets: usize) -> Vec<f64> {
        let unit = parse(src).unwrap();
        let m = AstMetrics::measure(&unit);
        let mut out = Vec::new();
        push_features(&m, buckets, &mut out);
        out
    }

    #[test]
    fn names_match_dim() {
        let mut names = Vec::new();
        push_names(32, &mut names);
        assert_eq!(names.len(), extract("int main() { return 0; }", 32).len());
    }

    #[test]
    fn all_finite_on_empty_unit() {
        for v in extract("", 32) {
            assert!(v.is_finite());
        }
    }

    #[test]
    fn depth_feature_reflects_nesting() {
        let deep = extract(
            "int main() { if (1) { if (1) { if (1) { if (1) { return 1; } } } } return 0; }",
            16,
        );
        let flat = extract("int main() { return 0; }", 16);
        assert!(deep[0] > flat[0]);
    }

    #[test]
    fn structurally_different_programs_differ() {
        let loops = extract(
            "int main() { for (int i = 0; i < 9; ++i) { } return 0; }",
            32,
        );
        let branches = extract("int main() { if (1) { return 1; } return 0; }", 32);
        assert_ne!(loops, branches);
    }

    #[test]
    fn layout_changes_do_not_affect_syntactic_features() {
        let a = extract("int main(){int x=1;return x;}", 32);
        let b = extract("int main()\n{\n\tint x = 1;\n\treturn x;\n}\n", 32);
        assert_eq!(a, b);
    }
}
