//! The assembled feature extractor.

use crate::collect::CodeStats;
use crate::dataflow::DataflowPartial;
use crate::{dataflow, layout, lexical, syntactic};
use synthattr_lang::ast::TranslationUnit;
use synthattr_lang::metrics::{AstMetrics, MetricsBuilder};
use synthattr_lang::visit::{walk_unit, Pair};
use synthattr_lang::{parse, ParseError};

/// Which feature families to extract, and hash-bucket sizes.
///
/// The defaults match the configuration used by every experiment in
/// the reproduction; the ablation benches vary the family switches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureConfig {
    /// Extract the lexical family.
    pub lexical: bool,
    /// Extract the layout family.
    pub layout: bool,
    /// Extract the syntactic family.
    pub syntactic: bool,
    /// Extract the dataflow family (CFG/fixed-point measurements).
    pub dataflow: bool,
    /// Hash buckets for identifier unigrams.
    pub unigram_buckets: usize,
    /// Hash buckets for AST bigrams.
    pub bigram_buckets: usize,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig {
            lexical: true,
            layout: true,
            syntactic: true,
            dataflow: true,
            unigram_buckets: 48,
            bigram_buckets: 48,
        }
    }
}

impl FeatureConfig {
    /// A lexical-only configuration (ablation).
    pub fn lexical_only() -> Self {
        FeatureConfig {
            layout: false,
            syntactic: false,
            dataflow: false,
            ..Self::default()
        }
    }

    /// Lexical + layout, no AST features (ablation).
    pub fn without_syntactic() -> Self {
        FeatureConfig {
            syntactic: false,
            dataflow: false,
            ..Self::default()
        }
    }

    /// The full surface set without the dataflow family (ablation:
    /// isolates the accuracy delta the semantic features contribute).
    pub fn without_dataflow() -> Self {
        FeatureConfig {
            dataflow: false,
            ..Self::default()
        }
    }
}

/// Extracts fixed-dimension stylometry vectors from C++ source.
///
/// # Example
///
/// ```
/// use synthattr_features::{FeatureConfig, FeatureExtractor};
///
/// let ex = FeatureExtractor::new(FeatureConfig::default());
/// let a = ex.extract("int main() { return 0; }")?;
/// let b = ex.extract("int main()\n{\n\treturn 0;\n}")?;
/// assert_eq!(a.len(), b.len());
/// assert_ne!(a, b); // layout differs
/// # Ok::<(), synthattr_lang::ParseError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FeatureExtractor {
    config: FeatureConfig,
    names: Vec<String>,
}

impl FeatureExtractor {
    /// Creates an extractor; the feature dimension and names are fixed
    /// at construction.
    pub fn new(config: FeatureConfig) -> Self {
        let mut names = Vec::new();
        if config.lexical {
            lexical::push_names(config.unigram_buckets, &mut names);
        }
        if config.layout {
            layout::push_names(&mut names);
        }
        if config.syntactic {
            syntactic::push_names(config.bigram_buckets, &mut names);
        }
        if config.dataflow {
            dataflow::push_names(&mut names);
        }
        FeatureExtractor { config, names }
    }

    /// The configuration this extractor was built with.
    pub fn config(&self) -> &FeatureConfig {
        &self.config
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.names.len()
    }

    /// One stable, human-readable name per vector position.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Parses `source` and extracts its feature vector.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`ParseError`] when `source` is not in
    /// the supported C++ subset.
    pub fn extract(&self, source: &str) -> Result<Vec<f64>, ParseError> {
        let unit = parse(source)?;
        Ok(self.extract_parsed(source, &unit))
    }

    /// Extracts features given an already-parsed unit (avoids double
    /// parsing in pipelines that already hold the AST).
    pub fn extract_parsed(&self, source: &str, unit: &TranslationUnit) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.dim());
        if self.config.lexical && self.config.syntactic {
            // Both AST-derived families off one fused traversal; each
            // visitor sees the exact node stream it would see alone.
            let mut stats = CodeStats::default();
            let mut metrics = MetricsBuilder::for_unit();
            walk_unit(unit, &mut Pair(&mut stats, &mut metrics));
            lexical::push_features(&stats, source.len(), self.config.unigram_buckets, &mut out);
            if self.config.layout {
                layout::push_features(source, &mut out);
            }
            syntactic::push_features(
                &metrics.into_metrics(),
                self.config.bigram_buckets,
                &mut out,
            );
            if self.config.dataflow {
                self.push_dataflow(unit, &mut out);
            }
            debug_assert_eq!(out.len(), self.dim());
            return out;
        }
        if self.config.lexical {
            let stats = CodeStats::collect(unit);
            lexical::push_features(&stats, source.len(), self.config.unigram_buckets, &mut out);
        }
        if self.config.layout {
            layout::push_features(source, &mut out);
        }
        if self.config.syntactic {
            let metrics = AstMetrics::measure(unit);
            syntactic::push_features(&metrics, self.config.bigram_buckets, &mut out);
        }
        if self.config.dataflow {
            self.push_dataflow(unit, &mut out);
        }
        debug_assert_eq!(out.len(), self.dim());
        out
    }

    /// Appends the dataflow family. Deliberately per-item (each
    /// function's CFG built in isolation, summaries merged) so the
    /// whole-unit path computes exactly what
    /// [`extract_from_parts`](FeatureExtractor::extract_from_parts)
    /// reassembles from cached partials.
    fn push_dataflow(&self, unit: &TranslationUnit, out: &mut Vec<f64>) {
        let total = DataflowPartial::merge(
            unit.items
                .iter()
                .map(DataflowPartial::of_item)
                .collect::<Vec<_>>()
                .iter(),
        );
        dataflow::push_features(&total, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: &str = r#"
#include <iostream>
using namespace std;
int main() {
    int numCases;
    cin >> numCases;
    for (int caseIdx = 1; caseIdx <= numCases; ++caseIdx) {
        cout << caseIdx << endl;
    }
    return 0;
}
"#;

    const B: &str = r#"
#include <cstdio>
int main()
{
	int n_cases;
	scanf("%d", n_cases);
	for (int i = 1; i <= n_cases; i++)
	{
		printf("%d\n", i);
	}
	return 0;
}
"#;

    #[test]
    fn default_config_has_three_families() {
        let ex = FeatureExtractor::new(FeatureConfig::default());
        assert!(ex.names().iter().any(|n| n.starts_with("lex.")));
        assert!(ex.names().iter().any(|n| n.starts_with("lay.")));
        assert!(ex.names().iter().any(|n| n.starts_with("syn.")));
        assert!(ex.names().iter().any(|n| n.starts_with("df.")));
        assert!(ex.dim() > 100, "dim = {}", ex.dim());
    }

    #[test]
    fn family_switches_change_dim() {
        let full = FeatureExtractor::new(FeatureConfig::default());
        let lex = FeatureExtractor::new(FeatureConfig::lexical_only());
        let nosyn = FeatureExtractor::new(FeatureConfig::without_syntactic());
        assert!(lex.dim() < nosyn.dim());
        assert!(nosyn.dim() < full.dim());
    }

    #[test]
    fn different_styles_produce_different_vectors() {
        let ex = FeatureExtractor::new(FeatureConfig::default());
        let a = ex.extract(A).unwrap();
        let b = ex.extract(B).unwrap();
        assert_eq!(a.len(), b.len());
        let distance: f64 = a
            .iter()
            .zip(&b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt();
        assert!(
            distance > 1.0,
            "expected well-separated vectors: {distance}"
        );
    }

    #[test]
    fn extraction_is_deterministic() {
        let ex = FeatureExtractor::new(FeatureConfig::default());
        assert_eq!(ex.extract(A).unwrap(), ex.extract(A).unwrap());
    }

    #[test]
    fn parse_error_propagates() {
        let ex = FeatureExtractor::new(FeatureConfig::default());
        assert!(ex.extract("int main() {").is_err());
    }

    #[test]
    fn vector_is_always_finite() {
        let ex = FeatureExtractor::new(FeatureConfig::default());
        for src in ["", A, B, "int x;"] {
            for (i, v) in ex.extract(src).unwrap().iter().enumerate() {
                assert!(
                    v.is_finite(),
                    "feature {} ({}) not finite",
                    i,
                    ex.names()[i]
                );
            }
        }
    }
}
