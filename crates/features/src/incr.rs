//! Incremental feature extraction from cached per-item partials.
//!
//! The pipeline's transformation chains change only a few top-level
//! items per step, so most of a step's feature work repeats the
//! previous step's. This module lets callers keep *partials* — one
//! [`ItemFeatures`] per top-level item (AST-derived families) and one
//! [`RegionLayout`](crate::layout::RegionLayout) per rendered region
//! (text-derived family) — and assemble the whole-unit vector from
//! them. Every partial is keyed by content (item structural hash or
//! region text), so unchanged items cost a cache lookup instead of a
//! walk.
//!
//! [`FeatureExtractor::extract_from_parts`] is bit-identical to
//! [`FeatureExtractor::extract_parsed`] on the assembled source; the
//! property tests below and the `reference-increment` A/B suite in the
//! core crate keep that claim honest.

use crate::collect::CodeStats;
use crate::dataflow::DataflowPartial;
use crate::layout::{self, RegionLayout};
use crate::{dataflow, lexical, syntactic, FeatureExtractor};
use synthattr_lang::ast::Item;
use synthattr_lang::metrics::{MetricsBuilder, MetricsPartial};
use synthattr_lang::visit::{walk_item, Pair};

/// Mergeable AST-derived measurements of one top-level item: the
/// lexical-family statistics slice, the syntactic-family metrics
/// partial, and the dataflow-family CFG summary.
#[derive(Debug, Clone, PartialEq)]
pub struct ItemFeatures {
    stats: CodeStats,
    metrics: MetricsPartial,
    dataflow: DataflowPartial,
}

impl ItemFeatures {
    /// Measures one item: a single walk restricted to the item feeds
    /// both the lexical statistics and the syntactic metrics partial,
    /// bit-identical to [`CodeStats::collect_item`] +
    /// [`MetricsPartial::of_item`] run separately; the dataflow
    /// summary comes from the item's own CFGs
    /// ([`DataflowPartial::of_item`]).
    pub fn of_item(item: &Item) -> Self {
        let mut stats = CodeStats::default();
        let mut metrics = MetricsBuilder::for_item();
        walk_item(item, &mut Pair(&mut stats, &mut metrics), 1);
        ItemFeatures {
            stats,
            metrics: metrics.into_partial(),
            dataflow: DataflowPartial::of_item(item),
        }
    }
}

impl FeatureExtractor {
    /// Extracts the whole-unit feature vector from per-item partials
    /// and per-region layout scans.
    ///
    /// `source_len` is the length of the assembled source (regions plus
    /// separator newlines); `regions` yields `(separator_lines, scan)`
    /// in item order. Bit-identical to
    /// [`extract_parsed`](FeatureExtractor::extract_parsed) on the
    /// assembled text and the unit holding these items.
    pub fn extract_from_parts<'a>(
        &self,
        source_len: usize,
        items: impl IntoIterator<Item = &'a ItemFeatures>,
        regions: impl IntoIterator<Item = (usize, &'a RegionLayout)>,
    ) -> Vec<f64> {
        let items: Vec<&ItemFeatures> = items.into_iter().collect();
        let config = self.config();
        let mut out = Vec::with_capacity(self.dim());
        if config.lexical {
            let stats = CodeStats::merge(items.iter().map(|f| &f.stats));
            lexical::push_features(&stats, source_len, config.unigram_buckets, &mut out);
        }
        if config.layout {
            layout::push_features_merged(regions, &mut out);
        }
        if config.syntactic {
            let metrics = MetricsPartial::merge(items.iter().map(|f| &f.metrics));
            syntactic::push_features(&metrics, config.bigram_buckets, &mut out);
        }
        if config.dataflow {
            let total = DataflowPartial::merge(items.iter().map(|f| &f.dataflow));
            dataflow::push_features(&total, &mut out);
        }
        debug_assert_eq!(out.len(), self.dim());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FeatureConfig;
    use synthattr_lang::parse;
    use synthattr_lang::render::{render_with_regions, BraceStyle, Indent, RenderStyle};

    const SOURCES: &[&str] = &[
        "",
        "int x;",
        "int main() { return 0; }",
        r#"
#include <iostream>
#include <vector>
#define MAXN 100
using namespace std;
typedef long long ll;
// a helper
int helper(int a, int b) {
    return a > b ? a : b;
}
ll total = 0;
int main() {
    int n, m;
    cin >> n >> m;
    for (int i = 0; i < n; ++i) {
        total += (long long)i;
        if (i % 2 == 0) {
            total = total * 2;
        } else {
            continue;
        }
    }
    while (m > 0) m--;
    printf("%d\n", n);
    cout << helper(n, m) << endl;
    return 0;
}
"#,
    ];

    fn styles() -> Vec<RenderStyle> {
        let mut out = Vec::new();
        for indent in [Indent::Spaces(2), Indent::Spaces(4), Indent::Tab] {
            for brace in [BraceStyle::SameLine, BraceStyle::NextLine] {
                for blanks in [0u8, 1] {
                    out.push(RenderStyle {
                        indent,
                        brace,
                        blank_lines_between_fns: blanks,
                        blank_line_after_prologue: blanks > 0,
                        space_around_binary: blanks == 0,
                        ..RenderStyle::default()
                    });
                }
            }
        }
        out
    }

    #[test]
    fn parts_extraction_is_bit_identical_to_whole() {
        for config in [
            FeatureConfig::default(),
            FeatureConfig::lexical_only(),
            FeatureConfig::without_syntactic(),
            FeatureConfig::without_dataflow(),
        ] {
            let ex = FeatureExtractor::new(config);
            for src in SOURCES {
                let unit = parse(src).unwrap();
                for style in styles() {
                    let (text, spans) = render_with_regions(&unit, &style);
                    let whole = ex.extract_parsed(&text, &unit);
                    let items: Vec<ItemFeatures> =
                        unit.items.iter().map(ItemFeatures::of_item).collect();
                    let scans: Vec<(usize, RegionLayout)> = spans
                        .iter()
                        .map(|s| (s.sep_before, RegionLayout::scan(&text[s.start..s.end])))
                        .collect();
                    let parts = ex.extract_from_parts(
                        text.len(),
                        items.iter(),
                        scans.iter().map(|(sep, r)| (*sep, r)),
                    );
                    assert_eq!(whole, parts, "config {:?} src {src:?}", ex.config());
                }
            }
        }
    }
}
