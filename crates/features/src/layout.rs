//! Layout feature family: measurements taken from the raw source text
//! (the AST deliberately carries no whitespace).

use synthattr_util::stats::{log_ratio, mean, std_dev};

/// Pushes one feature name per layout feature, in extraction order.
pub fn push_names(names: &mut Vec<String>) {
    for n in [
        "lay.ln_tabs",
        "lay.ln_spaces",
        "lay.ln_empty_lines",
        "lay.whitespace_ratio",
        "lay.avg_line_len",
        "lay.std_line_len",
        "lay.max_line_len",
        "lay.avg_leading_ws",
        "lay.tab_indent_ratio",
        "lay.indent_mod2_ratio",
        "lay.indent_mod3_ratio",
        "lay.indent_mod4_ratio",
        "lay.brace_own_line_ratio",
        "lay.brace_same_line_ratio",
        "lay.space_after_comma_ratio",
        "lay.space_around_assign_ratio",
        "lay.space_after_keyword_ratio",
        "lay.blank_line_ratio",
        "lay.line_comment_density",
        "lay.block_comment_density",
    ] {
        names.push(n.to_string());
    }
}

/// Number of layout features.
pub const DIM: usize = 20;

/// Pushes the layout features for one raw source text.
pub fn push_features(src: &str, out: &mut Vec<f64>) {
    let len = src.len();
    let lines: Vec<&str> = src.lines().collect();
    let line_count = lines.len().max(1);

    let tabs = src.matches('\t').count();
    let spaces = src.matches(' ').count();
    let empty_lines = lines.iter().filter(|l| l.trim().is_empty()).count();
    let ws_chars = src.chars().filter(|c| c.is_whitespace()).count();

    out.push(log_ratio(tabs, len));
    out.push(log_ratio(spaces, len));
    out.push(log_ratio(empty_lines, line_count));
    out.push(ws_chars as f64 / len.max(1) as f64);

    let line_lens: Vec<f64> = lines.iter().map(|l| l.len() as f64).collect();
    out.push(mean(&line_lens) / 100.0);
    out.push(std_dev(&line_lens) / 100.0);
    out.push(line_lens.iter().cloned().fold(0.0, f64::max) / 100.0);

    // Indentation measurements over indented, non-empty lines.
    let mut leading_ws = Vec::new();
    let mut tab_lines = 0usize;
    let mut space_indented = Vec::new();
    for l in &lines {
        if l.trim().is_empty() {
            continue;
        }
        let lead: String = l.chars().take_while(|c| *c == ' ' || *c == '\t').collect();
        leading_ws.push(lead.len() as f64);
        if lead.contains('\t') {
            tab_lines += 1;
        } else if !lead.is_empty() {
            space_indented.push(lead.len());
        }
    }
    out.push(mean(&leading_ws) / 10.0);
    let indented_total = tab_lines + space_indented.len();
    out.push(if indented_total == 0 {
        0.0
    } else {
        tab_lines as f64 / indented_total as f64
    });
    let mod_ratio = |m: usize| {
        if space_indented.is_empty() {
            0.0
        } else {
            space_indented.iter().filter(|&&w| w % m == 0).count() as f64
                / space_indented.len() as f64
        }
    };
    out.push(mod_ratio(2));
    out.push(mod_ratio(3));
    out.push(mod_ratio(4));

    // Brace placement.
    let open_brace_lines = lines.iter().filter(|l| l.contains('{')).count();
    let own_line = lines.iter().filter(|l| l.trim() == "{").count();
    let same_line = lines
        .iter()
        .filter(|l| {
            let t = l.trim();
            t.ends_with('{') && t.len() > 1
        })
        .count();
    out.push(if open_brace_lines == 0 {
        0.0
    } else {
        own_line as f64 / open_brace_lines as f64
    });
    out.push(if open_brace_lines == 0 {
        0.0
    } else {
        same_line as f64 / open_brace_lines as f64
    });

    // Micro-spacing habits.
    let commas = src.matches(',').count();
    let spaced_commas = src.matches(", ").count();
    out.push(if commas == 0 {
        0.0
    } else {
        spaced_commas as f64 / commas as f64
    });
    out.push(assign_spacing_ratio(src));
    let kw_spaced =
        src.matches("if (").count() + src.matches("for (").count() + src.matches("while (").count();
    let kw_tight =
        src.matches("if(").count() + src.matches("for(").count() + src.matches("while(").count();
    out.push(if kw_spaced + kw_tight == 0 {
        0.0
    } else {
        kw_spaced as f64 / (kw_spaced + kw_tight) as f64
    });

    out.push(empty_lines as f64 / line_count as f64);
    let line_comments = src.matches("//").count();
    let block_comments = src.matches("/*").count();
    out.push(log_ratio(line_comments, line_count));
    out.push(log_ratio(block_comments, line_count));
}

/// Fraction of plain `=` assignments written with surrounding spaces.
///
/// Compound operators (`==`, `<=`, `+=`, …) are excluded by inspecting
/// the characters around each `=`.
fn assign_spacing_ratio(src: &str) -> f64 {
    let (plain, spaced) = assign_spacing_counts(src);
    if plain == 0 {
        0.0
    } else {
        spaced as f64 / plain as f64
    }
}

fn assign_spacing_counts(src: &str) -> (usize, usize) {
    let bytes = src.as_bytes();
    let mut plain = 0usize;
    let mut spaced = 0usize;
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'=' {
            continue;
        }
        let prev = if i > 0 { bytes[i - 1] } else { b' ' };
        let next = *bytes.get(i + 1).unwrap_or(&b' ');
        // Skip ==, !=, <=, >=, +=, -=, *=, /=, %=, &=, |=, ^=, <<=, >>=.
        if matches!(
            prev,
            b'=' | b'!' | b'<' | b'>' | b'+' | b'-' | b'*' | b'/' | b'%' | b'&' | b'|' | b'^'
        ) || next == b'='
        {
            continue;
        }
        plain += 1;
        if prev == b' ' && next == b' ' {
            spaced += 1;
        }
    }
    (plain, spaced)
}

/// Layout scan of one rendered region (one top-level item's text),
/// mergeable into whole-file layout features.
///
/// Whole-file source is the concatenation of regions with a number of
/// blank separator lines before each region (see
/// `synthattr_lang::render::render_with_regions`). Every region ends
/// with a newline, so line boundaries align with region boundaries and
/// no scanned substring pattern — none contains `'\n'` — can straddle
/// one. [`push_features_merged`] therefore reproduces
/// [`push_features`] on the concatenated text bit-for-bit: the ordered
/// per-line vectors are rebuilt exactly (separator lines are empty),
/// and every remaining accumulator is an integer count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionLayout {
    len: usize,
    tabs: usize,
    spaces: usize,
    ws_chars: usize,
    /// Byte length of every line, in order.
    line_lens: Vec<u32>,
    /// `(leading-ws width, leading contains tab)` per non-blank line,
    /// in order.
    leading: Vec<(u32, bool)>,
    empty_lines: usize,
    open_brace_lines: usize,
    own_line: usize,
    same_line: usize,
    commas: usize,
    spaced_commas: usize,
    assign_plain: usize,
    assign_spaced: usize,
    kw_spaced: usize,
    kw_tight: usize,
    line_comments: usize,
    block_comments: usize,
}

impl RegionLayout {
    /// Scans one region's text.
    pub fn scan(region: &str) -> Self {
        // The assign-spacing scan defaults the byte before the region
        // to ' '; that is only exact because no rendered item starts
        // with '='.
        debug_assert!(!region.starts_with('='), "region starts with '='");
        let mut line_lens = Vec::new();
        let mut leading = Vec::new();
        let mut empty_lines = 0usize;
        let mut open_brace_lines = 0usize;
        let mut own_line = 0usize;
        let mut same_line = 0usize;
        for l in region.lines() {
            line_lens.push(l.len() as u32);
            if l.trim().is_empty() {
                empty_lines += 1;
            } else {
                let lead = l
                    .chars()
                    .take_while(|c| *c == ' ' || *c == '\t')
                    .collect::<String>();
                leading.push((lead.len() as u32, lead.contains('\t')));
            }
            if l.contains('{') {
                open_brace_lines += 1;
            }
            let t = l.trim();
            if t == "{" {
                own_line += 1;
            } else if t.ends_with('{') && t.len() > 1 {
                same_line += 1;
            }
        }
        let (assign_plain, assign_spaced) = assign_spacing_counts(region);
        RegionLayout {
            len: region.len(),
            tabs: region.matches('\t').count(),
            spaces: region.matches(' ').count(),
            ws_chars: region.chars().filter(|c| c.is_whitespace()).count(),
            line_lens,
            leading,
            empty_lines,
            open_brace_lines,
            own_line,
            same_line,
            commas: region.matches(',').count(),
            spaced_commas: region.matches(", ").count(),
            assign_plain,
            assign_spaced,
            kw_spaced: region.matches("if (").count()
                + region.matches("for (").count()
                + region.matches("while (").count(),
            kw_tight: region.matches("if(").count()
                + region.matches("for(").count()
                + region.matches("while(").count(),
            line_comments: region.matches("//").count(),
            block_comments: region.matches("/*").count(),
        }
    }
}

/// Pushes the layout features of the source assembled from `regions`,
/// where each `(sep, scan)` pair contributes `sep` blank separator
/// lines followed by the scanned region text. Bit-identical to
/// [`push_features`] on the concatenated source.
pub fn push_features_merged<'a, I>(regions: I, out: &mut Vec<f64>)
where
    I: IntoIterator<Item = (usize, &'a RegionLayout)>,
{
    let mut len = 0usize;
    let mut tabs = 0usize;
    let mut spaces = 0usize;
    let mut ws_chars = 0usize;
    let mut empty_lines = 0usize;
    let mut line_lens: Vec<f64> = Vec::new();
    let mut leading_ws: Vec<f64> = Vec::new();
    let mut tab_lines = 0usize;
    let mut space_indented = 0usize;
    let mut space_mod = [0usize; 3]; // widths divisible by 2 / 3 / 4
    let mut open_brace_lines = 0usize;
    let mut own_line = 0usize;
    let mut same_line = 0usize;
    let mut commas = 0usize;
    let mut spaced_commas = 0usize;
    let mut assign_plain = 0usize;
    let mut assign_spaced = 0usize;
    let mut kw_spaced = 0usize;
    let mut kw_tight = 0usize;
    let mut line_comments = 0usize;
    let mut block_comments = 0usize;

    for (sep, r) in regions {
        len += sep + r.len;
        ws_chars += sep + r.ws_chars; // separator newlines are whitespace
        empty_lines += sep + r.empty_lines;
        line_lens.extend(std::iter::repeat_n(0.0, sep));
        line_lens.extend(r.line_lens.iter().map(|&w| w as f64));
        for &(w, has_tab) in &r.leading {
            leading_ws.push(w as f64);
            if has_tab {
                tab_lines += 1;
            } else if w > 0 {
                space_indented += 1;
                for (slot, m) in space_mod.iter_mut().zip([2u32, 3, 4]) {
                    if w % m == 0 {
                        *slot += 1;
                    }
                }
            }
        }
        tabs += r.tabs;
        spaces += r.spaces;
        open_brace_lines += r.open_brace_lines;
        own_line += r.own_line;
        same_line += r.same_line;
        commas += r.commas;
        spaced_commas += r.spaced_commas;
        assign_plain += r.assign_plain;
        assign_spaced += r.assign_spaced;
        kw_spaced += r.kw_spaced;
        kw_tight += r.kw_tight;
        line_comments += r.line_comments;
        block_comments += r.block_comments;
    }

    let line_count = line_lens.len().max(1);
    out.push(log_ratio(tabs, len));
    out.push(log_ratio(spaces, len));
    out.push(log_ratio(empty_lines, line_count));
    out.push(ws_chars as f64 / len.max(1) as f64);
    out.push(mean(&line_lens) / 100.0);
    out.push(std_dev(&line_lens) / 100.0);
    out.push(line_lens.iter().cloned().fold(0.0, f64::max) / 100.0);
    out.push(mean(&leading_ws) / 10.0);
    let indented_total = tab_lines + space_indented;
    out.push(if indented_total == 0 {
        0.0
    } else {
        tab_lines as f64 / indented_total as f64
    });
    for slot in space_mod {
        out.push(if space_indented == 0 {
            0.0
        } else {
            slot as f64 / space_indented as f64
        });
    }
    out.push(if open_brace_lines == 0 {
        0.0
    } else {
        own_line as f64 / open_brace_lines as f64
    });
    out.push(if open_brace_lines == 0 {
        0.0
    } else {
        same_line as f64 / open_brace_lines as f64
    });
    out.push(if commas == 0 {
        0.0
    } else {
        spaced_commas as f64 / commas as f64
    });
    out.push(if assign_plain == 0 {
        0.0
    } else {
        assign_spaced as f64 / assign_plain as f64
    });
    out.push(if kw_spaced + kw_tight == 0 {
        0.0
    } else {
        kw_spaced as f64 / (kw_spaced + kw_tight) as f64
    });
    out.push(empty_lines as f64 / line_count as f64);
    out.push(log_ratio(line_comments, line_count));
    out.push(log_ratio(block_comments, line_count));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn extract(src: &str) -> Vec<f64> {
        let mut out = Vec::new();
        push_features(src, &mut out);
        out
    }

    fn idx(name: &str) -> usize {
        let mut names = Vec::new();
        push_names(&mut names);
        names.iter().position(|n| n == name).unwrap()
    }

    #[test]
    fn names_match_dim() {
        let mut names = Vec::new();
        push_names(&mut names);
        assert_eq!(names.len(), DIM);
        assert_eq!(extract("int main() { return 0; }").len(), DIM);
    }

    #[test]
    fn all_finite_on_edge_cases() {
        for src in ["", "\n\n\n", "x", "int main() { return 0; }"] {
            for (i, v) in extract(src).iter().enumerate() {
                assert!(v.is_finite(), "feature {i} not finite for {src:?}");
            }
        }
    }

    #[test]
    fn tabs_vs_spaces_discriminates() {
        let tabbed = "int main()\n{\n\treturn 0;\n}\n";
        let spaced = "int main()\n{\n    return 0;\n}\n";
        let i = idx("lay.tab_indent_ratio");
        assert_eq!(extract(tabbed)[i], 1.0);
        assert_eq!(extract(spaced)[i], 0.0);
    }

    #[test]
    fn brace_placement_discriminates() {
        let allman = "int main()\n{\n    return 0;\n}\n";
        let knr = "int main() {\n    return 0;\n}\n";
        let own = idx("lay.brace_own_line_ratio");
        let same = idx("lay.brace_same_line_ratio");
        assert_eq!(extract(allman)[own], 1.0);
        assert_eq!(extract(knr)[same], 1.0);
    }

    #[test]
    fn comma_and_assign_spacing() {
        let tight = "int main() { int a=1,b=2; return f(a,b); }";
        let airy = "int main() { int a = 1, b = 2; return f(a, b); }";
        let ci = idx("lay.space_after_comma_ratio");
        let ai = idx("lay.space_around_assign_ratio");
        assert_eq!(extract(tight)[ci], 0.0);
        assert_eq!(extract(airy)[ci], 1.0);
        assert_eq!(extract(tight)[ai], 0.0);
        assert_eq!(extract(airy)[ai], 1.0);
    }

    #[test]
    fn assign_spacing_ignores_compound_operators() {
        // Only `x = 1` is a plain assignment; the rest must not count.
        let src = "x == y; x <= y; x += 1; x = 1;";
        assert_eq!(assign_spacing_ratio(src), 1.0);
        let src2 = "x == y; x=1;";
        assert_eq!(assign_spacing_ratio(src2), 0.0);
    }

    #[test]
    fn keyword_spacing_discriminates() {
        let spaced = "int main() { if (1) { } while (0) { } return 0; }";
        let tight = "int main() { if(1) { } while(0) { } return 0; }";
        let i = idx("lay.space_after_keyword_ratio");
        assert_eq!(extract(spaced)[i], 1.0);
        assert_eq!(extract(tight)[i], 0.0);
    }

    #[test]
    fn merged_region_scans_equal_whole_file_features() {
        // Regions mimic rendered items: each ends with '\n'; separators
        // are blank lines inserted before a region.
        let cases: Vec<Vec<(usize, &str)>> = vec![
            vec![],
            vec![(0, "int main() {\n\treturn 0;\n}\n")],
            vec![
                (0, "#include <iostream>\n"),
                (0, "using namespace std;\n"),
                (1, "// helper, does x = 1\nint f(int a, int b) {\n  int x=1;\n  if (a>b) { return a; }\n  return b + x;\n}\n"),
                (2, "int main()\n{\n    int v = f(1, 2);\n    while(v > 0) v--;\n    /* done */\n    return v;\n}\n"),
            ],
        ];
        for parts in cases {
            let full: String = parts
                .iter()
                .map(|(sep, text)| format!("{}{}", "\n".repeat(*sep), text))
                .collect();
            let mut whole = Vec::new();
            push_features(&full, &mut whole);
            let scans: Vec<(usize, RegionLayout)> = parts
                .iter()
                .map(|(sep, text)| (*sep, RegionLayout::scan(text)))
                .collect();
            let mut merged = Vec::new();
            push_features_merged(scans.iter().map(|(s, r)| (*s, r)), &mut merged);
            assert_eq!(whole, merged, "mismatch for {full:?}");
        }
    }

    #[test]
    fn indent_width_modulus() {
        let two = "int main() {\n  if (1) {\n    return 1;\n  }\n  return 0;\n}\n";
        let i4 = idx("lay.indent_mod4_ratio");
        let i2 = idx("lay.indent_mod2_ratio");
        let f = extract(two);
        assert_eq!(f[i2], 1.0);
        assert!(f[i4] < 1.0);
    }
}
