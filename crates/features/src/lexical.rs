//! Lexical feature family: keyword/term densities, identifier style
//! statistics, IO idioms, and hashed identifier unigram frequencies.

use crate::collect::CodeStats;
use synthattr_util::stats::{log_ratio, mean, std_dev};

/// Ratio with a small epsilon guard; `0.0` when both counts are zero.
fn ratio(a: usize, b: usize) -> f64 {
    if a + b == 0 {
        0.0
    } else {
        a as f64 / (a + b) as f64
    }
}

/// Pushes one feature name per lexical feature, in extraction order.
pub fn push_names(unigram_buckets: usize, names: &mut Vec<String>) {
    for n in [
        "lex.ln_if",
        "lex.ln_else",
        "lex.ln_for",
        "lex.ln_foreach",
        "lex.ln_while",
        "lex.ln_do",
        "lex.ln_return",
        "lex.ln_jump",
        "lex.ln_ternary",
        "lex.ln_literals",
        "lex.ln_strings",
        "lex.ln_calls",
        "lex.ln_functions",
        "lex.ln_declarators",
        "lex.ln_includes",
        "lex.ln_defines",
        "lex.ln_aliases",
        "lex.ln_comments",
        "lex.using_namespace",
        "lex.avg_params_per_fn",
        "lex.multi_decl_ratio",
        "lex.comment_block_ratio",
        "lex.ln_stream_io",
        "lex.ln_stdio",
        "lex.stream_vs_stdio",
        "lex.endl_vs_newline",
        "lex.preinc_vs_postinc",
        "lex.static_vs_c_cast",
        "lex.compound_assign_ratio",
        "lex.ternary_vs_if",
        "lex.ident_len_avg",
        "lex.ident_len_std",
        "lex.ident_short_ratio",
        "lex.ident_snake_ratio",
        "lex.ident_camel_ratio",
        "lex.ident_upper_start_ratio",
    ] {
        names.push(n.to_string());
    }
    for b in 0..unigram_buckets {
        names.push(format!("lex.unigram_{b}"));
    }
}

/// Pushes the lexical features for one sample.
///
/// `len` is the raw source length in bytes (the paper's per-length
/// normalization denominator).
pub fn push_features(stats: &CodeStats, len: usize, unigram_buckets: usize, out: &mut Vec<f64>) {
    let s = stats;
    out.push(log_ratio(s.if_count, len));
    out.push(log_ratio(s.else_count, len));
    out.push(log_ratio(s.for_count, len));
    out.push(log_ratio(s.foreach_count, len));
    out.push(log_ratio(s.while_count, len));
    out.push(log_ratio(s.do_count, len));
    out.push(log_ratio(s.return_count, len));
    out.push(log_ratio(s.jump_count, len));
    out.push(log_ratio(s.ternary_count, len));
    out.push(log_ratio(s.literal_count, len));
    out.push(log_ratio(s.string_count, len));
    out.push(log_ratio(s.call_count, len));
    out.push(log_ratio(s.function_count, len));
    out.push(log_ratio(s.declarator_count, len));
    out.push(log_ratio(s.include_count, len));
    out.push(log_ratio(s.define_count, len));
    out.push(log_ratio(s.alias_count, len));
    out.push(log_ratio(s.line_comments + s.block_comments, len));
    out.push(if s.using_namespace { 1.0 } else { 0.0 });
    out.push(if s.function_count == 0 {
        0.0
    } else {
        s.param_count as f64 / s.function_count as f64
    });
    out.push(ratio(s.multi_declarations, s.declarator_count));
    out.push(ratio(s.block_comments, s.line_comments));
    out.push(log_ratio(s.stream_io_count, len));
    out.push(log_ratio(s.stdio_count, len));
    out.push(ratio(s.stream_io_count, s.stdio_count));
    out.push(ratio(s.endl_count, s.newline_literal_count));
    out.push(ratio(s.pre_incdec, s.post_incdec));
    out.push(ratio(s.static_casts, s.c_casts));
    out.push(ratio(s.compound_assign, s.plain_assign));
    out.push(ratio(s.ternary_count, s.if_count));

    let lengths = s.ident_lengths();
    out.push(mean(&lengths));
    out.push(std_dev(&lengths));
    let total = s.ident_names.len().max(1) as f64;
    let short = s.ident_names.iter().filter(|n| n.len <= 2).count();
    out.push(short as f64 / total);
    let snake = s.ident_names.iter().filter(|n| n.snake).count();
    out.push(snake as f64 / total);
    let camel = s.ident_names.iter().filter(|n| n.camel).count();
    out.push(camel as f64 / total);
    let upper = s.ident_names.iter().filter(|n| n.upper).count();
    out.push(upper as f64 / total);

    // Hashed identifier unigram term frequencies.
    let mut buckets = vec![0usize; unigram_buckets];
    for name in &s.ident_names {
        let b = (name.hash % unigram_buckets as u64) as usize;
        buckets[b] += 1;
    }
    let denom = s.ident_names.len().max(1);
    for count in buckets {
        out.push(log_ratio(count, denom));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::CodeStats;
    use synthattr_lang::parse;

    fn extract(src: &str) -> Vec<f64> {
        let unit = parse(src).unwrap();
        let stats = CodeStats::collect(&unit);
        let mut out = Vec::new();
        push_features(&stats, src.len(), 16, &mut out);
        out
    }

    #[test]
    fn names_and_features_have_matching_dims() {
        let mut names = Vec::new();
        push_names(16, &mut names);
        let feats = extract("int main() { return 0; }");
        assert_eq!(names.len(), feats.len());
        // Names are unique.
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn all_features_finite() {
        for src in [
            "",
            "int main() { return 0; }",
            "#include <iostream>\nusing namespace std;\nint main() { int x = 0; cin >> x; cout << x; return 0; }",
        ] {
            for (i, v) in extract(src).iter().enumerate() {
                assert!(v.is_finite(), "feature {i} not finite for {src:?}");
            }
        }
    }

    #[test]
    fn snake_vs_camel_is_discriminative() {
        let snake = extract("int main() { int my_long_name = 1; int other_name = 2; return my_long_name + other_name; }");
        let camel = extract(
            "int main() { int myLongName = 1; int otherName = 2; return myLongName + otherName; }",
        );
        let mut names = Vec::new();
        push_names(16, &mut names);
        let snake_idx = names
            .iter()
            .position(|n| n == "lex.ident_snake_ratio")
            .unwrap();
        let camel_idx = names
            .iter()
            .position(|n| n == "lex.ident_camel_ratio")
            .unwrap();
        assert!(snake[snake_idx] > camel[snake_idx]);
        assert!(camel[camel_idx] > snake[camel_idx]);
    }

    #[test]
    fn io_idiom_is_discriminative() {
        let streams =
            extract("#include <iostream>\nint main() { int x; cin >> x; cout << x; return 0; }");
        let stdio = extract("#include <cstdio>\nint main() { int x; scanf(\"%d\", x); printf(\"%d\", x); return 0; }");
        let mut names = Vec::new();
        push_names(16, &mut names);
        let idx = names
            .iter()
            .position(|n| n == "lex.stream_vs_stdio")
            .unwrap();
        assert!(streams[idx] > 0.9);
        assert!(stdio[idx] < 0.1);
    }

    #[test]
    fn identical_source_gives_identical_features() {
        let src = "int main() { for (int i = 0; i < 3; ++i) { } return 0; }";
        assert_eq!(extract(src), extract(src));
    }
}
