//! A deterministic circuit breaker.
//!
//! The classic Closed → Open → HalfOpen automaton, with one twist to
//! keep the whole system replayable: the Open state cools down by
//! **rejected call count**, not wall-clock time. A breaker that has
//! rejected `cooldown_calls` calls transitions to HalfOpen and lets
//! one probe through; a probe success closes the breaker, a probe
//! failure re-opens it. Counting calls instead of seconds makes every
//! breaker trajectory a pure function of the call/outcome sequence —
//! the same property the fault plan has.

/// Circuit breaker tuning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures in Closed state that trip the breaker.
    pub failure_threshold: u32,
    /// Calls rejected while Open before allowing a HalfOpen probe.
    pub cooldown_calls: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 8,
            cooldown_calls: 16,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Closed { consecutive_failures: u32 },
    Open { rejections_left: u32 },
    HalfOpen,
}

/// The breaker automaton. One instance guards one call stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: State,
    trips: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: State::Closed {
                consecutive_failures: 0,
            },
            trips: 0,
        }
    }

    /// Asks to place a call. `Ok(())` admits it; `Err(n)` rejects it
    /// (breaker open, `n` = failures that tripped it). Each rejection
    /// counts toward the cooldown.
    pub fn admit(&mut self) -> Result<(), u32> {
        match self.state {
            State::Closed { .. } | State::HalfOpen => Ok(()),
            State::Open { rejections_left } => {
                if rejections_left <= 1 {
                    self.state = State::HalfOpen;
                } else {
                    self.state = State::Open {
                        rejections_left: rejections_left - 1,
                    };
                }
                Err(self.config.failure_threshold)
            }
        }
    }

    /// Reports that an admitted call succeeded.
    pub fn record_success(&mut self) {
        self.state = State::Closed {
            consecutive_failures: 0,
        };
    }

    /// Reports that an admitted call failed (after its own retries).
    pub fn record_failure(&mut self) {
        match self.state {
            State::Closed {
                consecutive_failures,
            } => {
                let fails = consecutive_failures + 1;
                if fails >= self.config.failure_threshold {
                    self.trip();
                } else {
                    self.state = State::Closed {
                        consecutive_failures: fails,
                    };
                }
            }
            State::HalfOpen => self.trip(),
            // A failure report while Open means the caller ignored a
            // rejection; treat as another trip-worthy failure.
            State::Open { .. } => self.trip(),
        }
    }

    fn trip(&mut self) {
        self.trips += 1;
        self.state = State::Open {
            rejections_left: self.config.cooldown_calls.max(1),
        };
    }

    /// Whether the next [`CircuitBreaker::admit`] would reject.
    pub fn is_open(&self) -> bool {
        matches!(self.state, State::Open { .. })
    }

    /// The current automaton state as a stable lowercase name
    /// (`"closed"`, `"open"`, `"half-open"`), for health endpoints and
    /// operator-facing reports.
    pub fn state_name(&self) -> &'static str {
        match self.state {
            State::Closed { .. } => "closed",
            State::Open { .. } => "open",
            State::HalfOpen => "half-open",
        }
    }

    /// How many times the breaker has tripped open.
    pub fn trips(&self) -> u64 {
        self.trips
    }
}

impl Default for CircuitBreaker {
    fn default() -> Self {
        CircuitBreaker::new(BreakerConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown_calls: 2,
        })
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let mut b = small();
        for _ in 0..2 {
            assert!(b.admit().is_ok());
            b.record_failure();
            assert!(!b.is_open());
        }
        assert!(b.admit().is_ok());
        b.record_failure();
        assert!(b.is_open(), "third consecutive failure trips");
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut b = small();
        b.record_failure();
        b.record_failure();
        b.record_success();
        b.record_failure();
        b.record_failure();
        assert!(!b.is_open(), "streak was reset, only 2 consecutive");
    }

    #[test]
    fn cooldown_counts_rejections_then_probes() {
        let mut b = small();
        for _ in 0..3 {
            b.record_failure();
        }
        assert!(b.is_open());
        // cooldown_calls = 2 rejections...
        assert!(b.admit().is_err());
        assert!(b.admit().is_err());
        // ...then a HalfOpen probe is admitted.
        assert!(b.admit().is_ok());
        b.record_success();
        assert!(!b.is_open(), "probe success closes the breaker");
        assert!(b.admit().is_ok());
    }

    #[test]
    fn failed_probe_reopens() {
        let mut b = small();
        for _ in 0..3 {
            b.record_failure();
        }
        assert!(b.admit().is_err());
        assert!(b.admit().is_err());
        assert!(b.admit().is_ok(), "half-open probe");
        b.record_failure();
        assert!(b.is_open(), "failed probe re-trips");
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn trajectory_is_a_pure_function_of_the_event_sequence() {
        // Determinism: replaying the same admit/success/failure script
        // yields an identical automaton.
        let script = [0u8, 1, 0, 1, 1, 1, 0, 0, 1, 1, 1, 1, 0, 1];
        let run = |script: &[u8]| {
            let mut b = small();
            let mut log = Vec::new();
            for &ev in script {
                match ev {
                    0 => log.push(b.admit().is_ok()),
                    _ => {
                        if b.admit().is_ok() {
                            b.record_failure();
                        }
                        log.push(b.is_open());
                    }
                }
            }
            (b, log)
        };
        assert_eq!(run(&script), run(&script));
    }
}
