//! Per-sample resilience outcomes and the aggregated run statistics.
//!
//! Every transformed sample produced under fault injection carries an
//! [`Outcome`] describing how it survived the chaos, and every
//! resilient run folds those into one [`ResilienceStats`]. The
//! headline invariant lives in the outcome taxonomy: a
//! [`Outcome::Clean`] or [`Outcome::Recovered`] sample is
//! **byte-identical** to the sample the fault-free pipeline would have
//! produced; only [`Outcome::Degraded`] and [`Outcome::Failed`]
//! samples diverge, and the stats account for exactly how many did.

use std::collections::BTreeMap;

/// How a degraded sample was backfilled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fallback {
    /// CT only: the chain held its last good step — the sample repeats
    /// the previous step's source and the chain continues from there.
    HeldStep,
    /// NCT only: the step was re-drawn from a fresh derived RNG stream
    /// (a different but equally valid transform of the same seed).
    Resampled {
        /// Which resample attempt succeeded (1-based).
        resamples: u32,
    },
    /// The untransformed seed code was used verbatim.
    SeedCode,
}

impl Fallback {
    /// Short lowercase tag for stats keys.
    pub fn tag(self) -> &'static str {
        match self {
            Fallback::HeldStep => "held-step",
            Fallback::Resampled { .. } => "resampled",
            Fallback::SeedCode => "seed-code",
        }
    }
}

/// What happened to one logical transform call under fault injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// No fault fired; the sample is exactly the fault-free sample.
    Clean,
    /// Faults fired but retries recovered within policy and budget;
    /// the sample is **still** exactly the fault-free sample.
    Recovered {
        /// Total attempts performed, including the first (so `>= 2`).
        attempts: u32,
    },
    /// Recovery failed but a fallback kept the pipeline moving; the
    /// sample differs from the fault-free run.
    Degraded {
        /// The fallback that produced the sample.
        fallback: Fallback,
    },
    /// Recovery *and* every fallback failed (or the breaker rejected
    /// the call outright); the stream's stand-in of last resort — the
    /// seed code for NCT, the last good step for CT — fills the slot
    /// and the loss is accounted here.
    Failed,
}

impl Outcome {
    /// Whether the sample is byte-identical to the fault-free run's.
    pub fn is_faithful(self) -> bool {
        matches!(self, Outcome::Clean | Outcome::Recovered { .. })
    }

    /// Short lowercase tag for stats keys.
    pub fn tag(self) -> &'static str {
        match self {
            Outcome::Clean => "clean",
            Outcome::Recovered { .. } => "recovered",
            Outcome::Degraded { .. } => "degraded",
            Outcome::Failed => "failed",
        }
    }
}

/// Aggregated resilience accounting for a run (one NCT/CT stream, one
/// pipeline, or a whole experiment — stats merge associatively).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Logical steps that produced a sample (one outcome each).
    pub calls: u64,
    /// Samples with [`Outcome::Clean`].
    pub clean: u64,
    /// Samples with [`Outcome::Recovered`].
    pub recovered: u64,
    /// Samples with [`Outcome::Degraded`].
    pub degraded: u64,
    /// Samples with [`Outcome::Failed`].
    pub failed: u64,
    /// Retry attempts performed beyond each service call's first
    /// attempt (including failed calls and NCT resample calls).
    pub retries: u64,
    /// Total simulated backoff slept across all retries, in ms.
    pub backoff_ms: u64,
    /// Times a circuit breaker transitioned Closed/HalfOpen -> Open.
    pub breaker_trips: u64,
    /// Count of injected-fault attempts by error tag ("timeout",
    /// "unparseable", ...). BTreeMap so iteration order — and thus any
    /// rendering of the stats — is deterministic.
    pub faults_by_tag: BTreeMap<&'static str, u64>,
}

impl ResilienceStats {
    /// Folds one sample outcome into the totals.
    pub fn record(&mut self, outcome: Outcome) {
        self.calls += 1;
        match outcome {
            Outcome::Clean => self.clean += 1,
            Outcome::Recovered { .. } => self.recovered += 1,
            Outcome::Degraded { .. } => self.degraded += 1,
            Outcome::Failed => self.failed += 1,
        }
    }

    /// Accounts the retry cost of one service call (successful or
    /// not): attempts beyond the first and the simulated backoff.
    pub fn record_trace(&mut self, attempts: u32, backoff_ms: u64) {
        self.retries += u64::from(attempts.saturating_sub(1));
        self.backoff_ms += backoff_ms;
    }

    /// Counts one failed attempt with the given error tag.
    pub fn record_fault(&mut self, tag: &'static str) {
        *self.faults_by_tag.entry(tag).or_insert(0) += 1;
    }

    /// Merges another stats block into this one (associative and
    /// commutative, so per-stream stats fold in any order to the same
    /// pipeline total).
    pub fn merge(&mut self, other: &ResilienceStats) {
        self.calls += other.calls;
        self.clean += other.clean;
        self.recovered += other.recovered;
        self.degraded += other.degraded;
        self.failed += other.failed;
        self.retries += other.retries;
        self.backoff_ms += other.backoff_ms;
        self.breaker_trips += other.breaker_trips;
        for (tag, n) in &other.faults_by_tag {
            *self.faults_by_tag.entry(tag).or_insert(0) += n;
        }
    }

    /// Fraction of samples that are byte-identical to the fault-free
    /// run (`clean + recovered` over `calls`); 1.0 for an empty run.
    pub fn fidelity(&self) -> f64 {
        if self.calls == 0 {
            return 1.0;
        }
        (self.clean + self.recovered) as f64 / self.calls as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_classifies_outcomes() {
        let mut s = ResilienceStats::default();
        s.record(Outcome::Clean);
        s.record(Outcome::Recovered { attempts: 3 });
        s.record(Outcome::Degraded {
            fallback: Fallback::HeldStep,
        });
        s.record(Outcome::Failed);
        s.record_trace(3, 700);
        assert_eq!(s.calls, 4);
        assert_eq!((s.clean, s.recovered, s.degraded, s.failed), (1, 1, 1, 1));
        assert_eq!(s.retries, 2, "3 attempts = 2 retries");
        assert_eq!(s.backoff_ms, 700);
        assert!((s.fidelity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = ResilienceStats::default();
        a.record(Outcome::Clean);
        a.record_fault("timeout");
        let mut b = ResilienceStats::default();
        b.record(Outcome::Failed);
        b.record_fault("timeout");
        b.record_fault("unparseable");
        b.breaker_trips = 2;

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.faults_by_tag["timeout"], 2);
        assert_eq!(ab.breaker_trips, 2);
    }

    #[test]
    fn faithfulness_matches_taxonomy() {
        assert!(Outcome::Clean.is_faithful());
        assert!(Outcome::Recovered { attempts: 2 }.is_faithful());
        assert!(!Outcome::Degraded {
            fallback: Fallback::Resampled { resamples: 1 }
        }
        .is_faithful());
        assert!(!Outcome::Failed.is_faithful());
    }

    #[test]
    fn empty_run_has_unit_fidelity() {
        assert_eq!(ResilienceStats::default().fidelity(), 1.0);
    }
}
