//! Deterministic chaos engineering for the simulated LLM service.
//!
//! The paper's experiments are driven by thousands of "ChatGPT" calls.
//! A real deployment of that harness spends most of its operational
//! effort on the service being unreliable: timeouts, 429s, 5xx blips,
//! truncated and silently mangled responses. This crate reproduces
//! that reality *deterministically* and proves the pipeline survives
//! it:
//!
//! * [`plan::FaultPlan`] — a seeded plan that decides, per
//!   `(year, anchor, step, attempt)`, whether a fault fires and which
//!   kind, on RNG streams fully independent of the transform
//!   randomness. Any observed failure replays from its coordinates.
//! * [`retry::RetryPolicy`] / [`retry::RetryBudget`] — exponential
//!   backoff with deterministic jitter, under a per-pipeline budget.
//! * [`breaker::CircuitBreaker`] — Closed/Open/HalfOpen, cooling down
//!   by rejected-call count so trajectories are replayable.
//! * [`validate::ResponseValidator`] — every response body must pass
//!   the `synthattr-analysis` lint + semantic-fingerprint gate before
//!   the pipeline accepts it.
//! * [`service::FaultyTransformer`] — the transformer behind the
//!   chaos proxy, with the **invisible-retry invariant**: a call that
//!   recovers leaves the caller's RNG and output byte-identical to a
//!   fault-free call.
//! * [`drivers`] — resilient NCT/CT runs that degrade (NCT resamples
//!   a fresh stream, CT holds its last good step) instead of
//!   panicking, returning per-step [`Outcome`]s and aggregated
//!   [`ResilienceStats`].
//! * [`traffic::TrafficProfile`] — the hostile *client* side: seeded,
//!   transport-free scripts of slow-loris writers, mid-request
//!   stallers, byte-at-a-time drippers, and abrupt resets, replayed
//!   over live sockets by the serve crate's chaos suite.
//!
//! # Example
//!
//! ```
//! use synthattr_faults::{FaultPlan, FaultyTransformer, RetryPolicy, StreamCx};
//! use synthattr_faults::drivers::run_nct_resilient;
//! use synthattr_gen::corpus::Origin;
//! use synthattr_gpt::YearPool;
//! use synthattr_util::Pcg64;
//!
//! let pool = YearPool::calibrated(2018, 1);
//! let svc = FaultyTransformer::new(&pool, FaultPlan::new(7, 0.2), RetryPolicy::default());
//! let seed = "int main() { int x = 0; x = x + 1; return 0; }";
//! let run = run_nct_resilient(
//!     &svc, seed, 5, Origin::ChatGpt, &mut Pcg64::new(3), "demo", &mut StreamCx::lenient(),
//! ).unwrap();
//! assert_eq!(run.samples.len(), 5);
//! assert_eq!(run.stats.calls, 5);
//! ```

pub mod breaker;
pub mod drivers;
pub mod outcome;
pub mod plan;
pub mod profile;
pub mod retry;
pub mod service;
pub mod traffic;
pub mod validate;

pub use breaker::{BreakerConfig, CircuitBreaker};
pub use drivers::{
    run_ct_resilient, run_ct_resilient_parsed, run_ct_resilient_reference, run_nct_resilient,
    run_nct_resilient_parsed, run_nct_resilient_reference, ReferenceRun, ResilientRun, StreamCx,
};
pub use outcome::{Fallback, Outcome, ResilienceStats};
pub use plan::{CallScope, FaultKind, FaultPlan, FaultWeights, InjectedFault};
pub use profile::FaultProfile;
pub use retry::{RetryBudget, RetryPolicy};
pub use service::{AcceptedResponse, CallTrace, FaultyTransformer};
pub use traffic::{HostileKind, HostileScript, ScriptEnd, SocketOp, TrafficProfile};
pub use validate::{Expectation, ResponseValidator};
