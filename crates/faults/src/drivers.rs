//! Resilient NCT/CT drivers: `synthattr_gpt::chain` under chaos.
//!
//! These mirror the fault-free drivers **draw for draw** — the style
//! index comes off the caller's RNG before the service call, exactly
//! as in `run_nct`/`run_ct` — so with a zero-rate plan (or a plan
//! whose every fault recovers within policy) the output sample vector
//! is byte-identical to the fault-free run. When recovery fails the
//! drivers degrade instead of erroring:
//!
//! * **NCT** steps are independent, so a lost step is *resampled* on a
//!   fresh derived RNG stream (a different but equally valid transform
//!   of the same seed); if every resample also fails, the seed code
//!   stands in and the step is [`Outcome::Failed`].
//! * **CT** steps feed forward, so a lost step *holds* the chain's
//!   last good source ([`Fallback::HeldStep`]) and the chain continues
//!   from there; a breaker-rejected step is [`Outcome::Failed`].
//!
//! Either way the run completes with `n` samples and a full
//! [`ResilienceStats`] accounting — the pipeline never panics because
//! the simulated service had a bad day.

use crate::breaker::CircuitBreaker;
use crate::outcome::{Fallback, Outcome, ResilienceStats};
use crate::plan::CallScope;
use crate::retry::RetryBudget;
use crate::service::{CallTrace, FaultyTransformer};
use synthattr_gen::corpus::Origin;
use synthattr_gpt::incr::{FrontendCache, RegionInfo};
use synthattr_gpt::{GptError, TransformMode, TransformedSample};
use synthattr_lang::{parse, TranslationUnit};
use synthattr_util::Pcg64;

/// Mutable per-stream state: one retry budget and one breaker guard a
/// whole NCT/CT call stream (DESIGN.md §9 explains why resilience
/// state is sharded per stream rather than shared across workers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamCx {
    /// Retries this stream may still spend.
    pub budget: RetryBudget,
    /// The stream's circuit breaker.
    pub breaker: CircuitBreaker,
    /// NCT resample attempts per degraded step.
    pub resamples: u32,
}

impl StreamCx {
    /// A forgiving context: unlimited budget, default breaker, three
    /// resamples.
    pub fn lenient() -> Self {
        StreamCx {
            budget: RetryBudget::unlimited(),
            breaker: CircuitBreaker::default(),
            resamples: 3,
        }
    }
}

/// A completed resilient run: `n` samples, one outcome per sample,
/// and the stream's aggregated stats.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilientRun {
    /// The transformed samples, in step order. Always `n` long.
    pub samples: Vec<TransformedSample>,
    /// `units[i]` is the AST of `samples[i].source`, carried out of
    /// the validation gate (or cloned from the seed for failed steps)
    /// so downstream stages never re-parse accepted responses.
    pub units: Vec<TranslationUnit>,
    /// `outcomes[i]` describes how `samples[i]` survived the chaos.
    pub outcomes: Vec<Outcome>,
    /// Aggregated accounting for the stream.
    pub stats: ResilienceStats,
}

fn absorb(stats: &mut ResilienceStats, trace: &CallTrace) {
    stats.record_trace(trace.attempts, trace.backoff_ms);
    for tag in &trace.fault_tags {
        stats.record_fault(tag);
    }
}

/// Runs non-chaining transformation under fault injection.
///
/// # Errors
///
/// Only [`GptError::Parse`] — `seed_code` outside the subset. Service
/// faults never surface as errors; they degrade.
#[allow(clippy::too_many_arguments)]
pub fn run_nct_resilient(
    svc: &FaultyTransformer<'_>,
    seed_code: &str,
    n: usize,
    seed_origin: Origin,
    rng: &mut Pcg64,
    anchor: &str,
    cx: &mut StreamCx,
) -> Result<ResilientRun, GptError> {
    let seed_unit = parse(seed_code).map_err(GptError::Parse)?;
    run_nct_resilient_parsed(svc, seed_code, &seed_unit, n, seed_origin, rng, anchor, cx)
}

/// Single-parse variant of [`run_nct_resilient`]: the caller supplies
/// the seed's already-parsed AST, the validation expectation is
/// computed once for the whole stream (every step transforms the same
/// seed), and accepted responses come back with their ASTs attached.
/// Samples, outcomes, and stats are byte-identical to
/// [`run_nct_resilient`].
///
/// # Errors
///
/// Only [`GptError::Parse`], and only from a transformer bug surfaced
/// by the debug semantics gate — service faults degrade, not error.
#[allow(clippy::too_many_arguments)]
pub fn run_nct_resilient_parsed(
    svc: &FaultyTransformer<'_>,
    seed_code: &str,
    seed_unit: &TranslationUnit,
    n: usize,
    seed_origin: Origin,
    rng: &mut Pcg64,
    anchor: &str,
    cx: &mut StreamCx,
) -> Result<ResilientRun, GptError> {
    let pool = svc.pool();
    let year = pool.year;
    let seed_exp = svc.prepare(seed_unit);
    let mut samples = Vec::with_capacity(n);
    let mut units = Vec::with_capacity(n);
    let mut outcomes = Vec::with_capacity(n);
    let mut stats = ResilienceStats::default();
    let trips_before = cx.breaker.trips();
    for step in 1..=n {
        let pool_index = pool.sample_index(rng);
        let scope = CallScope { year, anchor, step };
        let mut trace = CallTrace::default();
        let outcome = match svc.transform_prepared(
            seed_code,
            seed_unit,
            &seed_exp,
            pool_index,
            rng,
            &scope,
            &mut cx.budget,
            &mut cx.breaker,
            &mut trace,
        ) {
            Ok(accepted) => {
                absorb(&mut stats, &trace);
                samples.push(sample(
                    accepted.source,
                    step,
                    TransformMode::NonChaining,
                    seed_origin,
                    pool_index,
                ));
                units.push(accepted.unit);
                if trace.attempts > 1 {
                    Outcome::Recovered {
                        attempts: trace.attempts,
                    }
                } else {
                    Outcome::Clean
                }
            }
            Err(GptError::Parse(e)) => return Err(GptError::Parse(e)),
            Err(err) => {
                absorb(&mut stats, &trace);
                if matches!(err, GptError::CircuitOpen { .. }) {
                    stats.record_fault("circuit-open");
                }
                // NCT degradation: the step is independent of its
                // siblings, so re-draw it on a fresh derived stream.
                // Each resample has its own anchor, hence its own
                // fault coordinates — a deterministic "new request".
                let mut rescued = None;
                for k in 1..=cx.resamples {
                    let re_anchor = format!("{anchor}/resample{k}");
                    let re_scope = CallScope {
                        year,
                        anchor: &re_anchor,
                        step,
                    };
                    let mut re_rng = Pcg64::seed_from(
                        svc.plan().seed,
                        &[
                            "nct-resample",
                            &year.to_string(),
                            anchor,
                            &step.to_string(),
                            &k.to_string(),
                        ],
                    );
                    let mut re_trace = CallTrace::default();
                    match svc.transform_prepared(
                        seed_code,
                        seed_unit,
                        &seed_exp,
                        pool_index,
                        &mut re_rng,
                        &re_scope,
                        &mut cx.budget,
                        &mut cx.breaker,
                        &mut re_trace,
                    ) {
                        Ok(accepted) => {
                            absorb(&mut stats, &re_trace);
                            rescued = Some((accepted, k));
                            break;
                        }
                        Err(GptError::Parse(e)) => return Err(GptError::Parse(e)),
                        Err(re_err) => {
                            absorb(&mut stats, &re_trace);
                            if matches!(re_err, GptError::CircuitOpen { .. }) {
                                stats.record_fault("circuit-open");
                            }
                        }
                    }
                }
                match rescued {
                    Some((accepted, k)) => {
                        samples.push(sample(
                            accepted.source,
                            step,
                            TransformMode::NonChaining,
                            seed_origin,
                            pool_index,
                        ));
                        units.push(accepted.unit);
                        Outcome::Degraded {
                            fallback: Fallback::Resampled { resamples: k },
                        }
                    }
                    None => {
                        samples.push(sample(
                            seed_code.to_string(),
                            step,
                            TransformMode::NonChaining,
                            seed_origin,
                            pool_index,
                        ));
                        units.push(seed_unit.clone());
                        Outcome::Failed
                    }
                }
            }
        };
        stats.record(outcome);
        outcomes.push(outcome);
    }
    stats.breaker_trips = cx.breaker.trips() - trips_before;
    Ok(ResilientRun {
        samples,
        units,
        outcomes,
        stats,
    })
}

/// Runs chaining transformation under fault injection.
///
/// # Errors
///
/// Only [`GptError::Parse`] — `seed_code` outside the subset.
#[allow(clippy::too_many_arguments)]
pub fn run_ct_resilient(
    svc: &FaultyTransformer<'_>,
    seed_code: &str,
    n: usize,
    seed_origin: Origin,
    rng: &mut Pcg64,
    anchor: &str,
    cx: &mut StreamCx,
) -> Result<ResilientRun, GptError> {
    let seed_unit = parse(seed_code).map_err(GptError::Parse)?;
    run_ct_resilient_parsed(svc, seed_code, &seed_unit, n, seed_origin, rng, anchor, cx)
}

/// Single-parse variant of [`run_ct_resilient`]: the chain threads
/// each accepted response's AST and expectation (byproducts of the
/// validation gate) into the next step, so a whole `n`-step chain
/// parses each rendered output exactly once and the seed zero times
/// beyond the caller's own parse. Samples, outcomes, and stats are
/// byte-identical to [`run_ct_resilient`].
///
/// # Errors
///
/// Only [`GptError::Parse`], and only from a transformer bug surfaced
/// by the debug semantics gate.
#[allow(clippy::too_many_arguments)]
pub fn run_ct_resilient_parsed(
    svc: &FaultyTransformer<'_>,
    seed_code: &str,
    seed_unit: &TranslationUnit,
    n: usize,
    seed_origin: Origin,
    rng: &mut Pcg64,
    anchor: &str,
    cx: &mut StreamCx,
) -> Result<ResilientRun, GptError> {
    let pool = svc.pool();
    let year = pool.year;
    let mut samples: Vec<TransformedSample> = Vec::with_capacity(n);
    let mut units: Vec<TranslationUnit> = Vec::with_capacity(n);
    let mut outcomes = Vec::with_capacity(n);
    let mut stats = ResilienceStats::default();
    let trips_before = cx.breaker.trips();
    // The chain head: source text, AST, and validation expectation of
    // whatever the next call transforms. Held steps keep it in place.
    let mut current_source = seed_code.to_string();
    let mut current_unit = seed_unit.clone();
    let mut current_exp = svc.prepare(seed_unit);
    let mut style_idx = pool.sample_index(rng);
    for step in 1..=n {
        if step > 1 && !rng.next_bool(pool.ct_stickiness) {
            style_idx = pool.sample_index(rng);
        }
        let scope = CallScope { year, anchor, step };
        let mut trace = CallTrace::default();
        let outcome = match svc.transform_prepared(
            &current_source,
            &current_unit,
            &current_exp,
            style_idx,
            rng,
            &scope,
            &mut cx.budget,
            &mut cx.breaker,
            &mut trace,
        ) {
            Ok(accepted) => {
                absorb(&mut stats, &trace);
                current_source = accepted.source.clone();
                current_unit = accepted.unit;
                current_exp = accepted.expectation;
                samples.push(sample(
                    accepted.source,
                    step,
                    TransformMode::Chaining,
                    seed_origin,
                    style_idx,
                ));
                units.push(current_unit.clone());
                if trace.attempts > 1 {
                    Outcome::Recovered {
                        attempts: trace.attempts,
                    }
                } else {
                    Outcome::Clean
                }
            }
            Err(GptError::Parse(e)) => return Err(GptError::Parse(e)),
            Err(err) => {
                absorb(&mut stats, &trace);
                // CT degradation: a chain cannot resample a mid-chain
                // step without rewriting history, so the chain *holds*
                // — the sample repeats the last good source and the
                // next step transforms from it.
                samples.push(sample(
                    current_source.clone(),
                    step,
                    TransformMode::Chaining,
                    seed_origin,
                    style_idx,
                ));
                units.push(current_unit.clone());
                if matches!(err, GptError::CircuitOpen { .. }) {
                    stats.record_fault("circuit-open");
                    Outcome::Failed
                } else {
                    Outcome::Degraded {
                        fallback: Fallback::HeldStep,
                    }
                }
            }
        };
        stats.record(outcome);
        outcomes.push(outcome);
    }
    stats.breaker_trips = cx.breaker.trips() - trips_before;
    Ok(ResilientRun {
        samples,
        units,
        outcomes,
        stats,
    })
}

/// A completed node-cached resilient run: [`ResilientRun`] plus each
/// step's region structure (`None` when the step fell back to raw seed
/// text the cached frontend never rendered).
#[derive(Debug, Clone)]
pub struct CachedRun {
    /// The transformed samples, in step order. Always `n` long.
    pub samples: Vec<TransformedSample>,
    /// `units[i]` is the AST of `samples[i].source`.
    pub units: Vec<TranslationUnit>,
    /// `regions[i]` is the node structure of `samples[i].source`, when
    /// the step came out of the cached frontend.
    pub regions: Vec<Option<RegionInfo>>,
    /// `outcomes[i]` describes how `samples[i]` survived the chaos.
    pub outcomes: Vec<Outcome>,
    /// Aggregated accounting for the stream.
    pub stats: ResilienceStats,
}

/// Node-cached variant of [`run_nct_resilient_parsed`]: every attempt
/// runs through `fc`, and each produced step's region structure is
/// returned for incremental downstream featurization. Samples,
/// outcomes, and stats are byte-identical to the uncached driver.
///
/// # Errors
///
/// Only [`GptError::Parse`], and only from a transformer bug surfaced
/// by the debug semantics gate.
#[allow(clippy::too_many_arguments)]
pub fn run_nct_resilient_cached(
    svc: &FaultyTransformer<'_>,
    seed_code: &str,
    seed_unit: &TranslationUnit,
    n: usize,
    seed_origin: Origin,
    rng: &mut Pcg64,
    anchor: &str,
    cx: &mut StreamCx,
    fc: &mut FrontendCache,
) -> Result<CachedRun, GptError> {
    let pool = svc.pool();
    let year = pool.year;
    let seed_exp = svc.prepare(seed_unit);
    let mut samples = Vec::with_capacity(n);
    let mut units = Vec::with_capacity(n);
    let mut regions: Vec<Option<RegionInfo>> = Vec::with_capacity(n);
    let mut outcomes = Vec::with_capacity(n);
    let mut stats = ResilienceStats::default();
    let trips_before = cx.breaker.trips();
    for step in 1..=n {
        let pool_index = pool.sample_index(rng);
        let scope = CallScope { year, anchor, step };
        let mut trace = CallTrace::default();
        let outcome = match svc.transform_prepared_cached(
            seed_code,
            seed_unit,
            None,
            &seed_exp,
            pool_index,
            rng,
            &scope,
            &mut cx.budget,
            &mut cx.breaker,
            &mut trace,
            fc,
        ) {
            Ok(accepted) => {
                absorb(&mut stats, &trace);
                samples.push(sample(
                    accepted.source,
                    step,
                    TransformMode::NonChaining,
                    seed_origin,
                    pool_index,
                ));
                units.push(accepted.unit);
                regions.push(Some(accepted.regions));
                if trace.attempts > 1 {
                    Outcome::Recovered {
                        attempts: trace.attempts,
                    }
                } else {
                    Outcome::Clean
                }
            }
            Err(GptError::Parse(e)) => return Err(GptError::Parse(e)),
            Err(err) => {
                absorb(&mut stats, &trace);
                if matches!(err, GptError::CircuitOpen { .. }) {
                    stats.record_fault("circuit-open");
                }
                let mut rescued = None;
                for k in 1..=cx.resamples {
                    let re_anchor = format!("{anchor}/resample{k}");
                    let re_scope = CallScope {
                        year,
                        anchor: &re_anchor,
                        step,
                    };
                    let mut re_rng = Pcg64::seed_from(
                        svc.plan().seed,
                        &[
                            "nct-resample",
                            &year.to_string(),
                            anchor,
                            &step.to_string(),
                            &k.to_string(),
                        ],
                    );
                    let mut re_trace = CallTrace::default();
                    match svc.transform_prepared_cached(
                        seed_code,
                        seed_unit,
                        None,
                        &seed_exp,
                        pool_index,
                        &mut re_rng,
                        &re_scope,
                        &mut cx.budget,
                        &mut cx.breaker,
                        &mut re_trace,
                        fc,
                    ) {
                        Ok(accepted) => {
                            absorb(&mut stats, &re_trace);
                            rescued = Some((accepted, k));
                            break;
                        }
                        Err(GptError::Parse(e)) => return Err(GptError::Parse(e)),
                        Err(re_err) => {
                            absorb(&mut stats, &re_trace);
                            if matches!(re_err, GptError::CircuitOpen { .. }) {
                                stats.record_fault("circuit-open");
                            }
                        }
                    }
                }
                match rescued {
                    Some((accepted, k)) => {
                        samples.push(sample(
                            accepted.source,
                            step,
                            TransformMode::NonChaining,
                            seed_origin,
                            pool_index,
                        ));
                        units.push(accepted.unit);
                        regions.push(Some(accepted.regions));
                        Outcome::Degraded {
                            fallback: Fallback::Resampled { resamples: k },
                        }
                    }
                    None => {
                        samples.push(sample(
                            seed_code.to_string(),
                            step,
                            TransformMode::NonChaining,
                            seed_origin,
                            pool_index,
                        ));
                        units.push(seed_unit.clone());
                        regions.push(None);
                        Outcome::Failed
                    }
                }
            }
        };
        stats.record(outcome);
        outcomes.push(outcome);
    }
    stats.breaker_trips = cx.breaker.trips() - trips_before;
    Ok(CachedRun {
        samples,
        units,
        regions,
        outcomes,
        stats,
    })
}

/// Node-cached variant of [`run_ct_resilient_parsed`]: the chain
/// threads each accepted step's region structure into the next call,
/// so unchanged items are never re-rendered, re-parsed or re-scanned.
/// Samples, outcomes, and stats are byte-identical to the uncached
/// driver.
///
/// # Errors
///
/// Only [`GptError::Parse`], and only from a transformer bug surfaced
/// by the debug semantics gate.
#[allow(clippy::too_many_arguments)]
pub fn run_ct_resilient_cached(
    svc: &FaultyTransformer<'_>,
    seed_code: &str,
    seed_unit: &TranslationUnit,
    n: usize,
    seed_origin: Origin,
    rng: &mut Pcg64,
    anchor: &str,
    cx: &mut StreamCx,
    fc: &mut FrontendCache,
) -> Result<CachedRun, GptError> {
    let pool = svc.pool();
    let year = pool.year;
    let mut samples: Vec<TransformedSample> = Vec::with_capacity(n);
    let mut units: Vec<TranslationUnit> = Vec::with_capacity(n);
    let mut regions: Vec<Option<RegionInfo>> = Vec::with_capacity(n);
    let mut outcomes = Vec::with_capacity(n);
    let mut stats = ResilienceStats::default();
    let trips_before = cx.breaker.trips();
    let mut current_source = seed_code.to_string();
    let mut current_unit = seed_unit.clone();
    let mut current_regions: Option<RegionInfo> = None;
    let mut current_exp = svc.prepare(seed_unit);
    let mut style_idx = pool.sample_index(rng);
    for step in 1..=n {
        if step > 1 && !rng.next_bool(pool.ct_stickiness) {
            style_idx = pool.sample_index(rng);
        }
        let scope = CallScope { year, anchor, step };
        let mut trace = CallTrace::default();
        let outcome = match svc.transform_prepared_cached(
            &current_source,
            &current_unit,
            current_regions.as_ref(),
            &current_exp,
            style_idx,
            rng,
            &scope,
            &mut cx.budget,
            &mut cx.breaker,
            &mut trace,
            fc,
        ) {
            Ok(accepted) => {
                absorb(&mut stats, &trace);
                current_source = accepted.source.clone();
                current_unit = accepted.unit;
                current_regions = Some(accepted.regions);
                current_exp = accepted.expectation;
                samples.push(sample(
                    accepted.source,
                    step,
                    TransformMode::Chaining,
                    seed_origin,
                    style_idx,
                ));
                units.push(current_unit.clone());
                regions.push(current_regions.clone());
                if trace.attempts > 1 {
                    Outcome::Recovered {
                        attempts: trace.attempts,
                    }
                } else {
                    Outcome::Clean
                }
            }
            Err(GptError::Parse(e)) => return Err(GptError::Parse(e)),
            Err(err) => {
                absorb(&mut stats, &trace);
                samples.push(sample(
                    current_source.clone(),
                    step,
                    TransformMode::Chaining,
                    seed_origin,
                    style_idx,
                ));
                units.push(current_unit.clone());
                regions.push(current_regions.clone());
                if matches!(err, GptError::CircuitOpen { .. }) {
                    stats.record_fault("circuit-open");
                    Outcome::Failed
                } else {
                    Outcome::Degraded {
                        fallback: Fallback::HeldStep,
                    }
                }
            }
        };
        stats.record(outcome);
        outcomes.push(outcome);
    }
    stats.breaker_trips = cx.breaker.trips() - trips_before;
    Ok(CachedRun {
        samples,
        units,
        regions,
        outcomes,
        stats,
    })
}

fn sample(
    source: String,
    step: usize,
    mode: TransformMode,
    seed_origin: Origin,
    pool_index: usize,
) -> TransformedSample {
    TransformedSample {
        source,
        step,
        mode,
        seed_origin,
        pool_index,
    }
}

/// The pre-cache NCT driver, kept as the reference baseline for the
/// single-parse frontend's A/B suite and the `pipeline` bench: every
/// step goes through [`FaultyTransformer::transform`], which re-parses
/// and re-validates its input *per call* and discards the response AST
/// it just checked. Samples, outcomes, and stats are byte-identical to
/// [`run_nct_resilient_parsed`] — only the repeated frontend work
/// differs.
///
/// # Errors
///
/// Only [`GptError::Parse`] — `seed_code` outside the subset.
#[allow(clippy::too_many_arguments)]
pub fn run_nct_resilient_reference(
    svc: &FaultyTransformer<'_>,
    seed_code: &str,
    n: usize,
    seed_origin: Origin,
    rng: &mut Pcg64,
    anchor: &str,
    cx: &mut StreamCx,
) -> Result<ReferenceRun, GptError> {
    let pool = svc.pool();
    let year = pool.year;
    let mut samples = Vec::with_capacity(n);
    let mut outcomes = Vec::with_capacity(n);
    let mut stats = ResilienceStats::default();
    let trips_before = cx.breaker.trips();
    for step in 1..=n {
        let pool_index = pool.sample_index(rng);
        let scope = CallScope { year, anchor, step };
        let mut trace = CallTrace::default();
        let outcome = match svc.transform(
            seed_code,
            pool_index,
            rng,
            &scope,
            &mut cx.budget,
            &mut cx.breaker,
            &mut trace,
        ) {
            Ok(source) => {
                absorb(&mut stats, &trace);
                samples.push(sample(
                    source,
                    step,
                    TransformMode::NonChaining,
                    seed_origin,
                    pool_index,
                ));
                if trace.attempts > 1 {
                    Outcome::Recovered {
                        attempts: trace.attempts,
                    }
                } else {
                    Outcome::Clean
                }
            }
            Err(GptError::Parse(e)) => return Err(GptError::Parse(e)),
            Err(err) => {
                absorb(&mut stats, &trace);
                if matches!(err, GptError::CircuitOpen { .. }) {
                    stats.record_fault("circuit-open");
                }
                let mut rescued = None;
                for k in 1..=cx.resamples {
                    let re_anchor = format!("{anchor}/resample{k}");
                    let re_scope = CallScope {
                        year,
                        anchor: &re_anchor,
                        step,
                    };
                    let mut re_rng = Pcg64::seed_from(
                        svc.plan().seed,
                        &[
                            "nct-resample",
                            &year.to_string(),
                            anchor,
                            &step.to_string(),
                            &k.to_string(),
                        ],
                    );
                    let mut re_trace = CallTrace::default();
                    match svc.transform(
                        seed_code,
                        pool_index,
                        &mut re_rng,
                        &re_scope,
                        &mut cx.budget,
                        &mut cx.breaker,
                        &mut re_trace,
                    ) {
                        Ok(source) => {
                            absorb(&mut stats, &re_trace);
                            rescued = Some((source, k));
                            break;
                        }
                        Err(GptError::Parse(e)) => return Err(GptError::Parse(e)),
                        Err(re_err) => {
                            absorb(&mut stats, &re_trace);
                            if matches!(re_err, GptError::CircuitOpen { .. }) {
                                stats.record_fault("circuit-open");
                            }
                        }
                    }
                }
                match rescued {
                    Some((source, k)) => {
                        samples.push(sample(
                            source,
                            step,
                            TransformMode::NonChaining,
                            seed_origin,
                            pool_index,
                        ));
                        Outcome::Degraded {
                            fallback: Fallback::Resampled { resamples: k },
                        }
                    }
                    None => {
                        samples.push(sample(
                            seed_code.to_string(),
                            step,
                            TransformMode::NonChaining,
                            seed_origin,
                            pool_index,
                        ));
                        Outcome::Failed
                    }
                }
            }
        };
        stats.record(outcome);
        outcomes.push(outcome);
    }
    stats.breaker_trips = cx.breaker.trips() - trips_before;
    Ok(ReferenceRun {
        samples,
        outcomes,
        stats,
    })
}

/// The pre-cache CT driver; see [`run_nct_resilient_reference`].
///
/// # Errors
///
/// Only [`GptError::Parse`] — `seed_code` outside the subset.
#[allow(clippy::too_many_arguments)]
pub fn run_ct_resilient_reference(
    svc: &FaultyTransformer<'_>,
    seed_code: &str,
    n: usize,
    seed_origin: Origin,
    rng: &mut Pcg64,
    anchor: &str,
    cx: &mut StreamCx,
) -> Result<ReferenceRun, GptError> {
    let pool = svc.pool();
    let year = pool.year;
    let mut samples = Vec::with_capacity(n);
    let mut outcomes = Vec::with_capacity(n);
    let mut stats = ResilienceStats::default();
    let trips_before = cx.breaker.trips();
    let mut current = seed_code.to_string();
    let mut style_idx = pool.sample_index(rng);
    for step in 1..=n {
        if step > 1 && !rng.next_bool(pool.ct_stickiness) {
            style_idx = pool.sample_index(rng);
        }
        let scope = CallScope { year, anchor, step };
        let mut trace = CallTrace::default();
        let outcome = match svc.transform(
            &current,
            style_idx,
            rng,
            &scope,
            &mut cx.budget,
            &mut cx.breaker,
            &mut trace,
        ) {
            Ok(source) => {
                absorb(&mut stats, &trace);
                current = source.clone();
                samples.push(sample(
                    source,
                    step,
                    TransformMode::Chaining,
                    seed_origin,
                    style_idx,
                ));
                if trace.attempts > 1 {
                    Outcome::Recovered {
                        attempts: trace.attempts,
                    }
                } else {
                    Outcome::Clean
                }
            }
            Err(GptError::Parse(e)) => return Err(GptError::Parse(e)),
            Err(err) => {
                absorb(&mut stats, &trace);
                samples.push(sample(
                    current.clone(),
                    step,
                    TransformMode::Chaining,
                    seed_origin,
                    style_idx,
                ));
                if matches!(err, GptError::CircuitOpen { .. }) {
                    stats.record_fault("circuit-open");
                    Outcome::Failed
                } else {
                    Outcome::Degraded {
                        fallback: Fallback::HeldStep,
                    }
                }
            }
        };
        stats.record(outcome);
        outcomes.push(outcome);
    }
    stats.breaker_trips = cx.breaker.trips() - trips_before;
    Ok(ReferenceRun {
        samples,
        outcomes,
        stats,
    })
}

/// What the reference drivers return: a [`ResilientRun`] minus the
/// carried ASTs (the pre-cache pipeline threw them away — that is the
/// point of the comparison).
#[derive(Debug, Clone, PartialEq)]
pub struct ReferenceRun {
    /// The transformed samples, in step order. Always `n` long.
    pub samples: Vec<TransformedSample>,
    /// `outcomes[i]` describes how `samples[i]` survived the chaos.
    pub outcomes: Vec<Outcome>,
    /// Aggregated accounting for the stream.
    pub stats: ResilienceStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breaker::BreakerConfig;
    use crate::plan::FaultPlan;
    use crate::retry::RetryPolicy;
    use synthattr_gen::challenges::ChallengeId;
    use synthattr_gen::corpus::solution_in_style;
    use synthattr_gen::style::AuthorStyle;
    use synthattr_gpt::{try_run_ct, try_run_nct, Transformer, YearPool};

    fn seed_code(seed: u64) -> String {
        let mut rng = Pcg64::new(seed);
        let style = AuthorStyle::sample(&mut rng);
        solution_in_style(ChallengeId::SumSeries, &style, seed, &["drv-seed"])
    }

    fn lenient_svc(pool: &YearPool, fault_seed: u64, rate: f64) -> FaultyTransformer<'_> {
        FaultyTransformer::new(
            pool,
            FaultPlan::new(fault_seed, rate),
            RetryPolicy {
                max_attempts: 12,
                ..RetryPolicy::default()
            },
        )
    }

    fn lenient_cx() -> StreamCx {
        StreamCx {
            budget: RetryBudget::unlimited(),
            breaker: CircuitBreaker::new(BreakerConfig {
                failure_threshold: 64,
                cooldown_calls: 16,
            }),
            resamples: 3,
        }
    }

    #[test]
    fn zero_rate_matches_fault_free_drivers_exactly() {
        let pool = YearPool::calibrated(2018, 1);
        let bare = Transformer::new(&pool);
        let svc = lenient_svc(&pool, 99, 0.0);
        let seed = seed_code(1);

        let plain = try_run_nct(&bare, &seed, 10, Origin::ChatGpt, &mut Pcg64::new(4)).unwrap();
        let run = run_nct_resilient(
            &svc,
            &seed,
            10,
            Origin::ChatGpt,
            &mut Pcg64::new(4),
            "a",
            &mut lenient_cx(),
        )
        .unwrap();
        assert_eq!(run.samples, plain);
        assert!(run.outcomes.iter().all(|o| *o == Outcome::Clean));
        assert_eq!(run.stats.clean, 10);
        assert_eq!(run.stats.retries, 0);

        let plain = try_run_ct(&bare, &seed, 10, Origin::Human, &mut Pcg64::new(5)).unwrap();
        let run = run_ct_resilient(
            &svc,
            &seed,
            10,
            Origin::Human,
            &mut Pcg64::new(5),
            "a",
            &mut lenient_cx(),
        )
        .unwrap();
        assert_eq!(run.samples, plain);
        assert_eq!(run.stats.fidelity(), 1.0);
    }

    #[test]
    fn recoverable_faults_are_byte_invisible() {
        // 20% fault rate, generous retries: every step must recover
        // and the sample vectors must be *identical* to fault-free.
        let pool = YearPool::calibrated(2019, 2);
        let bare = Transformer::new(&pool);
        let svc = lenient_svc(&pool, 7, 0.2);
        let seed = seed_code(2);

        let plain = try_run_nct(&bare, &seed, 15, Origin::ChatGpt, &mut Pcg64::new(8)).unwrap();
        let run = run_nct_resilient(
            &svc,
            &seed,
            15,
            Origin::ChatGpt,
            &mut Pcg64::new(8),
            "b",
            &mut lenient_cx(),
        )
        .unwrap();
        assert_eq!(run.samples, plain, "recovered NCT must be byte-identical");
        assert!(run.outcomes.iter().all(|o| o.is_faithful()));
        assert!(run.stats.recovered > 0, "20% rate must hit something");
        assert!(run.stats.backoff_ms > 0);

        let plain = try_run_ct(&bare, &seed, 15, Origin::ChatGpt, &mut Pcg64::new(9)).unwrap();
        let run = run_ct_resilient(
            &svc,
            &seed,
            15,
            Origin::ChatGpt,
            &mut Pcg64::new(9),
            "b",
            &mut lenient_cx(),
        )
        .unwrap();
        assert_eq!(run.samples, plain, "recovered CT must be byte-identical");
        assert!(run.outcomes.iter().all(|o| o.is_faithful()));
    }

    #[test]
    fn nct_degrades_by_resampling_and_completes() {
        // Harsh service: no retries, so ~35% of calls fail outright
        // and must be rescued by resampling.
        let pool = YearPool::calibrated(2018, 3);
        let svc =
            FaultyTransformer::new(&pool, FaultPlan::new(21, 0.35), RetryPolicy::no_retries());
        let seed = seed_code(3);
        let mut cx = StreamCx {
            budget: RetryBudget::unlimited(),
            breaker: CircuitBreaker::new(BreakerConfig {
                failure_threshold: 1_000,
                cooldown_calls: 4,
            }),
            resamples: 3,
        };
        let run = run_nct_resilient(
            &svc,
            &seed,
            40,
            Origin::ChatGpt,
            &mut Pcg64::new(10),
            "c",
            &mut cx,
        )
        .unwrap();
        assert_eq!(run.samples.len(), 40, "degraded runs still complete");
        let resampled = run
            .outcomes
            .iter()
            .filter(|o| {
                matches!(
                    o,
                    Outcome::Degraded {
                        fallback: Fallback::Resampled { .. }
                    }
                )
            })
            .count();
        assert!(resampled > 0, "expected resampled steps: {:?}", run.stats);
        // Resampled steps still carry valid, parseable transforms.
        for (s, o) in run.samples.iter().zip(&run.outcomes) {
            if !matches!(o, Outcome::Failed) {
                synthattr_lang::parse(&s.source).unwrap_or_else(|e| panic!("step {}: {e}", s.step));
            }
        }
        assert_eq!(
            run.stats.clean + run.stats.recovered + run.stats.degraded + run.stats.failed,
            40
        );
    }

    #[test]
    fn ct_holds_last_good_step_under_total_outage() {
        // Rate 1.0 with no retries: every call fails, the chain never
        // advances, and every sample is the seed itself.
        let pool = YearPool::calibrated(2017, 1);
        let svc = FaultyTransformer::new(&pool, FaultPlan::new(33, 1.0), RetryPolicy::no_retries());
        let seed = seed_code(4);
        let mut cx = StreamCx {
            budget: RetryBudget::new(5),
            breaker: CircuitBreaker::new(BreakerConfig {
                failure_threshold: 4,
                cooldown_calls: 3,
            }),
            resamples: 0,
        };
        let run = run_ct_resilient(
            &svc,
            &seed,
            20,
            Origin::Human,
            &mut Pcg64::new(11),
            "d",
            &mut cx,
        )
        .unwrap();
        assert_eq!(run.samples.len(), 20);
        assert!(run.samples.iter().all(|s| s.source == seed));
        assert!(run.outcomes.iter().all(|o| matches!(
            o,
            Outcome::Degraded {
                fallback: Fallback::HeldStep
            } | Outcome::Failed
        )));
        assert!(
            run.outcomes.iter().any(|o| matches!(o, Outcome::Failed)),
            "the tripped breaker must reject some calls outright: {:?}",
            run.stats
        );
        assert!(run.stats.breaker_trips > 0);
        assert_eq!(run.stats.fidelity(), 0.0);
    }

    #[test]
    fn resilient_runs_are_deterministic() {
        let pool = YearPool::calibrated(2019, 5);
        let svc = lenient_svc(&pool, 17, 0.3);
        let seed = seed_code(5);
        let go = || {
            run_nct_resilient(
                &svc,
                &seed,
                12,
                Origin::ChatGpt,
                &mut Pcg64::new(14),
                "e",
                &mut lenient_cx(),
            )
            .unwrap()
        };
        assert_eq!(go(), go());
    }

    #[test]
    fn reference_drivers_match_parsed_drivers_byte_for_byte() {
        // The pre-cache baseline must differ only in how much frontend
        // work it repeats — samples, outcomes, and stats are identical
        // at every fault rate, or the A/B comparison measures nothing.
        let pool = YearPool::calibrated(2019, 3);
        let seed = seed_code(9);
        for rate in [0.0, 0.05, 0.35] {
            let svc =
                FaultyTransformer::new(&pool, FaultPlan::new(55, rate), RetryPolicy::no_retries());
            let nct_new = run_nct_resilient(
                &svc,
                &seed,
                10,
                Origin::ChatGpt,
                &mut Pcg64::new(31),
                "r",
                &mut lenient_cx(),
            )
            .unwrap();
            let nct_ref = run_nct_resilient_reference(
                &svc,
                &seed,
                10,
                Origin::ChatGpt,
                &mut Pcg64::new(31),
                "r",
                &mut lenient_cx(),
            )
            .unwrap();
            assert_eq!(nct_new.samples, nct_ref.samples, "rate={rate}");
            assert_eq!(nct_new.outcomes, nct_ref.outcomes, "rate={rate}");
            assert_eq!(nct_new.stats, nct_ref.stats, "rate={rate}");

            let ct_new = run_ct_resilient(
                &svc,
                &seed,
                10,
                Origin::Human,
                &mut Pcg64::new(32),
                "r",
                &mut lenient_cx(),
            )
            .unwrap();
            let ct_ref = run_ct_resilient_reference(
                &svc,
                &seed,
                10,
                Origin::Human,
                &mut Pcg64::new(32),
                "r",
                &mut lenient_cx(),
            )
            .unwrap();
            assert_eq!(ct_new.samples, ct_ref.samples, "rate={rate}");
            assert_eq!(ct_new.outcomes, ct_ref.outcomes, "rate={rate}");
            assert_eq!(ct_new.stats, ct_ref.stats, "rate={rate}");
        }
    }

    #[test]
    fn carried_units_match_a_fresh_parse_of_each_sample() {
        // Every AST the drivers hand downstream must be exactly what
        // re-parsing the sample text would produce — including held CT
        // steps and failed NCT steps that fall back to the seed.
        let pool = YearPool::calibrated(2018, 2);
        let seed = seed_code(6);
        for rate in [0.0, 0.35] {
            let svc =
                FaultyTransformer::new(&pool, FaultPlan::new(77, rate), RetryPolicy::no_retries());
            let nct = run_nct_resilient(
                &svc,
                &seed,
                12,
                Origin::ChatGpt,
                &mut Pcg64::new(19),
                "u",
                &mut lenient_cx(),
            )
            .unwrap();
            let ct = run_ct_resilient(
                &svc,
                &seed,
                12,
                Origin::Human,
                &mut Pcg64::new(20),
                "u",
                &mut lenient_cx(),
            )
            .unwrap();
            for run in [&nct, &ct] {
                assert_eq!(run.units.len(), run.samples.len());
                for (s, u) in run.samples.iter().zip(&run.units) {
                    assert_eq!(*u, parse(&s.source).unwrap(), "step {}", s.step);
                }
            }
        }
    }

    #[test]
    fn cached_drivers_match_parsed_drivers_across_fault_rates() {
        // The node-cached resilient drivers must be a pure-function
        // swap: same samples, outcomes, and stats as the uncached
        // drivers at every fault rate, and each cached step's region
        // structure must describe its sample exactly.
        for (fault_seed, rate) in [(99u64, 0.0), (7, 0.05), (7, 0.20)] {
            let pool = YearPool::calibrated(2019, 2);
            let svc = lenient_svc(&pool, fault_seed, rate);
            let seed = seed_code(2);
            let seed_unit = parse(&seed).unwrap();

            for chaining in [false, true] {
                let (base_rng_seed, anchor) = if chaining {
                    (9, "ct-ab")
                } else {
                    (8, "nct-ab")
                };
                let plain = if chaining {
                    run_ct_resilient_parsed(
                        &svc,
                        &seed,
                        &seed_unit,
                        15,
                        Origin::ChatGpt,
                        &mut Pcg64::new(base_rng_seed),
                        anchor,
                        &mut lenient_cx(),
                    )
                } else {
                    run_nct_resilient_parsed(
                        &svc,
                        &seed,
                        &seed_unit,
                        15,
                        Origin::ChatGpt,
                        &mut Pcg64::new(base_rng_seed),
                        anchor,
                        &mut lenient_cx(),
                    )
                }
                .unwrap();
                let mut fc = FrontendCache::new();
                let cached = if chaining {
                    run_ct_resilient_cached(
                        &svc,
                        &seed,
                        &seed_unit,
                        15,
                        Origin::ChatGpt,
                        &mut Pcg64::new(base_rng_seed),
                        anchor,
                        &mut lenient_cx(),
                        &mut fc,
                    )
                } else {
                    run_nct_resilient_cached(
                        &svc,
                        &seed,
                        &seed_unit,
                        15,
                        Origin::ChatGpt,
                        &mut Pcg64::new(base_rng_seed),
                        anchor,
                        &mut lenient_cx(),
                        &mut fc,
                    )
                }
                .unwrap();
                let label = format!("rate {rate} chaining {chaining}");
                assert_eq!(cached.samples, plain.samples, "{label}");
                assert_eq!(cached.units, plain.units, "{label}");
                assert_eq!(cached.outcomes, plain.outcomes, "{label}");
                assert_eq!(cached.stats, plain.stats, "{label}");
                assert_eq!(cached.regions.len(), cached.samples.len(), "{label}");
                for (i, (s, ri)) in cached.samples.iter().zip(&cached.regions).enumerate() {
                    let Some(ri) = ri else { continue };
                    assert_eq!(
                        ri.spans.len(),
                        cached.units[i].items.len(),
                        "{label} step {i}"
                    );
                    for sp in &ri.spans {
                        assert!(sp.end <= s.source.len(), "{label} step {i}");
                    }
                    assert_eq!(
                        ri.unit_hash,
                        synthattr_lang::hash::unit_hash(&cached.units[i]),
                        "{label} step {i}"
                    );
                }
                if rate == 0.0 && chaining {
                    assert!(fc.node_hits() > 0, "CT chain must reuse cached nodes");
                }
            }
        }
    }

    #[test]
    fn bad_seed_is_still_a_typed_error() {
        let pool = YearPool::calibrated(2018, 1);
        let svc = lenient_svc(&pool, 1, 0.1);
        let err = run_nct_resilient(
            &svc,
            "int main( {",
            3,
            Origin::ChatGpt,
            &mut Pcg64::new(1),
            "f",
            &mut lenient_cx(),
        )
        .unwrap_err();
        assert!(matches!(err, GptError::Parse(_)));
    }
}
