//! Response validation: the service-layer reuse of the
//! `synthattr-analysis` lint + fingerprint gate.
//!
//! The transformer's own debug gate (`debug_assert_semantics_preserved`)
//! guards against *transformer bugs* and panics, because a buggy
//! transformer is a programming error. The validator here guards
//! against *sabotaged responses* — truncation and corruption injected
//! by the fault plan — and returns typed
//! [`GptError::InvalidResponse`]s, because a mangled response is an
//! operational event to retry, not a bug.
//!
//! Checks run cheapest-first: parse (catches truncation), then the
//! lint pass delta (catches responses that introduce error-severity
//! diagnostics), then the semantic fingerprint (catches parseable,
//! lint-clean responses whose behaviour changed).

use std::sync::Arc;
use synthattr_analysis::{fingerprint, new_errors, Analyzer, Diagnostic};
use synthattr_gpt::{GptError, ResponseViolation};
use synthattr_lang::{parse, TranslationUnit};

/// What a valid response must live up to, precomputed from the input
/// once per logical call (attempts and retries reuse it).
#[derive(Debug, Clone, PartialEq)]
pub struct Expectation {
    pre_diags: Arc<Vec<Diagnostic>>,
    fingerprint: u64,
}

/// Validates service responses against the input they transform.
pub struct ResponseValidator {
    analyzer: Analyzer,
}

impl ResponseValidator {
    /// A validator with the default analysis pass registry.
    pub fn new() -> Self {
        ResponseValidator {
            analyzer: Analyzer::new(),
        }
    }

    /// Precomputes the input's diagnostics and fingerprint.
    ///
    /// # Errors
    ///
    /// [`GptError::Parse`] if the *input* is outside the subset — a
    /// deterministic caller error, never retried.
    pub fn expectation(&self, input: &str) -> Result<Expectation, GptError> {
        let unit = parse(input).map_err(GptError::Parse)?;
        Ok(self.expectation_parsed(&unit))
    }

    /// Precomputes an input's diagnostics and fingerprint from its
    /// already-parsed AST. Infallible: a unit in hand is in the subset
    /// by construction. This is the single-parse entry point — callers
    /// holding an artifact never re-parse the input just to describe
    /// what a valid response must look like.
    pub fn expectation_parsed(&self, unit: &TranslationUnit) -> Expectation {
        Expectation {
            pre_diags: Arc::new(self.analyzer.analyze(unit)),
            fingerprint: fingerprint(unit),
        }
    }

    /// The analyzer behind the gates (shared with the node-cached
    /// service path, which keys this analyzer's output by unit hash).
    pub(crate) fn analyzer(&self) -> &Analyzer {
        &self.analyzer
    }

    /// The gate sequence of [`ResponseValidator::validate`] for a
    /// response that is already parsed and analyzed: `post_diags` and
    /// `fp` must be the response's analyzer output and fingerprint
    /// (possibly served from a unit-hash cache). Runs the identical
    /// lint-delta and fingerprint checks and returns the identical
    /// next-call [`Expectation`].
    ///
    /// # Errors
    ///
    /// [`GptError::InvalidResponse`] naming the first violated gate,
    /// byte-identical to [`ResponseValidator::validate`].
    pub(crate) fn validate_parsed(
        &self,
        expected: &Expectation,
        post_diags: Arc<Vec<Diagnostic>>,
        fp: u64,
    ) -> Result<Expectation, GptError> {
        let fresh = new_errors(&expected.pre_diags, &post_diags);
        if let Some(first) = fresh.first() {
            return Err(GptError::InvalidResponse {
                violation: ResponseViolation::LintErrors,
                detail: format!("{} new error(s), first: {first}", fresh.len()),
            });
        }
        if fp != expected.fingerprint {
            return Err(GptError::InvalidResponse {
                violation: ResponseViolation::FingerprintMismatch,
                detail: format!(
                    "fingerprint {fp:#018x} != expected {:#018x}",
                    expected.fingerprint
                ),
            });
        }
        Ok(Expectation {
            pre_diags: post_diags,
            fingerprint: fp,
        })
    }

    /// Accepts or rejects one response body.
    ///
    /// On success, returns the response's AST (parsed exactly once,
    /// here) together with the response's own [`Expectation`] — CT
    /// chains feed each accepted response in as the next call's input,
    /// and both byproducts fall out of the gates this method already
    /// ran, so returning them makes the whole retry loop single-parse.
    ///
    /// # Errors
    ///
    /// [`GptError::InvalidResponse`] naming the first violated gate.
    pub fn validate(
        &self,
        expected: &Expectation,
        response: &str,
    ) -> Result<(TranslationUnit, Expectation), GptError> {
        let unit = match parse(response) {
            Ok(u) => u,
            Err(e) => {
                return Err(GptError::InvalidResponse {
                    violation: ResponseViolation::Unparseable,
                    detail: e.to_string(),
                })
            }
        };
        let post_diags = Arc::new(self.analyzer.analyze(&unit));
        let fresh = new_errors(&expected.pre_diags, &post_diags);
        if let Some(first) = fresh.first() {
            return Err(GptError::InvalidResponse {
                violation: ResponseViolation::LintErrors,
                detail: format!("{} new error(s), first: {first}", fresh.len()),
            });
        }
        let fp = fingerprint(&unit);
        if fp != expected.fingerprint {
            return Err(GptError::InvalidResponse {
                violation: ResponseViolation::FingerprintMismatch,
                detail: format!(
                    "fingerprint {fp:#018x} != expected {:#018x}",
                    expected.fingerprint
                ),
            });
        }
        Ok((
            unit,
            Expectation {
                pre_diags: post_diags,
                fingerprint: fp,
            },
        ))
    }
}

impl Default for ResponseValidator {
    fn default() -> Self {
        ResponseValidator::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "int main() { int x = 0; x = x + 1; return 0; }";

    fn violation_of(err: GptError) -> ResponseViolation {
        match err {
            GptError::InvalidResponse { violation, .. } => violation,
            other => panic!("expected InvalidResponse, got {other:?}"),
        }
    }

    #[test]
    fn identity_response_passes() {
        let v = ResponseValidator::new();
        let exp = v.expectation(SRC).unwrap();
        v.validate(&exp, SRC).unwrap();
    }

    #[test]
    fn renamed_variables_pass() {
        // A faithful transform changes style, not behaviour.
        let v = ResponseValidator::new();
        let exp = v.expectation(SRC).unwrap();
        let renamed = "int main() { int count = 0; count = count + 1; return 0; }";
        v.validate(&exp, renamed).unwrap();
    }

    #[test]
    fn truncation_is_unparseable() {
        let v = ResponseValidator::new();
        let exp = v.expectation(SRC).unwrap();
        let cut = &SRC[..SRC.len() / 2];
        assert_eq!(
            violation_of(v.validate(&exp, cut).unwrap_err()),
            ResponseViolation::Unparseable
        );
    }

    #[test]
    fn undeclared_identifier_is_a_lint_error() {
        let v = ResponseValidator::new();
        let exp = v.expectation(SRC).unwrap();
        let corrupt = "int main() { int x = 0; x = x + 1; return chaos_leak; }";
        assert_eq!(
            violation_of(v.validate(&exp, corrupt).unwrap_err()),
            ResponseViolation::LintErrors
        );
    }

    #[test]
    fn behaviour_change_is_a_fingerprint_mismatch() {
        let v = ResponseValidator::new();
        let exp = v.expectation(SRC).unwrap();
        let corrupt = "int main() { int x = 0; x = x + 1; return 1; }";
        assert_eq!(
            violation_of(v.validate(&exp, corrupt).unwrap_err()),
            ResponseViolation::FingerprintMismatch
        );
    }

    #[test]
    fn bad_input_is_a_parse_error_not_invalid_response() {
        let v = ResponseValidator::new();
        let err = v.expectation("int main( {").unwrap_err();
        assert!(matches!(err, GptError::Parse(_)), "{err:?}");
    }

    #[test]
    fn parsed_expectation_matches_source_expectation() {
        let v = ResponseValidator::new();
        let unit = parse(SRC).unwrap();
        assert_eq!(v.expectation(SRC).unwrap(), v.expectation_parsed(&unit));
    }

    #[test]
    fn validate_returns_the_responses_own_expectation() {
        // CT chains reuse the accepted response's expectation for the
        // next call; it must equal recomputing it from scratch.
        let v = ResponseValidator::new();
        let exp = v.expectation(SRC).unwrap();
        let renamed = "int main() { int count = 0; count = count + 1; return 0; }";
        let (unit, next) = v.validate(&exp, renamed).unwrap();
        assert_eq!(unit, parse(renamed).unwrap());
        assert_eq!(next, v.expectation(renamed).unwrap());
    }
}
