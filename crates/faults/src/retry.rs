//! Retry policy: exponential backoff with deterministic jitter, and
//! the per-pipeline retry budget.
//!
//! Backoff here is *simulated* — no thread ever sleeps. The policy
//! computes the delay a production client would have waited and the
//! caller accounts it in [`crate::ResilienceStats::backoff_ms`], which
//! is what the fault benchmarks report as retry overhead.

use synthattr_util::Pcg64;

/// Exponential backoff retry policy.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Maximum attempts per logical call, including the first
    /// (`1` disables retries entirely).
    pub max_attempts: u32,
    /// Delay before the first retry, in ms.
    pub base_delay_ms: u64,
    /// Multiplier applied per subsequent retry.
    pub multiplier: f64,
    /// Ceiling on any single delay, in ms.
    pub max_delay_ms: u64,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by a factor
    /// drawn uniformly from `[1 - jitter, 1 + jitter]`. The draw comes
    /// from a caller-supplied seeded stream, so jitter is exactly
    /// reproducible — "deterministic jitter" in the full-jitter sense.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay_ms: 100,
            multiplier: 2.0,
            max_delay_ms: 5_000,
            jitter: 0.25,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn no_retries() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Simulated delay before the retry that follows failed attempt
    /// `attempt` (1-based), jittered from `jitter_rng`.
    pub fn backoff_ms(&self, attempt: u32, jitter_rng: &mut Pcg64) -> u64 {
        let exp = attempt.saturating_sub(1).min(32);
        let raw = (self.base_delay_ms as f64) * self.multiplier.powi(exp as i32);
        let capped = raw.min(self.max_delay_ms as f64);
        let scale = 1.0 + self.jitter * (2.0 * jitter_rng.next_f64() - 1.0);
        (capped * scale.max(0.0)).round() as u64
    }
}

/// A shared pool of retries for one pipeline (or one call stream).
///
/// Every retry spends one unit; when the budget is dry, failing calls
/// go straight to [`synthattr_gpt::GptError::BudgetExhausted`] and the
/// degradation machinery takes over. `u64::MAX` means unlimited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryBudget {
    remaining: u64,
    unlimited: bool,
}

impl RetryBudget {
    /// A budget of `total` retries.
    pub fn new(total: u64) -> Self {
        RetryBudget {
            remaining: total,
            unlimited: false,
        }
    }

    /// A budget that never runs out.
    pub fn unlimited() -> Self {
        RetryBudget {
            remaining: u64::MAX,
            unlimited: true,
        }
    }

    /// Spends one retry if any remain; `false` means the caller must
    /// not retry.
    pub fn try_spend(&mut self) -> bool {
        if self.unlimited {
            return true;
        }
        if self.remaining == 0 {
            return false;
        }
        self.remaining -= 1;
        true
    }

    /// Retries left (`u64::MAX` if unlimited).
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Credits `tokens` back, saturating at `cap`. A no-op on
    /// unlimited budgets. This is the budget machinery run in
    /// reverse: a token bucket is a `RetryBudget` that refills on a
    /// clock instead of only draining (the serving layer's per-client
    /// rate limiter is built on exactly this).
    pub fn refill(&mut self, tokens: u64, cap: u64) {
        if self.unlimited {
            return;
        }
        self.remaining = self.remaining.saturating_add(tokens).min(cap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_then_caps() {
        let policy = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let mut rng = Pcg64::new(1);
        assert_eq!(policy.backoff_ms(1, &mut rng), 100);
        assert_eq!(policy.backoff_ms(2, &mut rng), 200);
        assert_eq!(policy.backoff_ms(3, &mut rng), 400);
        assert_eq!(policy.backoff_ms(10, &mut rng), 5_000, "hits the cap");
    }

    #[test]
    fn jitter_is_bounded_and_reproducible() {
        let policy = RetryPolicy::default(); // jitter 0.25
        let delays: Vec<u64> = (0..100)
            .map(|i| {
                let mut rng = Pcg64::seed_from(9, &["jitter", &i.to_string()]);
                policy.backoff_ms(2, &mut rng)
            })
            .collect();
        for &d in &delays {
            assert!((150..=250).contains(&d), "200ms +/- 25%: got {d}");
        }
        // Same stream, same jitter.
        let mut rng = Pcg64::seed_from(9, &["jitter", "0"]);
        assert_eq!(policy.backoff_ms(2, &mut rng), delays[0]);
        // Jitter actually varies across streams.
        assert!(delays.iter().any(|&d| d != delays[0]));
    }

    #[test]
    fn budget_spends_down_and_stops() {
        let mut b = RetryBudget::new(2);
        assert!(b.try_spend());
        assert!(b.try_spend());
        assert!(!b.try_spend());
        assert!(!b.try_spend(), "stays dry");
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn unlimited_budget_never_dries() {
        let mut b = RetryBudget::unlimited();
        for _ in 0..10_000 {
            assert!(b.try_spend());
        }
    }

    #[test]
    fn refill_credits_back_up_to_the_cap() {
        let mut b = RetryBudget::new(3);
        assert!(b.try_spend());
        assert!(b.try_spend());
        b.refill(1, 3);
        assert_eq!(b.remaining(), 2);
        b.refill(100, 3);
        assert_eq!(b.remaining(), 3, "refill saturates at the cap");
        // A dry budget comes back to life after a refill.
        for _ in 0..3 {
            assert!(b.try_spend());
        }
        assert!(!b.try_spend());
        b.refill(1, 3);
        assert!(b.try_spend());
        assert!(!b.try_spend());
    }

    #[test]
    fn refill_is_a_noop_on_unlimited_budgets() {
        let mut b = RetryBudget::unlimited();
        b.refill(5, 10);
        assert_eq!(b.remaining(), u64::MAX);
        assert!(b.try_spend());
    }
}
