//! The fault-injected service wrapper around the LLM simulator.
//!
//! [`FaultyTransformer`] is the paper pipeline's view of an unreliable
//! remote model: each logical call consults the [`FaultPlan`], retries
//! under the [`RetryPolicy`] while the [`RetryBudget`] and
//! [`CircuitBreaker`] allow, and validates every response body with
//! the lint + fingerprint gate before accepting it.
//!
//! # The invisible-retry invariant
//!
//! The caller's RNG is cloned at call entry; every attempt runs on a
//! fresh clone and the attempt's stream is committed back **only on
//! success**. Combined with fault decisions living on their own
//! derived streams (see [`crate::plan`]), a call that eventually
//! succeeds leaves the caller's RNG — and therefore every downstream
//! byte of the experiment — exactly where a fault-free call would
//! have. Recovery is *invisible*, not merely statistically similar.

use crate::breaker::CircuitBreaker;
use crate::plan::{CallScope, FaultKind, FaultPlan};
use crate::retry::{RetryBudget, RetryPolicy};
use crate::validate::{Expectation, ResponseValidator};
use synthattr_gpt::incr::{detect_with_regions, transform_step_cached, FrontendCache, RegionInfo};
use synthattr_gpt::transform::detect_render_style;
use synthattr_gpt::{GptError, ResponseViolation, ServiceFault, Transformer, YearPool};
use synthattr_lang::{parse, TranslationUnit};
use synthattr_util::Pcg64;

/// Telemetry for one logical call.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CallTrace {
    /// Attempts performed (1 = no retries).
    pub attempts: u32,
    /// Total simulated backoff slept between attempts, in ms.
    pub backoff_ms: u64,
    /// Error tag of every failed attempt, in order.
    pub fault_tags: Vec<&'static str>,
}

/// A response that passed the validation gate, together with the
/// byproducts of validating it: its AST (parsed exactly once, inside
/// the gate) and its own [`Expectation`] for when it becomes the next
/// chain step's input.
#[derive(Debug, Clone)]
pub struct AcceptedResponse {
    /// The accepted transformed source text.
    pub source: String,
    /// The AST of `source`.
    pub unit: TranslationUnit,
    /// `source`'s diagnostics + fingerprint, ready for the next call.
    pub expectation: Expectation,
}

/// An [`AcceptedResponse`] that also carries the response's node-level
/// region structure, as produced by the cached service path.
#[derive(Debug, Clone)]
pub struct AcceptedStep {
    /// The accepted transformed source text.
    pub source: String,
    /// The AST of `source`.
    pub unit: TranslationUnit,
    /// Node-level structure of `source`.
    pub regions: RegionInfo,
    /// `source`'s diagnostics + fingerprint, ready for the next call.
    pub expectation: Expectation,
}

/// A [`Transformer`] behind a deterministic chaos proxy.
pub struct FaultyTransformer<'a> {
    inner: Transformer<'a>,
    plan: FaultPlan,
    policy: RetryPolicy,
    validator: ResponseValidator,
}

impl<'a> FaultyTransformer<'a> {
    /// Wraps a transformer for `pool` with the given plan and policy.
    pub fn new(pool: &'a YearPool, plan: FaultPlan, policy: RetryPolicy) -> Self {
        FaultyTransformer {
            inner: Transformer::new(pool),
            plan,
            policy,
            validator: ResponseValidator::new(),
        }
    }

    /// The style pool behind the service.
    pub fn pool(&self) -> &YearPool {
        self.inner.pool()
    }

    /// The fault plan driving injection.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// One logical transform call with retries. `trace` is filled in
    /// on success *and* failure, so callers can account retry cost
    /// either way.
    ///
    /// On success the returned source is byte-identical to what the
    /// bare [`Transformer`] would have produced with the same `rng`,
    /// and `rng` has advanced identically. On error `rng` is
    /// **untouched** (still at call entry), so callers can fall back
    /// deterministically.
    ///
    /// # Errors
    ///
    /// * [`GptError::Parse`] — `source` outside the subset (fail-fast).
    /// * [`GptError::CircuitOpen`] — breaker rejected the call.
    /// * [`GptError::RetriesExhausted`] — policy ran out of attempts.
    /// * [`GptError::BudgetExhausted`] — stream budget ran dry.
    #[allow(clippy::too_many_arguments)]
    pub fn transform(
        &self,
        source: &str,
        pool_index: usize,
        rng: &mut Pcg64,
        scope: &CallScope<'_>,
        budget: &mut RetryBudget,
        breaker: &mut CircuitBreaker,
        trace: &mut CallTrace,
    ) -> Result<String, GptError> {
        let unit = parse(source).map_err(GptError::Parse)?;
        let expectation = self.prepare(&unit);
        self.transform_prepared(
            source,
            &unit,
            &expectation,
            pool_index,
            rng,
            scope,
            budget,
            breaker,
            trace,
        )
        .map(|accepted| accepted.source)
    }

    /// Precomputes the validation [`Expectation`] for an input that is
    /// already parsed. Chains compute this once per logical call site
    /// instead of once per retry loop *and* re-parse.
    pub fn prepare(&self, unit: &TranslationUnit) -> Expectation {
        self.validator.expectation_parsed(unit)
    }

    /// Single-parse variant of [`FaultyTransformer::transform`]: the
    /// caller supplies the input's AST and precomputed expectation
    /// (from [`FaultyTransformer::prepare`]), and gets back the
    /// accepted response together with its AST and expectation — both
    /// byproducts of the validation gate the response already passed,
    /// so a CT chain can feed the response straight into the next call
    /// with zero re-parses.
    ///
    /// Faults, retries, RNG commitment, and the produced text are
    /// byte-identical to [`FaultyTransformer::transform`].
    ///
    /// # Errors
    ///
    /// Same as [`FaultyTransformer::transform`], minus the fail-fast
    /// [`GptError::Parse`] (a parsed input cannot be outside the
    /// subset).
    #[allow(clippy::too_many_arguments)]
    pub fn transform_prepared(
        &self,
        source: &str,
        unit: &TranslationUnit,
        expectation: &Expectation,
        pool_index: usize,
        rng: &mut Pcg64,
        scope: &CallScope<'_>,
        budget: &mut RetryBudget,
        breaker: &mut CircuitBreaker,
        trace: &mut CallTrace,
    ) -> Result<AcceptedResponse, GptError> {
        let mut attempt: u32 = 1;
        loop {
            if let Err(fails) = breaker.admit() {
                return Err(GptError::CircuitOpen {
                    consecutive_failures: fails,
                });
            }
            trace.attempts = attempt;
            match self.attempt(source, unit, pool_index, rng, scope, attempt, expectation) {
                Ok(out) => {
                    breaker.record_success();
                    return Ok(out);
                }
                Err(e) if !e.is_retryable() => {
                    breaker.record_failure();
                    return Err(e);
                }
                Err(e) => {
                    trace.fault_tags.push(e.tag());
                    breaker.record_failure();
                    if attempt >= self.policy.max_attempts {
                        return Err(GptError::RetriesExhausted {
                            attempts: attempt,
                            last: Box::new(e),
                        });
                    }
                    if !budget.try_spend() {
                        return Err(GptError::BudgetExhausted { last: Box::new(e) });
                    }
                    let mut jitter = scope.stream(self.plan.seed, "backoff", attempt);
                    trace.backoff_ms += self.policy.backoff_ms(attempt, &mut jitter);
                    attempt += 1;
                }
            }
        }
    }

    /// One attempt: inject per the plan, transform on a cloned stream,
    /// validate, and commit the stream only if everything passed.
    #[allow(clippy::too_many_arguments)]
    fn attempt(
        &self,
        source: &str,
        unit: &TranslationUnit,
        pool_index: usize,
        rng: &mut Pcg64,
        scope: &CallScope<'_>,
        attempt: u32,
        expectation: &Expectation,
    ) -> Result<AcceptedResponse, GptError> {
        let injected = self.plan.draw(scope, attempt);
        if let Some(fault) = &injected {
            let mut params = fault.params.clone();
            match fault.kind {
                FaultKind::Timeout => {
                    return Err(GptError::Service(ServiceFault::Timeout {
                        after_ms: 500 + params.next_u64() % 1_500,
                    }));
                }
                FaultKind::RateLimit => {
                    return Err(GptError::Service(ServiceFault::RateLimited {
                        retry_after_ms: 100 + params.next_u64() % 2_000,
                    }));
                }
                FaultKind::Transient => {
                    let code = *params.choose(&[500u16, 502, 503]).expect("non-empty");
                    return Err(GptError::Service(ServiceFault::Transient { code }));
                }
                FaultKind::Truncated | FaultKind::Corrupted => {}
            }
        }
        let mut attempt_rng = rng.clone();
        let out = self
            .inner
            .transform_parsed(source, unit, pool_index, &mut attempt_rng)?;
        let out = match injected {
            Some(fault) => {
                let mut params = fault.params;
                self.sabotage(fault.kind, &out, &mut params, expectation)
            }
            None => out,
        };
        let (resp_unit, resp_expectation) = self.validator.validate(expectation, &out)?;
        // Commit: the caller's stream advances exactly as a fault-free
        // call would have.
        *rng = attempt_rng;
        Ok(AcceptedResponse {
            source: out,
            unit: resp_unit,
            expectation: resp_expectation,
        })
    }

    /// Node-cached variant of [`FaultyTransformer::transform_prepared`]:
    /// the attempt's layout detection, render, re-parse, diagnostics
    /// and fingerprint all run through `fc`, so a chain step pays only
    /// for the items it actually changed. `regions` is the input's
    /// node structure when the input was itself produced by a cached
    /// step (`None` for raw seeds). Faults, retries, RNG commitment,
    /// produced text, and every error are byte-identical to
    /// [`FaultyTransformer::transform_prepared`].
    ///
    /// # Errors
    ///
    /// Same as [`FaultyTransformer::transform_prepared`].
    #[allow(clippy::too_many_arguments)]
    pub fn transform_prepared_cached(
        &self,
        source: &str,
        unit: &TranslationUnit,
        regions: Option<&RegionInfo>,
        expectation: &Expectation,
        pool_index: usize,
        rng: &mut Pcg64,
        scope: &CallScope<'_>,
        budget: &mut RetryBudget,
        breaker: &mut CircuitBreaker,
        trace: &mut CallTrace,
        fc: &mut FrontendCache,
    ) -> Result<AcceptedStep, GptError> {
        let mut attempt: u32 = 1;
        loop {
            if let Err(fails) = breaker.admit() {
                return Err(GptError::CircuitOpen {
                    consecutive_failures: fails,
                });
            }
            trace.attempts = attempt;
            match self.attempt_cached(
                source,
                unit,
                regions,
                pool_index,
                rng,
                scope,
                attempt,
                expectation,
                fc,
            ) {
                Ok(out) => {
                    breaker.record_success();
                    return Ok(out);
                }
                Err(e) if !e.is_retryable() => {
                    breaker.record_failure();
                    return Err(e);
                }
                Err(e) => {
                    trace.fault_tags.push(e.tag());
                    breaker.record_failure();
                    if attempt >= self.policy.max_attempts {
                        return Err(GptError::RetriesExhausted {
                            attempts: attempt,
                            last: Box::new(e),
                        });
                    }
                    if !budget.try_spend() {
                        return Err(GptError::BudgetExhausted { last: Box::new(e) });
                    }
                    let mut jitter = scope.stream(self.plan.seed, "backoff", attempt);
                    trace.backoff_ms += self.policy.backoff_ms(attempt, &mut jitter);
                    attempt += 1;
                }
            }
        }
    }

    /// One node-cached attempt. Sabotaged attempts fall back to the
    /// plain text gate (the mangled body is not region-tiled); clean
    /// attempts validate through the unit-hash diagnostic and
    /// fingerprint caches.
    #[allow(clippy::too_many_arguments)]
    fn attempt_cached(
        &self,
        source: &str,
        unit: &TranslationUnit,
        regions: Option<&RegionInfo>,
        pool_index: usize,
        rng: &mut Pcg64,
        scope: &CallScope<'_>,
        attempt: u32,
        expectation: &Expectation,
        fc: &mut FrontendCache,
    ) -> Result<AcceptedStep, GptError> {
        let injected = self.plan.draw(scope, attempt);
        if let Some(fault) = &injected {
            let mut params = fault.params.clone();
            match fault.kind {
                FaultKind::Timeout => {
                    return Err(GptError::Service(ServiceFault::Timeout {
                        after_ms: 500 + params.next_u64() % 1_500,
                    }));
                }
                FaultKind::RateLimit => {
                    return Err(GptError::Service(ServiceFault::RateLimited {
                        retry_after_ms: 100 + params.next_u64() % 2_000,
                    }));
                }
                FaultKind::Transient => {
                    let code = *params.choose(&[500u16, 502, 503]).expect("non-empty");
                    return Err(GptError::Service(ServiceFault::Transient { code }));
                }
                FaultKind::Truncated | FaultKind::Corrupted => {}
            }
        }
        let src_render = match regions {
            Some(ri) => detect_with_regions(fc, source, ri),
            None => detect_render_style(source),
        };
        let mut attempt_rng = rng.clone();
        let step = match transform_step_cached(
            &self.inner,
            source,
            unit,
            &src_render,
            pool_index,
            &mut attempt_rng,
            fc,
        ) {
            Ok(s) => s,
            // The reference path discovers an unparseable rendered
            // body inside `validate`; surface the identical retryable
            // violation rather than the cached step's typed error.
            Err(GptError::Parse(e)) => {
                return Err(GptError::InvalidResponse {
                    violation: ResponseViolation::Unparseable,
                    detail: e.to_string(),
                })
            }
            Err(other) => return Err(other),
        };
        if let Some(fault) = injected {
            let mut params = fault.params;
            let mangled = self.sabotage(fault.kind, &step.source, &mut params, expectation);
            let err = self
                .validator
                .validate(expectation, &mangled)
                .map(|_| ())
                .expect_err("sabotage is construction-guaranteed to fail validation");
            return Err(err);
        }
        let post = fc.diags_for(
            step.regions.unit_hash,
            &step.unit,
            self.validator.analyzer(),
        );
        let fp = fc.fingerprint_for(step.regions.unit_hash, &step.unit);
        let resp_expectation = self.validator.validate_parsed(expectation, post, fp)?;
        *rng = attempt_rng;
        Ok(AcceptedStep {
            source: step.source,
            unit: step.unit,
            regions: step.regions,
            expectation: resp_expectation,
        })
    }

    /// Mangles a good response so the validator is guaranteed to
    /// reject it. The guarantee is checked, not assumed: if a mangled
    /// candidate happens to survive validation (e.g. a cut that only
    /// removed trailing comments), a hard lexical break is appended.
    fn sabotage(
        &self,
        kind: FaultKind,
        out: &str,
        params: &mut Pcg64,
        expectation: &Expectation,
    ) -> String {
        let candidate = match kind {
            FaultKind::Truncated => truncate_response(out, params),
            FaultKind::Corrupted => corrupt_response(out, params),
            _ => unreachable!("call-level faults have no response body"),
        };
        if self.validator.validate(expectation, &candidate).is_err() {
            return candidate;
        }
        format!("{candidate}\n@chaos@")
    }
}

/// Cuts the response at 35–65% of its length, never past the final
/// closing brace (the classic max-tokens truncation).
fn truncate_response(out: &str, params: &mut Pcg64) -> String {
    let len = out.len();
    let lo = len * 35 / 100;
    let span = (len * 65 / 100).saturating_sub(lo).max(1);
    let mut cut = (lo + params.next_below(span)).min(len);
    if let Some(last_brace) = out.rfind('}') {
        cut = cut.min(last_brace);
    }
    while cut > 0 && !out.is_char_boundary(cut) {
        cut -= 1;
    }
    out[..cut].to_string()
}

/// Silently alters behaviour: rewrites the last `return` statement to
/// either an undeclared identifier (a lint-visible leak) or a constant
/// the program never returns (a fingerprint-visible change). Falls
/// back to truncation when no `return` is found.
fn corrupt_response(out: &str, params: &mut Pcg64) -> String {
    let Some(ret) = out.rfind("return") else {
        return truncate_response(out, params);
    };
    let Some(semi) = out[ret..].find(';') else {
        return truncate_response(out, params);
    };
    let replacement = if params.next_bool(0.5) {
        "return chaos_leak"
    } else {
        "return 424242"
    };
    format!("{}{}{}", &out[..ret], replacement, &out[ret + semi..])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breaker::BreakerConfig;
    use crate::plan::FaultWeights;

    const SRC: &str =
        "int main() { int total = 0; for (int i = 0; i < 5; i++) { total += i; } return total; }";

    fn scope(step: usize) -> CallScope<'static> {
        CallScope {
            year: 2018,
            anchor: "svc-test",
            step,
        }
    }

    fn lenient_policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 16,
            ..RetryPolicy::default()
        }
    }

    fn lenient_breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1_000,
            cooldown_calls: 4,
        })
    }

    #[test]
    fn zero_rate_is_bit_for_bit_the_bare_transformer() {
        let pool = YearPool::calibrated(2018, 1);
        let bare = Transformer::new(&pool);
        let svc = FaultyTransformer::new(&pool, FaultPlan::none(), RetryPolicy::default());
        let mut budget = RetryBudget::unlimited();
        let mut breaker = CircuitBreaker::default();
        for step in 1..=10 {
            let mut rng_a = Pcg64::seed_from(7, &["svc", &step.to_string()]);
            let mut rng_b = rng_a.clone();
            let expected = bare.transform(SRC, 0, &mut rng_a).unwrap();
            let mut trace = CallTrace::default();
            let got = svc
                .transform(
                    SRC,
                    0,
                    &mut rng_b,
                    &scope(step),
                    &mut budget,
                    &mut breaker,
                    &mut trace,
                )
                .unwrap();
            assert_eq!(got, expected);
            assert_eq!(trace.attempts, 1);
            assert_eq!(
                rng_a.next_u64(),
                rng_b.next_u64(),
                "streams stay in lockstep"
            );
        }
    }

    #[test]
    fn recovered_calls_are_invisible() {
        // Even at a 50% fault rate, every call that succeeds must
        // produce the exact fault-free output and RNG state.
        let pool = YearPool::calibrated(2018, 1);
        let bare = Transformer::new(&pool);
        let svc = FaultyTransformer::new(&pool, FaultPlan::new(11, 0.5), lenient_policy());
        let mut budget = RetryBudget::unlimited();
        let mut breaker = lenient_breaker();
        let mut saw_retry = false;
        for step in 1..=20 {
            let mut rng_a = Pcg64::seed_from(8, &["inv", &step.to_string()]);
            let mut rng_b = rng_a.clone();
            let expected = bare.transform(SRC, 0, &mut rng_a).unwrap();
            let mut trace = CallTrace::default();
            let got = svc
                .transform(
                    SRC,
                    0,
                    &mut rng_b,
                    &scope(step),
                    &mut budget,
                    &mut breaker,
                    &mut trace,
                )
                .unwrap();
            assert_eq!(got, expected, "step {step}");
            assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "step {step}");
            saw_retry |= trace.attempts > 1;
        }
        assert!(saw_retry, "a 50% rate must force at least one retry");
    }

    #[test]
    fn failed_calls_leave_the_rng_untouched() {
        let pool = YearPool::calibrated(2018, 1);
        let svc = FaultyTransformer::new(&pool, FaultPlan::new(3, 1.0), RetryPolicy::no_retries());
        let mut budget = RetryBudget::unlimited();
        let mut breaker = lenient_breaker();
        let mut rng = Pcg64::new(44);
        let entry = rng.clone();
        let mut trace = CallTrace::default();
        let err = svc
            .transform(
                SRC,
                0,
                &mut rng,
                &scope(1),
                &mut budget,
                &mut breaker,
                &mut trace,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            GptError::RetriesExhausted { attempts: 1, .. }
        ));
        assert_eq!(rng.next_u64(), entry.clone().next_u64(), "rng rolled back");
    }

    #[test]
    fn response_sabotage_is_always_caught() {
        // Rate 1.0, response faults only: every attempt is sabotaged
        // and every sabotage must be rejected by validation, so the
        // call exhausts retries rather than committing a bad sample.
        let pool = YearPool::calibrated(2019, 2);
        let plan = FaultPlan {
            seed: 13,
            rate: 1.0,
            weights: FaultWeights {
                timeout: 0.0,
                rate_limit: 0.0,
                transient: 0.0,
                truncated: 1.0,
                corrupted: 1.0,
            },
        };
        let svc = FaultyTransformer::new(&pool, plan, RetryPolicy::default());
        let mut budget = RetryBudget::unlimited();
        let mut breaker = lenient_breaker();
        for step in 1..=8 {
            let mut rng = Pcg64::seed_from(5, &["sab", &step.to_string()]);
            let mut trace = CallTrace::default();
            let err = svc
                .transform(
                    SRC,
                    1,
                    &mut rng,
                    &scope(step),
                    &mut budget,
                    &mut breaker,
                    &mut trace,
                )
                .unwrap_err();
            let GptError::RetriesExhausted { last, .. } = err else {
                panic!("expected exhaustion, got {err:?}");
            };
            assert!(
                matches!(*last, GptError::InvalidResponse { .. }),
                "sabotage must be caught by validation, got {last:?}"
            );
        }
    }

    #[test]
    fn budget_exhaustion_stops_retries() {
        let pool = YearPool::calibrated(2017, 1);
        let svc = FaultyTransformer::new(&pool, FaultPlan::new(2, 1.0), lenient_policy());
        let mut budget = RetryBudget::new(3);
        let mut breaker = lenient_breaker();
        let mut rng = Pcg64::new(6);
        let mut trace = CallTrace::default();
        let err = svc
            .transform(
                SRC,
                0,
                &mut rng,
                &scope(1),
                &mut budget,
                &mut breaker,
                &mut trace,
            )
            .unwrap_err();
        assert!(matches!(err, GptError::BudgetExhausted { .. }), "{err:?}");
        assert_eq!(budget.remaining(), 0);
        assert_eq!(trace.attempts, 4, "3 retries were bought by the budget");
        assert_eq!(trace.fault_tags.len(), 4);
    }

    #[test]
    fn open_breaker_rejects_without_spending_budget() {
        let pool = YearPool::calibrated(2017, 1);
        let svc = FaultyTransformer::new(&pool, FaultPlan::new(2, 1.0), RetryPolicy::no_retries());
        let mut budget = RetryBudget::new(100);
        let mut breaker = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            cooldown_calls: 3,
        });
        // Two failing calls trip the breaker...
        for step in 1..=2 {
            let mut rng = Pcg64::new(step as u64);
            let mut trace = CallTrace::default();
            let _ = svc.transform(
                SRC,
                0,
                &mut rng,
                &scope(step),
                &mut budget,
                &mut breaker,
                &mut trace,
            );
        }
        assert!(breaker.is_open());
        let before = budget.remaining();
        let mut rng = Pcg64::new(9);
        let mut trace = CallTrace::default();
        let err = svc
            .transform(
                SRC,
                0,
                &mut rng,
                &scope(3),
                &mut budget,
                &mut breaker,
                &mut trace,
            )
            .unwrap_err();
        assert!(matches!(err, GptError::CircuitOpen { .. }), "{err:?}");
        assert_eq!(budget.remaining(), before, "rejected calls cost nothing");
    }

    #[test]
    fn bad_input_fails_fast_without_retries() {
        let pool = YearPool::calibrated(2018, 1);
        let svc = FaultyTransformer::new(&pool, FaultPlan::new(1, 0.5), lenient_policy());
        let mut budget = RetryBudget::unlimited();
        let mut breaker = lenient_breaker();
        let mut rng = Pcg64::new(1);
        let mut trace = CallTrace::default();
        let err = svc
            .transform(
                "int main( {",
                0,
                &mut rng,
                &scope(1),
                &mut budget,
                &mut breaker,
                &mut trace,
            )
            .unwrap_err();
        assert!(matches!(err, GptError::Parse(_)), "{err:?}");
    }

    #[test]
    fn truncation_cuts_inside_the_body() {
        let mut params = Pcg64::new(3);
        let cut = truncate_response(SRC, &mut params);
        assert!(cut.len() < SRC.len());
        assert!(!cut.contains("return total"), "tail must be gone");
        assert!(
            synthattr_lang::parse(&cut).is_err(),
            "cut code must not parse"
        );
    }

    #[test]
    fn corruption_rewrites_the_last_return() {
        let mut hit_leak = false;
        let mut hit_const = false;
        for seed in 0..16 {
            let mut params = Pcg64::new(seed);
            let bad = corrupt_response(SRC, &mut params);
            hit_leak |= bad.contains("chaos_leak");
            hit_const |= bad.contains("424242");
        }
        assert!(hit_leak && hit_const, "both corruption flavours occur");
    }

    #[test]
    fn hard_break_sentinel_never_lexes() {
        assert!(synthattr_lang::parse("int main() { return 0; }\n@chaos@").is_err());
    }
}
