//! The deterministic fault plan.
//!
//! A [`FaultPlan`] decides, for every `(scope, attempt)` pair, whether
//! a fault fires and which kind — by hashing the coordinates into a
//! dedicated [`Pcg64`] stream that is **independent of the transform
//! RNG**. Two consequences, both load-bearing:
//!
//! 1. **Replayability.** A failure observed anywhere reproduces from
//!    `(plan seed, year, anchor, step, attempt)` alone — no global
//!    call counter, no shared mutable state, no dependence on worker
//!    scheduling.
//! 2. **Non-interference.** Injecting or removing faults never
//!    perturbs the transform randomness, which is what makes the
//!    recovered-run ≡ fault-free-run byte-identity provable rather
//!    than statistical.

use synthattr_util::Pcg64;

/// The kinds of fault the simulated service can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Call-level: the request exceeds its deadline. No response body.
    Timeout,
    /// Call-level: HTTP 429 load shedding. No response body.
    RateLimit,
    /// Call-level: transient 5xx / dropped connection. No response
    /// body.
    Transient,
    /// Response-level: the transform ran but its output is cut off
    /// mid-token (the classic max-tokens truncation).
    Truncated,
    /// Response-level: the transform ran but the output's behaviour
    /// was silently altered (the response validator must catch it).
    Corrupted,
}

impl FaultKind {
    /// Call-level faults abort before any response body exists;
    /// response-level faults sabotage an otherwise complete response.
    pub fn is_call_level(self) -> bool {
        matches!(
            self,
            FaultKind::Timeout | FaultKind::RateLimit | FaultKind::Transient
        )
    }

    /// Short lowercase tag for stats keys.
    pub fn tag(self) -> &'static str {
        match self {
            FaultKind::Timeout => "timeout",
            FaultKind::RateLimit => "rate-limit",
            FaultKind::Transient => "transient",
            FaultKind::Truncated => "truncated",
            FaultKind::Corrupted => "corrupted",
        }
    }
}

/// Relative mix of fault kinds, used as weights for a weighted draw.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultWeights {
    /// Weight of [`FaultKind::Timeout`].
    pub timeout: f64,
    /// Weight of [`FaultKind::RateLimit`].
    pub rate_limit: f64,
    /// Weight of [`FaultKind::Transient`].
    pub transient: f64,
    /// Weight of [`FaultKind::Truncated`].
    pub truncated: f64,
    /// Weight of [`FaultKind::Corrupted`].
    pub corrupted: f64,
}

impl Default for FaultWeights {
    /// A production-shaped mix: transport flakiness dominates,
    /// truncation is common, silent corruption is rare.
    fn default() -> Self {
        FaultWeights {
            timeout: 3.0,
            rate_limit: 2.0,
            transient: 2.0,
            truncated: 2.0,
            corrupted: 1.0,
        }
    }
}

impl FaultWeights {
    /// Only call-level (trivially retryable) faults.
    pub fn call_level_only() -> Self {
        FaultWeights {
            timeout: 1.0,
            rate_limit: 1.0,
            transient: 1.0,
            truncated: 0.0,
            corrupted: 0.0,
        }
    }

    fn as_array(&self) -> [f64; 5] {
        [
            self.timeout,
            self.rate_limit,
            self.transient,
            self.truncated,
            self.corrupted,
        ]
    }
}

const KINDS: [FaultKind; 5] = [
    FaultKind::Timeout,
    FaultKind::RateLimit,
    FaultKind::Transient,
    FaultKind::Truncated,
    FaultKind::Corrupted,
];

/// The deterministic coordinates of one logical service call.
///
/// `anchor` names the call stream (e.g. `"2018/ch3/+C"`), `step` the
/// position within it. Together with the plan seed and the attempt
/// number they fully determine the fault decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallScope<'a> {
    /// Experiment year (keys the per-year calibration).
    pub year: u32,
    /// Stable name of the call stream this call belongs to.
    pub anchor: &'a str,
    /// 1-based step index within the stream.
    pub step: usize,
}

impl CallScope<'_> {
    /// Derives the decision stream for one attempt of this call.
    pub fn stream(&self, seed: u64, label: &str, attempt: u32) -> Pcg64 {
        Pcg64::seed_from(
            seed,
            &[
                label,
                &self.year.to_string(),
                self.anchor,
                &self.step.to_string(),
                &attempt.to_string(),
            ],
        )
    }
}

/// A fault that fired, plus the tail of its decision stream for
/// drawing fault parameters (timeout duration, cut point, ...).
#[derive(Debug, Clone)]
pub struct InjectedFault {
    /// Which fault fired.
    pub kind: FaultKind,
    /// Parameter stream — continue drawing from here so parameters
    /// replay with the decision.
    pub params: Pcg64,
}

/// A seeded, rate-controlled fault injection plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Root seed of the fault universe (independent of the experiment
    /// seed, so the same experiment can replay under many plans).
    pub seed: u64,
    /// Per-attempt probability that a fault fires, in `[0, 1]`.
    pub rate: f64,
    /// Mix of fault kinds.
    pub weights: FaultWeights,
}

impl FaultPlan {
    /// A plan with the default production-shaped fault mix.
    pub fn new(seed: u64, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "fault rate must be a probability, got {rate}"
        );
        FaultPlan {
            seed,
            rate,
            weights: FaultWeights::default(),
        }
    }

    /// The zero-rate plan: never injects anything.
    pub fn none() -> Self {
        FaultPlan::new(0, 0.0)
    }

    /// Decides whether a fault fires for `attempt` of the call at
    /// `scope`. Pure: same inputs, same decision, forever.
    pub fn draw(&self, scope: &CallScope<'_>, attempt: u32) -> Option<InjectedFault> {
        if self.rate <= 0.0 {
            return None;
        }
        let mut rng = scope.stream(self.seed, "fault", attempt);
        if !rng.next_bool(self.rate) {
            return None;
        }
        let kind = KINDS[rng.choose_weighted(&self.weights.as_array())];
        Some(InjectedFault { kind, params: rng })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCOPE: CallScope<'static> = CallScope {
        year: 2018,
        anchor: "ch3/+C",
        step: 7,
    };

    #[test]
    fn zero_rate_never_fires() {
        let plan = FaultPlan::none();
        for step in 1..200 {
            let scope = CallScope { step, ..SCOPE };
            assert!(plan.draw(&scope, 1).is_none());
        }
    }

    #[test]
    fn full_rate_always_fires() {
        let plan = FaultPlan::new(9, 1.0);
        for attempt in 1..50 {
            assert!(plan.draw(&SCOPE, attempt).is_some());
        }
    }

    #[test]
    fn draws_are_reproducible_and_scope_sensitive() {
        let plan = FaultPlan::new(42, 0.5);
        let a = plan.draw(&SCOPE, 1).map(|f| f.kind);
        let b = plan.draw(&SCOPE, 1).map(|f| f.kind);
        assert_eq!(a, b, "same coordinates, same decision");

        // Different coordinates give independent decisions: over many
        // steps the firing pattern must not be constant.
        let fired: Vec<bool> = (1..=64)
            .map(|step| {
                let scope = CallScope { step, ..SCOPE };
                plan.draw(&scope, 1).is_some()
            })
            .collect();
        assert!(fired.iter().any(|&f| f) && fired.iter().any(|&f| !f));
    }

    #[test]
    fn attempts_are_independent_draws() {
        // At rate 0.5 some attempt of the same call must eventually be
        // fault-free — that's what makes retries effective.
        let plan = FaultPlan::new(7, 0.5);
        let outcomes: Vec<bool> = (1..=32).map(|a| plan.draw(&SCOPE, a).is_some()).collect();
        assert!(outcomes.iter().any(|&f| f) && outcomes.iter().any(|&f| !f));
    }

    #[test]
    fn observed_rate_tracks_configured_rate() {
        let plan = FaultPlan::new(3, 0.2);
        let n = 4000;
        let fired = (1..=n)
            .filter(|&step| {
                let scope = CallScope {
                    step,
                    year: 2017,
                    anchor: "rate-check",
                };
                plan.draw(&scope, 1).is_some()
            })
            .count();
        let observed = fired as f64 / n as f64;
        assert!(
            (observed - 0.2).abs() < 0.03,
            "observed {observed}, want ~0.2"
        );
    }

    #[test]
    fn weighted_mix_respects_zero_weights() {
        let plan = FaultPlan {
            seed: 5,
            rate: 1.0,
            weights: FaultWeights::call_level_only(),
        };
        for step in 1..200 {
            let scope = CallScope { step, ..SCOPE };
            let f = plan.draw(&scope, 1).expect("rate 1.0");
            assert!(f.kind.is_call_level(), "got {:?}", f.kind);
        }
    }
}
