//! [`FaultProfile`]: the one-struct configuration surface the core
//! pipeline carries in `ExperimentConfig.faults`.
//!
//! A profile bundles the fault plan, retry policy, breaker tuning,
//! pipeline retry budget and resample allowance, and knows how to
//! shard itself into deterministic per-stream contexts: the pipeline
//! runs one call stream per (challenge × setting) and each stream
//! gets its own [`StreamCx`] with an equal slice of the budget —
//! shared mutable state across worker threads would make the outcome
//! depend on scheduling, which this workspace never allows.

use crate::breaker::{BreakerConfig, CircuitBreaker};
use crate::drivers::StreamCx;
use crate::plan::{FaultPlan, FaultWeights};
use crate::retry::{RetryBudget, RetryPolicy};

/// Everything the pipeline needs to run under fault injection.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultProfile {
    /// Seed of the fault universe (independent of the experiment
    /// seed: the same experiment replays under many fault plans).
    pub seed: u64,
    /// Per-attempt fault probability.
    pub rate: f64,
    /// Fault-kind mix.
    pub weights: FaultWeights,
    /// Retry/backoff policy for every call.
    pub policy: RetryPolicy,
    /// Breaker tuning for every stream.
    pub breaker: BreakerConfig,
    /// Total retries the whole pipeline may spend, split evenly
    /// across streams. `u64::MAX` means unlimited.
    pub retry_budget: u64,
    /// NCT resample attempts per degraded step.
    pub resamples: u32,
}

impl FaultProfile {
    /// A profile tuned so that, at realistic rates (≤ ~25%), every
    /// fault recovers within policy: generous attempts, an effectively
    /// untrippable breaker, unlimited budget. Under this profile the
    /// pipeline's outputs are byte-identical to the fault-free run —
    /// the chaos suite's headline invariant.
    pub fn recoverable(seed: u64, rate: f64) -> Self {
        FaultProfile {
            seed,
            rate,
            weights: FaultWeights::default(),
            policy: RetryPolicy {
                max_attempts: 12,
                base_delay_ms: 50,
                multiplier: 2.0,
                max_delay_ms: 2_000,
                jitter: 0.25,
            },
            breaker: BreakerConfig {
                failure_threshold: 64,
                cooldown_calls: 16,
            },
            retry_budget: u64::MAX,
            resamples: 3,
        }
    }

    /// A hostile profile guaranteed to exceed recovery capacity: high
    /// rate, almost no retries, a hair-trigger breaker and a tiny
    /// budget. Exercises every degradation path.
    pub fn brutal(seed: u64) -> Self {
        FaultProfile {
            seed,
            rate: 0.45,
            weights: FaultWeights::default(),
            policy: RetryPolicy {
                max_attempts: 2,
                base_delay_ms: 50,
                multiplier: 2.0,
                max_delay_ms: 500,
                jitter: 0.25,
            },
            breaker: BreakerConfig {
                failure_threshold: 4,
                cooldown_calls: 8,
            },
            retry_budget: 64,
            resamples: 2,
        }
    }

    /// The fault plan this profile injects.
    pub fn plan(&self) -> FaultPlan {
        FaultPlan {
            seed: self.seed,
            rate: self.rate,
            weights: self.weights.clone(),
        }
    }

    /// A fresh per-stream context, with the pipeline budget split
    /// evenly over `n_streams` streams (each stream's slice is fixed
    /// up front, so the outcome cannot depend on which worker thread
    /// drains which stream first).
    pub fn stream_cx(&self, n_streams: usize) -> StreamCx {
        let budget = if self.retry_budget == u64::MAX {
            RetryBudget::unlimited()
        } else {
            RetryBudget::new(self.retry_budget / n_streams.max(1) as u64)
        };
        StreamCx {
            budget,
            breaker: CircuitBreaker::new(self.breaker.clone()),
            resamples: self.resamples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recoverable_profile_is_generous() {
        let p = FaultProfile::recoverable(1, 0.2);
        assert!(p.policy.max_attempts >= 8);
        assert_eq!(p.retry_budget, u64::MAX);
        let mut cx = p.stream_cx(56);
        for _ in 0..10_000 {
            assert!(cx.budget.try_spend(), "unlimited split stays unlimited");
        }
    }

    #[test]
    fn brutal_profile_splits_its_budget() {
        let p = FaultProfile::brutal(2);
        let mut cx = p.stream_cx(8);
        assert_eq!(cx.budget.remaining(), 8);
        for _ in 0..8 {
            assert!(cx.budget.try_spend());
        }
        assert!(!cx.budget.try_spend());
    }

    #[test]
    fn zero_streams_does_not_divide_by_zero() {
        let p = FaultProfile::brutal(3);
        assert_eq!(p.stream_cx(0).budget.remaining(), 64);
    }
}
