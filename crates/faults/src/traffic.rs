//! Seeded hostile-client traffic for chaos-at-the-socket tests.
//!
//! The fault [`plan`](crate::plan) sabotages the *service side* of the
//! simulated ChatGPT calls. This module models the other direction:
//! clients that misbehave at the transport layer — slow-loris header
//! writers, mid-request stallers, byte-at-a-time drippers, and clients
//! that vanish with a TCP reset. The serve crate's survivability
//! claims ("hostile connections hold sockets, never threads") are
//! proven against exactly these shapes.
//!
//! Scripts are **transport-free**: a [`HostileScript`] is a plain
//! sequence of [`SocketOp`]s, generated deterministically from
//! `(seed, kind, index)` on a dedicated [`Pcg64`] stream. The live-TCP
//! tests in `tests/serve_chaos.rs` replay them over real sockets; unit
//! tests here assert their shapes without any I/O. Same coordinates,
//! same bytes, forever — a chaos failure replays from its seed.

use std::io::Write;

use synthattr_util::Pcg64;

/// The archetypes of hostile client behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HostileKind {
    /// Sends the request line, then drips bogus headers forever-ish —
    /// the head never completes. Exercises the header progress
    /// deadline.
    SlowLoris,
    /// Sends a complete head with a `Content-Length`, part of the
    /// body, then goes silent. Exercises the body progress deadline.
    MidRequestStall,
    /// Sends a complete, valid request — but in tiny chunks with short
    /// pauses. A *legitimate* slow client: the server must serve it,
    /// not cut it.
    ByteDripper,
    /// Sends a partial request, then resets the connection. Exercises
    /// mid-parse error paths (`ECONNRESET` must never panic a worker).
    AbruptReset,
}

impl HostileKind {
    /// All kinds, for coverage sweeps.
    pub const ALL: [HostileKind; 4] = [
        HostileKind::SlowLoris,
        HostileKind::MidRequestStall,
        HostileKind::ByteDripper,
        HostileKind::AbruptReset,
    ];

    /// Short lowercase tag for stats keys and RNG coordinates.
    pub fn tag(self) -> &'static str {
        match self {
            HostileKind::SlowLoris => "slow-loris",
            HostileKind::MidRequestStall => "mid-request-stall",
            HostileKind::ByteDripper => "byte-dripper",
            HostileKind::AbruptReset => "abrupt-reset",
        }
    }
}

/// One primitive action a hostile client performs on its socket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SocketOp {
    /// Write these bytes.
    Send(Vec<u8>),
    /// Sleep this long, keeping the connection open and silent.
    PauseMs(u64),
    /// Abort the connection (the executor should drop it with a TCP
    /// RST — `SO_LINGER 0` — not a graceful FIN).
    Reset,
}

/// How a script's playback ended, so socket executors know whether to
/// close gracefully or slam the connection shut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScriptEnd {
    /// All ops ran; close (or keep reading) normally.
    Done,
    /// Playback hit [`SocketOp::Reset`]: abort with a TCP RST.
    Reset,
}

/// A deterministic sequence of socket operations for one hostile
/// connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostileScript {
    /// The behaviour archetype this script realizes.
    pub kind: HostileKind,
    /// The ops, in playback order.
    pub ops: Vec<SocketOp>,
}

impl HostileScript {
    /// Every byte the script would send, concatenated (what the server
    /// eventually observes, pauses elided).
    pub fn sent_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for op in &self.ops {
            match op {
                SocketOp::Send(bytes) => out.extend_from_slice(bytes),
                SocketOp::Reset => break,
                SocketOp::PauseMs(_) => {}
            }
        }
        out
    }

    /// Total scripted pause time — how long the connection stays open
    /// and (mostly) silent if the server never cuts it.
    pub fn total_pause_ms(&self) -> u64 {
        self.ops
            .iter()
            .map_while(|op| match op {
                SocketOp::PauseMs(ms) => Some(*ms),
                SocketOp::Send(_) => Some(0),
                SocketOp::Reset => None,
            })
            .sum()
    }

    /// Replays the script against any byte sink, delegating pauses to
    /// the caller (pass a `std::thread::sleep` wrapper for live
    /// sockets, a recording closure for tests).
    ///
    /// Stops at the first [`SocketOp::Reset`] and reports it via
    /// [`ScriptEnd::Reset`] — the RST itself is transport-specific and
    /// stays the caller's job.
    ///
    /// # Errors
    ///
    /// Write errors from the sink. A server that cuts the connection
    /// mid-script surfaces here as `BrokenPipe`/`ConnectionReset`,
    /// which chaos tests treat as the expected outcome for hostile
    /// kinds.
    pub fn play<W: Write>(
        &self,
        sink: &mut W,
        mut pause: impl FnMut(u64),
    ) -> std::io::Result<ScriptEnd> {
        for op in &self.ops {
            match op {
                SocketOp::Send(bytes) => {
                    sink.write_all(bytes)?;
                    sink.flush()?;
                }
                SocketOp::PauseMs(ms) => pause(*ms),
                SocketOp::Reset => return Ok(ScriptEnd::Reset),
            }
        }
        Ok(ScriptEnd::Done)
    }
}

/// A seeded generator of hostile connection scripts.
///
/// The timing knobs are public so chaos tests can scale pauses to the
/// server deadlines under test (e.g. a dripper that must *survive* a
/// 2 s header deadline needs its total drip time under 2 s).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficProfile {
    /// Root seed; scripts derive from `(seed, kind, index)`.
    pub seed: u64,
    /// Pause between slow-loris header fragments.
    pub loris_pause_ms: u64,
    /// Bogus header lines a slow-loris emits before its script ends
    /// (each preceded by a pause; the head never completes).
    pub loris_headers: usize,
    /// How long a mid-request staller stays silent after its partial
    /// body.
    pub stall_ms: u64,
    /// Pause between dripper chunks.
    pub drip_pause_ms: u64,
    /// Largest dripper chunk (chunk sizes jitter in `1..=max`).
    pub drip_chunk_max: usize,
}

impl TrafficProfile {
    /// A profile with hostile-by-default timings: loris/staller pauses
    /// far beyond any sane progress deadline, dripper chunks small and
    /// quick enough to finish under one.
    pub fn new(seed: u64) -> Self {
        TrafficProfile {
            seed,
            loris_pause_ms: 500,
            loris_headers: 64,
            stall_ms: 10_000,
            drip_pause_ms: 2,
            drip_chunk_max: 3,
        }
    }

    fn rng(&self, kind: HostileKind, index: usize) -> Pcg64 {
        Pcg64::seed_from(self.seed, &["traffic", kind.tag(), &index.to_string()])
    }

    /// The script for hostile connection `index` of the given kind,
    /// attacking (or slowly delivering) `request` — a full, valid
    /// request as the workload's legitimate clients would send it.
    ///
    /// Pure: same `(profile, kind, index, request)`, same script.
    pub fn script(&self, kind: HostileKind, index: usize, request: &[u8]) -> HostileScript {
        let mut rng = self.rng(kind, index);
        let head_end = find_head_end(request);
        let ops = match kind {
            HostileKind::SlowLoris => self.loris_ops(&mut rng, request),
            HostileKind::MidRequestStall => self.stall_ops(&mut rng, request, head_end),
            HostileKind::ByteDripper => self.drip_ops(&mut rng, request),
            HostileKind::AbruptReset => self.reset_ops(&mut rng, request),
        };
        HostileScript { kind, ops }
    }

    /// A mixed fleet of `n` hostile connections: kinds drawn from a
    /// weighted mix (loris-heavy, like real abuse traffic), scripts
    /// indexed so every connection is independently replayable.
    pub fn fleet(&self, n: usize, request: &[u8]) -> Vec<HostileScript> {
        let mut rng = Pcg64::seed_from(self.seed, &["traffic", "fleet"]);
        (0..n)
            .map(|index| {
                let kind = HostileKind::ALL[rng.choose_weighted(&[4.0, 2.0, 2.0, 1.0])];
                self.script(kind, index, request)
            })
            .collect()
    }

    /// Request line + one bogus header fragment at a time, paused,
    /// never the terminating blank line.
    fn loris_ops(&self, rng: &mut Pcg64, request: &[u8]) -> Vec<SocketOp> {
        let line_end = request
            .windows(2)
            .position(|w| w == b"\r\n")
            .map_or(request.len(), |p| p + 2);
        let mut ops = vec![SocketOp::Send(request[..line_end].to_vec())];
        for i in 0..self.loris_headers {
            ops.push(SocketOp::PauseMs(self.jitter(rng, self.loris_pause_ms)));
            let header = format!("X-Loris-{i}: {:016x}\r\n", rng.next_u64());
            ops.push(SocketOp::Send(header.into_bytes()));
        }
        ops
    }

    /// The complete head, a strict prefix of the body (or of the head
    /// when there is no body), then silence.
    fn stall_ops(&self, rng: &mut Pcg64, request: &[u8], head_end: usize) -> Vec<SocketOp> {
        let body = &request[head_end..];
        let ops = if body.is_empty() {
            // Bodyless request: stall two bytes short of the head's
            // terminating blank line instead.
            vec![SocketOp::Send(request[..head_end - 2].to_vec())]
        } else {
            let cut = 1 + rng.next_below(body.len().max(1));
            let cut = cut.min(body.len() - 1).max(1).min(body.len());
            vec![
                SocketOp::Send(request[..head_end].to_vec()),
                SocketOp::PauseMs(self.jitter(rng, self.drip_pause_ms)),
                SocketOp::Send(body[..cut].to_vec()),
            ]
        };
        let mut ops = ops;
        ops.push(SocketOp::PauseMs(self.stall_ms));
        ops
    }

    /// The full request, honestly delivered — in jittered 1..=max byte
    /// chunks with short pauses.
    fn drip_ops(&self, rng: &mut Pcg64, request: &[u8]) -> Vec<SocketOp> {
        let mut ops = Vec::new();
        let mut at = 0;
        while at < request.len() {
            let take = (1 + rng.next_below(self.drip_chunk_max.max(1))).min(request.len() - at);
            ops.push(SocketOp::Send(request[at..at + take].to_vec()));
            at += take;
            if at < request.len() {
                ops.push(SocketOp::PauseMs(self.drip_pause_ms));
            }
        }
        ops
    }

    /// A nonempty strict prefix, a beat, then a hard reset.
    fn reset_ops(&self, rng: &mut Pcg64, request: &[u8]) -> Vec<SocketOp> {
        let cut = 1 + rng.next_below(request.len().saturating_sub(1).max(1));
        vec![
            SocketOp::Send(request[..cut.min(request.len() - 1)].to_vec()),
            SocketOp::PauseMs(self.jitter(rng, self.drip_pause_ms)),
            SocketOp::Reset,
        ]
    }

    /// ±25% deterministic jitter so fleets don't move in lockstep.
    fn jitter(&self, rng: &mut Pcg64, base_ms: u64) -> u64 {
        let base = base_ms.max(1) as i64;
        (base + rng.next_range(-(base / 4), base / 4 + 1)).max(1) as u64
    }
}

/// Byte offset one past the head's `\r\n\r\n` terminator (i.e. the
/// body start), or `len` when the request has no complete head.
fn find_head_end(request: &[u8]) -> usize {
    request
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map_or(request.len(), |p| p + 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    const REQUEST: &[u8] =
        b"POST /attribute?year=2018 HTTP/1.1\r\nHost: synthattr\r\nContent-Length: 11\r\n\r\nint main(){";

    #[test]
    fn scripts_are_deterministic_and_index_sensitive() {
        let profile = TrafficProfile::new(7);
        for kind in HostileKind::ALL {
            let a = profile.script(kind, 3, REQUEST);
            let b = profile.script(kind, 3, REQUEST);
            assert_eq!(a, b, "{kind:?}: same coordinates, same script");
            let c = profile.script(kind, 4, REQUEST);
            assert_ne!(a.ops, c.ops, "{kind:?}: different index, different script");
        }
    }

    #[test]
    fn slow_loris_never_completes_its_head() {
        let profile = TrafficProfile::new(11);
        let script = profile.script(HostileKind::SlowLoris, 0, REQUEST);
        let sent = script.sent_bytes();
        assert!(
            !sent.windows(4).any(|w| w == b"\r\n\r\n"),
            "a loris head must never terminate"
        );
        assert!(sent.starts_with(b"POST /attribute?year=2018 HTTP/1.1\r\n"));
        assert!(
            script.total_pause_ms() >= profile.loris_pause_ms,
            "a loris must hold the connection across pauses"
        );
    }

    #[test]
    fn mid_request_stall_sends_the_head_but_not_the_body() {
        let profile = TrafficProfile::new(13);
        let script = profile.script(HostileKind::MidRequestStall, 2, REQUEST);
        let sent = script.sent_bytes();
        assert!(sent.windows(4).any(|w| w == b"\r\n\r\n"), "head completes");
        assert!(sent.len() < REQUEST.len(), "body must stay incomplete");
        assert!(
            matches!(script.ops.last(), Some(SocketOp::PauseMs(ms)) if *ms == profile.stall_ms),
            "a staller ends in silence, not a close"
        );
    }

    #[test]
    fn byte_dripper_delivers_the_exact_request() {
        let profile = TrafficProfile::new(17);
        let script = profile.script(HostileKind::ByteDripper, 5, REQUEST);
        assert_eq!(script.sent_bytes(), REQUEST, "a dripper is slow, not wrong");
        assert!(
            script
                .ops
                .iter()
                .all(|op| !matches!(op, SocketOp::Send(b) if b.len() > profile.drip_chunk_max)),
            "chunks respect drip_chunk_max"
        );
    }

    #[test]
    fn abrupt_reset_sends_a_strict_prefix_then_resets() {
        let profile = TrafficProfile::new(19);
        let script = profile.script(HostileKind::AbruptReset, 1, REQUEST);
        assert_eq!(script.ops.last(), Some(&SocketOp::Reset));
        let sent = script.sent_bytes();
        assert!(!sent.is_empty() && sent.len() < REQUEST.len());
        assert!(REQUEST.starts_with(&sent));
    }

    #[test]
    fn fleet_is_deterministic_and_covers_every_kind() {
        let profile = TrafficProfile::new(23);
        let fleet = profile.fleet(64, REQUEST);
        assert_eq!(fleet.len(), 64);
        assert_eq!(fleet, profile.fleet(64, REQUEST));
        for kind in HostileKind::ALL {
            assert!(
                fleet.iter().any(|s| s.kind == kind),
                "a 64-strong fleet should include {kind:?}"
            );
        }
    }

    #[test]
    fn play_records_ops_and_reports_the_ending() {
        let profile = TrafficProfile::new(29);
        let script = profile.script(HostileKind::AbruptReset, 0, REQUEST);
        let mut sink = Vec::new();
        let mut paused = 0u64;
        let end = script.play(&mut sink, |ms| paused += ms).unwrap();
        assert_eq!(end, ScriptEnd::Reset);
        assert_eq!(sink, script.sent_bytes());
        assert!(paused > 0, "the pre-reset beat must be delegated");

        let dripper = profile.script(HostileKind::ByteDripper, 0, REQUEST);
        let mut sink = Vec::new();
        let end = dripper.play(&mut sink, |_| {}).unwrap();
        assert_eq!(end, ScriptEnd::Done);
        assert_eq!(sink, REQUEST);
    }
}
