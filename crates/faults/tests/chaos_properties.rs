//! The chaos property suite (ISSUE 4's headline invariant).
//!
//! Sweeps fault rates {0%, 5%, 20%} across every calibrated pool
//! (3 years × 3 pool seeds) and both protocols (NCT, CT), asserting:
//!
//! 1. **Invisible retries** — under the recoverable profile, the
//!    resilient run's sample vector is *byte-identical* to the
//!    fault-free driver's, at every rate in the sweep.
//! 2. **Graceful exhaustion** — under the brutal profile the run
//!    still completes with `n` samples, losses show up as
//!    `Degraded`/`Failed` outcomes (never a panic), and the whole
//!    degraded trajectory is deterministic.
//!
//! Driven by the in-repo property harness (`synthattr_util::prop`).

use synthattr_faults::drivers::{run_ct_resilient, run_nct_resilient};
use synthattr_faults::{FaultProfile, FaultyTransformer, Outcome};
use synthattr_gen::challenges::ChallengeId;
use synthattr_gen::corpus::{solution_in_style, Origin};
use synthattr_gen::style::AuthorStyle;
use synthattr_gpt::{try_run_ct, try_run_nct, Transformer, YearPool};
use synthattr_util::prop::Runner;
use synthattr_util::{prop_assert, prop_assert_eq, Pcg64};

const YEARS: [u32; 3] = [2017, 2018, 2019];
const POOL_SEEDS: [u64; 3] = [1, 2, 3];
const RATES: [f64; 3] = [0.0, 0.05, 0.20];
const STEPS: usize = 10;

fn seed_code(seed: u64) -> String {
    let mut rng = Pcg64::new(seed);
    let style = AuthorStyle::sample(&mut rng);
    solution_in_style(ChallengeId::SumSeries, &style, seed, &["chaos-seed"])
}

fn service<'a>(pool: &'a YearPool, profile: &FaultProfile) -> FaultyTransformer<'a> {
    FaultyTransformer::new(pool, profile.plan(), profile.policy.clone())
}

/// The headline invariant: at every swept rate, with the recoverable
/// profile, resilient NCT and CT runs are byte-identical to their
/// fault-free counterparts across all nine calibrated pools.
#[test]
fn recoverable_faults_are_byte_invisible_across_the_sweep() {
    let mut recovered_total = 0u64;
    for year in YEARS {
        for pool_seed in POOL_SEEDS {
            let pool = YearPool::calibrated(year, pool_seed);
            let bare = Transformer::new(&pool);
            let seed = seed_code(year as u64 * 100 + pool_seed);
            for rate in RATES {
                let profile = FaultProfile::recoverable(911, rate);
                let svc = service(&pool, &profile);
                let anchor = format!("{year}/p{pool_seed}");

                let rng_seed = year as u64 + pool_seed * 7 + (rate * 100.0) as u64;
                let plain = try_run_nct(
                    &bare,
                    &seed,
                    STEPS,
                    Origin::ChatGpt,
                    &mut Pcg64::new(rng_seed),
                )
                .unwrap();
                let run = run_nct_resilient(
                    &svc,
                    &seed,
                    STEPS,
                    Origin::ChatGpt,
                    &mut Pcg64::new(rng_seed),
                    &anchor,
                    &mut profile.stream_cx(1),
                )
                .unwrap();
                assert_eq!(
                    run.samples, plain,
                    "NCT year={year} pool={pool_seed} rate={rate}"
                );
                assert!(
                    run.outcomes.iter().all(|o| o.is_faithful()),
                    "NCT year={year} pool={pool_seed} rate={rate}: {:?}",
                    run.stats
                );
                recovered_total += run.stats.recovered;

                let plain = try_run_ct(
                    &bare,
                    &seed,
                    STEPS,
                    Origin::ChatGpt,
                    &mut Pcg64::new(rng_seed + 1),
                )
                .unwrap();
                let run = run_ct_resilient(
                    &svc,
                    &seed,
                    STEPS,
                    Origin::ChatGpt,
                    &mut Pcg64::new(rng_seed + 1),
                    &anchor,
                    &mut profile.stream_cx(1),
                )
                .unwrap();
                assert_eq!(
                    run.samples, plain,
                    "CT year={year} pool={pool_seed} rate={rate}"
                );
                assert!(
                    run.outcomes.iter().all(|o| o.is_faithful()),
                    "CT year={year} pool={pool_seed} rate={rate}: {:?}",
                    run.stats
                );
                recovered_total += run.stats.recovered;
            }
        }
    }
    assert!(
        recovered_total > 0,
        "the 5% and 20% legs must actually exercise recovery"
    );
}

/// Zero-rate resilient runs spend zero overhead: no retries, no
/// backoff, no faults, unit fidelity.
#[test]
fn zero_rate_runs_are_free() {
    for year in YEARS {
        let pool = YearPool::calibrated(year, 1);
        let profile = FaultProfile::recoverable(1, 0.0);
        let svc = service(&pool, &profile);
        let seed = seed_code(year as u64);
        let run = run_nct_resilient(
            &svc,
            &seed,
            STEPS,
            Origin::ChatGpt,
            &mut Pcg64::new(2),
            "free",
            &mut profile.stream_cx(1),
        )
        .unwrap();
        assert_eq!(run.stats.retries, 0);
        assert_eq!(run.stats.backoff_ms, 0);
        assert!(run.stats.faults_by_tag.is_empty());
        assert_eq!(run.stats.fidelity(), 1.0);
    }
}

/// Budget exhaustion degrades instead of panicking: under the brutal
/// profile every pool completes all steps, losses are visible in the
/// stats, and the whole trajectory replays identically.
#[test]
fn brutal_faults_degrade_gracefully_and_deterministically() {
    let mut lossy_runs = 0u32;
    for year in YEARS {
        for pool_seed in POOL_SEEDS {
            let pool = YearPool::calibrated(year, pool_seed);
            let profile = FaultProfile::brutal(666);
            let svc = service(&pool, &profile);
            let seed = seed_code(year as u64 * 10 + pool_seed);
            let anchor = format!("brutal/{year}/p{pool_seed}");
            let go = |mode: &str| {
                let mut cx = profile.stream_cx(4);
                let rng = &mut Pcg64::new(13);
                match mode {
                    "nct" => run_nct_resilient(
                        &svc,
                        &seed,
                        STEPS,
                        Origin::ChatGpt,
                        rng,
                        &anchor,
                        &mut cx,
                    ),
                    _ => {
                        run_ct_resilient(&svc, &seed, STEPS, Origin::ChatGpt, rng, &anchor, &mut cx)
                    }
                }
                .unwrap()
            };
            for mode in ["nct", "ct"] {
                let run = go(mode);
                assert_eq!(run.samples.len(), STEPS, "{anchor}/{mode} completes");
                assert_eq!(run.outcomes.len(), STEPS);
                assert_eq!(
                    run.stats.clean + run.stats.recovered + run.stats.degraded + run.stats.failed,
                    STEPS as u64,
                    "{anchor}/{mode}: every step is accounted"
                );
                if run.stats.degraded + run.stats.failed > 0 {
                    lossy_runs += 1;
                }
                assert_eq!(run, go(mode), "{anchor}/{mode} replays identically");
            }
        }
    }
    assert!(
        lossy_runs > 0,
        "a 45% rate with 2 attempts must exceed recovery somewhere"
    );
}

/// Property-sampled variant of the invariant: arbitrary seeds, years,
/// challenges and rates — recovered runs never drift by a byte.
#[test]
fn invisible_retry_invariant_holds_for_sampled_universes() {
    Runner::new("invisible_retry_invariant").cases(16).run(
        |rng| {
            (
                rng.next_below(3),
                1 + rng.next_below(5) as u64,
                rng.next_below(10_000) as u64,
                rng.next_below(3),
                rng.next_below(ChallengeId::all().len()),
            )
        },
        |&(year_idx, pool_seed, rng_seed, rate_idx, ch_idx)| {
            let year = YEARS[year_idx];
            let rate = RATES[rate_idx];
            let pool = YearPool::calibrated(year, pool_seed);
            let bare = Transformer::new(&pool);
            let profile = FaultProfile::recoverable(rng_seed ^ 0xD15EA5E, rate);
            let svc = service(&pool, &profile);
            let mut style_rng = Pcg64::new(rng_seed);
            let style = AuthorStyle::sample(&mut style_rng);
            let all = ChallengeId::all();
            let seed = solution_in_style(all[ch_idx], &style, rng_seed, &["prop-seed"]);

            let plain = try_run_nct(&bare, &seed, 6, Origin::ChatGpt, &mut Pcg64::new(rng_seed))
                .expect("generated seed transforms");
            let run = run_nct_resilient(
                &svc,
                &seed,
                6,
                Origin::ChatGpt,
                &mut Pcg64::new(rng_seed),
                "prop",
                &mut profile.stream_cx(1),
            )
            .expect("resilient run completes");
            prop_assert_eq!(run.samples.len(), plain.len());
            for (a, b) in run.samples.iter().zip(&plain) {
                prop_assert_eq!(&a.source, &b.source);
            }
            prop_assert!(run.outcomes.iter().all(|o| o.is_faithful()));
            prop_assert!(run
                .outcomes
                .iter()
                .all(|o| !matches!(o, Outcome::Degraded { .. })));
            Ok(())
        },
    );
}
