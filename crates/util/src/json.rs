//! JSON string escaping, shared by every hand-rolled JSON writer in
//! the workspace (the serve responses and the bench harness both emit
//! JSON without serde).
//!
//! One escaping routine means one definition of the control surface:
//! the writers can't drift apart on which characters get `\uXXXX`
//! treatment, and the golden test here covers them all at once.

/// Appends `s` to `out` as a quoted JSON string literal.
///
/// Escapes quotes, backslashes, and all control characters below
/// 0x20 (named escapes for `\n`, `\r`, `\t`; `\u00XX` for the rest).
/// Writes directly into `out` — no intermediate allocations, runs of
/// plain characters are copied as whole slices.
pub fn escape_into(out: &mut String, s: &str) {
    out.reserve(s.len() + 2);
    out.push('"');
    let mut plain_from = 0;
    for (i, c) in s.char_indices() {
        let escape: Option<&str> = match c {
            '"' => Some("\\\""),
            '\\' => Some("\\\\"),
            '\n' => Some("\\n"),
            '\r' => Some("\\r"),
            '\t' => Some("\\t"),
            c if (c as u32) < 0x20 => None, // \u00XX below
            _ => continue,
        };
        out.push_str(&s[plain_from..i]);
        plain_from = i + c.len_utf8();
        match escape {
            Some(esc) => out.push_str(esc),
            None => {
                const HEX: &[u8; 16] = b"0123456789abcdef";
                let code = c as u32;
                out.push_str("\\u00");
                out.push(HEX[(code >> 4) as usize] as char);
                out.push(HEX[(code & 0xf) as usize] as char);
            }
        }
    }
    out.push_str(&s[plain_from..]);
    out.push('"');
}

/// Escapes and quotes `s` as a fresh JSON string literal.
pub fn escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_into(&mut out, s);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The golden cases both downstream writers used to assert
    /// independently, now checked once at the source.
    #[test]
    fn golden_escapes() {
        for (input, want) in [
            ("", r#""""#),
            ("plain", r#""plain""#),
            ("a\"b\\c", r#""a\"b\\c""#),
            ("a\"b\\c\nd", r#""a\"b\\c\nd""#),
            ("line\nbreak\ttab", r#""line\nbreak\ttab""#),
            ("\r", r#""\r""#),
            ("\u{1}", r#""\u0001""#),
            ("\u{1f}", r#""\u001f""#),
            ("mixé → 🦀", "\"mixé → 🦀\""),
            ("\u{7f}", "\"\u{7f}\""), // DEL is not a JSON control char
        ] {
            assert_eq!(escaped(input), want, "input {input:?}");
        }
    }

    #[test]
    fn escape_into_appends_without_clobbering() {
        let mut out = String::from("{\"k\":");
        escape_into(&mut out, "v\n");
        assert_eq!(out, "{\"k\":\"v\\n\"");
    }

    /// Output must be parseable back: every raw control char is gone.
    #[test]
    fn no_raw_control_chars_survive() {
        let input: String = (0u32..0x20).map(|c| char::from_u32(c).unwrap()).collect();
        let out = escaped(&input);
        assert!(out.chars().all(|c| (c as u32) >= 0x20), "{out:?}");
    }
}
