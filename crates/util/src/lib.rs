//! Shared utilities for the `synthattr` workspace.
//!
//! This crate deliberately has **no dependencies at all**: every other
//! crate in the workspace builds on it, the reproduction environment
//! is fully offline (no crate registry), and full experiment
//! reproducibility requires that randomness, statistics, and report
//! formatting behave identically on every platform.
//!
//! # Contents
//!
//! * [`rng`] — a deterministic, seedable PRNG ([`rng::Pcg64`]) plus
//!   hierarchical seed derivation so that independent experiment arms
//!   never share random streams.
//! * [`pool`] — a scoped, order-preserving parallel map used by
//!   forest training and the experiment pipelines; worker count is
//!   overridable via config or `SYNTHATTR_WORKERS` and never affects
//!   results.
//! * [`prop`] — the in-repo property-testing harness (seeded
//!   generators, shrinking, `prop_assert!` macros) that replaces
//!   `proptest`.
//! * [`stats`] — small-sample statistics used throughout the
//!   evaluation pipeline (mean, variance, entropy, histograms).
//! * [`table`] — fixed-width ASCII table rendering used by the
//!   experiment drivers to print paper-style tables.
//!
//! # Example
//!
//! ```
//! use synthattr_util::rng::Pcg64;
//!
//! let mut rng = Pcg64::seed_from(0xFEED, &["experiment", "fold-3"]);
//! let x = rng.next_f64();
//! assert!((0.0..1.0).contains(&x));
//! ```

pub mod json;
pub mod pool;
pub mod prop;
pub mod rng;
pub mod stats;
pub mod table;

pub use rng::Pcg64;
pub use stats::{mean, population_variance, shannon_entropy, std_dev};
pub use table::Table;
