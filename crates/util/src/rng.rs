//! Deterministic random number generation.
//!
//! Every stochastic component in the workspace (corpus generation, the
//! LLM simulator, forest bootstrapping, fold shuffling) draws from
//! [`Pcg64`], a from-scratch implementation of the PCG-XSL-RR 128/64
//! generator. We implement it ourselves rather than depending on an
//! external crate so that experiment outputs are stable across
//! dependency upgrades — reproducing a table a year from now must give
//! byte-identical output.
//!
//! Seeds are derived *hierarchically* with [`Pcg64::seed_from`]: a root
//! seed plus a path of string labels (e.g. `["gcj2018", "author", "17"]`)
//! yields an independent stream, so adding a new experiment arm never
//! perturbs the randomness of existing arms.

/// Multiplier for the 128-bit PCG LCG step (from the PCG reference
/// implementation).
const PCG_MUL: u128 = 0x2360_ED05_1FC6_5DA4_4385_DF64_9FCC_F645;

/// Default increment; any odd value yields a full-period generator.
const PCG_INC: u128 = 0x5851_F42D_4C95_7F2D_1405_7B7E_F767_814F;

/// A deterministic PCG-XSL-RR 128/64 pseudo-random generator.
///
/// The generator is `Clone` (cloning forks the exact stream state) and
/// fully deterministic given its seed. It is **not** cryptographically
/// secure; it exists to drive simulations.
///
/// # Example
///
/// ```
/// use synthattr_util::rng::Pcg64;
///
/// let mut a = Pcg64::new(42);
/// let mut b = Pcg64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg64 {
    state: u128,
}

impl Pcg64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        // Standard PCG seeding: run the LCG once over the seed so that
        // small seeds do not produce correlated early output.
        let mut rng = Pcg64 {
            state: (seed as u128).wrapping_add(PCG_INC),
        };
        rng.step();
        rng
    }

    /// Derives an independent stream from a root seed and a label path.
    ///
    /// The derivation is an FNV-1a style fold over the labels, so
    /// `seed_from(s, &["a", "b"])` and `seed_from(s, &["ab"])` differ.
    ///
    /// # Example
    ///
    /// ```
    /// use synthattr_util::rng::Pcg64;
    /// let mut x = Pcg64::seed_from(7, &["corpus", "2017"]);
    /// let mut y = Pcg64::seed_from(7, &["corpus", "2018"]);
    /// assert_ne!(x.next_u64(), y.next_u64());
    /// ```
    pub fn seed_from(root: u64, path: &[&str]) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ root;
        for label in path {
            // Separator byte keeps ["a","b"] distinct from ["ab"].
            h = fnv1a_step(h, &[0x1f]);
            h = fnv1a_step(h, label.as_bytes());
        }
        Pcg64::new(h)
    }

    /// Derives a child generator labelled by `path`, leaving `self`
    /// untouched. Useful for handing independent streams to parallel
    /// workers.
    pub fn fork(&self, path: &[&str]) -> Self {
        let mut h = (self.state >> 64) as u64 ^ self.state as u64;
        for label in path {
            h = fnv1a_step(h, &[0x1f]);
            h = fnv1a_step(h, label.as_bytes());
        }
        Pcg64::new(h)
    }

    #[inline]
    fn step(&mut self) {
        self.state = self.state.wrapping_mul(PCG_MUL).wrapping_add(PCG_INC);
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.step();
        let xored = ((self.state >> 64) as u64) ^ (self.state as u64);
        let rot = (self.state >> 122) as u32;
        xored.rotate_right(rot)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 bits of mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "next_below bound must be positive");
        // Lemire-style rejection-free-enough reduction; bias is
        // negligible (< 2^-53) for the bounds used in this workspace,
        // but we keep the widening multiply for uniformity anyway.
        let b = bound as u64;
        let mut m = (self.next_u64() as u128).wrapping_mul(b as u128);
        let mut lo = m as u64;
        if lo < b {
            let threshold = b.wrapping_neg() % b;
            while lo < threshold {
                m = (self.next_u64() as u128).wrapping_mul(b as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as usize
    }

    /// Returns a uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn next_range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "next_range requires lo <= hi");
        let span = (hi - lo) as u64 as usize + 1;
        lo + self.next_below(span) as i64
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Chooses a uniformly random element of `items`.
    ///
    /// Returns `None` when `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.next_below(items.len())])
        }
    }

    /// Samples an index according to the (unnormalized, non-negative)
    /// weight vector.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to a non-positive value.
    pub fn choose_weighted(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "choose_weighted needs weights");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "choose_weighted needs positive total weight");
        let mut target = self.next_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            target -= w;
            if target < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffles `items` in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `0..n` (k ≤ n) in random order.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct items from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        // Partial Fisher–Yates: only the first k positions are needed.
        for i in 0..k {
            let j = i + self.next_below(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Draws from a normal distribution via the Box–Muller transform.
    pub fn next_gaussian(&mut self, mean: f64, std_dev: f64) -> f64 {
        // Avoid ln(0).
        let u1 = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        let mag = (-2.0 * u1.ln()).sqrt();
        mean + std_dev * mag * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[inline]
fn fnv1a_step(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Pcg64::new(123);
        let mut b = Pcg64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Pcg64::new(1);
        let mut b = Pcg64::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should be effectively independent");
    }

    #[test]
    fn seed_path_separation() {
        let mut ab = Pcg64::seed_from(9, &["a", "b"]);
        let mut a_b = Pcg64::seed_from(9, &["ab"]);
        assert_ne!(ab.next_u64(), a_b.next_u64());
    }

    #[test]
    fn fork_is_stable_and_independent() {
        let root = Pcg64::new(5);
        let mut c1 = root.fork(&["x"]);
        let mut c2 = root.fork(&["x"]);
        let mut c3 = root.fork(&["y"]);
        assert_eq!(c1.next_u64(), c2.next_u64());
        assert_ne!(c1.next_u64(), c3.next_u64());
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Pcg64::new(77);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_bounds_and_coverage() {
        let mut rng = Pcg64::new(3);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.next_below(7)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn next_range_inclusive() {
        let mut rng = Pcg64::new(8);
        let mut hit_lo = false;
        let mut hit_hi = false;
        for _ in 0..2_000 {
            let v = rng.next_range(-3, 3);
            assert!((-3..=3).contains(&v));
            hit_lo |= v == -3;
            hit_hi |= v == 3;
        }
        assert!(hit_lo && hit_hi);
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        Pcg64::new(0).next_below(0);
    }

    #[test]
    fn choose_weighted_respects_weights() {
        let mut rng = Pcg64::new(21);
        let weights = [0.0, 10.0, 0.0];
        for _ in 0..100 {
            assert_eq!(rng.choose_weighted(&weights), 1);
        }
        // Skewed weights should produce a skewed histogram.
        let weights = [8.0, 1.0, 1.0];
        let mut counts = [0usize; 3];
        for _ in 0..5_000 {
            counts[rng.choose_weighted(&weights)] += 1;
        }
        assert!(counts[0] > counts[1] * 3);
        assert!(counts[0] > counts[2] * 3);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Pcg64::new(11);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = Pcg64::new(14);
        let s = rng.sample_indices(20, 10);
        assert_eq!(s.len(), 10);
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
        assert!(dedup.iter().all(|&i| i < 20));
    }

    #[test]
    fn gaussian_moments_roughly_match() {
        let mut rng = Pcg64::new(99);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.next_gaussian(5.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean drifted: {mean}");
        assert!((var - 4.0).abs() < 0.3, "variance drifted: {var}");
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = Pcg64::new(1);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
    }
}
