//! Fixed-width ASCII table rendering.
//!
//! The experiment drivers print paper-style tables (Tables I–X of the
//! reproduced paper) to stdout and into `EXPERIMENTS.md`. This module
//! provides the single shared renderer so every table in the repository
//! has a consistent look.

use std::fmt;

/// A simple column-aligned ASCII table.
///
/// # Example
///
/// ```
/// use synthattr_util::Table;
///
/// let mut t = Table::new(vec!["Dataset", "Authors", "Total"]);
/// t.row(vec!["GCJ 2017".into(), "204".into(), "1632".into()]);
/// let s = t.to_string();
/// assert!(s.contains("GCJ 2017"));
/// assert!(s.contains("Authors"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets a caption printed above the table.
    pub fn with_title<S: Into<String>>(mut self, title: S) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Appends a data row. Rows shorter than the header are padded with
    /// empty cells; longer rows extend the table width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows currently in the table.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn column_count(&self) -> usize {
        self.rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0)
    }

    fn widths(&self) -> Vec<usize> {
        let cols = self.column_count();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        if let Some(title) = &self.title {
            writeln!(f, "{title}")?;
        }
        let sep: String = widths
            .iter()
            .map(|w| format!("+{}", "-".repeat(w + 2)))
            .collect::<String>()
            + "+";
        let fmt_row = |cells: &[String]| -> String {
            let mut s = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                s.push_str(&format!("| {cell:<w$} ", w = w));
            }
            s.push('|');
            s
        };
        writeln!(f, "{sep}")?;
        writeln!(f, "{}", fmt_row(&self.header))?;
        writeln!(f, "{sep}")?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        writeln!(f, "{sep}")
    }
}

/// Formats a float as a percentage with one decimal, matching the
/// paper's table style (e.g. `90.2`).
pub fn pct(x: f64) -> String {
    format!("{:.1}", x * 100.0)
}

/// Formats a check / cross mark as used by the paper's Tables VIII–IX.
pub fn mark(ok: bool) -> String {
    if ok {
        "v".into()
    } else {
        "x".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["A", "Long header"]).with_title("Table T");
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer cell".into(), "22".into()]);
        let s = t.to_string();
        assert!(s.starts_with("Table T\n"));
        // All body lines equal length.
        let lens: Vec<usize> = s.lines().skip(1).map(|l| l.chars().count()).collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]), "{s}");
        assert!(s.contains("longer cell"));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["only".into()]);
        let s = t.to_string();
        assert!(s.contains("only"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn pct_and_mark_format() {
        assert_eq!(pct(0.902), "90.2");
        assert_eq!(pct(1.0), "100.0");
        assert_eq!(mark(true), "v");
        assert_eq!(mark(false), "x");
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new(vec!["h"]);
        assert!(t.is_empty());
        let s = t.to_string();
        assert!(s.contains("| h |"));
    }
}
