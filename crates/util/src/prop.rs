//! A minimal in-repo property-testing harness.
//!
//! The workspace must build with **zero registry dependencies** (the
//! reproduction environment has no network), so this module replaces
//! `proptest` for the handful of patterns the test suites actually
//! use: seeded generation over [`crate::rng::Pcg64`], greedy
//! shrinking for integers / vectors / strings / tuples, and
//! `prop_assert!`-style early returns.
//!
//! # Model
//!
//! A property is a function `Fn(&T) -> Result<(), String>`; `Err`
//! (or a panic inside the property) falsifies it. A generator is any
//! `Fn(&mut Pcg64) -> T`. [`Runner::run`] drives `cases` seeded
//! generations, and on the first failure greedily shrinks the
//! counterexample via the value's [`Shrink`] implementation before
//! panicking with the minimal case, the case index, and the seed —
//! everything needed to replay deterministically.
//!
//! # Example
//!
//! ```
//! use synthattr_util::prop::Runner;
//! use synthattr_util::prop_assert;
//!
//! Runner::new("addition_commutes").cases(64).run(
//!     |rng| (rng.next_below(1000) as u64, rng.next_below(1000) as u64),
//!     |&(a, b)| {
//!         prop_assert!(a + b == b + a, "{a} + {b} not commutative");
//!         Ok(())
//!     },
//! );
//! ```
//!
//! Failing cases replay exactly: generation for case `i` of runner
//! `name` draws from `Pcg64::seed_from(seed, &[name, i])`, so the
//! panic message's `(name, seed, case)` triple pins the input.

use crate::rng::Pcg64;
use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Environment variable scaling the case count of every runner
/// (useful for a long fuzzing session: `SYNTHATTR_PROP_CASES=4096`).
pub const ENV_CASES: &str = "SYNTHATTR_PROP_CASES";

/// Drives seeded property checks. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct Runner {
    name: &'static str,
    cases: u32,
    seed: u64,
    max_shrink_steps: u32,
}

impl Runner {
    /// A runner with default budget (256 cases, seed `0xP0P`-ish).
    ///
    /// `name` seeds generation, so two runners with different names
    /// explore different inputs even at the same seed.
    pub fn new(name: &'static str) -> Self {
        Runner {
            name,
            cases: 256,
            seed: 0x5EED_1A7E,
            max_shrink_steps: 512,
        }
    }

    /// Sets the number of generated cases ([`ENV_CASES`] overrides).
    pub fn cases(mut self, cases: u32) -> Self {
        self.cases = cases;
        self
    }

    /// Sets the root seed (rarely needed; the default is fixed for
    /// reproducibility).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs the property over `cases` generated inputs.
    ///
    /// # Panics
    ///
    /// Panics with the shrunk counterexample if the property returns
    /// `Err` or panics for any generated input.
    pub fn run<T, G, P>(&self, generate: G, property: P)
    where
        T: Debug,
        T: Shrink,
        G: Fn(&mut Pcg64) -> T,
        P: Fn(&T) -> Result<(), String>,
    {
        let cases = std::env::var(ENV_CASES)
            .ok()
            .and_then(|v| v.trim().parse::<u32>().ok())
            .filter(|&c| c > 0)
            .unwrap_or(self.cases);
        for case in 0..cases {
            let mut rng = Pcg64::seed_from(self.seed, &[self.name, &case.to_string()]);
            let value = generate(&mut rng);
            if let Err(error) = run_one(&property, &value) {
                let (minimal, minimal_error, steps) =
                    shrink_failure(&property, value, error, self.max_shrink_steps);
                panic!(
                    "property '{}' falsified (case {case}/{cases}, seed {:#x}, \
                     {steps} shrink steps)\n  counterexample: {minimal:?}\n  error: {}",
                    self.name, self.seed, minimal_error
                );
            }
        }
    }
}

/// Runs the property on one value, converting panics into `Err`.
fn run_one<T, P>(property: &P, value: &T) -> Result<(), String>
where
    P: Fn(&T) -> Result<(), String>,
{
    match catch_unwind(AssertUnwindSafe(|| property(value))) {
        Ok(result) => result,
        Err(payload) => Err(payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .map(|m| format!("property panicked: {m}"))
            .unwrap_or_else(|| "property panicked (non-string payload)".to_string())),
    }
}

/// Greedy shrink: repeatedly replace the counterexample with its
/// first still-failing shrink candidate until none fails or the step
/// budget runs out.
fn shrink_failure<T, P>(
    property: &P,
    mut value: T,
    mut error: String,
    max_steps: u32,
) -> (T, String, u32)
where
    T: Shrink,
    P: Fn(&T) -> Result<(), String>,
{
    let mut steps = 0;
    'outer: while steps < max_steps {
        for candidate in value.shrink() {
            steps += 1;
            if let Err(e) = run_one(property, &candidate) {
                value = candidate;
                error = e;
                continue 'outer;
            }
            if steps >= max_steps {
                break;
            }
        }
        break;
    }
    (value, error, steps)
}

/// Produces "simpler" variants of a failing value, tried in order.
///
/// An empty vector stops shrinking. Implementations must move
/// *strictly* toward simpler values (no cycles): integers toward 0,
/// containers toward shorter.
pub trait Shrink: Sized {
    /// Candidate simplifications, simplest first.
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! impl_shrink_uint {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<Self> {
                let v = *self;
                let mut out = Vec::new();
                for c in [0, v / 2, v.saturating_sub(1)] {
                    if c != v && !out.contains(&c) {
                        out.push(c);
                    }
                }
                out
            }
        }
    )*};
}
impl_shrink_uint!(u8, u16, u32, u64, usize);

impl Shrink for i64 {
    fn shrink(&self) -> Vec<Self> {
        let v = *self;
        let mut out = Vec::new();
        for c in [0, v / 2, v - v.signum()] {
            if c != v && !out.contains(&c) {
                out.push(c);
            }
        }
        out
    }
}

impl Shrink for bool {
    fn shrink(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Shrink for char {}

// Borrowed atoms (e.g. a token-soup vocabulary) cannot simplify
// further; vectors of them still shrink structurally.
impl Shrink for &str {}

impl Shrink for String {
    fn shrink(&self) -> Vec<Self> {
        let chars: Vec<char> = self.chars().collect();
        if chars.is_empty() {
            return Vec::new();
        }
        let n = chars.len();
        let mut out: Vec<String> = vec![
            String::new(),
            chars[..n / 2].iter().collect(),
            chars[n / 2..].iter().collect(),
            chars[..n - 1].iter().collect(),
        ];
        out.retain(|c| c != self);
        out.dedup();
        out
    }
}

impl<T: Shrink + Clone> Shrink for Vec<T> {
    fn shrink(&self) -> Vec<Self> {
        let n = self.len();
        if n == 0 {
            return Vec::new();
        }
        let mut out: Vec<Vec<T>> = vec![
            Vec::new(),
            self[..n / 2].to_vec(),
            self[n / 2..].to_vec(),
            self[..n - 1].to_vec(),
        ];
        out.retain(|c| c.len() != n);
        // Element-wise: shrink one position at a time (first candidate
        // only, to keep the fan-out linear in length).
        for i in 0..n {
            if let Some(simpler) = self[i].shrink().into_iter().next() {
                let mut copy = self.clone();
                copy[i] = simpler;
                out.push(copy);
            }
        }
        out
    }
}

macro_rules! impl_shrink_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Shrink + Clone),+> Shrink for ($($name,)+) {
            fn shrink(&self) -> Vec<Self> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink() {
                        let mut copy = self.clone();
                        copy.$idx = candidate;
                        out.push(copy);
                    }
                )+
                out
            }
        }
    };
}
impl_shrink_tuple!(A: 0);
impl_shrink_tuple!(A: 0, B: 1);
impl_shrink_tuple!(A: 0, B: 1, C: 2);
impl_shrink_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_shrink_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_shrink_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Common generator helpers (plain functions over [`Pcg64`]; compose
/// them inside your generator closure).
pub mod gen {
    use crate::rng::Pcg64;

    /// A string of `0..=max_len` chars drawn uniformly from `charset`.
    pub fn string_from(rng: &mut Pcg64, charset: &[char], max_len: usize) -> String {
        let len = rng.next_below(max_len + 1);
        (0..len)
            .map(|_| charset[rng.next_below(charset.len())])
            .collect()
    }

    /// Arbitrary "byte soup": printable ASCII heavily mixed with
    /// controls, whitespace, and multibyte chars — the totality-test
    /// input class (`.{0,n}` in proptest regexes).
    pub fn any_string(rng: &mut Pcg64, max_len: usize) -> String {
        let len = rng.next_below(max_len + 1);
        (0..len)
            .map(|_| match rng.next_below(8) {
                // Controls from 0x01..=0x1f: NUL is excluded because it
                // is not "byte soup" any text pipeline must survive —
                // it's the C string terminator, and emitting it makes
                // every downstream FFI/display assertion flaky.
                0 => char::from_u32(1 + rng.next_below(0x1f) as u32)
                    .expect("0x01..=0x1f are valid chars"),
                1 => ['é', 'λ', '→', '…', '中', '\u{7f}', '\u{2028}', '🦀'][rng.next_below(8)],
                _ => char::from_u32(0x20 + rng.next_below(0x5f) as u32).unwrap(),
            })
            .collect()
    }

    /// A vector of `0..=max_len` items from `element`.
    pub fn vec_of<T>(
        rng: &mut Pcg64,
        max_len: usize,
        mut element: impl FnMut(&mut Pcg64) -> T,
    ) -> Vec<T> {
        let len = rng.next_below(max_len + 1);
        (0..len).map(|_| element(rng)).collect()
    }

    /// A uniform pick from a non-empty slice, cloned out.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn select<T: Clone>(rng: &mut Pcg64, items: &[T]) -> T {
        items[rng.next_below(items.len())].clone()
    }
}

/// Fails the surrounding property (returns `Err`) when the condition
/// is false. With one argument the condition text is the message;
/// extra arguments are a `format!` message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Fails the surrounding property when the two values differ,
/// reporting both sides (and an optional `format!` context).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "prop_assert_eq failed: {:?} != {:?} ({} vs {})",
                l, r, stringify!($left), stringify!($right)
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!("{}\n  left:  {:?}\n  right: {:?}", format!($($fmt)+), l, r));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut seen = 0u32;
        // `run` takes Fn, so count via a Cell.
        let counter = std::cell::Cell::new(0u32);
        Runner::new("passes").cases(40).run(
            |rng| rng.next_below(100),
            |_| {
                counter.set(counter.get() + 1);
                Ok(())
            },
        );
        seen += counter.get();
        assert_eq!(seen, 40);
    }

    #[test]
    fn failing_property_panics_with_counterexample() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            Runner::new("fails").cases(200).run(
                |rng| rng.next_below(1000) as u64,
                |&v| {
                    prop_assert!(v < 250, "value {v} too big");
                    Ok(())
                },
            );
        }));
        let msg = match result.expect_err("must falsify").downcast::<String>() {
            Ok(s) => *s,
            Err(_) => panic!("panic payload should be a String"),
        };
        assert!(msg.contains("falsified"), "{msg}");
        // Greedy shrinking must land on the boundary counterexample.
        assert!(msg.contains("counterexample: 250"), "{msg}");
    }

    #[test]
    fn panicking_property_is_caught_and_reported() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            Runner::new("panics").cases(50).run(
                |rng| rng.next_below(10),
                |&v| {
                    assert!(v < 100, "unreachable");
                    if v > 3 {
                        panic!("boom at {v}");
                    }
                    Ok(())
                },
            );
        }));
        let msg = match result.expect_err("must falsify").downcast::<String>() {
            Ok(s) => *s,
            Err(_) => panic!("panic payload should be a String"),
        };
        assert!(msg.contains("property panicked"), "{msg}");
        // Shrinks to the smallest panicking value, 4.
        assert!(msg.contains("counterexample: 4"), "{msg}");
    }

    #[test]
    fn generation_is_deterministic_per_name_and_case() {
        let collect = |name: &'static str| {
            let values = std::cell::RefCell::new(Vec::new());
            Runner::new(name).cases(10).run(
                |rng| rng.next_u64(),
                |&v| {
                    values.borrow_mut().push(v);
                    Ok(())
                },
            );
            values.into_inner()
        };
        assert_eq!(collect("det"), collect("det"));
        assert_ne!(collect("det"), collect("det2"));
    }

    #[test]
    fn integer_shrink_moves_toward_zero() {
        assert!(100u64.shrink().contains(&0));
        assert!(100u64.shrink().contains(&50));
        assert!(0u64.shrink().is_empty());
        assert!((-8i64).shrink().contains(&-4));
    }

    #[test]
    fn vec_and_string_shrink_toward_empty() {
        let v = vec![3u64, 9, 27];
        let shrunk = v.shrink();
        assert!(shrunk.contains(&Vec::new()));
        assert!(shrunk.iter().any(|c| c.len() == 2));
        // Element-wise shrink appears too.
        assert!(shrunk.iter().any(|c| c.len() == 3 && c[0] == 0));
        let s = "abcd".to_string();
        assert!(s.shrink().contains(&String::new()));
        assert!(s.shrink().contains(&"abc".to_string()));
    }

    #[test]
    fn tuple_shrink_varies_one_coordinate() {
        let shrunk = (4u64, true).shrink();
        assert!(shrunk.contains(&(0, true)));
        assert!(shrunk.contains(&(4, false)));
    }

    #[test]
    fn any_string_never_emits_nul() {
        // Regression: the control-char arm used `unwrap_or('\0')`,
        // which turned the draw 0 into a NUL byte.
        Runner::new("any_string_no_nul").cases(500).run(
            |rng| gen::any_string(rng, 64),
            |s| {
                prop_assert!(!s.contains('\0'), "NUL in {s:?}");
                Ok(())
            },
        );
        // The arm must still reach both ends of the control range.
        let mut rng = Pcg64::new(11);
        let soup: String = (0..64).map(|_| gen::any_string(&mut rng, 64)).collect();
        assert!(soup.contains('\u{1}'), "low control never generated");
        assert!(soup.contains('\u{1f}'), "high control never generated");
    }

    #[test]
    fn gen_helpers_respect_bounds() {
        let mut rng = Pcg64::new(5);
        for _ in 0..200 {
            let s = gen::string_from(&mut rng, &['a', 'b'], 7);
            assert!(s.chars().count() <= 7);
            assert!(s.chars().all(|c| c == 'a' || c == 'b'));
            let soup = gen::any_string(&mut rng, 30);
            assert!(soup.chars().count() <= 30);
            let v = gen::vec_of(&mut rng, 5, |r| r.next_below(3));
            assert!(v.len() <= 5);
            assert_eq!(gen::select(&mut rng, &[9usize]), 9);
        }
    }
}
