//! Small-sample statistics used by the feature extractor and the
//! experiment analysis code.

use std::collections::BTreeMap;

/// Arithmetic mean of `xs`; `0.0` for an empty slice.
///
/// ```
/// assert_eq!(synthattr_util::stats::mean(&[1.0, 2.0, 3.0]), 2.0);
/// assert_eq!(synthattr_util::stats::mean(&[]), 0.0);
/// ```
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance of `xs`; `0.0` for fewer than two samples.
pub fn population_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation of `xs`.
pub fn std_dev(xs: &[f64]) -> f64 {
    population_variance(xs).sqrt()
}

/// Shannon entropy (bits) of a count histogram. Zero-count entries are
/// ignored; an empty or all-zero histogram has entropy `0.0`.
///
/// ```
/// let h = synthattr_util::stats::shannon_entropy(&[1, 1]);
/// assert!((h - 1.0).abs() < 1e-12);
/// ```
pub fn shannon_entropy(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total;
            -p * p.log2()
        })
        .sum()
}

/// Natural log of `(count / denom)`, with the paper's convention that a
/// zero numerator maps to `ln(1/denom)` shifted to a sentinel floor.
///
/// Caliskan-Islam-style feature sets take `ln(frequency / file length)`
/// for many term frequencies; a zero frequency would be `-inf`, so we
/// floor the count at a small epsilon to keep feature vectors finite.
pub fn log_ratio(count: usize, denom: usize) -> f64 {
    let denom = denom.max(1) as f64;
    let c = if count == 0 { 0.1 } else { count as f64 };
    (c / denom).ln()
}

/// Builds an occurrence histogram over the items, sorted by descending
/// count (ties broken by key order for determinism).
pub fn ranked_histogram<K: Ord + Clone>(items: &[K]) -> Vec<(K, usize)> {
    let mut counts: BTreeMap<K, usize> = BTreeMap::new();
    for item in items {
        *counts.entry(item.clone()).or_insert(0) += 1;
    }
    let mut out: Vec<(K, usize)> = counts.into_iter().collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    out
}

/// Number of distinct items in the slice.
pub fn distinct_count<K: Ord + Clone>(items: &[K]) -> usize {
    let mut v: Vec<K> = items.to_vec();
    v.sort();
    v.dedup();
    v.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((population_variance(&xs) - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn variance_of_singleton_is_zero() {
        assert_eq!(population_variance(&[42.0]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
    }

    #[test]
    fn entropy_uniform_vs_skewed() {
        let uniform = shannon_entropy(&[5, 5, 5, 5]);
        let skewed = shannon_entropy(&[17, 1, 1, 1]);
        assert!((uniform - 2.0).abs() < 1e-12);
        assert!(skewed < uniform);
        assert_eq!(shannon_entropy(&[0, 0]), 0.0);
        assert_eq!(shannon_entropy(&[]), 0.0);
    }

    #[test]
    fn log_ratio_is_finite_for_zero_counts() {
        let v = log_ratio(0, 100);
        assert!(v.is_finite());
        assert!(v < log_ratio(1, 100));
        assert!(log_ratio(50, 100) > log_ratio(10, 100));
    }

    #[test]
    fn log_ratio_handles_zero_denominator() {
        assert!(log_ratio(3, 0).is_finite());
    }

    #[test]
    fn ranked_histogram_orders_by_count_then_key() {
        let items = ["b", "a", "b", "c", "a", "b"];
        let hist = ranked_histogram(&items);
        assert_eq!(hist, vec![("b", 3), ("a", 2), ("c", 1)]);
        // Tie break on key order.
        let tied = ranked_histogram(&["z", "y"]);
        assert_eq!(tied, vec![("y", 1), ("z", 1)]);
    }

    #[test]
    fn distinct_count_works() {
        assert_eq!(distinct_count(&[1, 1, 2, 3, 3, 3]), 3);
        assert_eq!(distinct_count::<u8>(&[]), 0);
    }
}
