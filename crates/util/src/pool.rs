//! A scoped, order-preserving parallel map over owned work items.
//!
//! The workspace's hot loops (forest training, per-challenge
//! transformation, per-sample feature extraction) are all shaped the
//! same way: a list of independent work items whose outputs must come
//! back **in input order** so that experiment results stay
//! byte-identical regardless of how many threads ran. This module
//! provides exactly that shape on `std::thread::scope` — no external
//! dependency, no detached threads, no unsafe.
//!
//! # Scheduling
//!
//! Workers self-schedule over a shared atomic cursor in small chunks:
//! a worker that finishes its chunk immediately claims the next one,
//! so uneven item costs balance out (the useful half of work
//! stealing) while the chunk size keeps cursor contention negligible.
//! Each output is written into the slot of its input index, so the
//! returned vector order never depends on thread timing.
//!
//! # Determinism and worker counts
//!
//! The number of workers changes only *wall-clock time*, never
//! results — every caller in this workspace derives per-item RNG
//! streams before dispatch. The count resolves, in priority order:
//!
//! 1. an explicit override (e.g. a config field) passed to
//!    [`resolve_workers`];
//! 2. the `SYNTHATTR_WORKERS` environment variable ([`ENV_WORKERS`]),
//!    for reproducible CI runs;
//! 3. [`std::thread::available_parallelism`].
//!
//! # Panics
//!
//! A panic on a worker thread is caught, the remaining queue is
//! drained without running `f`, and the original panic payload is
//! re-raised on the calling thread once every worker has parked.
//!
//! # Example
//!
//! ```
//! use synthattr_util::pool;
//!
//! let squares = pool::parallel_map((0..100u64).collect(), |x| x * x);
//! assert_eq!(squares[7], 49);
//! assert_eq!(squares.len(), 100);
//! ```

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Environment variable overriding the worker count (`0` or unset
/// means "auto"). Set it to `1` to force fully serial execution.
pub const ENV_WORKERS: &str = "SYNTHATTR_WORKERS";

/// Items each worker claims per visit to the shared cursor. Small
/// enough to balance skewed workloads (one slow tree, one huge
/// challenge), large enough that the atomic is never contended.
const CHUNK: usize = 4;

/// Resolves the effective worker count.
///
/// `override_workers` (from a config struct) wins over the
/// [`ENV_WORKERS`] environment variable, which wins over the
/// machine's available parallelism. Zero from any source means
/// "auto"; the result is always at least 1.
pub fn resolve_workers(override_workers: Option<usize>) -> usize {
    let picked = override_workers.filter(|&w| w > 0).or_else(|| {
        std::env::var(ENV_WORKERS)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&w| w > 0)
    });
    picked
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        })
        .max(1)
}

/// Order-preserving parallel map with the ambient worker count
/// (see [`resolve_workers`]).
pub fn parallel_map<I, O, F>(items: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    parallel_map_workers(resolve_workers(None), items, f)
}

/// Order-preserving parallel map on exactly `workers` threads
/// (clamped to the item count; `1` runs inline on the caller).
///
/// Output index `i` always holds `f(items[i])`.
pub fn parallel_map_workers<I, O, F>(workers: usize, items: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let n = items.len();
    let workers = workers.max(1).min(n.max(1));
    if workers <= 1 || n <= 1 {
        // Serial fallback: identical semantics, zero thread overhead.
        return items.into_iter().map(f).collect();
    }

    // Input slots: each index is claimed by exactly one worker via the
    // cursor, taken under a short-lived per-slot lock.
    let input: Vec<Mutex<Option<I>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let output: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let poisoned = AtomicBool::new(false);
    let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let start = cursor.fetch_add(CHUNK, Ordering::Relaxed);
                if start >= n {
                    return;
                }
                for i in start..(start + CHUNK).min(n) {
                    if poisoned.load(Ordering::Relaxed) {
                        // A sibling panicked: drain without running f.
                        continue;
                    }
                    let item = input[i]
                        .lock()
                        .expect("pool input slot poisoned")
                        .take()
                        .expect("pool input slot claimed twice");
                    match catch_unwind(AssertUnwindSafe(|| f(item))) {
                        Ok(out) => {
                            *output[i].lock().expect("pool output slot poisoned") = Some(out);
                        }
                        Err(payload) => {
                            poisoned.store(true, Ordering::Relaxed);
                            let mut slot = panic_payload.lock().expect("pool panic slot poisoned");
                            // Keep the first payload; later ones are
                            // cascade noise.
                            slot.get_or_insert(payload);
                        }
                    }
                }
            });
        }
    });

    if let Some(payload) = panic_payload
        .into_inner()
        .expect("pool panic slot poisoned")
    {
        resume_unwind(payload);
    }

    output
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .expect("pool output slot poisoned")
                .unwrap_or_else(|| panic!("work item {i} produced no result"))
        })
        .collect()
}

/// Fallible order-preserving parallel map with the ambient worker
/// count (see [`resolve_workers`] and [`parallel_try_map_workers`]).
pub fn parallel_try_map<I, O, E, F>(items: Vec<I>, f: F) -> Result<Vec<O>, E>
where
    I: Send,
    O: Send,
    E: Send,
    F: Fn(I) -> Result<O, E> + Sync,
{
    parallel_try_map_workers(resolve_workers(None), items, f)
}

/// Fallible order-preserving parallel map on exactly `workers`
/// threads.
///
/// On success, output index `i` holds the `Ok` value of `f(items[i])`.
/// The first `Err` **short-circuits**: the poisoned flag is raised,
/// every not-yet-claimed item is drained without running `f`, and the
/// error is returned once all workers have parked. When several
/// in-flight items error concurrently, the error with the *lowest
/// input index* among those that actually ran wins, so the common
/// case (one bad item) reports deterministically; which items ran at
/// all still depends on scheduling, as it must for a short-circuit.
///
/// Worker panics keep their existing semantics: the queue drains and
/// the first payload re-raises on the caller (panics outrank errors).
pub fn parallel_try_map_workers<I, O, E, F>(
    workers: usize,
    items: Vec<I>,
    f: F,
) -> Result<Vec<O>, E>
where
    I: Send,
    O: Send,
    E: Send,
    F: Fn(I) -> Result<O, E> + Sync,
{
    let n = items.len();
    let workers = workers.max(1).min(n.max(1));
    if workers <= 1 || n <= 1 {
        // Serial fallback: `?` gives exact first-error semantics.
        return items.into_iter().map(f).collect();
    }

    let input: Vec<Mutex<Option<I>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let output: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let poisoned = AtomicBool::new(false);
    let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    let error_slot: Mutex<Option<(usize, E)>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let start = cursor.fetch_add(CHUNK, Ordering::Relaxed);
                if start >= n {
                    return;
                }
                for i in start..(start + CHUNK).min(n) {
                    if poisoned.load(Ordering::Relaxed) {
                        // A sibling errored or panicked: drain without
                        // running f.
                        continue;
                    }
                    let item = input[i]
                        .lock()
                        .expect("pool input slot poisoned")
                        .take()
                        .expect("pool input slot claimed twice");
                    match catch_unwind(AssertUnwindSafe(|| f(item))) {
                        Ok(Ok(out)) => {
                            *output[i].lock().expect("pool output slot poisoned") = Some(out);
                        }
                        Ok(Err(e)) => {
                            poisoned.store(true, Ordering::Relaxed);
                            let mut slot = error_slot.lock().expect("pool error slot poisoned");
                            // Prefer the lowest input index among the
                            // errors that ran.
                            if slot.as_ref().is_none_or(|(j, _)| i < *j) {
                                *slot = Some((i, e));
                            }
                        }
                        Err(payload) => {
                            poisoned.store(true, Ordering::Relaxed);
                            let mut slot = panic_payload.lock().expect("pool panic slot poisoned");
                            // Keep the first payload; later ones are
                            // cascade noise.
                            slot.get_or_insert(payload);
                        }
                    }
                }
            });
        }
    });

    if let Some(payload) = panic_payload
        .into_inner()
        .expect("pool panic slot poisoned")
    {
        resume_unwind(payload);
    }
    if let Some((_, e)) = error_slot.into_inner().expect("pool error slot poisoned") {
        return Err(e);
    }

    Ok(output
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .expect("pool output slot poisoned")
                .unwrap_or_else(|| panic!("work item {i} produced no result"))
        })
        .collect())
}

/// A blocking multi-producer multi-consumer work queue with close
/// semantics, for long-lived worker pools (the serving layer's
/// accept/worker split) rather than the bounded fork-join shape of
/// [`parallel_map_workers`].
///
/// Producers [`push`](WorkQueue::push) items; consumers
/// [`pop`](WorkQueue::pop), blocking while the queue is empty. Closing
/// the queue wakes every blocked consumer: `pop` keeps draining any
/// queued items and then returns `None` forever, which is the workers'
/// shutdown signal. Items are delivered in FIFO order, each to exactly
/// one consumer.
#[derive(Debug, Default)]
pub struct WorkQueue<T> {
    inner: Mutex<QueueInner<T>>,
    ready: Condvar,
}

#[derive(Debug)]
struct QueueInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> Default for QueueInner<T> {
    fn default() -> Self {
        QueueInner {
            items: VecDeque::new(),
            closed: false,
        }
    }
}

impl<T> WorkQueue<T> {
    /// An empty, open queue.
    pub fn new() -> Self {
        WorkQueue {
            inner: Mutex::new(QueueInner::default()),
            ready: Condvar::new(),
        }
    }

    /// Enqueues an item, waking one blocked consumer. Returns `false`
    /// (dropping the item) if the queue is already closed.
    pub fn push(&self, item: T) -> bool {
        self.offer(item).is_ok()
    }

    /// Enqueues an item like [`push`](WorkQueue::push), but hands the
    /// item **back** instead of silently dropping it when the queue is
    /// closed. Producers whose items own live resources (the serving
    /// layer parks open connections here) need the rejected item to
    /// dispose of it deliberately — e.g. finish a graceful drain —
    /// rather than have `Drop` slam the resource shut.
    ///
    /// # Errors
    ///
    /// `Err(item)` when the queue is closed; the queue is unchanged.
    pub fn offer(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().expect("work queue poisoned");
        if inner.closed {
            return Err(item);
        }
        inner.items.push_back(item);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeues the next item, blocking while the queue is empty and
    /// open. Returns `None` once the queue is closed **and** drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("work queue poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("work queue poisoned");
        }
    }

    /// Closes the queue: future `push` calls are refused, and every
    /// consumer unblocks once the remaining items drain.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("work queue poisoned");
        inner.closed = true;
        self.ready.notify_all();
    }

    /// Items currently queued (racy by nature; for stats only).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("work queue poisoned").items.len()
    }

    /// Whether no items are currently queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_order() {
        let out = parallel_map_workers(8, (0..1000usize).collect(), |x| x * 3);
        assert_eq!(out, (0..1000).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn preserves_order_under_uneven_chunk_sizes() {
        // Early items are much slower than late ones, so late chunks
        // finish first; ordering must still hold.
        let out = parallel_map_workers(4, (0..97usize).collect(), |x| {
            if x < 8 {
                std::thread::sleep(std::time::Duration::from_millis(3));
            }
            x + 1
        });
        assert_eq!(out, (1..=97).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_falls_back_to_serial() {
        // With one worker no threads spawn; results match the map.
        let calls = AtomicUsize::new(0);
        let out = parallel_map_workers(1, (0..50u64).collect(), |x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x * x
        });
        assert_eq!(calls.load(Ordering::Relaxed), 50);
        assert_eq!(out[49], 49 * 49);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = parallel_map_workers(8, Vec::<u8>::new(), |x| x);
        assert!(empty.is_empty());
        let one = parallel_map_workers(8, vec![41u8], |x| x + 1);
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let f = |x: u64| x.wrapping_mul(0x9E37_79B9).rotate_left(13);
        let base = parallel_map_workers(1, (0..500u64).collect(), f);
        for workers in [2, 3, 8] {
            assert_eq!(
                parallel_map_workers(workers, (0..500u64).collect(), f),
                base,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn panic_propagates_with_original_message() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            parallel_map_workers(4, (0..64usize).collect(), |x| {
                if x == 17 {
                    panic!("item 17 exploded");
                }
                x
            })
        }));
        let payload = result.expect_err("panic must propagate to the caller");
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("item 17 exploded"), "payload was: {msg}");
    }

    #[test]
    fn two_concurrent_panics_terminate_and_keep_a_real_payload() {
        // Regression: two workers panicking at the same instant must
        // neither deadlock the scope join nor lose the recorded
        // payload. A barrier forces items 0 and 4 (claimed by
        // different workers, CHUNK = 4) to panic truly concurrently.
        let barrier = std::sync::Barrier::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            parallel_map_workers(2, (0..8usize).collect(), |x| {
                if x == 0 || x == 4 {
                    barrier.wait();
                    panic!("worker bomb {x}");
                }
                x
            })
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            msg == "worker bomb 0" || msg == "worker bomb 4",
            "payload must be one of the two genuine panics, got: {msg}"
        );
    }

    #[test]
    fn try_map_collects_ok_results_in_order() {
        let out = parallel_try_map_workers(8, (0..500usize).collect(), |x| Ok::<_, String>(x * 2))
            .unwrap();
        assert_eq!(out, (0..500).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn try_map_short_circuit_drains_the_queue() {
        // Item 0 errors instantly; every other item sleeps. By the
        // time the sleepers finish, the poisoned flag is up, so the
        // vast majority of the queue must drain without running f.
        let calls = AtomicUsize::new(0);
        let n = 1000usize;
        let result = parallel_try_map_workers(4, (0..n).collect(), |x| {
            calls.fetch_add(1, Ordering::Relaxed);
            if x == 0 {
                return Err(format!("item {x} failed"));
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
            Ok(x)
        });
        assert_eq!(result, Err("item 0 failed".to_string()));
        let ran = calls.load(Ordering::Relaxed);
        assert!(
            ran < n / 2,
            "short-circuit should skip most of the queue, but f ran {ran}/{n} times"
        );
    }

    #[test]
    fn try_map_serial_path_returns_first_error() {
        let calls = AtomicUsize::new(0);
        let result = parallel_try_map_workers(1, (0..50usize).collect(), |x| {
            calls.fetch_add(1, Ordering::Relaxed);
            if x >= 3 {
                Err(x)
            } else {
                Ok(x)
            }
        });
        assert_eq!(result, Err(3));
        assert_eq!(calls.load(Ordering::Relaxed), 4, "stops at the first error");
    }

    #[test]
    fn try_map_prefers_lowest_index_error() {
        // Item 40 errors fast; item 3 sleeps briefly then errors.
        // Whichever lands first, the reported error must be a genuine
        // one, and when both recorded, index 3 wins. Run a few times
        // to cover schedules.
        for _ in 0..5 {
            let result = parallel_try_map_workers(4, (0..64usize).collect(), |x| {
                if x == 3 {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    return Err(x);
                }
                if x == 40 {
                    return Err(x);
                }
                std::thread::sleep(std::time::Duration::from_micros(100));
                Ok(x)
            });
            let err = result.expect_err("at least one item errors");
            assert!(err == 3 || err == 40, "unexpected error index {err}");
        }
    }

    #[test]
    fn try_map_empty_and_singleton() {
        let empty: Result<Vec<u8>, ()> = parallel_try_map_workers(8, Vec::new(), Ok);
        assert_eq!(empty, Ok(Vec::new()));
        let one: Result<Vec<u8>, ()> = parallel_try_map(vec![41], |x| Ok(x + 1));
        assert_eq!(one, Ok(vec![42]));
    }

    #[test]
    fn work_queue_is_fifo_for_a_single_consumer() {
        let q = WorkQueue::new();
        for i in 0..10 {
            assert!(q.push(i));
        }
        q.close();
        let drained: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, (0..10).collect::<Vec<_>>());
        assert_eq!(q.pop(), None, "closed queue stays closed");
    }

    #[test]
    fn work_queue_refuses_push_after_close() {
        let q = WorkQueue::new();
        q.close();
        assert!(!q.push(1u8));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn work_queue_offer_returns_the_item_when_closed() {
        let q = WorkQueue::new();
        assert_eq!(q.offer(7u8), Ok(()));
        q.close();
        // The queued item still drains…
        assert_eq!(q.pop(), Some(7));
        // …but a rejected offer hands the item back intact instead of
        // dropping it, so the caller can dispose of it deliberately.
        assert_eq!(q.offer(9u8), Err(9));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn work_queue_pop_blocks_until_push() {
        let q = WorkQueue::new();
        std::thread::scope(|s| {
            let consumer = s.spawn(|| q.pop());
            // Give the consumer a chance to park before the push.
            std::thread::sleep(std::time::Duration::from_millis(5));
            assert!(q.push(42u64));
            assert_eq!(consumer.join().unwrap(), Some(42));
        });
    }

    #[test]
    fn work_queue_delivers_each_item_to_exactly_one_consumer() {
        let q = WorkQueue::new();
        let n = 500usize;
        let consumed = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    while let Some(item) = q.pop() {
                        consumed.lock().unwrap().push(item);
                    }
                });
            }
            for i in 0..n {
                assert!(q.push(i));
            }
            q.close();
        });
        let mut got = consumed.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn work_queue_close_unblocks_parked_consumers() {
        let q: WorkQueue<u8> = WorkQueue::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..3).map(|_| s.spawn(|| q.pop())).collect();
            std::thread::sleep(std::time::Duration::from_millis(5));
            q.close();
            for h in handles {
                assert_eq!(h.join().unwrap(), None);
            }
        });
    }

    #[test]
    fn resolve_workers_priority() {
        // Explicit override wins regardless of the environment.
        assert_eq!(resolve_workers(Some(3)), 3);
        // Zero means auto, which is always at least one.
        assert!(resolve_workers(Some(0)) >= 1);
        assert!(resolve_workers(None) >= 1);
    }
}
