//! The shared per-year experiment pipeline (the paper's Figure 1).
//!
//! Building a [`YearPipeline`] performs, in order:
//!
//! 1. generate the year's human corpus (`authors × challenges`,
//!    Table I);
//! 2. train the **oracle**: the non-ChatGPT authorship model over all
//!    human authors;
//! 3. produce the seeds — one LLM-generated solution per challenge and
//!    one human author's solutions — and run the four transformation
//!    settings `+N`, `+C`, `±N`, `±C` (Table II);
//! 4. featurize everything once and cache the oracle's predicted label
//!    ("style") for every transformed sample.
//!
//! Every table driver in [`crate::experiments`] is a cheap analysis
//! pass over this cached state.

use crate::config::ExperimentConfig;
use crate::model::AuthorshipModel;
use std::collections::BTreeMap;
use synthattr_analysis::{Analyzer, Severity};
use synthattr_features::FeatureExtractor;
use synthattr_gen::challenges::ChallengeId;
use synthattr_gen::corpus::{generate_year, Origin, YearCorpus, YearSpec};
use synthattr_gen::style::AuthorStyle;
use synthattr_gpt::chain::{run_ct, run_nct, TransformedSample};
use synthattr_gpt::pool::YearPool;
use synthattr_gpt::transform::Transformer;
use synthattr_ml::dataset::Dataset;
use synthattr_util::{pool, Pcg64};

/// The four transformation settings of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Setting {
    /// ChatGPT-generated seed, non-chaining (`+N`).
    GptNct,
    /// ChatGPT-generated seed, chaining (`+C`).
    GptCt,
    /// Human-written seed, non-chaining (`±N`).
    HumanNct,
    /// Human-written seed, chaining (`±C`).
    HumanCt,
}

impl Setting {
    /// All settings in the paper's column order.
    pub fn all() -> [Setting; 4] {
        [
            Setting::GptNct,
            Setting::GptCt,
            Setting::HumanNct,
            Setting::HumanCt,
        ]
    }

    /// The paper's column notation.
    pub fn notation(self) -> &'static str {
        match self {
            Setting::GptNct => "+N",
            Setting::GptCt => "+C",
            Setting::HumanNct => "±N",
            Setting::HumanCt => "±C",
        }
    }

    /// Dense index in `[0, 4)`.
    pub fn index(self) -> usize {
        match self {
            Setting::GptNct => 0,
            Setting::GptCt => 1,
            Setting::HumanNct => 2,
            Setting::HumanCt => 3,
        }
    }

    /// Whether the seed code is human-written.
    pub fn human_seed(self) -> bool {
        matches!(self, Setting::HumanNct | Setting::HumanCt)
    }

    /// Whether the protocol chains.
    pub fn chaining(self) -> bool {
        matches!(self, Setting::GptCt | Setting::HumanCt)
    }
}

/// Aggregated lint results over every program a pipeline produced
/// (human corpus plus all transformed samples). Counts are summed per
/// pass, so they are invariant under worker count and sample order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiagnosticStats {
    /// Programs analyzed.
    pub units: usize,
    /// Diagnostic count per analysis pass name.
    pub per_pass: BTreeMap<String, usize>,
    /// Error-severity diagnostics (the generation and transform gates
    /// keep this at zero; a nonzero value here is a pipeline bug).
    pub errors: usize,
    /// Warning-severity diagnostics (unused variables, shadowing, …).
    pub warnings: usize,
}

impl DiagnosticStats {
    /// Folds one program's diagnostics into the stats.
    fn absorb(&mut self, diags: &[synthattr_analysis::Diagnostic]) {
        self.units += 1;
        for d in diags {
            *self.per_pass.entry(d.pass.to_string()).or_insert(0) += 1;
            match d.severity {
                Severity::Error => self.errors += 1,
                Severity::Warning => self.warnings += 1,
            }
        }
    }
}

/// One transformed sample with cached analysis state.
#[derive(Debug, Clone)]
pub struct TransformedEntry {
    /// The transformed sample itself.
    pub sample: TransformedSample,
    /// Challenge index within the year.
    pub challenge: usize,
    /// Transformation setting.
    pub setting: Setting,
    /// Cached stylometry vector.
    pub features: Vec<f64>,
    /// The oracle's predicted author label — the sample's "style".
    pub oracle_label: usize,
}

/// Cached state for one experiment year.
#[derive(Debug, Clone)]
pub struct YearPipeline {
    /// The year (2017/2018/2019).
    pub year: u32,
    /// Configuration used to build the pipeline.
    pub config: ExperimentConfig,
    /// The human corpus (Table I).
    pub corpus: YearCorpus,
    /// Feature vectors aligned with `corpus.samples`.
    pub human_features: Vec<Vec<f64>>,
    /// The non-ChatGPT oracle model (one class per human author).
    pub oracle: AuthorshipModel,
    /// All transformed samples with cached features and styles
    /// (Table II).
    pub transformed: Vec<TransformedEntry>,
    /// The human author whose code seeded the `±` settings.
    pub seed_author: usize,
    /// Aggregated analyzer diagnostics over every program in the run.
    pub diagnostics: DiagnosticStats,
}

impl YearPipeline {
    /// Builds the full pipeline for `year`.
    ///
    /// The two hot stages — per-sample feature extraction and
    /// per-challenge transformation — run on the scoped worker pool
    /// (`synthattr_util::pool`). Every random stream is derived
    /// hierarchically *before* dispatch, and the pool preserves input
    /// order, so the result is byte-identical for any worker count
    /// (`config.workers` / `SYNTHATTR_WORKERS` only change wall-clock
    /// time; see `parallel_build_matches_serial` in the tests).
    ///
    /// # Panics
    ///
    /// Panics if `year` is not 2017/2018/2019, or on internal
    /// generation bugs (generated code must always parse).
    pub fn build(year: u32, config: &ExperimentConfig) -> Self {
        let workers = pool::resolve_workers(config.workers);
        let spec = year_spec(year, config);
        let corpus = generate_year(&spec, config.seed);

        let extractor = FeatureExtractor::new(config.features.clone());
        let human_features: Vec<Vec<f64>> =
            pool::parallel_map_workers(workers, (0..corpus.samples.len()).collect(), |i| {
                let s = &corpus.samples[i];
                extractor
                    .extract(&s.source)
                    .unwrap_or_else(|e| panic!("generated sample must parse: {e}\n{}", s.source))
            });

        // Oracle: one class per human author.
        let mut human_ds = Dataset::new(spec.authors);
        for (sample, features) in corpus.samples.iter().zip(&human_features) {
            human_ds.push(features.clone(), sample.author);
        }
        let mut rng = Pcg64::seed_from(config.seed, &["oracle", &year.to_string()]);
        let oracle =
            AuthorshipModel::from_features(extractor, &human_ds, &config.forest(), &mut rng);

        // Seeds and transformations.
        let pool = YearPool::calibrated(year, config.seed);
        let transformer = Transformer::new(&pool);
        let seed_author = (year as usize * 7) % spec.authors;
        // One task per challenge; each task derives its own RNG
        // streams from the root seed, so scheduling cannot perturb
        // them, and the order-preserving pool plus a flatten
        // reproduces the serial push order exactly.
        let per_challenge: Vec<Vec<TransformedEntry>> =
            pool::parallel_map_workers(workers, (0..spec.challenges.len()).collect(), |ci| {
                let challenge = spec.challenges[ci];
                let mut transformed = Vec::new();
                // ChatGPT-generated seed: one solution in a weighted pool
                // style (the "generation" role of the simulator).
                let mut gen_rng = Pcg64::seed_from(
                    config.seed,
                    &["gpt-gen", &year.to_string(), &ci.to_string()],
                );
                let gen_style_idx = pool.sample_index(&mut gen_rng);
                let gpt_seed = synthattr_gen::corpus::solution_in_style(
                    challenge,
                    pool.style(gen_style_idx),
                    config.seed,
                    &["gpt-gen-code", &year.to_string(), &ci.to_string()],
                );
                // Human seed: the chosen author's solution to this challenge.
                let human_seed = corpus
                    .samples
                    .iter()
                    .find(|s| s.author == seed_author && s.challenge == ci)
                    .expect("corpus covers author x challenge")
                    .source
                    .clone();

                for setting in Setting::all() {
                    let (seed_code, origin) = if setting.human_seed() {
                        (&human_seed, Origin::Human)
                    } else {
                        (&gpt_seed, Origin::ChatGpt)
                    };
                    let mut rng = Pcg64::seed_from(
                        config.seed,
                        &[
                            "transform",
                            &year.to_string(),
                            &ci.to_string(),
                            setting.notation(),
                        ],
                    );
                    let samples = if setting.chaining() {
                        run_ct(
                            &transformer,
                            seed_code,
                            config.scale.transforms,
                            origin,
                            &mut rng,
                        )
                    } else {
                        run_nct(
                            &transformer,
                            seed_code,
                            config.scale.transforms,
                            origin,
                            &mut rng,
                        )
                    };
                    for sample in samples {
                        let features =
                            oracle
                                .extractor()
                                .extract(&sample.source)
                                .unwrap_or_else(|e| {
                                    panic!("transformed sample must parse: {e}\n{}", sample.source)
                                });
                        let oracle_label = oracle.predict_features(&features);
                        transformed.push(TransformedEntry {
                            sample,
                            challenge: ci,
                            setting,
                            features,
                            oracle_label,
                        });
                    }
                }
                transformed
            });
        let transformed: Vec<TransformedEntry> = per_challenge.into_iter().flatten().collect();

        // Run stats: lint every program the run produced. Per-sample
        // analysis parallelizes like featurization; summed counts make
        // the result independent of worker count and merge order.
        let analyzer = Analyzer::new();
        let sources: Vec<&str> = corpus
            .samples
            .iter()
            .map(|s| s.source.as_str())
            .chain(transformed.iter().map(|t| t.sample.source.as_str()))
            .collect();
        let per_unit: Vec<Vec<synthattr_analysis::Diagnostic>> =
            pool::parallel_map_workers(workers, (0..sources.len()).collect(), |i| {
                analyzer
                    .analyze_source(sources[i])
                    .unwrap_or_else(|e| panic!("pipeline output must parse: {e}\n{}", sources[i]))
            });
        let mut diagnostics = DiagnosticStats::default();
        for diags in &per_unit {
            diagnostics.absorb(diags);
        }

        YearPipeline {
            year,
            config: config.clone(),
            corpus,
            human_features,
            oracle,
            transformed,
            seed_author,
            diagnostics,
        }
    }

    /// Number of human authors.
    pub fn n_authors(&self) -> usize {
        self.corpus.spec.authors
    }

    /// Number of challenges.
    pub fn n_challenges(&self) -> usize {
        self.corpus.spec.challenges.len()
    }

    /// Challenge identities for this year.
    pub fn challenges(&self) -> &[ChallengeId] {
        &self.corpus.spec.challenges
    }

    /// The oracle labels of all transformed samples for one
    /// `(challenge, setting)` cell.
    pub fn labels_for(&self, challenge: usize, setting: Setting) -> Vec<usize> {
        self.transformed
            .iter()
            .filter(|t| t.challenge == challenge && t.setting == setting)
            .map(|t| t.oracle_label)
            .collect()
    }

    /// Oracle labels of every transformed sample.
    pub fn all_labels(&self) -> Vec<usize> {
        self.transformed.iter().map(|t| t.oracle_label).collect()
    }

    /// The human dataset (author labels), plus per-sample challenge
    /// groups for fold construction.
    pub fn human_dataset(&self) -> (Dataset, Vec<usize>) {
        let mut ds = Dataset::new(self.n_authors());
        let mut groups = Vec::new();
        for (sample, features) in self.corpus.samples.iter().zip(&self.human_features) {
            ds.push(features.clone(), sample.author);
            groups.push(sample.challenge);
        }
        (ds, groups)
    }

    /// The style of the human seed author (useful for diagnostics).
    pub fn seed_author_style(&self) -> AuthorStyle {
        AuthorStyle::for_author(self.config.seed, self.year, self.seed_author)
    }
}

/// The year's dataset spec at the configured scale (paper-scale specs
/// match [`YearSpec::paper`]).
fn year_spec(year: u32, config: &ExperimentConfig) -> YearSpec {
    let all = ChallengeId::all();
    let offset = match year {
        2017 => 0,
        2018 => 3,
        2019 => 6,
        other => panic!("paper years are 2017-2019, got {other}"),
    };
    YearSpec {
        year,
        authors: config.scale.authors,
        challenges: all[offset..offset + config.scale.challenges].to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_pipeline() -> YearPipeline {
        YearPipeline::build(2018, &ExperimentConfig::smoke())
    }

    #[test]
    fn pipeline_shapes_match_config() {
        let p = smoke_pipeline();
        let cfg = &p.config.scale;
        assert_eq!(p.corpus.len(), cfg.authors * cfg.challenges);
        assert_eq!(p.human_features.len(), p.corpus.len());
        // 4 settings x transforms x challenges.
        assert_eq!(p.transformed.len(), 4 * cfg.transforms * cfg.challenges);
        for t in &p.transformed {
            assert!(t.oracle_label < cfg.authors);
            assert_eq!(t.features.len(), p.oracle.extractor().dim());
        }
    }

    #[test]
    fn run_stats_lint_every_program_and_stay_error_free() {
        let p = smoke_pipeline();
        let d = &p.diagnostics;
        assert_eq!(d.units, p.corpus.len() + p.transformed.len());
        assert_eq!(d.errors, 0, "gated pipeline must be error-free: {d:?}");
        let summed: usize = d.per_pass.values().sum();
        assert_eq!(summed, d.errors + d.warnings);
    }

    #[test]
    fn settings_partition_the_transformed_set() {
        let p = smoke_pipeline();
        let per_cell = p.config.scale.transforms;
        for ci in 0..p.n_challenges() {
            for setting in Setting::all() {
                assert_eq!(p.labels_for(ci, setting).len(), per_cell);
            }
        }
    }

    #[test]
    fn human_dataset_is_author_labelled_and_grouped() {
        let p = smoke_pipeline();
        let (ds, groups) = p.human_dataset();
        assert_eq!(ds.len(), p.corpus.len());
        assert_eq!(groups.len(), ds.len());
        assert_eq!(ds.n_classes(), p.n_authors());
        assert!(groups.iter().all(|&g| g < p.n_challenges()));
    }

    #[test]
    fn setting_metadata_is_consistent() {
        for s in Setting::all() {
            assert_eq!(Setting::all()[s.index()], s);
        }
        assert_eq!(Setting::GptNct.notation(), "+N");
        assert_eq!(Setting::HumanCt.notation(), "±C");
        assert!(Setting::HumanNct.human_seed());
        assert!(!Setting::GptCt.human_seed());
        assert!(Setting::GptCt.chaining());
        assert!(!Setting::HumanNct.chaining());
    }

    #[test]
    fn parallel_build_matches_serial() {
        // The tentpole guarantee: the pool only changes wall-clock
        // time. A serial build (1 worker) and a wide build (8
        // workers) must agree byte-for-byte on every cached artifact.
        let mut serial_cfg = ExperimentConfig::smoke();
        serial_cfg.workers = Some(1);
        let mut parallel_cfg = ExperimentConfig::smoke();
        parallel_cfg.workers = Some(8);
        let serial = YearPipeline::build(2018, &serial_cfg);
        let parallel = YearPipeline::build(2018, &parallel_cfg);

        assert_eq!(serial.human_features, parallel.human_features);
        assert_eq!(serial.seed_author, parallel.seed_author);
        assert_eq!(serial.diagnostics, parallel.diagnostics);
        assert_eq!(serial.transformed.len(), parallel.transformed.len());
        for (s, p) in serial.transformed.iter().zip(&parallel.transformed) {
            assert_eq!(s.sample.source, p.sample.source);
            assert_eq!(s.challenge, p.challenge);
            assert_eq!(s.setting, p.setting);
            assert_eq!(s.features, p.features);
            assert_eq!(s.oracle_label, p.oracle_label);
        }
    }

    #[test]
    fn build_is_deterministic() {
        let a = smoke_pipeline();
        let b = smoke_pipeline();
        assert_eq!(a.all_labels(), b.all_labels());
        assert_eq!(a.seed_author, b.seed_author);
    }

    #[test]
    fn chatgpt_seeds_differ_from_human_seeds() {
        let p = smoke_pipeline();
        // The +N and ±N first steps come from different seeds, so their
        // sources should differ for at least one challenge.
        let gpt_first = p
            .transformed
            .iter()
            .find(|t| t.setting == Setting::GptNct && t.sample.step == 1)
            .unwrap();
        let human_first = p
            .transformed
            .iter()
            .find(|t| t.setting == Setting::HumanNct && t.sample.step == 1)
            .unwrap();
        assert_ne!(gpt_first.sample.source, human_first.sample.source);
    }
}
