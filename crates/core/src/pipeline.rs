//! The shared per-year experiment pipeline (the paper's Figure 1).
//!
//! Building a [`YearPipeline`] performs, in order:
//!
//! 1. generate the year's human corpus (`authors × challenges`,
//!    Table I);
//! 2. train the **oracle**: the non-ChatGPT authorship model over all
//!    human authors;
//! 3. produce the seeds — one LLM-generated solution per challenge and
//!    one human author's solutions — and run the four transformation
//!    settings `+N`, `+C`, `±N`, `±C` (Table II);
//! 4. featurize everything once and cache the oracle's predicted label
//!    ("style") for every transformed sample.
//!
//! Every table driver in [`crate::experiments`] is a cheap analysis
//! pass over this cached state.

use crate::artifact::{Artifact, ArtifactCache, FrontendStats};
use crate::config::ExperimentConfig;
use crate::error::PipelineError;
use crate::model::AuthorshipModel;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;
use synthattr_analysis::{Analyzer, Severity};
use synthattr_faults::drivers::{run_ct_resilient_cached, run_nct_resilient_cached};
use synthattr_faults::{FaultyTransformer, Outcome, ResilienceStats};
use synthattr_features::FeatureExtractor;
use synthattr_gen::challenges::ChallengeId;
use synthattr_gen::corpus::{generate_year, Origin, YearCorpus, YearSpec};
use synthattr_gen::style::AuthorStyle;
use synthattr_gpt::chain::TransformedSample;
use synthattr_gpt::incr::{try_run_ct_steps_cached, try_run_nct_steps_cached, FrontendCache};
use synthattr_gpt::pool::YearPool;
use synthattr_gpt::transform::Transformer;
use synthattr_gpt::GptError;
use synthattr_ml::dataset::Dataset;
use synthattr_util::{pool, Pcg64};

/// Capacity of each per-challenge artifact cache. Far above the
/// distinct-text count any real challenge produces, so it bounds
/// memory without ever changing hit/miss totals.
const PER_CHALLENGE_CACHE_CAP: usize = 4096;

/// The four transformation settings of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Setting {
    /// ChatGPT-generated seed, non-chaining (`+N`).
    GptNct,
    /// ChatGPT-generated seed, chaining (`+C`).
    GptCt,
    /// Human-written seed, non-chaining (`±N`).
    HumanNct,
    /// Human-written seed, chaining (`±C`).
    HumanCt,
}

impl Setting {
    /// All settings in the paper's column order.
    pub fn all() -> [Setting; 4] {
        [
            Setting::GptNct,
            Setting::GptCt,
            Setting::HumanNct,
            Setting::HumanCt,
        ]
    }

    /// The paper's column notation.
    pub fn notation(self) -> &'static str {
        match self {
            Setting::GptNct => "+N",
            Setting::GptCt => "+C",
            Setting::HumanNct => "±N",
            Setting::HumanCt => "±C",
        }
    }

    /// Dense index in `[0, 4)`.
    pub fn index(self) -> usize {
        match self {
            Setting::GptNct => 0,
            Setting::GptCt => 1,
            Setting::HumanNct => 2,
            Setting::HumanCt => 3,
        }
    }

    /// Whether the seed code is human-written.
    pub fn human_seed(self) -> bool {
        matches!(self, Setting::HumanNct | Setting::HumanCt)
    }

    /// Whether the protocol chains.
    pub fn chaining(self) -> bool {
        matches!(self, Setting::GptCt | Setting::HumanCt)
    }
}

/// Aggregated lint results over every program a pipeline produced
/// (human corpus plus all transformed samples). Counts are summed per
/// pass, so they are invariant under worker count and sample order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiagnosticStats {
    /// Programs analyzed.
    pub units: usize,
    /// Diagnostic count per analysis pass name.
    pub per_pass: BTreeMap<String, usize>,
    /// Error-severity diagnostics (the generation and transform gates
    /// keep this at zero; a nonzero value here is a pipeline bug).
    pub errors: usize,
    /// Warning-severity diagnostics (unused variables, shadowing, …).
    pub warnings: usize,
}

impl DiagnosticStats {
    /// Folds one program's diagnostics into the stats.
    fn absorb(&mut self, diags: &[synthattr_analysis::Diagnostic]) {
        self.units += 1;
        for d in diags {
            *self.per_pass.entry(d.pass.to_string()).or_insert(0) += 1;
            match d.severity {
                Severity::Error => self.errors += 1,
                Severity::Warning => self.warnings += 1,
            }
        }
    }

    /// Folds another dispatch unit's stats into this one. All fields
    /// are sums, so merging in input order is equal to absorbing every
    /// program serially.
    fn merge(&mut self, other: &DiagnosticStats) {
        self.units += other.units;
        for (pass, n) in &other.per_pass {
            *self.per_pass.entry(pass.clone()).or_insert(0) += n;
        }
        self.errors += other.errors;
        self.warnings += other.warnings;
    }
}

/// One transformed sample with cached analysis state.
#[derive(Debug, Clone)]
pub struct TransformedEntry {
    /// The transformed sample itself.
    pub sample: TransformedSample,
    /// Challenge index within the year.
    pub challenge: usize,
    /// Transformation setting.
    pub setting: Setting,
    /// Cached stylometry vector, shared with the artifact that
    /// computed it.
    pub features: Arc<Vec<f64>>,
    /// The oracle's predicted author label — the sample's "style".
    pub oracle_label: usize,
    /// How the sample survived fault injection ([`Outcome::Clean`]
    /// everywhere when the pipeline runs without a fault profile).
    pub outcome: Outcome,
}

/// Cached state for one experiment year.
#[derive(Debug, Clone)]
pub struct YearPipeline {
    /// The year (2017/2018/2019).
    pub year: u32,
    /// Configuration used to build the pipeline.
    pub config: ExperimentConfig,
    /// The human corpus (Table I).
    pub corpus: YearCorpus,
    /// Feature vectors aligned with `corpus.samples`.
    pub human_features: Vec<Vec<f64>>,
    /// The non-ChatGPT oracle model (one class per human author).
    pub oracle: AuthorshipModel,
    /// All transformed samples with cached features and styles
    /// (Table II).
    pub transformed: Vec<TransformedEntry>,
    /// The human author whose code seeded the `±` settings.
    pub seed_author: usize,
    /// Aggregated analyzer diagnostics over every program in the run.
    pub diagnostics: DiagnosticStats,
    /// Resilience accounting for the transformation stage (all-clean
    /// with zero overhead when `config.faults` is `None`).
    pub resilience: ResilienceStats,
    /// Frontend accounting: artifact-cache hits/misses and wall-clock
    /// spent in parse/lint/fingerprint/featurize work. The counters
    /// are worker-count invariant; only `frontend_ns` varies.
    pub frontend: FrontendStats,
}

impl YearPipeline {
    /// Builds the full pipeline for `year`.
    ///
    /// The two hot stages — per-sample feature extraction and
    /// per-challenge transformation — run on the scoped worker pool
    /// (`synthattr_util::pool`). Every random stream is derived
    /// hierarchically *before* dispatch, and the pool preserves input
    /// order, so the result is byte-identical for any worker count
    /// (`config.workers` / `SYNTHATTR_WORKERS` only change wall-clock
    /// time; see `parallel_build_matches_serial` in the tests).
    ///
    /// # Panics
    ///
    /// Panics if `year` is not 2017/2018/2019, or on internal
    /// generation bugs (generated code must always parse). Fallible
    /// callers should use [`YearPipeline::try_build`].
    pub fn build(year: u32, config: &ExperimentConfig) -> Self {
        Self::try_build(year, config).unwrap_or_else(|e| panic!("pipeline build failed: {e}"))
    }

    /// Builds the full pipeline for `year`, surfacing failures as
    /// [`PipelineError`]s. Worker-thread errors propagate through
    /// `pool::parallel_try_map_workers` instead of poisoning the
    /// whole process.
    ///
    /// # Errors
    ///
    /// * [`PipelineError::UnsupportedYear`] — `year` outside 2017–2019.
    /// * [`PipelineError::Transform`] — a transformation stream failed
    ///   irrecoverably (service faults *degrade* rather than error;
    ///   see `config.faults`).
    /// * [`PipelineError::Analysis`] — a pipeline-produced program was
    ///   rejected downstream (always a bug, reported as data).
    pub fn try_build(year: u32, config: &ExperimentConfig) -> Result<Self, PipelineError> {
        let workers = pool::resolve_workers(config.workers);
        let spec = try_year_spec(year, config)?;
        let (corpus, human_features, mut diagnostics, mut frontend, oracle) =
            oracle_stage(&spec, config, workers)?;
        let analyzer = Analyzer::new();

        // Seeds and transformations.
        let pool = YearPool::calibrated(year, config.seed);
        let transformer = Transformer::new(&pool);
        let seed_author = (year as usize * 7) % spec.authors;
        // Resilience state is sharded per (challenge x setting) call
        // stream: each stream owns a breaker and an equal, fixed slice
        // of the pipeline retry budget, decided before dispatch — so
        // the outcome cannot depend on which worker drains which
        // stream (DESIGN.md §9).
        let n_streams = spec.challenges.len() * Setting::all().len();
        // One task per challenge; each task derives its own RNG
        // streams from the root seed, so scheduling cannot perturb
        // them, and the order-preserving pool plus a flatten
        // reproduces the serial push order exactly. Each task owns a
        // local artifact cache — sharded per challenge so hit/miss
        // totals are a pure function of the inputs, never of which
        // worker drained which task.
        #[allow(clippy::type_complexity)]
        let per_challenge: Vec<(
            Vec<TransformedEntry>,
            ResilienceStats,
            DiagnosticStats,
            FrontendStats,
        )> = pool::parallel_try_map_workers(workers, (0..spec.challenges.len()).collect(), |ci| {
            let challenge = spec.challenges[ci];
            let service = config
                .faults
                .as_ref()
                .map(|p| FaultyTransformer::new(&pool, p.plan(), p.policy.clone()));
            let mut stream_stats = ResilienceStats::default();
            let mut transformed = Vec::new();
            // Bounded so a pathological scale can't hoard every
            // artifact ever parsed. A challenge interns well under
            // a hundred distinct texts (two seeds plus one per
            // transform step × setting), so at this capacity the
            // bound is pure insurance: no eviction ever fires and
            // hit/miss totals are identical to the unbounded cache
            // (`tests/frontend_cache.rs` proves the equivalence).
            let mut cache = ArtifactCache::bounded(PER_CHALLENGE_CACHE_CAP);
            // The node-level cache behind the incremental frontend:
            // shared across this challenge's four settings (their
            // chains revisit the same seeds, items, and layouts),
            // sharded per challenge for the same worker-invariance
            // reason as the artifact cache.
            let mut fc = FrontendCache::new();
            let mut diags = DiagnosticStats::default();
            let mut frontend_ns: u128 = 0;
            // ChatGPT-generated seed: one solution in a weighted pool
            // style (the "generation" role of the simulator).
            let mut gen_rng = Pcg64::seed_from(
                config.seed,
                &["gpt-gen", &year.to_string(), &ci.to_string()],
            );
            let gen_style_idx = pool.sample_index(&mut gen_rng);
            let gpt_seed = synthattr_gen::corpus::solution_in_style(
                challenge,
                pool.style(gen_style_idx),
                config.seed,
                &["gpt-gen-code", &year.to_string(), &ci.to_string()],
            );
            // Human seed: the chosen author's solution to this challenge.
            let human_seed = corpus
                .samples
                .iter()
                .find(|s| s.author == seed_author && s.challenge == ci)
                .expect("corpus covers author x challenge")
                .source
                .clone();

            for setting in Setting::all() {
                let (seed_code, origin) = if setting.human_seed() {
                    (&human_seed, Origin::Human)
                } else {
                    (&gpt_seed, Origin::ChatGpt)
                };
                let mut rng = Pcg64::seed_from(
                    config.seed,
                    &[
                        "transform",
                        &year.to_string(),
                        &ci.to_string(),
                        setting.notation(),
                    ],
                );
                let fail = |source| PipelineError::Transform {
                    year,
                    challenge: ci,
                    setting: setting.notation(),
                    source,
                };
                // Intern the seed once per setting: each seed text
                // is shared by its two settings, so this is two
                // misses and two hits per challenge — and exactly
                // one parse per distinct seed.
                let t0 = Instant::now();
                let seed_artifact = cache.intern(seed_code);
                let seed_unit = seed_artifact.unit().map_err(|e| fail(GptError::Parse(e)))?;
                frontend_ns += t0.elapsed().as_nanos();
                let (samples, units, regions, outcomes) = match (&service, &config.faults) {
                    (Some(svc), Some(profile)) => {
                        let anchor = format!("ch{ci}/{}", setting.notation());
                        let mut cx = profile.stream_cx(n_streams);
                        let run = if setting.chaining() {
                            run_ct_resilient_cached(
                                svc,
                                seed_code,
                                seed_unit,
                                config.scale.transforms,
                                origin,
                                &mut rng,
                                &anchor,
                                &mut cx,
                                &mut fc,
                            )
                        } else {
                            run_nct_resilient_cached(
                                svc,
                                seed_code,
                                seed_unit,
                                config.scale.transforms,
                                origin,
                                &mut rng,
                                &anchor,
                                &mut cx,
                                &mut fc,
                            )
                        }
                        .map_err(fail)?;
                        stream_stats.merge(&run.stats);
                        (run.samples, run.units, run.regions, run.outcomes)
                    }
                    _ => {
                        let steps = if setting.chaining() {
                            try_run_ct_steps_cached(
                                &transformer,
                                seed_code,
                                seed_unit,
                                config.scale.transforms,
                                origin,
                                &mut rng,
                                &mut fc,
                            )
                        } else {
                            try_run_nct_steps_cached(
                                &transformer,
                                seed_code,
                                seed_unit,
                                config.scale.transforms,
                                origin,
                                &mut rng,
                                &mut fc,
                            )
                        }
                        .map_err(fail)?;
                        let outcomes = vec![Outcome::Clean; steps.len()];
                        for o in &outcomes {
                            stream_stats.record(*o);
                        }
                        let mut samples = Vec::with_capacity(steps.len());
                        let mut units = Vec::with_capacity(steps.len());
                        let mut regions = Vec::with_capacity(steps.len());
                        for step in steps {
                            samples.push(step.sample);
                            units.push(step.unit);
                            regions.push(Some(step.regions));
                        }
                        (samples, units, regions, outcomes)
                    }
                };
                // Featurize, label, and lint each sample off one
                // shared artifact. The transform layer already
                // parsed every accepted response, so even a cache
                // miss here costs no parse; a hit (CT held steps,
                // NCT fixed points) reuses every cached product.
                // When the step carries its region structure, even
                // a *miss* only pays for the sub-trees this step
                // actually changed: features assemble from cached
                // per-item partials and per-region layout scans,
                // and diagnostics come off the unit-hash cache.
                for (((sample, unit), region), outcome) in
                    samples.into_iter().zip(units).zip(regions).zip(outcomes)
                {
                    let t0 = Instant::now();
                    let artifact = cache.intern_with_unit(&sample.source, unit);
                    let features = match &region {
                        Some(ri) => artifact.features_with(|src, unit| {
                            let items: Vec<_> = ri
                                .item_hashes
                                .iter()
                                .zip(&unit.items)
                                .map(|(h, item)| fc.item_features_for(*h, item))
                                .collect();
                            let layouts: Vec<_> = ri
                                .spans
                                .iter()
                                .map(|sp| (sp.sep_before, fc.layout_for(&src[sp.start..sp.end])))
                                .collect();
                            oracle.extractor().extract_from_parts(
                                src.len(),
                                items.iter().map(|a| a.as_ref()),
                                layouts.iter().map(|(s, l)| (*s, l.as_ref())),
                            )
                        }),
                        None => artifact.features(oracle.extractor()),
                    }
                    .map_err(|e| PipelineError::Analysis {
                        stage: "featurize",
                        source: e,
                    })?
                    .clone();
                    let oracle_label =
                        artifact
                            .oracle_label(&oracle)
                            .map_err(|e| PipelineError::Analysis {
                                stage: "featurize",
                                source: e,
                            })?;
                    let sample_diags = match &region {
                        Some(ri) => artifact
                            .diagnostics_with(|unit| fc.diags_for(ri.unit_hash, unit, &analyzer)),
                        None => artifact.diagnostics(&analyzer),
                    }
                    .map_err(|e| PipelineError::Analysis {
                        stage: "lint",
                        source: e,
                    })?;
                    diags.absorb(sample_diags);
                    frontend_ns += t0.elapsed().as_nanos();
                    transformed.push(TransformedEntry {
                        sample,
                        challenge: ci,
                        setting,
                        features,
                        oracle_label,
                        outcome,
                    });
                }
            }
            let mut frontend = cache.stats();
            frontend.node_hits = fc.node_hits();
            frontend.node_misses = fc.node_misses();
            frontend.frontend_ns = frontend_ns;
            Ok((transformed, stream_stats, diags, frontend))
        })?;
        let mut resilience = ResilienceStats::default();
        let mut transformed: Vec<TransformedEntry> = Vec::new();
        for (entries, stats, d, fe) in per_challenge {
            transformed.extend(entries);
            resilience.merge(&stats);
            diagnostics.merge(&d);
            frontend.merge(&fe);
        }

        Ok(YearPipeline {
            year,
            config: config.clone(),
            corpus,
            human_features,
            oracle,
            transformed,
            seed_author,
            diagnostics,
            resilience,
            frontend,
        })
    }

    /// Builds the pipeline through the whole-file artifact frontend,
    /// exactly as [`YearPipeline::try_build`] worked before the
    /// node-level incremental refactor: every distinct source text is
    /// parsed/linted/featurized at most once (the artifact cache), but
    /// each *new* text pays for its full frontend even when only one
    /// sub-tree changed since the previous chain step. Kept
    /// (test/feature-gated) as the reference implementation the
    /// incremental A/B suite (`increment_ab`) and the
    /// `pipeline` bench compare against. Its `frontend` records no
    /// node-cache traffic (`node_hits == node_misses == 0`).
    ///
    /// # Errors
    ///
    /// Same as [`YearPipeline::try_build`].
    #[cfg(any(test, feature = "reference-increment"))]
    pub fn try_build_wholefile(
        year: u32,
        config: &ExperimentConfig,
    ) -> Result<Self, PipelineError> {
        use synthattr_faults::drivers::{run_ct_resilient_parsed, run_nct_resilient_parsed};
        use synthattr_gpt::chain::{try_run_ct_steps, try_run_nct_steps};

        let workers = pool::resolve_workers(config.workers);
        let spec = try_year_spec(year, config)?;
        let (corpus, human_features, mut diagnostics, mut frontend, oracle) =
            oracle_stage(&spec, config, workers)?;
        let analyzer = Analyzer::new();

        let pool = YearPool::calibrated(year, config.seed);
        let transformer = Transformer::new(&pool);
        let seed_author = (year as usize * 7) % spec.authors;
        let n_streams = spec.challenges.len() * Setting::all().len();
        #[allow(clippy::type_complexity)]
        let per_challenge: Vec<(
            Vec<TransformedEntry>,
            ResilienceStats,
            DiagnosticStats,
            FrontendStats,
        )> = pool::parallel_try_map_workers(workers, (0..spec.challenges.len()).collect(), |ci| {
            let challenge = spec.challenges[ci];
            let service = config
                .faults
                .as_ref()
                .map(|p| FaultyTransformer::new(&pool, p.plan(), p.policy.clone()));
            let mut stream_stats = ResilienceStats::default();
            let mut transformed = Vec::new();
            let mut cache = ArtifactCache::bounded(PER_CHALLENGE_CACHE_CAP);
            let mut diags = DiagnosticStats::default();
            let mut frontend_ns: u128 = 0;
            let mut gen_rng = Pcg64::seed_from(
                config.seed,
                &["gpt-gen", &year.to_string(), &ci.to_string()],
            );
            let gen_style_idx = pool.sample_index(&mut gen_rng);
            let gpt_seed = synthattr_gen::corpus::solution_in_style(
                challenge,
                pool.style(gen_style_idx),
                config.seed,
                &["gpt-gen-code", &year.to_string(), &ci.to_string()],
            );
            let human_seed = corpus
                .samples
                .iter()
                .find(|s| s.author == seed_author && s.challenge == ci)
                .expect("corpus covers author x challenge")
                .source
                .clone();

            for setting in Setting::all() {
                let (seed_code, origin) = if setting.human_seed() {
                    (&human_seed, Origin::Human)
                } else {
                    (&gpt_seed, Origin::ChatGpt)
                };
                let mut rng = Pcg64::seed_from(
                    config.seed,
                    &[
                        "transform",
                        &year.to_string(),
                        &ci.to_string(),
                        setting.notation(),
                    ],
                );
                let fail = |source| PipelineError::Transform {
                    year,
                    challenge: ci,
                    setting: setting.notation(),
                    source,
                };
                let t0 = Instant::now();
                let seed_artifact = cache.intern(seed_code);
                let seed_unit = seed_artifact.unit().map_err(|e| fail(GptError::Parse(e)))?;
                frontend_ns += t0.elapsed().as_nanos();
                let (samples, units, outcomes) = match (&service, &config.faults) {
                    (Some(svc), Some(profile)) => {
                        let anchor = format!("ch{ci}/{}", setting.notation());
                        let mut cx = profile.stream_cx(n_streams);
                        let run = if setting.chaining() {
                            run_ct_resilient_parsed(
                                svc,
                                seed_code,
                                seed_unit,
                                config.scale.transforms,
                                origin,
                                &mut rng,
                                &anchor,
                                &mut cx,
                            )
                        } else {
                            run_nct_resilient_parsed(
                                svc,
                                seed_code,
                                seed_unit,
                                config.scale.transforms,
                                origin,
                                &mut rng,
                                &anchor,
                                &mut cx,
                            )
                        }
                        .map_err(fail)?;
                        stream_stats.merge(&run.stats);
                        (run.samples, run.units, run.outcomes)
                    }
                    _ => {
                        let steps = if setting.chaining() {
                            try_run_ct_steps(
                                &transformer,
                                seed_code,
                                seed_unit,
                                config.scale.transforms,
                                origin,
                                &mut rng,
                            )
                        } else {
                            try_run_nct_steps(
                                &transformer,
                                seed_code,
                                seed_unit,
                                config.scale.transforms,
                                origin,
                                &mut rng,
                            )
                        }
                        .map_err(fail)?;
                        let outcomes = vec![Outcome::Clean; steps.len()];
                        for o in &outcomes {
                            stream_stats.record(*o);
                        }
                        let mut samples = Vec::with_capacity(steps.len());
                        let mut units = Vec::with_capacity(steps.len());
                        for step in steps {
                            samples.push(step.sample);
                            units.push(step.unit);
                        }
                        (samples, units, outcomes)
                    }
                };
                for ((sample, unit), outcome) in samples.into_iter().zip(units).zip(outcomes) {
                    let t0 = Instant::now();
                    let artifact = cache.intern_with_unit(&sample.source, unit);
                    let features = artifact
                        .features(oracle.extractor())
                        .map_err(|e| PipelineError::Analysis {
                            stage: "featurize",
                            source: e,
                        })?
                        .clone();
                    let oracle_label =
                        artifact
                            .oracle_label(&oracle)
                            .map_err(|e| PipelineError::Analysis {
                                stage: "featurize",
                                source: e,
                            })?;
                    diags.absorb(artifact.diagnostics(&analyzer).map_err(|e| {
                        PipelineError::Analysis {
                            stage: "lint",
                            source: e,
                        }
                    })?);
                    frontend_ns += t0.elapsed().as_nanos();
                    transformed.push(TransformedEntry {
                        sample,
                        challenge: ci,
                        setting,
                        features,
                        oracle_label,
                        outcome,
                    });
                }
            }
            let mut frontend = cache.stats();
            frontend.frontend_ns = frontend_ns;
            Ok((transformed, stream_stats, diags, frontend))
        })?;
        let mut resilience = ResilienceStats::default();
        let mut transformed: Vec<TransformedEntry> = Vec::new();
        for (entries, stats, d, fe) in per_challenge {
            transformed.extend(entries);
            resilience.merge(&stats);
            diagnostics.merge(&d);
            frontend.merge(&fe);
        }

        Ok(YearPipeline {
            year,
            config: config.clone(),
            corpus,
            human_features,
            oracle,
            transformed,
            seed_author,
            diagnostics,
            resilience,
            frontend,
        })
    }

    /// Builds the pipeline through the pre-cache frontend: every stage
    /// re-parses from text, exactly as the pipeline did before the
    /// single-parse artifact refactor. Kept (test/feature-gated) as the
    /// reference implementation the A/B suite and the `pipeline` bench
    /// compare against; `frontend` is all-zero since nothing is cached.
    ///
    /// # Errors
    ///
    /// Same as [`YearPipeline::try_build`].
    #[cfg(any(test, feature = "reference-frontend"))]
    pub fn try_build_reference(
        year: u32,
        config: &ExperimentConfig,
    ) -> Result<Self, PipelineError> {
        use synthattr_faults::drivers::{run_ct_resilient_reference, run_nct_resilient_reference};
        use synthattr_gpt::chain::{try_run_ct, try_run_nct};

        let workers = pool::resolve_workers(config.workers);
        let spec = try_year_spec(year, config)?;
        let corpus = generate_year(&spec, config.seed);

        let extractor = FeatureExtractor::new(config.features.clone());
        let human_features: Vec<Vec<f64>> =
            pool::parallel_try_map_workers(workers, (0..corpus.samples.len()).collect(), |i| {
                extractor
                    .extract(&corpus.samples[i].source)
                    .map_err(|e| PipelineError::Analysis {
                        stage: "featurize",
                        source: e,
                    })
            })?;

        // Oracle: one class per human author.
        let mut human_ds = Dataset::new(spec.authors);
        for (sample, features) in corpus.samples.iter().zip(&human_features) {
            human_ds.push(features.clone(), sample.author);
        }
        let mut rng = Pcg64::seed_from(config.seed, &["oracle", &year.to_string()]);
        let oracle =
            AuthorshipModel::from_features(extractor, &human_ds, &config.forest(), &mut rng);

        // Seeds and transformations.
        let pool = YearPool::calibrated(year, config.seed);
        let transformer = Transformer::new(&pool);
        let seed_author = (year as usize * 7) % spec.authors;
        let n_streams = spec.challenges.len() * Setting::all().len();
        let per_challenge: Vec<(Vec<TransformedEntry>, ResilienceStats)> =
            pool::parallel_try_map_workers(workers, (0..spec.challenges.len()).collect(), |ci| {
                let challenge = spec.challenges[ci];
                let service = config
                    .faults
                    .as_ref()
                    .map(|p| FaultyTransformer::new(&pool, p.plan(), p.policy.clone()));
                let mut stream_stats = ResilienceStats::default();
                let mut transformed = Vec::new();
                let mut gen_rng = Pcg64::seed_from(
                    config.seed,
                    &["gpt-gen", &year.to_string(), &ci.to_string()],
                );
                let gen_style_idx = pool.sample_index(&mut gen_rng);
                let gpt_seed = synthattr_gen::corpus::solution_in_style(
                    challenge,
                    pool.style(gen_style_idx),
                    config.seed,
                    &["gpt-gen-code", &year.to_string(), &ci.to_string()],
                );
                let human_seed = corpus
                    .samples
                    .iter()
                    .find(|s| s.author == seed_author && s.challenge == ci)
                    .expect("corpus covers author x challenge")
                    .source
                    .clone();

                for setting in Setting::all() {
                    let (seed_code, origin) = if setting.human_seed() {
                        (&human_seed, Origin::Human)
                    } else {
                        (&gpt_seed, Origin::ChatGpt)
                    };
                    let mut rng = Pcg64::seed_from(
                        config.seed,
                        &[
                            "transform",
                            &year.to_string(),
                            &ci.to_string(),
                            setting.notation(),
                        ],
                    );
                    let fail = |source| PipelineError::Transform {
                        year,
                        challenge: ci,
                        setting: setting.notation(),
                        source,
                    };
                    let (samples, outcomes) = match (&service, &config.faults) {
                        (Some(svc), Some(profile)) => {
                            let anchor = format!("ch{ci}/{}", setting.notation());
                            let mut cx = profile.stream_cx(n_streams);
                            let run = if setting.chaining() {
                                run_ct_resilient_reference(
                                    svc,
                                    seed_code,
                                    config.scale.transforms,
                                    origin,
                                    &mut rng,
                                    &anchor,
                                    &mut cx,
                                )
                            } else {
                                run_nct_resilient_reference(
                                    svc,
                                    seed_code,
                                    config.scale.transforms,
                                    origin,
                                    &mut rng,
                                    &anchor,
                                    &mut cx,
                                )
                            }
                            .map_err(fail)?;
                            stream_stats.merge(&run.stats);
                            (run.samples, run.outcomes)
                        }
                        _ => {
                            let samples = if setting.chaining() {
                                try_run_ct(
                                    &transformer,
                                    seed_code,
                                    config.scale.transforms,
                                    origin,
                                    &mut rng,
                                )
                            } else {
                                try_run_nct(
                                    &transformer,
                                    seed_code,
                                    config.scale.transforms,
                                    origin,
                                    &mut rng,
                                )
                            }
                            .map_err(fail)?;
                            let outcomes = vec![Outcome::Clean; samples.len()];
                            for o in &outcomes {
                                stream_stats.record(*o);
                            }
                            (samples, outcomes)
                        }
                    };
                    for (sample, outcome) in samples.into_iter().zip(outcomes) {
                        let features = oracle.extractor().extract(&sample.source).map_err(|e| {
                            PipelineError::Analysis {
                                stage: "featurize",
                                source: e,
                            }
                        })?;
                        let oracle_label = oracle.predict_features(&features);
                        transformed.push(TransformedEntry {
                            sample,
                            challenge: ci,
                            setting,
                            features: Arc::new(features),
                            oracle_label,
                            outcome,
                        });
                    }
                }
                Ok((transformed, stream_stats))
            })?;
        let mut resilience = ResilienceStats::default();
        let mut transformed: Vec<TransformedEntry> = Vec::new();
        for (entries, stats) in per_challenge {
            transformed.extend(entries);
            resilience.merge(&stats);
        }

        // Run stats: lint every program the run produced, each from a
        // fresh parse of its text.
        let analyzer = Analyzer::new();
        let sources: Vec<&str> = corpus
            .samples
            .iter()
            .map(|s| s.source.as_str())
            .chain(transformed.iter().map(|t| t.sample.source.as_str()))
            .collect();
        let per_unit: Vec<Vec<synthattr_analysis::Diagnostic>> =
            pool::parallel_try_map_workers(workers, (0..sources.len()).collect(), |i| {
                analyzer
                    .analyze_source(sources[i])
                    .map_err(|e| PipelineError::Analysis {
                        stage: "lint",
                        source: e,
                    })
            })?;
        let mut diagnostics = DiagnosticStats::default();
        for diags in &per_unit {
            diagnostics.absorb(diags);
        }

        Ok(YearPipeline {
            year,
            config: config.clone(),
            corpus,
            human_features,
            oracle,
            transformed,
            seed_author,
            diagnostics,
            resilience,
            frontend: FrontendStats::default(),
        })
    }

    /// Number of human authors.
    pub fn n_authors(&self) -> usize {
        self.corpus.spec.authors
    }

    /// Number of challenges.
    pub fn n_challenges(&self) -> usize {
        self.corpus.spec.challenges.len()
    }

    /// Challenge identities for this year.
    pub fn challenges(&self) -> &[ChallengeId] {
        &self.corpus.spec.challenges
    }

    /// The oracle labels of all transformed samples for one
    /// `(challenge, setting)` cell.
    pub fn labels_for(&self, challenge: usize, setting: Setting) -> Vec<usize> {
        self.transformed
            .iter()
            .filter(|t| t.challenge == challenge && t.setting == setting)
            .map(|t| t.oracle_label)
            .collect()
    }

    /// Oracle labels of every transformed sample.
    pub fn all_labels(&self) -> Vec<usize> {
        self.transformed.iter().map(|t| t.oracle_label).collect()
    }

    /// The human dataset (author labels), plus per-sample challenge
    /// groups for fold construction.
    pub fn human_dataset(&self) -> (Dataset, Vec<usize>) {
        let mut ds = Dataset::new(self.n_authors());
        let mut groups = Vec::new();
        for (sample, features) in self.corpus.samples.iter().zip(&self.human_features) {
            ds.push(features.clone(), sample.author);
            groups.push(sample.challenge);
        }
        (ds, groups)
    }

    /// The style of the human seed author (useful for diagnostics).
    pub fn seed_author_style(&self) -> AuthorStyle {
        AuthorStyle::for_author(self.config.seed, self.year, self.seed_author)
    }
}

/// The human-corpus + oracle stage shared by [`YearPipeline::try_build`]
/// and [`year_oracle`]: generate the year's corpus, featurize and lint
/// it (one artifact per sample, so the corpus is featurized AND linted
/// off a single parse each; sharding per sample keeps the counters a
/// pure function of the corpus), then train the non-ChatGPT oracle.
/// The oracle RNG stream is derived as `["oracle", year]` from the
/// root seed, so every caller trains byte-identical forests.
#[allow(clippy::type_complexity)]
fn oracle_stage(
    spec: &YearSpec,
    config: &ExperimentConfig,
    workers: usize,
) -> Result<
    (
        YearCorpus,
        Vec<Vec<f64>>,
        DiagnosticStats,
        FrontendStats,
        AuthorshipModel,
    ),
    PipelineError,
> {
    let corpus = generate_year(spec, config.seed);
    let analyzer = Analyzer::new();
    let extractor = FeatureExtractor::new(config.features.clone());
    let human: Vec<(Vec<f64>, DiagnosticStats, FrontendStats)> =
        pool::parallel_try_map_workers(workers, (0..corpus.samples.len()).collect(), |i| {
            let t0 = Instant::now();
            let artifact = Artifact::new(corpus.samples[i].source.as_str());
            let features = artifact
                .features(&extractor)
                .map_err(|e| PipelineError::Analysis {
                    stage: "featurize",
                    source: e,
                })?
                .as_ref()
                .clone();
            let mut diags = DiagnosticStats::default();
            diags.absorb(
                artifact
                    .diagnostics(&analyzer)
                    .map_err(|e| PipelineError::Analysis {
                        stage: "lint",
                        source: e,
                    })?,
            );
            let frontend = FrontendStats {
                cache_hits: 0,
                cache_misses: 1,
                node_hits: 0,
                node_misses: 0,
                frontend_ns: t0.elapsed().as_nanos(),
            };
            Ok((features, diags, frontend))
        })?;
    let mut human_features: Vec<Vec<f64>> = Vec::with_capacity(human.len());
    let mut diagnostics = DiagnosticStats::default();
    let mut frontend = FrontendStats::default();
    for (features, diags, fe) in human {
        human_features.push(features);
        diagnostics.merge(&diags);
        frontend.merge(&fe);
    }

    // Oracle: one class per human author.
    let mut human_ds = Dataset::new(spec.authors);
    for (sample, features) in corpus.samples.iter().zip(&human_features) {
        human_ds.push(features.clone(), sample.author);
    }
    let mut rng = Pcg64::seed_from(config.seed, &["oracle", &spec.year.to_string()]);
    let oracle = AuthorshipModel::from_features(extractor, &human_ds, &config.forest(), &mut rng);
    Ok((corpus, human_features, diagnostics, frontend, oracle))
}

/// Trains the year's oracle exactly as [`YearPipeline::try_build`]
/// does — same corpus, same features, same RNG stream — without
/// running the transformation stage. The serving layer's model
/// registry loads forests through this entry point, which is what
/// makes a served verdict byte-identical to the offline pipeline's
/// oracle for the same source.
///
/// # Errors
///
/// * [`PipelineError::UnsupportedYear`] — `year` outside 2017–2019.
/// * [`PipelineError::Analysis`] — a generated program was rejected
///   downstream (always a bug, reported as data).
pub fn year_oracle(year: u32, config: &ExperimentConfig) -> Result<AuthorshipModel, PipelineError> {
    let workers = pool::resolve_workers(config.workers);
    let spec = try_year_spec(year, config)?;
    let (_, _, _, _, oracle) = oracle_stage(&spec, config, workers)?;
    Ok(oracle)
}

/// The year's dataset spec at the configured scale (paper-scale specs
/// match [`YearSpec::paper`]).
fn try_year_spec(year: u32, config: &ExperimentConfig) -> Result<YearSpec, PipelineError> {
    let all = ChallengeId::all();
    let offset = match year {
        2017 => 0,
        2018 => 3,
        2019 => 6,
        other => return Err(PipelineError::UnsupportedYear(other)),
    };
    Ok(YearSpec {
        year,
        authors: config.scale.authors,
        challenges: all[offset..offset + config.scale.challenges].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_pipeline() -> YearPipeline {
        YearPipeline::build(2018, &ExperimentConfig::smoke())
    }

    #[test]
    fn pipeline_shapes_match_config() {
        let p = smoke_pipeline();
        let cfg = &p.config.scale;
        assert_eq!(p.corpus.len(), cfg.authors * cfg.challenges);
        assert_eq!(p.human_features.len(), p.corpus.len());
        // 4 settings x transforms x challenges.
        assert_eq!(p.transformed.len(), 4 * cfg.transforms * cfg.challenges);
        for t in &p.transformed {
            assert!(t.oracle_label < cfg.authors);
            assert_eq!(t.features.len(), p.oracle.extractor().dim());
        }
    }

    #[test]
    fn run_stats_lint_every_program_and_stay_error_free() {
        let p = smoke_pipeline();
        let d = &p.diagnostics;
        assert_eq!(d.units, p.corpus.len() + p.transformed.len());
        assert_eq!(d.errors, 0, "gated pipeline must be error-free: {d:?}");
        let summed: usize = d.per_pass.values().sum();
        assert_eq!(summed, d.errors + d.warnings);
    }

    #[test]
    fn settings_partition_the_transformed_set() {
        let p = smoke_pipeline();
        let per_cell = p.config.scale.transforms;
        for ci in 0..p.n_challenges() {
            for setting in Setting::all() {
                assert_eq!(p.labels_for(ci, setting).len(), per_cell);
            }
        }
    }

    #[test]
    fn human_dataset_is_author_labelled_and_grouped() {
        let p = smoke_pipeline();
        let (ds, groups) = p.human_dataset();
        assert_eq!(ds.len(), p.corpus.len());
        assert_eq!(groups.len(), ds.len());
        assert_eq!(ds.n_classes(), p.n_authors());
        assert!(groups.iter().all(|&g| g < p.n_challenges()));
    }

    #[test]
    fn setting_metadata_is_consistent() {
        for s in Setting::all() {
            assert_eq!(Setting::all()[s.index()], s);
        }
        assert_eq!(Setting::GptNct.notation(), "+N");
        assert_eq!(Setting::HumanCt.notation(), "±C");
        assert!(Setting::HumanNct.human_seed());
        assert!(!Setting::GptCt.human_seed());
        assert!(Setting::GptCt.chaining());
        assert!(!Setting::HumanNct.chaining());
    }

    #[test]
    fn parallel_build_matches_serial() {
        // The tentpole guarantee: the pool only changes wall-clock
        // time. A serial build (1 worker) and a wide build (8
        // workers) must agree byte-for-byte on every cached artifact.
        let mut serial_cfg = ExperimentConfig::smoke();
        serial_cfg.workers = Some(1);
        let mut parallel_cfg = ExperimentConfig::smoke();
        parallel_cfg.workers = Some(8);
        let serial = YearPipeline::build(2018, &serial_cfg);
        let parallel = YearPipeline::build(2018, &parallel_cfg);

        assert_eq!(serial.human_features, parallel.human_features);
        assert_eq!(serial.seed_author, parallel.seed_author);
        assert_eq!(serial.diagnostics, parallel.diagnostics);
        // FrontendStats equality is on the hit/miss counters (wall
        // clock is excluded): the artifact cache is sharded per
        // dispatch unit, so its traffic cannot depend on scheduling.
        assert_eq!(serial.frontend, parallel.frontend);
        assert_eq!(serial.transformed.len(), parallel.transformed.len());
        for (s, p) in serial.transformed.iter().zip(&parallel.transformed) {
            assert_eq!(s.sample.source, p.sample.source);
            assert_eq!(s.challenge, p.challenge);
            assert_eq!(s.setting, p.setting);
            assert_eq!(s.features, p.features);
            assert_eq!(s.oracle_label, p.oracle_label);
        }
    }

    #[test]
    fn build_is_deterministic() {
        let a = smoke_pipeline();
        let b = smoke_pipeline();
        assert_eq!(a.all_labels(), b.all_labels());
        assert_eq!(a.seed_author, b.seed_author);
    }

    #[test]
    fn year_oracle_matches_the_pipeline_oracle_byte_for_byte() {
        // The serving registry's guarantee: the standalone oracle and
        // the pipeline's oracle are the same model — identical
        // probability vectors on every human sample and on transformed
        // text alike.
        let config = ExperimentConfig::smoke();
        let p = YearPipeline::build(2018, &config);
        let standalone = year_oracle(2018, &config).unwrap();
        for features in p.human_features.iter().take(8) {
            assert_eq!(
                standalone.forest().predict_proba(features),
                p.oracle.forest().predict_proba(features)
            );
        }
        let t = &p.transformed[0];
        assert_eq!(
            standalone.forest().predict_proba(&t.features),
            p.oracle.forest().predict_proba(&t.features)
        );
        assert_eq!(
            standalone.predict_features(&t.features),
            t.oracle_label,
            "standalone oracle reproduces the cached label"
        );
    }

    #[test]
    fn year_oracle_rejects_out_of_range_years() {
        let err = year_oracle(1999, &ExperimentConfig::smoke()).unwrap_err();
        assert_eq!(err, PipelineError::UnsupportedYear(1999));
    }

    #[test]
    fn try_build_rejects_out_of_range_years() {
        let err = YearPipeline::try_build(2025, &ExperimentConfig::smoke()).unwrap_err();
        assert_eq!(err, PipelineError::UnsupportedYear(2025));
    }

    #[test]
    fn fault_free_config_reports_all_clean_resilience() {
        let p = smoke_pipeline();
        assert_eq!(p.resilience.calls as usize, p.transformed.len());
        assert_eq!(p.resilience.clean, p.resilience.calls);
        assert_eq!(p.resilience.retries, 0);
        assert_eq!(p.resilience.fidelity(), 1.0);
        assert!(p.transformed.iter().all(|t| t.outcome == Outcome::Clean));
    }

    #[test]
    fn recoverable_faults_leave_the_pipeline_byte_identical() {
        use synthattr_faults::FaultProfile;
        let plain_cfg = ExperimentConfig::smoke();
        let chaos_cfg = ExperimentConfig::smoke().with_faults(FaultProfile::recoverable(7, 0.20));
        let plain = YearPipeline::build(2017, &plain_cfg);
        let chaos = YearPipeline::build(2017, &chaos_cfg);

        assert_eq!(plain.transformed.len(), chaos.transformed.len());
        for (a, b) in plain.transformed.iter().zip(&chaos.transformed) {
            assert_eq!(a.sample.source, b.sample.source);
            assert_eq!(a.oracle_label, b.oracle_label);
        }
        assert!(chaos.resilience.recovered > 0, "{:?}", chaos.resilience);
        assert_eq!(chaos.resilience.fidelity(), 1.0);
        assert!(chaos.transformed.iter().all(|t| t.outcome.is_faithful()));
    }

    #[test]
    fn chatgpt_seeds_differ_from_human_seeds() {
        let p = smoke_pipeline();
        // The +N and ±N first steps come from different seeds, so their
        // sources should differ for at least one challenge.
        let gpt_first = p
            .transformed
            .iter()
            .find(|t| t.setting == Setting::GptNct && t.sample.step == 1)
            .unwrap();
        let human_first = p
            .transformed
            .iter()
            .find(|t| t.setting == Setting::HumanNct && t.sample.step == 1)
            .unwrap();
        assert_ne!(gpt_first.sample.source, human_first.sample.source);
    }
}
