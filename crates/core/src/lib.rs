//! Attribution pipelines and experiment drivers.
//!
//! This crate is the paper's "methodology" layer: it wires the corpus
//! generator, the LLM simulator, the feature extractor, and the
//! random-forest substrate into the exact experimental protocols of
//! *Attributing ChatGPT-Transformed Synthetic Code*, one driver per
//! table/figure:
//!
//! | Paper artifact | Driver |
//! |---|---|
//! | Tables I–III (datasets) | [`experiments::datasets`] |
//! | Table IV (number of styles) | [`experiments::styles`] |
//! | Tables V–VII (style diversity) | [`experiments::diversity`] |
//! | Table VIII (naive attribution) | [`experiments::attribution`] |
//! | Table IX (feature-based attribution) | [`experiments::attribution`] |
//! | Table X (binary classification) | [`experiments::binary`] |
//! | Figures 1–5 | [`experiments::figures`] |
//!
//! The heavy lifting is shared through [`pipeline::YearPipeline`],
//! which generates one year's corpora, runs the four transformation
//! settings (`+N`, `+C`, `±N`, `±C`), trains the 204-author oracle and
//! caches every feature vector, so each table driver is a thin
//! analysis pass.
//!
//! # Example
//!
//! ```
//! use synthattr_core::config::ExperimentConfig;
//! use synthattr_core::pipeline::YearPipeline;
//!
//! // Smoke scale: small corpus, fast forest — same code paths.
//! let cfg = ExperimentConfig::smoke();
//! let pipeline = YearPipeline::build(2017, &cfg);
//! let styles = synthattr_core::experiments::styles::run(&pipeline);
//! assert_eq!(styles.per_challenge.len(), cfg.scale.challenges);
//! ```

pub mod artifact;
pub mod config;
pub mod error;
pub mod experiments;
#[cfg(test)]
mod frontend_ab;
#[cfg(test)]
mod increment_ab;
pub mod model;
pub mod pipeline;

pub use artifact::{Artifact, ArtifactCache, FrontendStats};
pub use config::{ExperimentConfig, Scale};
pub use error::PipelineError;
pub use model::AuthorshipModel;
pub use pipeline::{year_oracle, Setting, YearPipeline};
