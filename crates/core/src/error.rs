//! Typed errors for fallible pipeline construction.
//!
//! [`crate::pipeline::YearPipeline::try_build`] surfaces every failure
//! mode a build can hit as a [`PipelineError`] instead of a panic;
//! the classic `build` stays a thin panicking wrapper for callers who
//! treat build failure as a bug (tests, examples, table drivers).

use std::error::Error;
use std::fmt;
use synthattr_gpt::GptError;
use synthattr_lang::ParseError;

/// Why a [`crate::pipeline::YearPipeline`] could not be built.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// The requested year is outside the paper's 2017–2019 range.
    UnsupportedYear(u32),
    /// A transformation stream failed irrecoverably (in practice: a
    /// seed outside the subset — service faults degrade, they don't
    /// error).
    Transform {
        /// Experiment year.
        year: u32,
        /// Challenge index within the year.
        challenge: usize,
        /// Setting notation (`+N`, `+C`, `±N`, `±C`).
        setting: &'static str,
        /// The underlying service error.
        source: GptError,
    },
    /// A generated or transformed program failed to parse in a
    /// downstream analysis stage (featurization or linting) — always
    /// a pipeline bug, surfaced as data for the caller to report.
    Analysis {
        /// Which stage rejected the program.
        stage: &'static str,
        /// The parse failure.
        source: ParseError,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::UnsupportedYear(y) => {
                write!(f, "paper years are 2017-2019, got {y}")
            }
            PipelineError::Transform {
                year,
                challenge,
                setting,
                source,
            } => write!(
                f,
                "transform stream {year}/ch{challenge}/{setting} failed: {source}"
            ),
            PipelineError::Analysis { stage, source } => {
                write!(f, "{stage} stage rejected a pipeline program: {source}")
            }
        }
    }
}

impl Error for PipelineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PipelineError::UnsupportedYear(_) => None,
            PipelineError::Transform { source, .. } => Some(source),
            PipelineError::Analysis { source, .. } => Some(source),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composes_with_box_dyn_error() {
        let err = PipelineError::Transform {
            year: 2018,
            challenge: 3,
            setting: "+N",
            source: GptError::Parse(ParseError::new("expected ';'", 9)),
        };
        let boxed: Box<dyn Error> = Box::new(err);
        assert!(boxed.to_string().contains("2018/ch3/+N"));
        let gpt = boxed.source().expect("chains to GptError");
        let parse = gpt.source().expect("chains to ParseError");
        assert!(parse.to_string().contains("line 9"));
    }

    #[test]
    fn unsupported_year_is_terminal() {
        let err = PipelineError::UnsupportedYear(1999);
        assert!(err.source().is_none());
        assert!(err.to_string().contains("1999"));
    }
}
