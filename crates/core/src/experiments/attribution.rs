//! Tables VIII and IX: 205-class attribution of transformed code.
//!
//! Protocol (paper §V-C, §VI-D):
//!
//! 1. build a "ChatGPT set" from the transformed samples — **naive**:
//!    the first response of every `(challenge, setting)` run, ignoring
//!    styles; **feature-based**: all samples sharing the dominant
//!    oracle label (the *target label*);
//! 2. combine the set (as class 205) with the 204 human authors;
//! 3. evaluate with one fold per challenge: train on 7 challenges,
//!    test on the held-out one;
//! 4. report per-fold 205-class accuracy, whether the ChatGPT set was
//!    recognized in the fold (`N`/`F` checkmark columns), and — for the
//!    feature-based approach — whether the *target* human author is
//!    still recognized (`T` column).

use crate::pipeline::YearPipeline;
use synthattr_ml::cv::group_folds;
use synthattr_ml::dataset::Dataset;
use synthattr_ml::forest::RandomForest;
use synthattr_ml::metrics::accuracy;
use synthattr_util::stats::ranked_histogram;
use synthattr_util::{table, Pcg64, Table};

/// How the ChatGPT class is assembled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Grouping {
    /// First responses only, no style grouping (Table VIII).
    Naive,
    /// Samples sharing the dominant predicted style (Table IX).
    FeatureBased,
}

/// Result of one attribution experiment (one year, one grouping).
#[derive(Debug, Clone, PartialEq)]
pub struct AttributionResult {
    /// The year.
    pub year: u32,
    /// The grouping used.
    pub grouping: Grouping,
    /// 205-class accuracy per challenge fold.
    pub fold_accuracy: Vec<f64>,
    /// Whether the ChatGPT set was recognized in each fold.
    pub chatgpt_ok: Vec<bool>,
    /// Whether the target author was recognized in each fold
    /// (feature-based only).
    pub target_ok: Option<Vec<bool>>,
    /// The dominant oracle label (the paper's "target label").
    pub target_label: usize,
    /// Size of the assembled ChatGPT set.
    pub set_size: usize,
}

impl AttributionResult {
    /// Mean fold accuracy (the paper's `A` row, `205` column).
    pub fn avg_accuracy(&self) -> f64 {
        mean(&self.fold_accuracy)
    }

    /// Fraction of folds where the ChatGPT set was recognized (the
    /// paper's `N`/`F` average: 100 / 50 / 37.5 …).
    pub fn chatgpt_pct(&self) -> f64 {
        fraction_true(&self.chatgpt_ok)
    }

    /// Fraction of folds where the target author was recognized.
    pub fn target_pct(&self) -> Option<f64> {
        self.target_ok.as_ref().map(|v| fraction_true(v))
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

fn fraction_true(xs: &[bool]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().filter(|&&b| b).count() as f64 / xs.len() as f64
    }
}

/// Runs the attribution experiment for one year and grouping.
pub fn run(p: &YearPipeline, grouping: Grouping) -> AttributionResult {
    run_with_selection(p, grouping, None)
}

/// Like [`run`], but optionally reduces the feature space to the
/// `top_k` highest-information-gain features before training (the
/// Caliskan-Islam/WEKA feature-selection step; selection is computed
/// on each fold's training split only, so no test leakage).
pub fn run_with_selection(
    p: &YearPipeline,
    grouping: Grouping,
    top_k: Option<usize>,
) -> AttributionResult {
    let labels = p.all_labels();
    let target_label = ranked_histogram(&labels)
        .first()
        .map(|(l, _)| *l)
        .expect("transformed set is non-empty");

    // Assemble the ChatGPT set.
    let set: Vec<usize> = match grouping {
        // "Users typically accept the first response": the naive class
        // is exactly one sample per challenge — the initial transformed
        // response of the ChatGPT-seeded run — with no style grouping.
        Grouping::Naive => p
            .transformed
            .iter()
            .enumerate()
            .filter(|(_, t)| t.sample.step == 1 && t.setting == crate::pipeline::Setting::GptNct)
            .map(|(i, _)| i)
            .collect(),
        Grouping::FeatureBased => p
            .transformed
            .iter()
            .enumerate()
            .filter(|(_, t)| t.oracle_label == target_label)
            .map(|(i, _)| i)
            .collect(),
    };

    // Combined 205-class dataset with per-challenge groups.
    let n_authors = p.n_authors();
    let gpt_class = n_authors;
    let mut ds = Dataset::new(n_authors + 1);
    let mut groups = Vec::new();
    for (sample, features) in p.corpus.samples.iter().zip(&p.human_features) {
        ds.push(features.clone(), sample.author);
        groups.push(sample.challenge);
    }
    for &i in &set {
        let entry = &p.transformed[i];
        ds.push(entry.features.as_ref().clone(), gpt_class);
        groups.push(entry.challenge);
    }

    // One fold per challenge.
    let mut fold_accuracy = Vec::new();
    let mut chatgpt_ok = Vec::new();
    let mut target_ok = Vec::new();
    for (fi, fold) in group_folds(&groups).into_iter().enumerate() {
        let mut train = ds.subset(&fold.train);
        // Optional information-gain selection, fitted on the fold's
        // training split only.
        let columns = top_k.map(|k| synthattr_ml::select::select_top_k(&train, k));
        if let Some(cols) = &columns {
            train = train.project(cols);
        }
        let mut rng = Pcg64::seed_from(
            p.config.seed,
            &[
                "attribution",
                &p.year.to_string(),
                if grouping == Grouping::Naive {
                    "naive"
                } else {
                    "feature"
                },
                &fi.to_string(),
            ],
        );
        let forest = RandomForest::fit(&train, &p.config.forest(), &mut rng);
        let truth: Vec<usize> = fold.test.iter().map(|&i| ds.label(i)).collect();
        // Bulk prediction through the pool-parallel batch API (order-
        // preserving, so results match the per-row loop exactly).
        let pred: Vec<usize> = match &columns {
            Some(cols) => {
                let projected: Vec<Vec<f64>> = fold
                    .test
                    .iter()
                    .map(|&i| cols.iter().map(|&c| ds.row(i)[c]).collect())
                    .collect();
                let rows: Vec<&[f64]> = projected.iter().map(Vec::as_slice).collect();
                forest.predict_batch(&rows)
            }
            None => {
                let rows: Vec<&[f64]> = fold.test.iter().map(|&i| ds.row(i)).collect();
                forest.predict_batch(&rows)
            }
        };
        fold_accuracy.push(accuracy(&pred, &truth));
        chatgpt_ok.push(class_recognized(&pred, &truth, gpt_class));
        target_ok.push(class_recognized(&pred, &truth, target_label));
    }

    AttributionResult {
        year: p.year,
        grouping,
        fold_accuracy,
        chatgpt_ok,
        target_ok: match grouping {
            Grouping::FeatureBased => Some(target_ok),
            Grouping::Naive => None,
        },
        target_label,
        set_size: set.len(),
    }
}

/// A class counts as recognized in a fold when at least half of its
/// test samples are predicted correctly (vacuously true when the fold
/// holds none of its samples).
fn class_recognized(pred: &[usize], truth: &[usize], class: usize) -> bool {
    let total = truth.iter().filter(|&&t| t == class).count();
    if total == 0 {
        return true;
    }
    let correct = pred
        .iter()
        .zip(truth)
        .filter(|(p, t)| **t == class && **p == class)
        .count();
    correct * 2 >= total
}

/// Renders Table VIII (naive results for up to three years).
pub fn render_naive(results: &[AttributionResult]) -> Table {
    let mut header = vec!["C".to_string()];
    for r in results {
        header.push(format!("{} 205", r.year));
        header.push(format!("{} N", r.year));
    }
    let mut t = Table::new(header).with_title("Table VIII: accuracy (naive) for 205 authors");
    render_rows(results, &mut t, false);
    t
}

/// Renders Table IX (feature-based results for up to three years).
pub fn render_feature_based(results: &[AttributionResult]) -> Table {
    let mut header = vec!["C".to_string()];
    for r in results {
        header.push(format!("{} 205", r.year));
        header.push(format!("{} T", r.year));
        header.push(format!("{} F", r.year));
    }
    let mut t = Table::new(header).with_title("Table IX: accuracy (feature-based) for 205 authors");
    render_rows(results, &mut t, true);
    t
}

fn render_rows(results: &[AttributionResult], t: &mut Table, with_target: bool) {
    let folds = results
        .iter()
        .map(|r| r.fold_accuracy.len())
        .max()
        .unwrap_or(0);
    for fi in 0..folds {
        let mut row = vec![format!("C{}", fi + 1)];
        for r in results {
            row.push(
                r.fold_accuracy
                    .get(fi)
                    .map(|a| table::pct(*a))
                    .unwrap_or_default(),
            );
            if with_target {
                if let Some(target) = &r.target_ok {
                    row.push(target.get(fi).map(|&b| table::mark(b)).unwrap_or_default());
                }
            }
            row.push(
                r.chatgpt_ok
                    .get(fi)
                    .map(|&b| table::mark(b))
                    .unwrap_or_default(),
            );
        }
        t.row(row);
    }
    let mut avg = vec!["A".to_string()];
    for r in results {
        avg.push(table::pct(r.avg_accuracy()));
        if with_target {
            if let Some(tp) = r.target_pct() {
                avg.push(table::pct(tp));
            }
        }
        avg.push(table::pct(r.chatgpt_pct()));
    }
    t.row(avg);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;

    fn pipeline(year: u32) -> YearPipeline {
        YearPipeline::build(year, &ExperimentConfig::smoke())
    }

    #[test]
    fn feature_based_set_is_style_pure() {
        let p = pipeline(2018);
        let r = run(&p, Grouping::FeatureBased);
        assert!(r.set_size > 0);
        // Every member of the set carries the target label by
        // construction.
        let members = p
            .transformed
            .iter()
            .filter(|t| t.oracle_label == r.target_label)
            .count();
        assert_eq!(members, r.set_size);
        assert!(r.target_ok.is_some());
    }

    #[test]
    fn naive_set_is_one_first_response_per_challenge() {
        let p = pipeline(2018);
        let r = run(&p, Grouping::Naive);
        assert_eq!(r.set_size, p.n_challenges());
        assert!(r.target_ok.is_none());
    }

    #[test]
    fn fold_counts_match_challenges() {
        let p = pipeline(2017);
        let r = run(&p, Grouping::FeatureBased);
        assert_eq!(r.fold_accuracy.len(), p.n_challenges());
        assert_eq!(r.chatgpt_ok.len(), p.n_challenges());
        for a in &r.fold_accuracy {
            assert!((0.0..=1.0).contains(a));
        }
    }

    #[test]
    fn feature_based_recognizes_chatgpt_at_least_as_often_as_naive() {
        // The paper's central comparison (Tables VIII vs IX).
        let p = pipeline(2018);
        let naive = run(&p, Grouping::Naive);
        let feature = run(&p, Grouping::FeatureBased);
        assert!(
            feature.chatgpt_pct() >= naive.chatgpt_pct(),
            "feature-based {:.2} should be >= naive {:.2}",
            feature.chatgpt_pct(),
            naive.chatgpt_pct()
        );
    }

    #[test]
    fn renders_paper_layout() {
        let p = pipeline(2017);
        let naive = run(&p, Grouping::Naive);
        let feature = run(&p, Grouping::FeatureBased);
        let t8 = render_naive(&[naive]).to_string();
        assert!(t8.contains("2017 205"));
        assert!(t8.contains("| A"));
        let t9 = render_feature_based(&[feature]).to_string();
        assert!(t9.contains("2017 T"));
        assert!(t9.contains("2017 F"));
    }

    #[test]
    fn feature_selection_variant_runs_and_stays_sane() {
        let p = pipeline(2017);
        let full = run(&p, Grouping::FeatureBased);
        let selected = run_with_selection(&p, Grouping::FeatureBased, Some(60));
        assert_eq!(selected.fold_accuracy.len(), full.fold_accuracy.len());
        // A 60-feature model should stay in the same accuracy ballpark
        // as the full model (information gain keeps the signal).
        assert!(
            selected.avg_accuracy() > full.avg_accuracy() - 0.25,
            "selected {:.2} vs full {:.2}",
            selected.avg_accuracy(),
            full.avg_accuracy()
        );
    }

    #[test]
    fn class_recognized_logic() {
        // 2 of 3 correct -> recognized; 1 of 3 -> not.
        assert!(class_recognized(&[5, 5, 0], &[5, 5, 5], 5));
        assert!(!class_recognized(&[5, 0, 0], &[5, 5, 5], 5));
        // Vacuous truth when absent.
        assert!(class_recognized(&[1], &[1], 7));
    }
}
