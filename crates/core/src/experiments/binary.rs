//! Table X: binary classification (ChatGPT vs. human).
//!
//! Per year: the 1,600 transformed samples (class "ChatGPT") against a
//! challenge-balanced subsample of the human corpus (class "human"),
//! evaluated with one fold per challenge. The combined experiment
//! merges three years at 5 challenges each (6,000 samples) and reports
//! per-(year, challenge) cell accuracies.

use crate::pipeline::YearPipeline;
use synthattr_ml::cv::group_folds;
use synthattr_ml::dataset::Dataset;
use synthattr_ml::forest::RandomForest;
use synthattr_ml::metrics::accuracy;
use synthattr_util::{table, Pcg64, Table};

/// Binary result for one year.
#[derive(Debug, Clone, PartialEq)]
pub struct BinaryResult {
    /// The year.
    pub year: u32,
    /// Accuracy per challenge fold.
    pub per_challenge: Vec<f64>,
}

impl BinaryResult {
    /// Mean accuracy (the paper's `A` row).
    pub fn avg(&self) -> f64 {
        if self.per_challenge.is_empty() {
            0.0
        } else {
            self.per_challenge.iter().sum::<f64>() / self.per_challenge.len() as f64
        }
    }
}

/// Combined three-year result.
#[derive(Debug, Clone, PartialEq)]
pub struct CombinedBinaryResult {
    /// Years in column order.
    pub years: Vec<u32>,
    /// `cells[challenge][year]` accuracy.
    pub cells: Vec<Vec<f64>>,
}

impl CombinedBinaryResult {
    /// Column (per-year) averages.
    pub fn year_avgs(&self) -> Vec<f64> {
        (0..self.years.len())
            .map(|y| {
                let col: Vec<f64> = self.cells.iter().map(|row| row[y]).collect();
                col.iter().sum::<f64>() / col.len().max(1) as f64
            })
            .collect()
    }

    /// Overall average (the paper's "All" column).
    pub fn all_avg(&self) -> f64 {
        let flat: Vec<f64> = self.cells.iter().flatten().copied().collect();
        flat.iter().sum::<f64>() / flat.len().max(1) as f64
    }
}

/// Builds the per-year binary dataset: all transformed samples vs a
/// challenge-balanced human subsample of the same size.
fn binary_dataset(p: &YearPipeline, challenges: usize) -> (Dataset, Vec<usize>) {
    let per_challenge_gpt = p.transformed.len() / p.n_challenges();
    let humans_per_challenge = p.n_authors();
    // Both classes contribute the same count per challenge (the paper
    // uses 200 each; reduced scales balance to whichever side is
    // smaller).
    let per_class = per_challenge_gpt.min(humans_per_challenge);
    let mut ds = Dataset::new(2);
    let mut groups = Vec::new();
    let mut rng = Pcg64::seed_from(p.config.seed, &["binary-subsample", &p.year.to_string()]);
    for ci in 0..challenges {
        // ChatGPT class (label 1).
        let gpt: Vec<usize> = p
            .transformed
            .iter()
            .enumerate()
            .filter(|(_, t)| t.challenge == ci)
            .map(|(i, _)| i)
            .collect();
        for idx in rng.sample_indices(gpt.len(), per_class.min(gpt.len())) {
            ds.push(p.transformed[gpt[idx]].features.as_ref().clone(), 1);
            groups.push(ci);
        }
        // Human class (label 0).
        let humans: Vec<usize> = p
            .corpus
            .samples
            .iter()
            .enumerate()
            .filter(|(_, s)| s.challenge == ci)
            .map(|(i, _)| i)
            .collect();
        for idx in rng.sample_indices(humans.len(), per_class.min(humans.len())) {
            ds.push(p.human_features[humans[idx]].clone(), 0);
            groups.push(ci);
        }
    }
    (ds, groups)
}

/// Runs the individual-year binary experiment.
pub fn run_individual(p: &YearPipeline) -> BinaryResult {
    let (ds, groups) = binary_dataset(p, p.n_challenges());
    let mut per_challenge = Vec::new();
    for (fi, fold) in group_folds(&groups).into_iter().enumerate() {
        let train = ds.subset(&fold.train);
        let mut rng = Pcg64::seed_from(
            p.config.seed,
            &["binary", &p.year.to_string(), &fi.to_string()],
        );
        let forest = RandomForest::fit(&train, &p.config.forest(), &mut rng);
        let truth: Vec<usize> = fold.test.iter().map(|&i| ds.label(i)).collect();
        let rows: Vec<&[f64]> = fold.test.iter().map(|&i| ds.row(i)).collect();
        per_challenge.push(accuracy(&forest.predict_batch(&rows), &truth));
    }
    BinaryResult {
        year: p.year,
        per_challenge,
    }
}

/// Runs the combined experiment over multiple years (the paper uses 5
/// challenges per year to keep the combined dataset balanced).
pub fn run_combined(pipelines: &[YearPipeline]) -> CombinedBinaryResult {
    assert!(!pipelines.is_empty(), "need at least one year");
    let challenges = pipelines
        .iter()
        .map(|p| p.n_challenges())
        .min()
        .unwrap()
        .min(5);

    // Merge: group id = year_index * challenges + challenge.
    let mut ds = Dataset::new(2);
    let mut groups = Vec::new();
    for (yi, p) in pipelines.iter().enumerate() {
        let (yds, ygroups) = binary_dataset(p, challenges);
        for (i, &group) in ygroups.iter().enumerate() {
            ds.push(yds.row(i).to_vec(), yds.label(i));
            groups.push(yi * challenges + group);
        }
    }

    let mut cells = vec![vec![0.0f64; pipelines.len()]; challenges];
    for (fi, fold) in group_folds(&groups).into_iter().enumerate() {
        let yi = fi / challenges;
        let ci = fi % challenges;
        let train = ds.subset(&fold.train);
        let mut rng = Pcg64::seed_from(
            pipelines[0].config.seed,
            &["binary-combined", &fi.to_string()],
        );
        let forest = RandomForest::fit(&train, &pipelines[0].config.forest(), &mut rng);
        let truth: Vec<usize> = fold.test.iter().map(|&i| ds.label(i)).collect();
        let rows: Vec<&[f64]> = fold.test.iter().map(|&i| ds.row(i)).collect();
        cells[ci][yi] = accuracy(&forest.predict_batch(&rows), &truth);
    }
    CombinedBinaryResult {
        years: pipelines.iter().map(|p| p.year).collect(),
        cells,
    }
}

/// Renders Table X from individual and combined results.
pub fn render(individual: &[BinaryResult], combined: Option<&CombinedBinaryResult>) -> Table {
    let mut header: Vec<String> = vec!["C".into()];
    for r in individual {
        header.push(format!("Ind {}", r.year));
    }
    if let Some(c) = combined {
        for y in &c.years {
            header.push(format!("Comb {y}"));
        }
        header.push("All".into());
    }
    let mut t = Table::new(header).with_title("Table X: binary classification accuracy");
    let rows = individual
        .iter()
        .map(|r| r.per_challenge.len())
        .max()
        .unwrap_or(0);
    for ci in 0..rows {
        let mut row = vec![format!("C{}", ci + 1)];
        for r in individual {
            row.push(
                r.per_challenge
                    .get(ci)
                    .map(|a| table::pct(*a))
                    .unwrap_or_default(),
            );
        }
        if let Some(c) = combined {
            for yi in 0..c.years.len() {
                row.push(
                    c.cells
                        .get(ci)
                        .map(|r| table::pct(r[yi]))
                        .unwrap_or_default(),
                );
            }
            row.push(String::new());
        }
        t.row(row);
    }
    let mut avg = vec!["A".to_string()];
    for r in individual {
        avg.push(table::pct(r.avg()));
    }
    if let Some(c) = combined {
        for a in c.year_avgs() {
            avg.push(table::pct(a));
        }
        avg.push(table::pct(c.all_avg()));
    }
    t.row(avg);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;

    fn pipeline(year: u32) -> YearPipeline {
        YearPipeline::build(year, &ExperimentConfig::smoke())
    }

    #[test]
    fn individual_binary_is_accurate() {
        let p = pipeline(2018);
        let r = run_individual(&p);
        assert_eq!(r.per_challenge.len(), p.n_challenges());
        // The paper reports ~90%; the smoke-scale floor is generous but
        // must be far above chance.
        assert!(r.avg() > 0.7, "binary accuracy too low: {:.3}", r.avg());
    }

    #[test]
    fn binary_dataset_is_balanced_per_challenge() {
        let p = pipeline(2017);
        let (ds, groups) = binary_dataset(&p, p.n_challenges());
        for ci in 0..p.n_challenges() {
            let gpt = groups
                .iter()
                .enumerate()
                .filter(|(i, &g)| g == ci && ds.label(*i) == 1)
                .count();
            let human = groups
                .iter()
                .enumerate()
                .filter(|(i, &g)| g == ci && ds.label(*i) == 0)
                .count();
            assert_eq!(gpt, human, "challenge {ci} unbalanced");
        }
    }

    #[test]
    fn combined_has_year_cells() {
        let ps = vec![pipeline(2017), pipeline(2018)];
        let r = run_combined(&ps);
        assert_eq!(r.years, vec![2017, 2018]);
        assert_eq!(
            r.cells.len(),
            ps[0].n_challenges().min(5).min(ps[1].n_challenges())
        );
        for row in &r.cells {
            assert_eq!(row.len(), 2);
            for &a in row {
                assert!((0.0..=1.0).contains(&a));
            }
        }
        assert!(r.all_avg() > 0.6, "combined accuracy: {:.3}", r.all_avg());
        assert_eq!(r.year_avgs().len(), 2);
    }

    #[test]
    fn render_contains_all_columns() {
        let p = pipeline(2017);
        let ind = run_individual(&p);
        let comb = run_combined(std::slice::from_ref(&p));
        let text = render(&[ind], Some(&comb)).to_string();
        assert!(text.contains("Ind 2017"));
        assert!(text.contains("Comb 2017"));
        assert!(text.contains("All"));
    }
}
