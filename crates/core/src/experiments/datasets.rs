//! Tables I–III: dataset composition summaries.
//!
//! These tables describe corpora rather than results; the drivers here
//! regenerate them from actual pipeline state so that any size bug in
//! the generator or transformation drivers shows up as a table
//! mismatch rather than passing silently.

use crate::pipeline::{Setting, YearPipeline};
use synthattr_util::Table;

/// One row of Table I.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableIRow {
    /// Year label.
    pub year: u32,
    /// Distinct authors.
    pub authors: usize,
    /// Challenge count.
    pub challenges: usize,
    /// Total samples.
    pub total: usize,
}

/// Builds Table I (non-ChatGPT training corpora) from pipelines.
pub fn table_i(pipelines: &[YearPipeline]) -> Vec<TableIRow> {
    pipelines
        .iter()
        .map(|p| TableIRow {
            year: p.year,
            authors: p.n_authors(),
            challenges: p.n_challenges(),
            total: p.corpus.len(),
        })
        .collect()
}

/// Renders Table I in the paper's layout.
pub fn render_table_i(rows: &[TableIRow]) -> Table {
    let mut t = Table::new(vec![
        "Dataset",
        "Authors",
        "Challenges",
        "Language",
        "Total",
    ])
    .with_title("Table I: Non-ChatGPT code datasets");
    for r in rows {
        t.row(vec![
            format!("GCJ {}", r.year),
            r.authors.to_string(),
            r.challenges.to_string(),
            "C++".into(),
            r.total.to_string(),
        ]);
    }
    t
}

/// One row of Table II.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableIIRow {
    /// Year label.
    pub year: u32,
    /// Samples per setting per challenge, in `+N, +C, ±N, ±C` order.
    pub per_setting: [usize; 4],
    /// Total transformed samples for the year.
    pub total: usize,
}

/// Builds Table II (transformed corpora) from pipelines.
pub fn table_ii(pipelines: &[YearPipeline]) -> Vec<TableIIRow> {
    pipelines
        .iter()
        .map(|p| {
            let mut per_setting = [0usize; 4];
            for s in Setting::all() {
                // Count per challenge (constant across challenges).
                per_setting[s.index()] = p.labels_for(0, s).len();
            }
            TableIIRow {
                year: p.year,
                per_setting,
                total: p.transformed.len(),
            }
        })
        .collect()
}

/// Renders Table II in the paper's layout.
pub fn render_table_ii(rows: &[TableIIRow]) -> Table {
    let mut t = Table::new(vec!["Dataset", "+N", "+C", "±N", "±C", "Total"])
        .with_title("Table II: ChatGPT-transformed datasets (per challenge)");
    for r in rows {
        let per_challenge: usize = r.per_setting.iter().sum();
        t.row(vec![
            format!("GCJ {}", r.year),
            r.per_setting[0].to_string(),
            r.per_setting[1].to_string(),
            r.per_setting[2].to_string(),
            r.per_setting[3].to_string(),
            format!(
                "{} ({}x{})",
                r.total,
                per_challenge,
                r.total / per_challenge.max(1)
            ),
        ]);
    }
    t
}

/// One row of Table III.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableIIIRow {
    /// Dataset label (year or "Combined").
    pub name: String,
    /// Challenges used.
    pub challenges: usize,
    /// Codes per challenge (both classes together).
    pub codes_per_challenge: usize,
    /// Total samples.
    pub total: usize,
}

/// Builds Table III (binary-classification corpora).
///
/// The combined dataset keeps the per-class balance by reducing each
/// year to 5 challenges, exactly as the paper does.
pub fn table_iii(pipelines: &[YearPipeline]) -> Vec<TableIIIRow> {
    let mut rows: Vec<TableIIIRow> = pipelines
        .iter()
        .map(|p| {
            let per_challenge_gpt = p.transformed.len() / p.n_challenges();
            TableIIIRow {
                name: format!("GCJ {}", p.year),
                challenges: p.n_challenges(),
                codes_per_challenge: per_challenge_gpt,
                total: 2 * p.transformed.len(),
            }
        })
        .collect();
    if pipelines.len() > 1 {
        let combined_challenges: usize = pipelines.iter().map(|p| p.n_challenges().min(5)).sum();
        let per = rows[0].codes_per_challenge;
        rows.push(TableIIIRow {
            name: "Combined".into(),
            challenges: combined_challenges,
            codes_per_challenge: per,
            total: combined_challenges * per * 2,
        });
    }
    rows
}

/// Renders Table III in the paper's layout.
pub fn render_table_iii(rows: &[TableIIIRow]) -> Table {
    let mut t = Table::new(vec![
        "Dataset",
        "# of challenges",
        "# of codes",
        "Language",
        "Total",
    ])
    .with_title("Table III: Binary classification datasets");
    for r in rows {
        t.row(vec![
            r.name.clone(),
            r.challenges.to_string(),
            r.codes_per_challenge.to_string(),
            "C++".into(),
            r.total.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;

    fn pipelines() -> Vec<YearPipeline> {
        vec![
            YearPipeline::build(2017, &ExperimentConfig::smoke()),
            YearPipeline::build(2018, &ExperimentConfig::smoke()),
        ]
    }

    #[test]
    fn table_i_shape() {
        let ps = pipelines();
        let rows = table_i(&ps);
        assert_eq!(rows.len(), 2);
        let cfg = ExperimentConfig::smoke().scale;
        for r in &rows {
            assert_eq!(r.authors, cfg.authors);
            assert_eq!(r.total, cfg.authors * cfg.challenges);
        }
        let rendered = render_table_i(&rows).to_string();
        assert!(rendered.contains("GCJ 2017"));
    }

    #[test]
    fn table_ii_settings_are_equal_sized() {
        let ps = pipelines();
        let rows = table_ii(&ps);
        let cfg = ExperimentConfig::smoke().scale;
        for r in &rows {
            assert_eq!(r.per_setting, [cfg.transforms; 4]);
            assert_eq!(r.total, 4 * cfg.transforms * cfg.challenges);
        }
        let rendered = render_table_ii(&rows).to_string();
        assert!(rendered.contains("±N"));
    }

    #[test]
    fn table_iii_combined_balances() {
        let ps = pipelines();
        let rows = table_iii(&ps);
        assert_eq!(rows.len(), 3);
        let combined = rows.last().unwrap();
        assert_eq!(combined.name, "Combined");
        // Combined total = challenges * per-challenge * 2 classes.
        assert_eq!(
            combined.total,
            combined.challenges * combined.codes_per_challenge * 2
        );
        let rendered = render_table_iii(&rows).to_string();
        assert!(rendered.contains("Combined"));
    }

    #[test]
    fn paper_scale_arithmetic_matches_the_paper() {
        // Pure arithmetic check against the published numbers, without
        // building paper-scale pipelines.
        let cfg = ExperimentConfig::paper().scale;
        assert_eq!(cfg.authors * cfg.challenges, 1632); // Table I total
        assert_eq!(4 * cfg.transforms, 200); // Table II per challenge
        assert_eq!(4 * cfg.transforms * cfg.challenges, 1600); // Table II total
        assert_eq!(2 * 1600, 3200); // Table III per year
        assert_eq!(5 * 3 * 200 * 2, 6000); // Table III combined
    }
}
