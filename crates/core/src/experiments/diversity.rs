//! Tables V–VII: the diversity of styles.
//!
//! Histogram of the oracle's predicted labels over all transformed
//! samples of a year, reported as `A<author>` with occurrence counts
//! and percentages, filtering labels with fewer than two occurrences
//! (the paper's convention).

use crate::pipeline::YearPipeline;
use synthattr_util::stats::ranked_histogram;
use synthattr_util::Table;

/// One diversity histogram (Table V, VI, or VII depending on year).
#[derive(Debug, Clone, PartialEq)]
pub struct Diversity {
    /// The year.
    pub year: u32,
    /// `(label, occurrences, percentage)` sorted by descending count.
    pub rows: Vec<(String, usize, f64)>,
    /// Labels filtered out for having fewer than two occurrences.
    pub filtered: usize,
    /// Total samples histogrammed.
    pub total: usize,
}

impl Diversity {
    /// Share of the most common label (the paper highlights 77.1% for
    /// GCJ 2017).
    pub fn top_share(&self) -> f64 {
        self.rows.first().map(|r| r.2 / 100.0).unwrap_or(0.0)
    }

    /// Combined share of the top `k` labels.
    pub fn top_k_share(&self, k: usize) -> f64 {
        self.rows.iter().take(k).map(|r| r.2 / 100.0).sum()
    }
}

/// Runs the diversity analysis for one year.
pub fn run(p: &YearPipeline) -> Diversity {
    let labels = p.all_labels();
    let total = labels.len();
    let hist = ranked_histogram(&labels);
    let filtered = hist.iter().filter(|(_, c)| *c < 2).count();
    let rows = hist
        .into_iter()
        .filter(|(_, c)| *c >= 2)
        .map(|(label, count)| {
            (
                format!("A{label}"),
                count,
                100.0 * count as f64 / total.max(1) as f64,
            )
        })
        .collect();
    Diversity {
        year: p.year,
        rows,
        filtered,
        total,
    }
}

/// Renders the histogram in the paper's layout.
pub fn render(d: &Diversity) -> Table {
    let table_no = match d.year {
        2017 => "V",
        2018 => "VI",
        2019 => "VII",
        _ => "V?",
    };
    let mut t = Table::new(vec!["Label", "Occurrences", "Percentage"]).with_title(format!(
        "Table {}: the diversity of styles - GCJ {} (filtered {} singleton labels)",
        table_no, d.year, d.filtered
    ));
    for (label, count, pct) in &d.rows {
        t.row(vec![label.clone(), count.to_string(), format!("{pct:.1}")]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;

    #[test]
    fn histogram_is_sorted_and_consistent() {
        let p = YearPipeline::build(2019, &ExperimentConfig::smoke());
        let d = run(&p);
        assert_eq!(d.total, p.transformed.len());
        // Sorted by descending count.
        for w in d.rows.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // Percentages are consistent with counts.
        for (_, count, pct) in &d.rows {
            let expect = 100.0 * *count as f64 / d.total as f64;
            assert!((pct - expect).abs() < 1e-9);
        }
        // All rows kept have >= 2 occurrences.
        assert!(d.rows.iter().all(|r| r.1 >= 2));
    }

    #[test]
    fn shares_are_sane() {
        let p = YearPipeline::build(2017, &ExperimentConfig::smoke());
        let d = run(&p);
        assert!(d.top_share() > 0.0 && d.top_share() <= 1.0);
        assert!(d.top_k_share(3) >= d.top_share());
        assert!(d.top_k_share(100) <= 1.0 + 1e-9);
    }

    #[test]
    fn skew_follows_year_calibration() {
        // 2017's pool is far more skewed than 2018's; the oracle-label
        // histogram should reflect that ordering.
        let p17 = YearPipeline::build(2017, &ExperimentConfig::smoke());
        let p18 = YearPipeline::build(2018, &ExperimentConfig::smoke());
        let d17 = run(&p17);
        let d18 = run(&p18);
        assert!(
            d17.top_share() > d18.top_share(),
            "2017 top share {:.2} should exceed 2018 {:.2}",
            d17.top_share(),
            d18.top_share()
        );
    }

    #[test]
    fn render_uses_paper_table_numbers() {
        let p = YearPipeline::build(2018, &ExperimentConfig::smoke());
        let d = run(&p);
        let text = render(&d).to_string();
        assert!(text.contains("Table VI"));
        assert!(text.contains("GCJ 2018"));
    }
}
