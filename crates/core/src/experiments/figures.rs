//! Figures 1–5: pipeline schematic, NCT/CT topology, and the
//! original/transformed code listings.

use crate::pipeline::{Setting, YearPipeline};
use synthattr_gen::challenges::ChallengeId;
use synthattr_gen::corpus::Origin;
use synthattr_gen::naming::{Case, NamingStyle, Verbosity};
use synthattr_gen::style::{
    AuthorStyle, CommentStyle, IoStyle, LoopStyle, PrologueStyle, StructureStyle,
};
use synthattr_gpt::chain::{run_ct, run_nct};
use synthattr_gpt::pool::YearPool;
use synthattr_gpt::transform::Transformer;
use synthattr_lang::render::{BraceStyle, Indent, RenderStyle};
use synthattr_util::Pcg64;

/// Figure 1: a textual trace of the transformation/attribution
/// pipeline, with the actual sample counts of `p`.
pub fn figure1(p: &YearPipeline) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 1 - ChatGPT code transformation pipeline (GCJ {})\n",
        p.year
    ));
    out.push_str(&format!(
        "  (1) seeds: {} ChatGPT-generated + {} non-ChatGPT (author A{}) codes\n",
        p.n_challenges(),
        p.n_challenges(),
        p.seed_author
    ));
    out.push_str(&format!(
        "  (2) transform: {} samples across {{+N,+C,±N,±C}} x {} challenges\n",
        p.transformed.len(),
        p.n_challenges()
    ));
    out.push_str(&format!(
        "  (3) oracle: {}-author model assigns styles; {} distinct styles observed\n",
        p.n_authors(),
        {
            let mut labels = p.all_labels();
            labels.sort_unstable();
            labels.dedup();
            labels.len()
        }
    ));
    out.push_str("  (4) feature-based grouping -> 205-class model -> Tables VIII/IX\n");
    out
}

/// Figure 2: NCT vs CT chain topology, shown by the latent style index
/// chosen at every step of short real runs.
pub fn figure2(year: u32, seed: u64, steps: usize) -> String {
    let pool = YearPool::calibrated(year, seed);
    let transformer = Transformer::new(&pool);
    let style = paper_style();
    let seed_code =
        ChallengeId::HorseRace.render_solution(&style, Pcg64::seed_from(seed, &["fig2-seed"]));
    let mut rng = Pcg64::seed_from(seed, &["fig2-nct"]);
    let nct = run_nct(&transformer, &seed_code, steps, Origin::ChatGpt, &mut rng);
    let mut rng = Pcg64::seed_from(seed, &["fig2-ct"]);
    let ct = run_ct(&transformer, &seed_code, steps, Origin::ChatGpt, &mut rng);

    let mut out = String::new();
    out.push_str("Figure 2 - Non-chaining (NCT) vs chaining (CT)\n");
    out.push_str("  NCT: CGc0 -> GPT -> CGc_i   (independent)\n   ");
    for s in &nct {
        out.push_str(&format!(" CGc0->s{}", s.pool_index));
    }
    out.push_str("\n  CT:  CGc_i -> GPT -> CGc_{i+1} (chained)\n   ");
    out.push_str(" CGc0");
    for s in &ct {
        out.push_str(&format!("->s{}", s.pool_index));
    }
    out.push('\n');
    out
}

/// The fixed style used to render Figure 3 (camelCase `nCase`-style
/// medium names, 4-space indents, same-line braces, merged `cin`
/// reads — the look of the paper's listing).
pub fn paper_style() -> AuthorStyle {
    AuthorStyle {
        render: RenderStyle {
            indent: Indent::Spaces(4),
            brace: BraceStyle::SameLine,
            space_around_binary: true,
            space_around_assign: true,
            space_after_comma: true,
            space_after_keyword: true,
            space_in_template_close: false,
            braceless_single_stmt: false,
            collapse_else_if: true,
            blank_lines_between_fns: 0,
            blank_line_after_prologue: false,
        },
        naming: NamingStyle {
            case_style: Case::Camel,
            verbosity: Verbosity::Medium,
            flavor: 0,
        },
        io: IoStyle {
            stdio: false,
            merge_reads: true,
            endl: false,
            fast_io: false,
            precision: 6,
        },
        loops: LoopStyle {
            while_bias: 0.0,
            post_increment: false,
            one_based_cases: true,
            predeclare_counter: false,
        },
        structure: StructureStyle {
            helper_bias: 0.0,
            ternary: false,
            compound_assign: false,
            static_cast: false,
            merge_decls: true,
            explicit_return: true,
        },
        comments: CommentStyle {
            density: 0.0,
            block: false,
            banner: false,
        },
        prologue: PrologueStyle {
            bits_stdcpp: false,
            long_long_alias: 0,
            using_namespace: true,
            extra_headers: false,
        },
    }
}

/// Figure 3: the original horse-race program.
pub fn figure3(seed: u64) -> String {
    ChallengeId::HorseRace.render_solution(&paper_style(), Pcg64::seed_from(seed, &["fig3"]))
}

/// Figure 4: two independent NCT transformations of Figure 3.
pub fn figure4(year: u32, seed: u64) -> [String; 2] {
    let pool = YearPool::calibrated(year, seed);
    let transformer = Transformer::new(&pool);
    let original = figure3(seed);
    let mut rng = Pcg64::seed_from(seed, &["fig4"]);
    let out = run_nct(&transformer, &original, 2, Origin::ChatGpt, &mut rng);
    [out[0].source.clone(), out[1].source.clone()]
}

/// Figure 5: two successive CT transformations of Figure 3.
pub fn figure5(year: u32, seed: u64) -> [String; 2] {
    let pool = YearPool::calibrated(year, seed);
    let transformer = Transformer::new(&pool);
    let original = figure3(seed);
    let mut rng = Pcg64::seed_from(seed, &["fig5"]);
    let out = run_ct(&transformer, &original, 2, Origin::ChatGpt, &mut rng);
    [out[0].source.clone(), out[1].source.clone()]
}

/// Which settings the figure pipeline exercises (compile-time sanity
/// for the schematic).
pub fn figure2_settings() -> [Setting; 2] {
    [Setting::GptNct, Setting::GptCt]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;
    use synthattr_lang::parse;

    #[test]
    fn figure3_looks_like_the_paper() {
        let src = figure3(7);
        assert!(src.contains("#include <iostream>"), "{src}");
        assert!(src.contains("using namespace std;"), "{src}");
        assert!(src.contains("cin >>"), "{src}");
        assert!(src.contains("Case #"), "{src}");
        // Camel-cased medium names, one-based case loop.
        assert!(src.contains("= 1;"), "{src}");
        parse(&src).unwrap();
    }

    #[test]
    fn figures_4_and_5_transform_and_parse() {
        for f in figure4(2018, 7).iter().chain(figure5(2018, 7).iter()) {
            parse(f).unwrap_or_else(|e| panic!("{e}\n{f}"));
            assert!(f.contains("Case #"));
        }
        // CT step 2 derives from step 1, not from the original.
        let [ct1, ct2] = figure5(2018, 7);
        assert_ne!(ct1, ct2);
    }

    #[test]
    fn figure1_and_2_describe_the_runs() {
        let p = YearPipeline::build(2017, &ExperimentConfig::smoke());
        let f1 = figure1(&p);
        assert!(f1.contains("Figure 1"));
        assert!(f1.contains(&format!("{}", p.transformed.len())));
        let f2 = figure2(2017, 3, 4);
        assert!(f2.contains("NCT"));
        assert!(f2.contains("CT"));
        assert_eq!(figure2_settings()[0], Setting::GptNct);
    }
}
