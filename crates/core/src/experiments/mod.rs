//! One driver per paper table/figure. See the crate docs for the map.

pub mod attribution;
pub mod binary;
pub mod datasets;
pub mod diversity;
pub mod figures;
pub mod styles;
