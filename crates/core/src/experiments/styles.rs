//! Table IV: the number of styles.
//!
//! "Number of styles" = count of distinct predicted labels the
//! pre-trained non-ChatGPT oracle assigns to the 50 transformed samples
//! of each `(challenge, setting)` cell.

use crate::pipeline::{Setting, YearPipeline};
use synthattr_util::stats::distinct_count;
use synthattr_util::Table;

/// Table IV content for one year.
#[derive(Debug, Clone, PartialEq)]
pub struct StyleCounts {
    /// The year.
    pub year: u32,
    /// Distinct-style counts per challenge, `[+N, +C, ±N, ±C]`.
    pub per_challenge: Vec<[usize; 4]>,
    /// Column averages in the same order.
    pub averages: [f64; 4],
    /// The largest cell in the table (the paper reports max 12).
    pub max_styles: usize,
}

/// Runs the Table IV analysis for one year pipeline.
pub fn run(p: &YearPipeline) -> StyleCounts {
    let mut per_challenge = Vec::with_capacity(p.n_challenges());
    for ci in 0..p.n_challenges() {
        let mut row = [0usize; 4];
        for setting in Setting::all() {
            let labels = p.labels_for(ci, setting);
            row[setting.index()] = distinct_count(&labels);
        }
        per_challenge.push(row);
    }
    let n = per_challenge.len().max(1) as f64;
    let mut averages = [0.0f64; 4];
    for row in &per_challenge {
        for (a, &v) in averages.iter_mut().zip(row) {
            *a += v as f64 / n;
        }
    }
    let max_styles = per_challenge
        .iter()
        .flat_map(|r| r.iter().copied())
        .max()
        .unwrap_or(0);
    StyleCounts {
        year: p.year,
        per_challenge,
        averages,
        max_styles,
    }
}

/// Renders one or more years side by side in the paper's layout.
pub fn render(results: &[StyleCounts]) -> Table {
    let mut header = vec!["C".to_string()];
    for r in results {
        for s in Setting::all() {
            header.push(format!("{} {}", r.year, s.notation()));
        }
    }
    let mut t = Table::new(header).with_title("Table IV: number of styles per challenge");
    let n_challenges = results
        .iter()
        .map(|r| r.per_challenge.len())
        .max()
        .unwrap_or(0);
    for ci in 0..n_challenges {
        let mut row = vec![format!("C{}", ci + 1)];
        for r in results {
            for s in Setting::all() {
                row.push(
                    r.per_challenge
                        .get(ci)
                        .map(|x| x[s.index()].to_string())
                        .unwrap_or_default(),
                );
            }
        }
        t.row(row);
    }
    let mut avg_row = vec!["A".to_string()];
    for r in results {
        for s in Setting::all() {
            avg_row.push(format!("{:.1}", r.averages[s.index()]));
        }
    }
    t.row(avg_row);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;

    #[test]
    fn style_counts_are_bounded_and_positive() {
        let p = YearPipeline::build(2018, &ExperimentConfig::smoke());
        let r = run(&p);
        assert_eq!(r.per_challenge.len(), p.n_challenges());
        for row in &r.per_challenge {
            for &v in row {
                assert!(v >= 1, "each cell has at least one style");
                assert!(v <= p.config.scale.transforms);
            }
        }
        assert!(r.max_styles >= 1);
        for a in r.averages {
            assert!(a >= 1.0);
        }
    }

    #[test]
    fn chaining_averages_fewer_styles_than_nct() {
        // The paper's headline Table IV shape: +N > +C on average.
        let p = YearPipeline::build(2018, &ExperimentConfig::smoke());
        let r = run(&p);
        assert!(
            r.averages[Setting::GptNct.index()] >= r.averages[Setting::GptCt.index()],
            "+N {} should be >= +C {}",
            r.averages[0],
            r.averages[1]
        );
    }

    #[test]
    fn render_includes_all_cells() {
        let p = YearPipeline::build(2017, &ExperimentConfig::smoke());
        let r = run(&p);
        let text = render(&[r]).to_string();
        assert!(text.contains("2017 +N"));
        assert!(text.contains("C1"));
        assert!(text.contains("| A"));
    }
}
