//! A/B equivalence suite for the node-level incremental frontend.
//!
//! Every test here builds the same experiment twice — once through the
//! incremental frontend ([`YearPipeline::try_build`], which hashes AST
//! sub-trees and recomputes only the feature components whose source
//! regions changed between chain steps) and once through the whole-file
//! artifact frontend ([`YearPipeline::try_build_wholefile`], the
//! pre-incremental implementation kept verbatim) — and asserts the
//! results are bit-identical. The node cache is only allowed to change
//! *when* frontend work happens, never *what* it produces.
//!
//! Coverage follows the paper's experimental grid at reduced scale:
//! all nine style pools (years 2017–2019 × root seeds 1–3), both
//! protocols (NCT and CT run inside every pipeline via the four
//! settings of Table II), and fault-injection rates 0%, 5%, and 20%.
//!
//! [`FrontendStats`] is deliberately *not* compared wholesale between
//! the two paths: the whole-file path records zero node traffic by
//! construction, so the suite compares the artifact-cache counters
//! field by field and separately asserts the incremental path actually
//! reused nodes.

use crate::config::{ExperimentConfig, Scale};
use crate::pipeline::YearPipeline;
use synthattr_faults::FaultProfile;

const YEARS: [u32; 3] = [2017, 2018, 2019];
const SEEDS: [u64; 3] = [1, 2, 3];
const RATES: [f64; 3] = [0.0, 0.05, 0.20];

/// Same deliberately tiny scale as `frontend_ab`: incremental
/// equivalence is scale-free (the same code paths run at paper scale
/// with bigger loops).
fn tiny(seed: u64, rate: f64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::smoke();
    cfg.seed = seed;
    cfg.scale = Scale {
        authors: 6,
        challenges: 2,
        transforms: 4,
        n_trees: 4,
    };
    if rate > 0.0 {
        cfg = cfg.with_faults(FaultProfile::recoverable(seed, rate));
    }
    cfg
}

/// Field-by-field bit-identity between an incremental build and a
/// whole-file build (everything except node-cache traffic, which only
/// the incremental path records).
fn assert_pipelines_identical(incr: &YearPipeline, wholefile: &YearPipeline, ctx: &str) {
    assert_eq!(
        incr.human_features, wholefile.human_features,
        "human feature matrix diverged ({ctx})"
    );
    assert_eq!(incr.seed_author, wholefile.seed_author, "{ctx}");
    assert_eq!(
        incr.diagnostics, wholefile.diagnostics,
        "lint diagnostics diverged ({ctx})"
    );
    assert_eq!(
        incr.resilience, wholefile.resilience,
        "resilience accounting diverged ({ctx})"
    );
    // Artifact-cache traffic is unchanged by the node layer: the same
    // intern sequence hits the same per-challenge shards.
    assert_eq!(
        incr.frontend.cache_hits, wholefile.frontend.cache_hits,
        "artifact hits diverged ({ctx})"
    );
    assert_eq!(
        incr.frontend.cache_misses, wholefile.frontend.cache_misses,
        "artifact misses diverged ({ctx})"
    );
    assert_eq!(
        (wholefile.frontend.node_hits, wholefile.frontend.node_misses),
        (0, 0),
        "whole-file path must record no node traffic ({ctx})"
    );
    assert_eq!(incr.transformed.len(), wholefile.transformed.len(), "{ctx}");
    for (a, b) in incr.transformed.iter().zip(&wholefile.transformed) {
        assert_eq!(a.sample, b.sample, "transformed sample diverged ({ctx})");
        assert_eq!(a.challenge, b.challenge, "{ctx}");
        assert_eq!(a.setting, b.setting, "{ctx}");
        assert_eq!(a.features, b.features, "feature vector diverged ({ctx})");
        assert_eq!(
            a.oracle_label, b.oracle_label,
            "oracle label diverged ({ctx})"
        );
        assert_eq!(a.outcome, b.outcome, "{ctx}");
    }
}

/// The tentpole guarantee over the full grid: 9 pools × 3 fault rates,
/// NCT and CT both exercised inside every build.
#[test]
fn incremental_frontend_matches_wholefile_across_pools_and_fault_rates() {
    for year in YEARS {
        for seed in SEEDS {
            for rate in RATES {
                let ctx = format!("year={year} seed={seed} rate={rate}");
                let cfg = tiny(seed, rate);
                let incr = YearPipeline::try_build(year, &cfg)
                    .unwrap_or_else(|e| panic!("incremental build failed ({ctx}): {e}"));
                let wholefile = YearPipeline::try_build_wholefile(year, &cfg)
                    .unwrap_or_else(|e| panic!("wholefile build failed ({ctx}): {e}"));
                assert_pipelines_identical(&incr, &wholefile, &ctx);
                // The incremental path must actually share sub-trees.
                // (At this tiny 4-step scale reuse is modest; the
                // 50-step chain test below proves hits dominate on
                // long chains, where the speedup lives.)
                assert!(
                    incr.frontend.node_hits > 0,
                    "{ctx}: node cache unused: {:?}",
                    incr.frontend
                );
            }
        }
    }
}

/// Worker invariance of the node counters: the node cache is sharded
/// per challenge exactly like the artifact cache, so `FrontendStats`
/// (node counters included, via `PartialEq`) cannot depend on
/// scheduling — at any fault rate.
#[test]
fn node_counters_are_worker_invariant() {
    for rate in RATES {
        let mut serial_cfg = tiny(2, rate);
        serial_cfg.workers = Some(1);
        let mut wide_cfg = tiny(2, rate);
        wide_cfg.workers = Some(4);
        let serial = YearPipeline::try_build(2018, &serial_cfg).unwrap();
        let wide = YearPipeline::try_build(2018, &wide_cfg).unwrap();
        assert_eq!(serial.frontend, wide.frontend, "rate={rate}");
        assert_eq!(serial.all_labels(), wide.all_labels(), "rate={rate}");
    }
}

/// Degraded (not just recovered) runs must also be increment-invariant:
/// the brutal profile forces NCT resamples and CT held steps, which is
/// exactly where region structure threads through fallback paths
/// (held steps reuse the chain's last regions, seed fallbacks carry
/// none).
#[test]
fn degraded_runs_match_wholefile() {
    let mut cfg = tiny(3, 0.0);
    cfg = cfg.with_faults(FaultProfile::brutal(3));
    let incr = YearPipeline::try_build(2018, &cfg).unwrap();
    let wholefile = YearPipeline::try_build_wholefile(2018, &cfg).unwrap();
    assert_pipelines_identical(&incr, &wholefile, "brutal 2018");
    assert!(
        incr.resilience.degraded + incr.resilience.failed > 0,
        "brutal profile should degrade: {:?}",
        incr.resilience
    );
}

/// Satellite: a long CT chain re-featurizes only what changed. Runs a
/// 50-step chain through the cached driver and, step by step, checks
/// that the node cache's misses during featurization are exactly the
/// sub-trees and regions this step introduced — everything already
/// seen is served from cache.
#[test]
fn ct_chain_refeaturizes_only_changed_regions() {
    use std::collections::HashSet;
    use synthattr_features::FeatureExtractor;
    use synthattr_gen::corpus::Origin;
    use synthattr_gpt::incr::{try_run_ct_steps_cached, FrontendCache};
    use synthattr_gpt::pool::YearPool;
    use synthattr_gpt::transform::Transformer;
    use synthattr_util::Pcg64;

    let cfg = ExperimentConfig::smoke();
    let pool = YearPool::calibrated(2018, cfg.seed);
    let transformer = Transformer::new(&pool);
    let mut gen_rng = Pcg64::seed_from(cfg.seed, &["gpt-gen", "2018", "0"]);
    let style_idx = pool.sample_index(&mut gen_rng);
    let seed = synthattr_gen::corpus::solution_in_style(
        synthattr_gen::challenges::ChallengeId::SumSeries,
        pool.style(style_idx),
        cfg.seed,
        &["gpt-gen-code", "2018", "0"],
    );
    let seed_unit = synthattr_lang::parse(&seed).unwrap();

    let mut fc = FrontendCache::new();
    let steps = try_run_ct_steps_cached(
        &transformer,
        &seed,
        &seed_unit,
        50,
        Origin::ChatGpt,
        &mut Pcg64::new(42),
        &mut fc,
    )
    .unwrap();
    assert_eq!(steps.len(), 50);

    let extractor = FeatureExtractor::new(cfg.features.clone());
    let mut seen_items: HashSet<u64> = HashSet::new();
    let mut seen_regions: HashSet<String> = HashSet::new();
    let mut total_new = 0u64;
    for (i, step) in steps.iter().enumerate() {
        // How many node products *can* this step introduce? One
        // feature partial per unseen item hash, one layout scan per
        // unseen region text.
        let new_items = step
            .regions
            .item_hashes
            .iter()
            .filter(|h| seen_items.insert(**h))
            .count() as u64;
        let new_regions = step
            .regions
            .spans
            .iter()
            .map(|sp| step.sample.source[sp.start..sp.end].to_string())
            .filter(|r| seen_regions.insert(r.clone()))
            .count() as u64;
        total_new += new_items + new_regions;

        let before = fc.node_misses();
        let items: Vec<_> = step
            .regions
            .item_hashes
            .iter()
            .zip(&step.unit.items)
            .map(|(h, item)| fc.item_features_for(*h, item))
            .collect();
        let layouts: Vec<_> = step
            .regions
            .spans
            .iter()
            .map(|sp| {
                (
                    sp.sep_before,
                    fc.layout_for(&step.sample.source[sp.start..sp.end]),
                )
            })
            .collect();
        let features = extractor.extract_from_parts(
            step.sample.source.len(),
            items.iter().map(|a| a.as_ref()),
            layouts.iter().map(|(s, l)| (*s, l.as_ref())),
        );
        let misses = fc.node_misses() - before;

        // Bit-identity with the whole-file extractor, per step.
        assert_eq!(
            features,
            extractor.extract_parsed(&step.sample.source, &step.unit),
            "step {i}"
        );
        // Only the changed sub-trees were recomputed. (The chain
        // driver itself may have warmed some of them while rendering,
        // so featurization can even be all-hits.)
        assert!(
            misses <= new_items + new_regions,
            "step {i}: featurizing recomputed {misses} nodes but only {} changed",
            new_items + new_regions
        );
    }
    // The reuse the speedup comes from: across 50 chained steps, far
    // fewer distinct nodes exist than `steps × items-per-step` naive
    // featurization would touch.
    let touched: u64 = steps
        .iter()
        .map(|s| 2 * s.regions.item_hashes.len() as u64)
        .sum();
    assert!(
        total_new * 2 < touched,
        "chain steps share sub-trees: {total_new} distinct vs {touched} touched"
    );
}
