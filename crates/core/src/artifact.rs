//! Single-parse frontend artifacts and the content-addressed cache.
//!
//! Before this module existed, every transformed sample crossed the
//! lexer/parser four to five times: the transformer parsed its input,
//! then the lint gate, the semantic fingerprint, the fault-layer
//! response validator, and the feature extractor each re-parsed the
//! identical rendered text. An [`Artifact`] ties one source text to
//! every frontend product derived from it — token stream, AST,
//! diagnostics, fingerprint, feature vector, oracle label — each
//! materialised lazily and **at most once**. An [`ArtifactCache`]
//! content-addresses artifacts by a 64-bit hash of the source bytes
//! (with full-text collision verification), so two samples with
//! identical text share one artifact and all of its products.
//!
//! Invariants (verified by the A/B suite in [`crate::pipeline`]):
//!
//! * **Purity** — every cached product equals what recomputing it from
//!   the text would produce; the cache can only change *when* work
//!   happens, never *what* it produces.
//! * **Worker invariance** — the pipeline shards caches per dispatch
//!   unit (per human sample, per challenge task), so hit/miss totals
//!   and all outputs are identical for any `SYNTHATTR_WORKERS`.
//! * **Content addressing** — artifacts are keyed by source bytes
//!   alone; provenance (which setting or step produced the text) never
//!   affects sharing.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, OnceLock};
use synthattr_analysis::{fingerprint, Analyzer, Diagnostic};
use synthattr_features::FeatureExtractor;
use synthattr_lang::lexer::lex;
use synthattr_lang::token::Token;
use synthattr_lang::{parse, ParseError, TranslationUnit};

use crate::model::AuthorshipModel;

/// 64-bit FNV-1a over the source bytes: the cache's content address.
///
/// In-repo (the workspace is hermetic): FNV-1a is tiny, stable across
/// platforms, and fast on the short programs this pipeline handles.
/// Collisions are tolerated, not assumed away — [`ArtifactCache`]
/// verifies full source equality within a bucket.
pub fn content_hash(source: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in source.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One source text plus every frontend product derived from it, each
/// computed lazily and at most once.
#[derive(Debug)]
pub struct Artifact {
    source: String,
    tokens: OnceLock<Result<Vec<Token>, ParseError>>,
    unit: OnceLock<Result<TranslationUnit, ParseError>>,
    diagnostics: OnceLock<Arc<Vec<Diagnostic>>>,
    fingerprint: OnceLock<u64>,
    features: OnceLock<Arc<Vec<f64>>>,
    oracle_label: OnceLock<usize>,
}

impl Artifact {
    /// An artifact over `source` with nothing materialised yet.
    pub fn new(source: impl Into<String>) -> Self {
        Artifact {
            source: source.into(),
            tokens: OnceLock::new(),
            unit: OnceLock::new(),
            diagnostics: OnceLock::new(),
            fingerprint: OnceLock::new(),
            features: OnceLock::new(),
            oracle_label: OnceLock::new(),
        }
    }

    /// An artifact over `source` whose AST is already known — the
    /// single-parse handoff from the transform layer, which parses
    /// each rendered output inside its validation gate. `unit` must be
    /// exactly `parse(source)`.
    pub fn with_unit(source: impl Into<String>, unit: TranslationUnit) -> Self {
        let artifact = Artifact::new(source);
        artifact
            .unit
            .set(Ok(unit))
            .expect("fresh artifact has no unit");
        artifact
    }

    /// The source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The token stream, lexed on first call.
    ///
    /// # Errors
    ///
    /// The lexer's [`ParseError`] if the text is outside the subset.
    pub fn tokens(&self) -> Result<&[Token], ParseError> {
        match self.tokens.get_or_init(|| lex(&self.source)) {
            Ok(t) => Ok(t),
            Err(e) => Err(e.clone()),
        }
    }

    /// The AST, parsed on first call (or supplied at construction).
    ///
    /// # Errors
    ///
    /// The parser's [`ParseError`] if the text is outside the subset.
    pub fn unit(&self) -> Result<&TranslationUnit, ParseError> {
        match self.unit.get_or_init(|| parse(&self.source)) {
            Ok(u) => Ok(u),
            Err(e) => Err(e.clone()),
        }
    }

    /// Analyzer diagnostics, computed on first call.
    ///
    /// # Errors
    ///
    /// Propagates [`Artifact::unit`]'s parse error.
    pub fn diagnostics(&self, analyzer: &Analyzer) -> Result<&[Diagnostic], ParseError> {
        if let Some(d) = self.diagnostics.get() {
            return Ok(d);
        }
        let unit = self.unit()?;
        Ok(self
            .diagnostics
            .get_or_init(|| Arc::new(analyzer.analyze(unit))))
    }

    /// Like [`Artifact::diagnostics`], but the first call computes the
    /// diagnostics via `compute` — the incremental frontend's hook for
    /// serving the analyzer pass from a sub-tree cache without deep
    /// copies (the node cache and the artifact share one allocation).
    /// `compute` must return exactly `analyzer.analyze(unit)` for the
    /// artifact's own unit; purity of the slot is the caller's
    /// contract.
    ///
    /// # Errors
    ///
    /// Propagates [`Artifact::unit`]'s parse error.
    pub fn diagnostics_with(
        &self,
        compute: impl FnOnce(&TranslationUnit) -> Arc<Vec<Diagnostic>>,
    ) -> Result<&[Diagnostic], ParseError> {
        if let Some(d) = self.diagnostics.get() {
            return Ok(d);
        }
        let unit = self.unit()?;
        Ok(self.diagnostics.get_or_init(|| compute(unit)))
    }

    /// The semantic fingerprint, computed on first call.
    ///
    /// # Errors
    ///
    /// Propagates [`Artifact::unit`]'s parse error.
    pub fn fingerprint(&self) -> Result<u64, ParseError> {
        if let Some(fp) = self.fingerprint.get() {
            return Ok(*fp);
        }
        let unit = self.unit()?;
        Ok(*self.fingerprint.get_or_init(|| fingerprint(unit)))
    }

    /// The stylometry feature vector, computed on first call.
    ///
    /// All callers within one pipeline share one extractor
    /// configuration, which is what makes a per-source cache slot
    /// sound; mixing extractors against one artifact would return the
    /// first caller's vector to everyone.
    ///
    /// # Errors
    ///
    /// Propagates [`Artifact::unit`]'s parse error.
    pub fn features(&self, extractor: &FeatureExtractor) -> Result<&Arc<Vec<f64>>, ParseError> {
        if let Some(f) = self.features.get() {
            return Ok(f);
        }
        let unit = self.unit()?;
        Ok(self
            .features
            .get_or_init(|| Arc::new(extractor.extract_parsed(&self.source, unit))))
    }

    /// Like [`Artifact::features`], but the first call computes the
    /// vector via `compute` — the incremental frontend's hook for
    /// assembling features from cached sub-tree partials. `compute`
    /// must return exactly `extractor.extract_parsed(source, unit)`
    /// for the pipeline's one extractor configuration; purity of the
    /// slot is the caller's contract.
    ///
    /// # Errors
    ///
    /// Propagates [`Artifact::unit`]'s parse error.
    pub fn features_with(
        &self,
        compute: impl FnOnce(&str, &TranslationUnit) -> Vec<f64>,
    ) -> Result<&Arc<Vec<f64>>, ParseError> {
        if let Some(f) = self.features.get() {
            return Ok(f);
        }
        let unit = self.unit()?;
        Ok(self
            .features
            .get_or_init(|| Arc::new(compute(&self.source, unit))))
    }

    /// The oracle's predicted label, computed on first call (features
    /// materialise first if needed). Same single-configuration caveat
    /// as [`Artifact::features`].
    ///
    /// # Errors
    ///
    /// Propagates [`Artifact::unit`]'s parse error.
    pub fn oracle_label(&self, model: &AuthorshipModel) -> Result<usize, ParseError> {
        if let Some(l) = self.oracle_label.get() {
            return Ok(*l);
        }
        let features = Arc::clone(self.features(model.extractor())?);
        Ok(*self
            .oracle_label
            .get_or_init(|| model.predict_features(&features)))
    }
}

/// Frontend accounting for one pipeline build, merged across dispatch
/// units in input order.
///
/// `cache_misses` counts distinct sources materialised (each paid for
/// its frontend work exactly once); `cache_hits` counts the re-parses
/// the cache avoided. `node_hits`/`node_misses` count AST sub-tree
/// lookups in the incremental frontend (always 0 on the whole-file
/// reference path). Equality deliberately ignores `frontend_ns` —
/// wall-clock varies run to run, the counters must not.
#[derive(Debug, Clone, Copy, Default)]
pub struct FrontendStats {
    /// Requests served by an existing artifact.
    pub cache_hits: u64,
    /// Requests that materialised a new artifact.
    pub cache_misses: u64,
    /// Sub-tree lookups served by the incremental node cache.
    pub node_hits: u64,
    /// Sub-tree lookups that computed a new node product.
    pub node_misses: u64,
    /// Wall-clock nanoseconds spent in frontend work (parse, lint,
    /// fingerprint, featurize), summed over dispatch units.
    pub frontend_ns: u128,
}

impl PartialEq for FrontendStats {
    fn eq(&self, other: &Self) -> bool {
        self.cache_hits == other.cache_hits
            && self.cache_misses == other.cache_misses
            && self.node_hits == other.node_hits
            && self.node_misses == other.node_misses
    }
}

impl FrontendStats {
    /// Folds another dispatch unit's stats into this one.
    pub fn merge(&mut self, other: &FrontendStats) {
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.node_hits += other.node_hits;
        self.node_misses += other.node_misses;
        self.frontend_ns += other.frontend_ns;
    }

    /// Fraction of artifact requests served from cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / total as f64
    }
}

/// One resident cache entry: the artifact plus the recency tick of its
/// last access (ticks only maintained in bounded mode).
#[derive(Debug)]
struct CacheEntry {
    artifact: Arc<Artifact>,
    tick: u64,
}

/// A content-addressed artifact cache: 64-bit source hash → artifacts,
/// with full-text verification inside each bucket.
///
/// Two modes share one implementation:
///
/// * **Unbounded** ([`ArtifactCache::new`]) — the batch pipeline's
///   per-dispatch-unit shards, whose population is bounded by
///   construction (a challenge task sees ~`4 × transforms` distinct
///   sources, then the shard is dropped).
/// * **Bounded LRU** ([`ArtifactCache::bounded`]) — a capacity cap with
///   least-recently-used eviction, for long-lived shared caches (the
///   serving layer) where the request stream is unbounded. Eviction
///   changes only *residency*, never *results*: a re-interned evicted
///   source is a fresh miss that recomputes identical products
///   (purity), and hit/miss totals are unchanged whenever capacity is
///   at least the number of distinct live sources.
///
/// Recency is a monotonic access tick per entry plus a tick-ordered
/// index, so both touch and evict are `O(log n)`.
///
/// Not a global structure in the pipeline: one shard per dispatch unit
/// (per human sample, per challenge task) keeps hit/miss totals a pure
/// function of the inputs, never of scheduling.
#[derive(Debug, Default)]
pub struct ArtifactCache {
    buckets: HashMap<u64, Vec<CacheEntry>>,
    /// `None` = unbounded; `Some(cap)` = LRU with at most `cap` entries.
    capacity: Option<usize>,
    /// Resident entry count across all buckets.
    entries: usize,
    /// Monotonic access clock; bumped on every intern.
    tick: u64,
    /// Recency index: access tick → bucket hash (bounded mode only).
    recency: BTreeMap<u64, u64>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ArtifactCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        ArtifactCache::default()
    }

    /// An empty LRU cache holding at most `capacity` artifacts
    /// (clamped to at least 1).
    pub fn bounded(capacity: usize) -> Self {
        ArtifactCache {
            capacity: Some(capacity.max(1)),
            ..ArtifactCache::default()
        }
    }

    /// Returns the artifact for `source`, creating it on first sight.
    pub fn intern(&mut self, source: &str) -> Arc<Artifact> {
        if let Some(existing) = self.lookup_touch(source) {
            self.hits += 1;
            return existing;
        }
        self.insert(Arc::new(Artifact::new(source)))
    }

    /// Returns the artifact for `source`, seeding its AST with `unit`
    /// on first sight (the transform layer already parsed it; a miss
    /// here records a new distinct source but costs no parse). `unit`
    /// must be exactly `parse(&source)`.
    pub fn intern_with_unit(&mut self, source: &str, unit: TranslationUnit) -> Arc<Artifact> {
        if let Some(existing) = self.lookup_touch(source) {
            self.hits += 1;
            return existing;
        }
        self.insert(Arc::new(Artifact::with_unit(source.to_string(), unit)))
    }

    /// Requests served by an existing artifact.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Requests that materialised a new artifact.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Artifacts evicted by the LRU policy (always 0 when unbounded).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Artifacts currently resident.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the cache holds no artifacts.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// The LRU capacity, or `None` when unbounded.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// This cache's counters as mergeable stats (zero wall-clock; the
    /// pipeline times frontend work around its cache calls).
    pub fn stats(&self) -> FrontendStats {
        FrontendStats {
            cache_hits: self.hits,
            cache_misses: self.misses,
            node_hits: 0,
            node_misses: 0,
            frontend_ns: 0,
        }
    }

    /// Looks up `source` and, in bounded mode, marks the entry
    /// most-recently-used.
    fn lookup_touch(&mut self, source: &str) -> Option<Arc<Artifact>> {
        let hash = content_hash(source);
        self.tick += 1;
        let new_tick = self.tick;
        let bounded = self.capacity.is_some();
        let (artifact, old_tick) = {
            let bucket = self.buckets.get_mut(&hash)?;
            let entry = bucket.iter_mut().find(|e| e.artifact.source() == source)?;
            let old = entry.tick;
            if bounded {
                entry.tick = new_tick;
            }
            (Arc::clone(&entry.artifact), old)
        };
        if bounded {
            self.recency.remove(&old_tick);
            self.recency.insert(new_tick, hash);
        }
        Some(artifact)
    }

    fn insert(&mut self, artifact: Arc<Artifact>) -> Arc<Artifact> {
        self.misses += 1;
        self.tick += 1;
        let tick = self.tick;
        let hash = content_hash(artifact.source());
        self.buckets.entry(hash).or_default().push(CacheEntry {
            artifact: Arc::clone(&artifact),
            tick,
        });
        self.entries += 1;
        if let Some(cap) = self.capacity {
            self.recency.insert(tick, hash);
            // The fresh entry carries the newest tick, so with cap >= 1
            // it is never the one evicted.
            while self.entries > cap {
                self.evict_lru();
            }
        }
        artifact
    }

    /// Removes the least-recently-used entry (bounded mode only).
    fn evict_lru(&mut self) {
        let Some((&tick, &hash)) = self.recency.iter().next() else {
            return;
        };
        self.recency.remove(&tick);
        if let Some(bucket) = self.buckets.get_mut(&hash) {
            if let Some(pos) = bucket.iter().position(|e| e.tick == tick) {
                bucket.remove(pos);
                self.entries -= 1;
                self.evictions += 1;
            }
            if bucket.is_empty() {
                self.buckets.remove(&hash);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synthattr_analysis::{fingerprint_source, Analyzer};

    const SRC: &str = "int main() { int x = 0; x = x + 1; return 0; }";

    #[test]
    fn content_hash_is_stable_and_text_sensitive() {
        assert_eq!(content_hash(SRC), content_hash(SRC));
        assert_ne!(content_hash(SRC), content_hash("int main() { return 0; }"));
        // Known FNV-1a vector: hashing the empty string yields the
        // offset basis.
        assert_eq!(content_hash(""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn artifact_products_match_from_scratch_computation() {
        let analyzer = Analyzer::new();
        let a = Artifact::new(SRC);
        assert_eq!(a.unit().unwrap(), &parse(SRC).unwrap());
        assert_eq!(a.tokens().unwrap(), &lex(SRC).unwrap()[..]);
        assert_eq!(a.fingerprint().unwrap(), fingerprint_source(SRC).unwrap());
        assert_eq!(
            a.diagnostics(&analyzer).unwrap(),
            &analyzer.analyze_source(SRC).unwrap()[..]
        );
    }

    #[test]
    fn with_unit_skips_the_parse_but_changes_nothing() {
        let unit = parse(SRC).unwrap();
        let seeded = Artifact::with_unit(SRC, unit.clone());
        let fresh = Artifact::new(SRC);
        assert_eq!(seeded.unit().unwrap(), fresh.unit().unwrap());
        assert_eq!(seeded.fingerprint().unwrap(), fresh.fingerprint().unwrap());
        assert_eq!(seeded.unit().unwrap(), &unit);
    }

    #[test]
    fn products_are_computed_once_and_shared() {
        let a = Artifact::new(SRC);
        let first = a.unit().unwrap() as *const TranslationUnit;
        let second = a.unit().unwrap() as *const TranslationUnit;
        assert_eq!(first, second, "repeat calls return the same storage");
    }

    #[test]
    fn parse_errors_are_reported_and_sticky() {
        let a = Artifact::new("int main( {");
        assert!(a.unit().is_err());
        assert!(a.fingerprint().is_err());
        let analyzer = Analyzer::new();
        assert!(a.diagnostics(&analyzer).is_err());
    }

    #[test]
    fn cache_shares_identical_sources_and_counts() {
        let mut cache = ArtifactCache::new();
        let a = cache.intern(SRC);
        let b = cache.intern(SRC);
        let c = cache.intern("int main() { return 1; }");
        assert!(Arc::ptr_eq(&a, &b), "identical text shares one artifact");
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.stats().hit_rate(), 1.0 / 3.0);
    }

    #[test]
    fn intern_with_unit_dedups_against_plain_interns() {
        let mut cache = ArtifactCache::new();
        let a = cache.intern(SRC);
        let b = cache.intern_with_unit(SRC, parse(SRC).unwrap());
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    /// Distinct valid sources for cache-churn tests.
    fn source(i: usize) -> String {
        format!("int main() {{ int v{i} = {i}; return v{i}; }}")
    }

    #[test]
    fn bounded_cache_never_exceeds_capacity_and_counts_evictions() {
        let mut cache = ArtifactCache::bounded(4);
        for i in 0..20 {
            cache.intern(&source(i));
            assert!(cache.len() <= 4, "resident {} > capacity", cache.len());
        }
        assert_eq!(cache.misses(), 20);
        assert_eq!(cache.evictions(), 16);
        assert_eq!(cache.len(), 4);
        // The survivors are the four most recent inserts.
        for i in 16..20 {
            cache.intern(&source(i));
        }
        assert_eq!(cache.hits(), 4);
        assert_eq!(cache.evictions(), 16, "re-hits evict nothing");
    }

    #[test]
    fn lru_eviction_order_respects_touches() {
        let mut cache = ArtifactCache::bounded(2);
        cache.intern(&source(0));
        cache.intern(&source(1));
        // Touch 0 so 1 becomes least-recently-used.
        cache.intern(&source(0));
        cache.intern(&source(2)); // evicts 1
        assert_eq!(cache.evictions(), 1);
        cache.intern(&source(0));
        assert_eq!(cache.hits(), 2, "0 survived the eviction");
        cache.intern(&source(1));
        assert_eq!(cache.misses(), 4, "1 was evicted and re-materialises");
    }

    #[test]
    fn eviction_changes_residency_never_results() {
        // Purity across churn: an evicted-and-reinterned source yields
        // a fresh artifact whose products equal the original's.
        let mut cache = ArtifactCache::bounded(1);
        let first = cache.intern(SRC);
        let fp = first.fingerprint().unwrap();
        cache.intern(&source(7)); // evicts SRC
        let again = cache.intern(SRC);
        assert!(!Arc::ptr_eq(&first, &again), "distinct storage after churn");
        assert_eq!(again.fingerprint().unwrap(), fp);
        assert_eq!(again.unit().unwrap(), first.unit().unwrap());
    }

    #[test]
    fn generous_capacity_matches_unbounded_hit_miss_semantics() {
        // The same access sequence (with repeats) through an unbounded
        // cache and a bounded one whose capacity covers every distinct
        // source must produce identical counters and zero evictions.
        let sequence: Vec<String> = (0..30).map(|i| source(i % 10)).collect();
        let mut unbounded = ArtifactCache::new();
        let mut bounded = ArtifactCache::bounded(10);
        for s in &sequence {
            unbounded.intern(s);
            bounded.intern(s);
        }
        assert_eq!(bounded.hits(), unbounded.hits());
        assert_eq!(bounded.misses(), unbounded.misses());
        assert_eq!(bounded.evictions(), 0);
        assert_eq!(unbounded.evictions(), 0);
        assert_eq!(bounded.stats(), unbounded.stats());
    }

    #[test]
    fn unbounded_cache_reports_len_and_no_capacity() {
        let mut cache = ArtifactCache::new();
        assert!(cache.is_empty());
        cache.intern(SRC);
        cache.intern(SRC);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.capacity(), None);
        assert_eq!(ArtifactCache::bounded(0).capacity(), Some(1));
    }

    #[test]
    fn frontend_stats_merge_and_ignore_wallclock_in_eq() {
        let mut a = FrontendStats {
            cache_hits: 2,
            cache_misses: 3,
            node_hits: 10,
            node_misses: 4,
            frontend_ns: 100,
        };
        let b = FrontendStats {
            cache_hits: 1,
            cache_misses: 1,
            node_hits: 5,
            node_misses: 2,
            frontend_ns: 999,
        };
        a.merge(&b);
        assert_eq!(a.cache_hits, 3);
        assert_eq!(a.cache_misses, 4);
        assert_eq!(a.node_hits, 15);
        assert_eq!(a.node_misses, 6);
        assert_eq!(a.frontend_ns, 1099);
        let c = FrontendStats {
            cache_hits: 3,
            cache_misses: 4,
            node_hits: 15,
            node_misses: 6,
            frontend_ns: 0,
        };
        assert_eq!(a, c, "equality is on counters, not wall-clock");
        let mut d = c;
        d.node_hits = 0;
        assert_ne!(a, d, "node counters participate in equality");
        assert!((a.hit_rate() - 3.0 / 7.0).abs() < 1e-12);
    }
}
