//! The authorship attribution model: feature extraction + random
//! forest, as in Caliskan-Islam et al. (the paper's baseline method).

use synthattr_features::{FeatureConfig, FeatureExtractor};
use synthattr_lang::ParseError;
use synthattr_ml::dataset::Dataset;
use synthattr_ml::forest::{ForestConfig, RandomForest};
use synthattr_util::Pcg64;

/// A trained source-code authorship model.
///
/// # Example
///
/// ```
/// use synthattr_core::model::AuthorshipModel;
/// use synthattr_features::FeatureConfig;
/// use synthattr_ml::forest::ForestConfig;
/// use synthattr_util::Pcg64;
///
/// let a = "int main(){int x=0;return x;}";
/// let b = "int main()\n{\n\tint value = 0;\n\treturn value;\n}";
/// let samples = vec![(a, 0), (b, 1), (a, 0), (b, 1)];
/// let model = AuthorshipModel::train(
///     &samples, 2, FeatureConfig::default(), ForestConfig::fast(), &mut Pcg64::new(1),
/// )?;
/// assert_eq!(model.predict(a)?, 0);
/// # Ok::<(), synthattr_lang::ParseError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AuthorshipModel {
    extractor: FeatureExtractor,
    forest: RandomForest,
}

impl AuthorshipModel {
    /// Trains on `(source, label)` pairs.
    ///
    /// # Errors
    ///
    /// Returns the first [`ParseError`] hit while featurizing.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn train(
        samples: &[(&str, usize)],
        n_classes: usize,
        features: FeatureConfig,
        forest: ForestConfig,
        rng: &mut Pcg64,
    ) -> Result<Self, ParseError> {
        let extractor = FeatureExtractor::new(features);
        let mut ds = Dataset::new(n_classes);
        for (source, label) in samples {
            ds.push(extractor.extract(source)?, *label);
        }
        Ok(Self::from_features(extractor, &ds, &forest, rng))
    }

    /// Trains on an already-featurized dataset (the pipelines cache
    /// feature vectors and use this to avoid re-parsing).
    pub fn from_features(
        extractor: FeatureExtractor,
        data: &Dataset,
        forest: &ForestConfig,
        rng: &mut Pcg64,
    ) -> Self {
        AuthorshipModel {
            extractor,
            forest: RandomForest::fit(data, forest, rng),
        }
    }

    /// The feature extractor (shared so callers can featurize once).
    pub fn extractor(&self) -> &FeatureExtractor {
        &self.extractor
    }

    /// The underlying forest.
    pub fn forest(&self) -> &RandomForest {
        &self.forest
    }

    /// Predicts the label of raw source text.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] when the source is outside the subset.
    pub fn predict(&self, source: &str) -> Result<usize, ParseError> {
        Ok(self.forest.predict(&self.extractor.extract(source)?))
    }

    /// Predicts from a pre-extracted feature vector.
    pub fn predict_features(&self, features: &[f64]) -> usize {
        self.forest.predict(features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synthattr_gen::challenges::ChallengeId;
    use synthattr_gen::corpus::solution_in_style;
    use synthattr_gen::style::AuthorStyle;

    /// Authors with sampled styles, two solutions each, must be
    /// re-identifiable from a held-out third solution.
    #[test]
    fn attributes_synthetic_authors() {
        let n_authors = 6;
        let mut train = Vec::new();
        let mut test = Vec::new();
        let styles: Vec<AuthorStyle> = (0..n_authors)
            .map(|a| AuthorStyle::for_author(31, 2017, a))
            .collect();
        for (a, style) in styles.iter().enumerate() {
            for (ci, ch) in [
                ChallengeId::SumSeries,
                ChallengeId::Gcd,
                ChallengeId::Fibonacci,
            ]
            .iter()
            .enumerate()
            {
                let src = solution_in_style(*ch, style, 5, &["m", &a.to_string(), &ci.to_string()]);
                if ci < 2 {
                    train.push((src, a));
                } else {
                    test.push((src, a));
                }
            }
        }
        let train_refs: Vec<(&str, usize)> = train.iter().map(|(s, a)| (s.as_str(), *a)).collect();
        let model = AuthorshipModel::train(
            &train_refs,
            n_authors,
            FeatureConfig::default(),
            ForestConfig::fast(),
            &mut Pcg64::new(2),
        )
        .unwrap();
        let correct = test
            .iter()
            .filter(|(s, a)| model.predict(s).unwrap() == *a)
            .count();
        assert!(
            correct * 2 >= test.len(),
            "style attribution should beat chance by far: {correct}/{}",
            test.len()
        );
    }

    #[test]
    fn predict_features_matches_predict() {
        let a = "int main(){int x=0;return x;}";
        let b = "int main()\n{\n\tint value = 0;\n\treturn value;\n}";
        let samples = vec![(a, 0), (b, 1), (a, 0), (b, 1)];
        let model = AuthorshipModel::train(
            &samples,
            2,
            FeatureConfig::default(),
            ForestConfig::fast(),
            &mut Pcg64::new(3),
        )
        .unwrap();
        let f = model.extractor().extract(a).unwrap();
        assert_eq!(model.predict(a).unwrap(), model.predict_features(&f));
    }

    #[test]
    fn train_propagates_parse_errors() {
        let samples = vec![("int main() {", 0)];
        let err = AuthorshipModel::train(
            &samples,
            1,
            FeatureConfig::default(),
            ForestConfig::fast(),
            &mut Pcg64::new(1),
        );
        assert!(err.is_err());
    }
}
