//! Experiment configuration and scale presets.

use synthattr_faults::FaultProfile;
use synthattr_features::FeatureConfig;
use synthattr_ml::forest::ForestConfig;

/// Dataset and model sizes for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Human authors per year (paper: 204).
    pub authors: usize,
    /// Challenges per year (paper: 8).
    pub challenges: usize,
    /// Transformations per setting per challenge (paper: 50).
    pub transforms: usize,
    /// Trees in every random forest (paper-scale runs use 100).
    pub n_trees: usize,
}

/// A complete experiment configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Root seed; every stream in the run derives from it.
    pub seed: u64,
    /// Dataset/model sizes.
    pub scale: Scale,
    /// Feature families and hashing.
    pub features: FeatureConfig,
    /// Worker-thread override for pipeline build and forest training;
    /// `None` defers to `SYNTHATTR_WORKERS` / available parallelism.
    /// Results are identical for every worker count — this only tunes
    /// wall-clock time (set to `Some(1)` for serial execution).
    pub workers: Option<usize>,
    /// Fault injection for the simulated LLM service. `None` runs the
    /// perfect service; `Some(profile)` routes every transformation
    /// through the `synthattr-faults` chaos proxy. With a profile
    /// whose faults all recover within budget, pipeline outputs are
    /// byte-identical to `None` (see `tests/chaos_pipeline.rs`).
    pub faults: Option<FaultProfile>,
}

impl ExperimentConfig {
    /// The paper-scale configuration (204 authors × 8 challenges,
    /// 50 transformations per setting, 100-tree forests).
    pub fn paper() -> Self {
        ExperimentConfig {
            seed: 0x5EED_2025,
            scale: Scale {
                authors: 204,
                challenges: 8,
                transforms: 50,
                n_trees: 100,
            },
            features: FeatureConfig::default(),
            workers: None,
            faults: None,
        }
    }

    /// A reduced configuration exercising the same code paths in
    /// seconds (used by tests, examples, and doc runs).
    pub fn smoke() -> Self {
        ExperimentConfig {
            seed: 0x5EED_2025,
            scale: Scale {
                authors: 24,
                challenges: 4,
                transforms: 8,
                n_trees: 30,
            },
            features: FeatureConfig::default(),
            workers: None,
            faults: None,
        }
    }

    /// The same configuration with fault injection enabled.
    pub fn with_faults(mut self, profile: FaultProfile) -> Self {
        self.faults = Some(profile);
        self
    }

    /// The forest hyperparameters implied by the scale.
    pub fn forest(&self) -> ForestConfig {
        ForestConfig {
            n_trees: self.scale.n_trees,
            workers: self.workers,
            ..ForestConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_tables() {
        let c = ExperimentConfig::paper();
        assert_eq!(c.scale.authors, 204);
        assert_eq!(c.scale.challenges, 8);
        assert_eq!(c.scale.transforms, 50);
        // 204 authors * 8 challenges = 1632 (Table I); 4 settings * 50
        // * 8 challenges = 1600 (Table II).
        assert_eq!(c.scale.authors * c.scale.challenges, 1632);
        assert_eq!(4 * c.scale.transforms * c.scale.challenges, 1600);
    }

    #[test]
    fn smoke_is_smaller_but_same_shape() {
        let p = ExperimentConfig::paper();
        let s = ExperimentConfig::smoke();
        assert!(s.scale.authors < p.scale.authors);
        assert!(s.scale.transforms < p.scale.transforms);
        assert_eq!(s.seed, p.seed);
        assert_eq!(s.forest().n_trees, 30);
    }
}
