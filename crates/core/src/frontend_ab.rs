//! A/B equivalence suite for the single-parse frontend.
//!
//! Every test here builds the same experiment twice — once through the
//! cached artifact frontend ([`YearPipeline::try_build`]) and once
//! through the pre-cache reference frontend
//! ([`YearPipeline::try_build_reference`], which re-parses from text at
//! every stage exactly as the pipeline did before the refactor) — and
//! asserts the results are bit-identical. The cache is only allowed to
//! change *when* frontend work happens, never *what* it produces.
//!
//! Coverage follows the paper's experimental grid at reduced scale:
//! all nine style pools (years 2017–2019 × root seeds 1–3), both
//! protocols (NCT and CT run inside every pipeline via the four
//! settings of Table II), and fault-injection rates 0%, 5%, and 20%.

use crate::config::{ExperimentConfig, Scale};
use crate::experiments::attribution::{self, Grouping};
use crate::experiments::{binary, diversity, figures, styles};
use crate::pipeline::YearPipeline;
use synthattr_faults::FaultProfile;

const YEARS: [u32; 3] = [2017, 2018, 2019];
const SEEDS: [u64; 3] = [1, 2, 3];
const RATES: [f64; 3] = [0.0, 0.05, 0.20];

/// A deliberately tiny scale: the grid below builds dozens of
/// pipelines, and frontend equivalence is scale-free (the same code
/// paths run at paper scale with bigger loops).
fn tiny(seed: u64, rate: f64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::smoke();
    cfg.seed = seed;
    cfg.scale = Scale {
        authors: 6,
        challenges: 2,
        transforms: 4,
        n_trees: 4,
    };
    if rate > 0.0 {
        cfg = cfg.with_faults(FaultProfile::recoverable(seed, rate));
    }
    cfg
}

/// Field-by-field bit-identity between two pipeline builds.
fn assert_pipelines_identical(cached: &YearPipeline, reference: &YearPipeline, ctx: &str) {
    assert_eq!(
        cached.human_features, reference.human_features,
        "human feature matrix diverged ({ctx})"
    );
    assert_eq!(cached.seed_author, reference.seed_author, "{ctx}");
    assert_eq!(
        cached.diagnostics, reference.diagnostics,
        "lint diagnostics diverged ({ctx})"
    );
    assert_eq!(
        cached.resilience, reference.resilience,
        "resilience accounting diverged ({ctx})"
    );
    assert_eq!(
        cached.transformed.len(),
        reference.transformed.len(),
        "{ctx}"
    );
    for (a, b) in cached.transformed.iter().zip(&reference.transformed) {
        assert_eq!(a.sample, b.sample, "transformed sample diverged ({ctx})");
        assert_eq!(a.challenge, b.challenge, "{ctx}");
        assert_eq!(a.setting, b.setting, "{ctx}");
        assert_eq!(a.features, b.features, "feature vector diverged ({ctx})");
        assert_eq!(
            a.oracle_label, b.oracle_label,
            "oracle label diverged ({ctx})"
        );
        assert_eq!(a.outcome, b.outcome, "{ctx}");
    }
}

/// The tentpole guarantee over the full grid: 9 pools × 3 fault rates,
/// NCT and CT both exercised inside every build.
#[test]
fn cached_frontend_matches_reference_across_pools_and_fault_rates() {
    for year in YEARS {
        for seed in SEEDS {
            for rate in RATES {
                let ctx = format!("year={year} seed={seed} rate={rate}");
                let cfg = tiny(seed, rate);
                let cached = YearPipeline::try_build(year, &cfg)
                    .unwrap_or_else(|e| panic!("cached build failed ({ctx}): {e}"));
                let reference = YearPipeline::try_build_reference(year, &cfg)
                    .unwrap_or_else(|e| panic!("reference build failed ({ctx}): {e}"));
                assert_pipelines_identical(&cached, &reference, &ctx);

                // The reference frontend records no cache traffic; the
                // cached frontend must have materialised every human
                // sample plus every distinct transformed source, and
                // each seed's second setting is a guaranteed hit.
                assert_eq!(reference.frontend.cache_hits, 0, "{ctx}");
                assert_eq!(reference.frontend.cache_misses, 0, "{ctx}");
                assert!(
                    cached.frontend.cache_misses >= cached.corpus.len() as u64,
                    "{ctx}: {:?}",
                    cached.frontend
                );
                assert!(
                    cached.frontend.cache_hits >= 2 * cfg.scale.challenges as u64,
                    "{ctx}: {:?}",
                    cached.frontend
                );
            }
        }
    }
}

/// Every table and figure driver is a pure function of the pipeline,
/// so frontend equivalence must propagate to the paper's artifacts
/// (Tables IV–X, Figure 1). Debug formatting is the strictest cheap
/// equality available across all result types.
#[test]
fn experiment_tables_match_reference_frontend() {
    let mut cached_years = Vec::new();
    let mut reference_years = Vec::new();
    for year in YEARS {
        let ctx = format!("tables year={year}");
        let cfg = tiny(2, 0.05);
        let cached = YearPipeline::try_build(year, &cfg).unwrap();
        let reference = YearPipeline::try_build_reference(year, &cfg).unwrap();

        // Table IV (styles), Tables V–VII (diversity).
        assert_eq!(
            format!("{:?}", styles::run(&cached)),
            format!("{:?}", styles::run(&reference)),
            "{ctx}"
        );
        assert_eq!(
            format!("{:?}", diversity::run(&cached)),
            format!("{:?}", diversity::run(&reference)),
            "{ctx}"
        );
        // Tables VIII–IX (attribution, both groupings).
        for grouping in [Grouping::Naive, Grouping::FeatureBased] {
            assert_eq!(
                format!("{:?}", attribution::run(&cached, grouping)),
                format!("{:?}", attribution::run(&reference, grouping)),
                "{ctx} {grouping:?}"
            );
        }
        // Table X (binary, per-year) and Figure 1.
        assert_eq!(
            format!("{:?}", binary::run_individual(&cached)),
            format!("{:?}", binary::run_individual(&reference)),
            "{ctx}"
        );
        assert_eq!(
            figures::figure1(&cached),
            figures::figure1(&reference),
            "{ctx}"
        );

        cached_years.push(cached);
        reference_years.push(reference);
    }
    // Table X (combined over all years).
    assert_eq!(
        format!("{:?}", binary::run_combined(&cached_years)),
        format!("{:?}", binary::run_combined(&reference_years)),
        "combined binary"
    );
}

/// Degraded (not just recovered) runs must also be frontend-invariant:
/// the brutal profile forces NCT resamples and CT held steps, which is
/// exactly where the cached path's held-step hits come from.
#[test]
fn degraded_runs_match_reference_and_hit_the_cache() {
    let mut cfg = tiny(3, 0.0);
    cfg = cfg.with_faults(FaultProfile::brutal(3));
    let cached = YearPipeline::try_build(2018, &cfg).unwrap();
    let reference = YearPipeline::try_build_reference(2018, &cfg).unwrap();
    assert_pipelines_identical(&cached, &reference, "brutal 2018");
    assert!(
        cached.resilience.degraded + cached.resilience.failed > 0,
        "brutal profile should degrade: {:?}",
        cached.resilience
    );
    // A CT stream that holds its last good step (or an NCT stream that
    // falls back to the seed) re-interns an already-seen source, so
    // degradation strictly increases the hit count beyond the per-seed
    // floor.
    assert!(
        cached.frontend.cache_hits > 2 * cfg.scale.challenges as u64,
        "{:?}",
        cached.frontend
    );
}
