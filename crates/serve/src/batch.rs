//! Micro-batching for `/attribute`.
//!
//! Forest prediction amortizes well: one `predict_proba_batch` call
//! over N rows fans the trees out across the worker pool once instead
//! of N times. The batcher coalesces concurrent requests into such
//! calls under a deadline, with two layers:
//!
//! * [`BatchQueue`] — the **pure policy core**, driven by an explicit
//!   millisecond clock. All flush decisions (batch full, deadline hit)
//!   and FIFO ordering live here, so they unit-test deterministically
//!   with a simulated clock, no threads, no sleeps.
//! * [`MicroBatcher`] — the live wrapper in a leader/follower shape:
//!   the first submitter of an empty round becomes *leader*, waits out
//!   the deadline (cut short when the batch fills), drains the round,
//!   runs one batched prediction, and distributes results; followers
//!   just park on their slot. Batching changes only *when* predictions
//!   run, never what they return — per-row prediction is pure, which
//!   is what keeps served verdicts byte-identical at any concurrency.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Batching policy knobs.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Most rows coalesced into one prediction call.
    pub max_batch: usize,
    /// Longest a request may wait for co-riders, in ms (0 = flush
    /// immediately, i.e. batching off).
    pub max_delay_ms: u64,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 16,
            max_delay_ms: 2,
        }
    }
}

/// The deterministic batching policy over an explicit clock.
///
/// Items are opaque ids; the queue tracks arrival order and the
/// enqueue time of the round's *first* item (the deadline anchor —
/// later arrivals never extend the wait, so latency is bounded by
/// `max_delay_ms` regardless of traffic shape).
#[derive(Debug)]
pub struct BatchQueue {
    config: BatchConfig,
    pending: VecDeque<u64>,
    round_started_ms: Option<u64>,
}

impl BatchQueue {
    /// An empty queue under `config` (`max_batch` clamped to ≥ 1).
    pub fn new(mut config: BatchConfig) -> Self {
        config.max_batch = config.max_batch.max(1);
        BatchQueue {
            config,
            pending: VecDeque::new(),
            round_started_ms: None,
        }
    }

    /// Enqueues an item at `now_ms`. Returns `true` when this item
    /// opened a new round (the caller becomes its leader).
    pub fn push(&mut self, id: u64, now_ms: u64) -> bool {
        self.pending.push_back(id);
        if self.round_started_ms.is_none() {
            self.round_started_ms = Some(now_ms);
            return true;
        }
        false
    }

    /// The instant the current round must flush, if one is open.
    pub fn deadline_ms(&self) -> Option<u64> {
        self.round_started_ms.map(|t| t + self.config.max_delay_ms)
    }

    /// Whether the current round should flush at `now_ms`: batch full
    /// or deadline reached.
    pub fn ready(&self, now_ms: u64) -> bool {
        !self.pending.is_empty()
            && (self.pending.len() >= self.config.max_batch
                || self.deadline_ms().is_some_and(|d| now_ms >= d))
    }

    /// Drains up to `max_batch` items in FIFO order and, if items
    /// remain, re-anchors the next round's deadline at `now_ms`.
    pub fn take(&mut self, now_ms: u64) -> Vec<u64> {
        let n = self.pending.len().min(self.config.max_batch);
        let batch: Vec<u64> = self.pending.drain(..n).collect();
        self.round_started_ms = if self.pending.is_empty() {
            None
        } else {
            Some(now_ms)
        };
        batch
    }

    /// Items currently waiting.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no items are waiting.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

/// Counters the batcher exposes on `/healthz`.
#[derive(Debug, Default)]
pub struct BatchStats {
    /// Prediction calls issued.
    pub batches: AtomicU64,
    /// Rows predicted across all batches.
    pub rows: AtomicU64,
    /// Largest single batch seen.
    pub max_batch_seen: AtomicU64,
}

/// One request's parking spot while its round is in flight.
#[derive(Debug, Default)]
struct Slot {
    result: Mutex<Option<Vec<f32>>>,
    done: Condvar,
}

#[derive(Debug)]
struct Round {
    rows: Vec<Vec<f64>>,
    slots: Vec<Arc<Slot>>,
    /// Whether a leader currently owns the open round.
    leader_active: bool,
}

/// The live leader/follower batcher for one year's model.
#[derive(Debug)]
pub struct MicroBatcher {
    model: Arc<crate::registry::YearModel>,
    config: BatchConfig,
    round: Mutex<Round>,
    filled: Condvar,
    stats: BatchStats,
}

impl MicroBatcher {
    /// A batcher predicting with `model` under `config`.
    pub fn new(model: Arc<crate::registry::YearModel>, mut config: BatchConfig) -> Self {
        config.max_batch = config.max_batch.max(1);
        MicroBatcher {
            model,
            config,
            round: Mutex::new(Round {
                rows: Vec::new(),
                slots: Vec::new(),
                leader_active: false,
            }),
            filled: Condvar::new(),
            stats: BatchStats::default(),
        }
    }

    /// Observability counters.
    pub fn stats(&self) -> &BatchStats {
        &self.stats
    }

    /// Submits one feature row and blocks until its probability vector
    /// is ready (at most `max_delay_ms` of coalescing plus one batched
    /// prediction).
    pub fn submit(&self, features: Vec<f64>) -> Vec<f32> {
        let my_slot = Arc::new(Slot::default());
        let is_leader = {
            let mut round = self.round.lock().expect("batcher poisoned");
            round.rows.push(features);
            round.slots.push(Arc::clone(&my_slot));
            if round.rows.len() >= self.config.max_batch {
                // Full house: wake the leader early.
                self.filled.notify_all();
            }
            if round.leader_active {
                false
            } else {
                round.leader_active = true;
                true
            }
        };

        if is_leader {
            self.lead_round();
        }

        let mut result = my_slot.result.lock().expect("batch slot poisoned");
        loop {
            if let Some(proba) = result.take() {
                return proba;
            }
            result = my_slot.done.wait(result).expect("batch slot poisoned");
        }
    }

    /// Leader duty: wait out the coalescing window, drain the round,
    /// predict once, distribute. When a drain leaves a backlog (more
    /// than `max_batch` rows accumulated), the leader keeps leadership
    /// and runs another round for them — parked followers always have
    /// a live leader.
    fn lead_round(&self) {
        loop {
            let deadline = Instant::now() + Duration::from_millis(self.config.max_delay_ms);
            let mut round = self.round.lock().expect("batcher poisoned");
            while round.rows.len() < self.config.max_batch {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, _timeout) = self
                    .filled
                    .wait_timeout(round, deadline - now)
                    .expect("batcher poisoned");
                round = guard;
            }
            let take_n = round.rows.len().min(self.config.max_batch);
            let rows: Vec<Vec<f64>> = round.rows.drain(..take_n).collect();
            let slots: Vec<Arc<Slot>> = round.slots.drain(..take_n).collect();
            let backlog = !round.rows.is_empty();
            if !backlog {
                // Hand leadership to the next submitter before the
                // expensive prediction runs.
                round.leader_active = false;
            }
            drop(round);

            let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
            let probas = self.model.model.forest().predict_proba_batch(&row_refs);
            self.stats.batches.fetch_add(1, Ordering::Relaxed);
            self.stats
                .rows
                .fetch_add(rows.len() as u64, Ordering::Relaxed);
            self.stats
                .max_batch_seen
                .fetch_max(rows.len() as u64, Ordering::Relaxed);

            for (slot, proba) in slots.iter().zip(probas) {
                *slot.result.lock().expect("batch slot poisoned") = Some(proba);
                slot.done.notify_one();
            }

            if !backlog {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queue(max_batch: usize, max_delay_ms: u64) -> BatchQueue {
        BatchQueue::new(BatchConfig {
            max_batch,
            max_delay_ms,
        })
    }

    #[test]
    fn first_push_opens_the_round_and_anchors_the_deadline() {
        let mut q = queue(8, 5);
        assert!(q.push(1, 100), "first item leads");
        assert!(!q.push(2, 103), "followers do not lead");
        assert_eq!(q.deadline_ms(), Some(105), "anchored at the FIRST arrival");
        assert!(!q.ready(104));
        assert!(q.ready(105), "deadline flushes");
    }

    #[test]
    fn full_batch_flushes_before_the_deadline() {
        let mut q = queue(3, 1_000);
        q.push(1, 0);
        q.push(2, 0);
        assert!(!q.ready(0));
        q.push(3, 0);
        assert!(q.ready(0), "batch-size trigger ignores the clock");
    }

    #[test]
    fn take_preserves_fifo_order_and_caps_at_max_batch() {
        let mut q = queue(4, 10);
        for (i, t) in (0..6).zip([0, 1, 2, 3, 4, 5]) {
            q.push(i, t);
        }
        assert_eq!(q.take(50), vec![0, 1, 2, 3], "FIFO, capped at max_batch");
        assert_eq!(q.len(), 2);
        assert_eq!(
            q.deadline_ms(),
            Some(60),
            "leftover round re-anchors at flush time"
        );
        assert_eq!(q.take(60), vec![4, 5]);
        assert!(q.is_empty());
        assert_eq!(q.deadline_ms(), None, "empty queue has no deadline");
    }

    #[test]
    fn empty_queue_is_never_ready() {
        let q = queue(1, 0);
        assert!(!q.ready(u64::MAX));
    }

    #[test]
    fn zero_delay_flushes_each_item_immediately() {
        let mut q = queue(8, 0);
        q.push(7, 42);
        assert!(q.ready(42), "max_delay_ms = 0 disables coalescing");
        assert_eq!(q.take(42), vec![7]);
    }

    #[test]
    fn simulated_clock_replay_is_deterministic() {
        // The same (id, time) script must produce the same flush
        // trajectory — the policy has no hidden clock.
        let script: Vec<(u64, u64)> = (0..20).map(|i| (i, i * 3)).collect();
        let run = |script: &[(u64, u64)]| {
            let mut q = queue(4, 7);
            let mut flushes = Vec::new();
            for &(id, t) in script {
                q.push(id, t);
                while q.ready(t) {
                    flushes.push(q.take(t));
                }
            }
            let end = script.last().unwrap().1 + 100;
            while !q.is_empty() {
                flushes.push(q.take(end));
            }
            flushes
        };
        assert_eq!(run(&script), run(&script));
    }
}
