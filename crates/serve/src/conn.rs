//! Per-connection survivability policy: budgets, phases, verdicts.
//!
//! The rotation loop in `server.rs` never camps on a socket — it
//! reads what a connection has to offer, then either serves, parks,
//! or closes it. *Which* of those happens is decided here, by a pure
//! policy core in the same style as [`crate::batch::BatchQueue`]:
//! every method takes an explicit `now_ms`, so the unit suite can
//! replay a slow-loris, a byte-dripper, or an idle keep-alive session
//! with a scripted clock and no sockets at all.
//!
//! The model: a connection is always in one [`Phase`]. Time spent
//! in [`Phase::Idle`] accrues against a *total* idle budget for the
//! connection's lifetime (a patient keep-alive client is fine, a
//! parked zombie is not); time spent in the other phases is bounded
//! per phase (`Head`/`Body`/`Write` progress deadlines), so a peer
//! that starts a request must keep it moving. A request served
//! counts against `max_requests`, bounding what one connection can
//! extract before it is recycled.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::http::ScanStatus;

/// Per-connection budgets and the rotation tuning knobs.
#[derive(Debug, Clone)]
pub struct ConnPolicy {
    /// Total milliseconds a connection may sit idle (no request in
    /// flight) across its whole lifetime before it is recycled.
    pub idle_budget_ms: u64,
    /// Deadline from the first byte of a request to a complete head —
    /// the slow-loris bound.
    pub header_deadline_ms: u64,
    /// Deadline from a complete head to a complete body — the
    /// mid-request staller bound.
    pub body_deadline_ms: u64,
    /// Deadline for a blocked response write to make progress.
    pub write_stall_ms: u64,
    /// Requests served per connection before it is closed (bounds
    /// what one keep-alive session can extract).
    pub max_requests: u32,
    /// Requests served per drive slice before the connection is
    /// parked again, so one pipelining client cannot monopolize a
    /// worker.
    pub max_requests_per_slice: u32,
    /// Cap on the exponential back-off a worker sleeps after an
    /// unproductive sweep of the parked set, bounding idle spin.
    pub rotation_backoff_ms: u64,
}

impl Default for ConnPolicy {
    fn default() -> Self {
        ConnPolicy {
            idle_budget_ms: 30_000,
            header_deadline_ms: 2_000,
            body_deadline_ms: 2_000,
            write_stall_ms: 2_000,
            max_requests: 1_024,
            max_requests_per_slice: 32,
            rotation_backoff_ms: 5,
        }
    }
}

impl ConnPolicy {
    /// The read timeout the server advertises to well-behaved
    /// clients: comfortably past the point where the server itself
    /// would have recycled a stalled exchange, with a floor so tight
    /// chaos-test deadlines never race a legitimate response.
    pub fn client_timeout(&self) -> Duration {
        let ms = (self.header_deadline_ms + self.body_deadline_ms)
            .saturating_mul(4)
            .max(1_000);
        Duration::from_millis(ms)
    }
}

/// What a connection is doing right now, as far as budgets care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// No request in flight; the peer owes us nothing.
    Idle,
    /// A request head is arriving.
    Head,
    /// The head is complete; the body is arriving.
    Body,
    /// A response is partially written and the socket is full.
    Write,
}

/// Why a connection was closed. Every variant is a `/healthz`
/// counter, so operators can tell a hostile army from a flaky LAN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseCause {
    /// The peer closed first (clean keep-alive teardown).
    PeerClosed,
    /// The request asked for `Connection: close` (or HTTP/1.0).
    ClientClose,
    /// Lifetime idle budget exhausted.
    IdleBudget,
    /// Head progress deadline missed (slow-loris).
    HeaderStall,
    /// Body progress deadline missed (mid-request staller).
    BodyStall,
    /// A blocked response write never drained.
    WriteStall,
    /// `max_requests` served; the connection is recycled.
    MaxRequests,
    /// The request was malformed or over-limit; framing is gone.
    BadRequest,
    /// Transport error or handler panic — an abrupt peer.
    HostileReset,
    /// Closed while gracefully draining, after final responses.
    Drain,
    /// Force-closed at the drain hard deadline.
    Forced,
}

impl CloseCause {
    /// Every cause, in `/healthz` serialization order.
    pub const ALL: [CloseCause; 11] = [
        CloseCause::PeerClosed,
        CloseCause::ClientClose,
        CloseCause::IdleBudget,
        CloseCause::HeaderStall,
        CloseCause::BodyStall,
        CloseCause::WriteStall,
        CloseCause::MaxRequests,
        CloseCause::BadRequest,
        CloseCause::HostileReset,
        CloseCause::Drain,
        CloseCause::Forced,
    ];

    /// The `/healthz` counter key.
    pub fn tag(self) -> &'static str {
        match self {
            CloseCause::PeerClosed => "peer_closed",
            CloseCause::ClientClose => "client_close",
            CloseCause::IdleBudget => "idle_budget",
            CloseCause::HeaderStall => "header_stall",
            CloseCause::BodyStall => "body_stall",
            CloseCause::WriteStall => "write_stall",
            CloseCause::MaxRequests => "max_requests",
            CloseCause::BadRequest => "bad_request",
            CloseCause::HostileReset => "hostile_reset",
            CloseCause::Drain => "drain",
            CloseCause::Forced => "forced",
        }
    }
}

/// The rotation loop's decision for a connection that has nothing
/// more to offer this slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Put it back on the queue; its budgets still have room.
    Park,
    /// Recycle it, for the given cause.
    Close(CloseCause),
}

/// One connection's budget meter. All methods take an explicit
/// `now_ms` (same monotonic clock as the rate limiter), so the whole
/// state machine is unit-testable with a scripted clock.
#[derive(Debug, Clone)]
pub struct ConnGauge {
    phase: Phase,
    /// When the current phase began.
    phase_start_ms: u64,
    /// Idle milliseconds accrued in *completed* idle stretches.
    idle_spent_ms: u64,
    /// Requests served on this connection.
    requests: u32,
}

impl ConnGauge {
    /// A fresh connection, idle as of `now_ms`.
    pub fn new(now_ms: u64) -> Self {
        ConnGauge {
            phase: Phase::Idle,
            phase_start_ms: now_ms,
            idle_spent_ms: 0,
            requests: 0,
        }
    }

    /// The current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Requests served so far.
    pub fn requests(&self) -> u32 {
        self.requests
    }

    /// Idle milliseconds spent so far (completed stretches plus the
    /// current one, if idle).
    pub fn idle_spent_ms(&self, now_ms: u64) -> u64 {
        let current = match self.phase {
            Phase::Idle => now_ms.saturating_sub(self.phase_start_ms),
            _ => 0,
        };
        self.idle_spent_ms + current
    }

    fn enter(&mut self, phase: Phase, now_ms: u64) {
        if self.phase == phase {
            return;
        }
        if self.phase == Phase::Idle {
            self.idle_spent_ms += now_ms.saturating_sub(self.phase_start_ms);
        }
        self.phase = phase;
        self.phase_start_ms = now_ms;
    }

    /// Folds a buffer scan into the phase machine: first bytes of a
    /// request move Idle → Head, a complete head moves Head → Body.
    /// A pending write pins the phase (the write deadline governs
    /// until the socket drains).
    pub fn observe_scan(&mut self, status: ScanStatus, now_ms: u64) {
        if self.phase == Phase::Write {
            return;
        }
        match status {
            ScanStatus::Empty => self.enter(Phase::Idle, now_ms),
            ScanStatus::PartialHead | ScanStatus::Complete { .. } => {
                if self.phase == Phase::Idle {
                    self.enter(Phase::Head, now_ms);
                }
            }
            ScanStatus::NeedBody { .. } => {
                if self.phase == Phase::Idle {
                    self.enter(Phase::Head, now_ms);
                }
                self.enter(Phase::Body, now_ms);
            }
        }
    }

    /// A response write could not complete; the write deadline now
    /// governs the connection.
    pub fn write_blocked(&mut self, now_ms: u64) {
        self.enter(Phase::Write, now_ms);
    }

    /// A blocked write moved bytes: its deadline re-arms.
    pub fn write_progress(&mut self, now_ms: u64) {
        if self.phase == Phase::Write {
            self.phase_start_ms = now_ms;
        }
    }

    /// The blocked write fully drained; the connection is idle again
    /// (a buffered next request re-enters Head on the next scan).
    pub fn write_drained(&mut self, now_ms: u64) {
        if self.phase == Phase::Write {
            self.phase = Phase::Idle;
            self.phase_start_ms = now_ms;
        }
    }

    /// One request was served. Returns `true` when the connection has
    /// reached `max_requests` and must close after this response.
    pub fn request_served(&mut self, policy: &ConnPolicy, now_ms: u64) -> bool {
        self.requests = self.requests.saturating_add(1);
        // The request is done; whatever phase the parse left us in,
        // the peer owes us nothing until its next request line.
        self.phase = Phase::Idle;
        self.phase_start_ms = now_ms;
        self.requests >= policy.max_requests
    }

    /// The verdict for a connection that yielded no progress this
    /// slice: park it, or close it because a budget ran out.
    pub fn stalled(&self, policy: &ConnPolicy, now_ms: u64) -> Verdict {
        let in_phase = now_ms.saturating_sub(self.phase_start_ms);
        match self.phase {
            Phase::Idle => {
                if self.idle_spent_ms + in_phase >= policy.idle_budget_ms {
                    Verdict::Close(CloseCause::IdleBudget)
                } else {
                    Verdict::Park
                }
            }
            Phase::Head => {
                if in_phase >= policy.header_deadline_ms {
                    Verdict::Close(CloseCause::HeaderStall)
                } else {
                    Verdict::Park
                }
            }
            Phase::Body => {
                if in_phase >= policy.body_deadline_ms {
                    Verdict::Close(CloseCause::BodyStall)
                } else {
                    Verdict::Park
                }
            }
            Phase::Write => {
                if in_phase >= policy.write_stall_ms {
                    Verdict::Close(CloseCause::WriteStall)
                } else {
                    Verdict::Park
                }
            }
        }
    }
}

/// Shared connection gauges and close-cause counters (relaxed
/// atomics; observability plus the drain report).
#[derive(Debug, Default)]
pub struct ConnCounters {
    /// Connections accepted over the server's lifetime.
    pub opened: AtomicU64,
    /// Connections currently open (accepted, not yet closed).
    pub open: AtomicU64,
    /// Connections currently parked on the work queue.
    pub parked: AtomicU64,
    closes: [AtomicU64; CloseCause::ALL.len()],
}

impl ConnCounters {
    fn slot(cause: CloseCause) -> usize {
        CloseCause::ALL
            .iter()
            .position(|&c| c == cause)
            .expect("cause in ALL")
    }

    /// A connection was accepted.
    pub fn on_accept(&self) {
        self.opened.fetch_add(1, Ordering::Relaxed);
        self.open.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection was parked on the queue.
    pub fn on_park(&self) {
        self.parked.fetch_add(1, Ordering::Relaxed);
    }

    /// A parked connection was picked up by a worker.
    pub fn on_resume(&self) {
        self.parked.fetch_sub(1, Ordering::Relaxed);
    }

    /// A connection was closed, for `cause`.
    pub fn on_close(&self, cause: CloseCause) {
        self.open.fetch_sub(1, Ordering::Relaxed);
        self.closes[Self::slot(cause)].fetch_add(1, Ordering::Relaxed);
    }

    /// The close counter for one cause.
    pub fn closed(&self, cause: CloseCause) -> u64 {
        self.closes[Self::slot(cause)].load(Ordering::Relaxed)
    }

    /// Currently open connections.
    pub fn open_now(&self) -> u64 {
        self.open.load(Ordering::Relaxed)
    }

    /// Currently parked connections.
    pub fn parked_now(&self) -> u64 {
        self.parked.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> ConnPolicy {
        ConnPolicy {
            idle_budget_ms: 100,
            header_deadline_ms: 20,
            body_deadline_ms: 30,
            write_stall_ms: 15,
            max_requests: 3,
            max_requests_per_slice: 2,
            rotation_backoff_ms: 5,
        }
    }

    #[test]
    fn a_slow_loris_is_cut_at_the_header_deadline() {
        let p = policy();
        let mut g = ConnGauge::new(0);
        // First bytes arrive at t=5: Idle → Head.
        g.observe_scan(ScanStatus::PartialHead, 5);
        assert_eq!(g.phase(), Phase::Head);
        assert_eq!(g.stalled(&p, 10), Verdict::Park, "5ms into the head");
        assert_eq!(g.stalled(&p, 24), Verdict::Park, "19ms in: still inside");
        assert_eq!(
            g.stalled(&p, 25),
            Verdict::Close(CloseCause::HeaderStall),
            "20ms of head with no completion"
        );
    }

    #[test]
    fn a_dripper_survives_as_long_as_each_phase_progresses() {
        let p = policy();
        let mut g = ConnGauge::new(0);
        g.observe_scan(ScanStatus::PartialHead, 2);
        // Drip, drip — still PartialHead, but the head deadline is
        // anchored at first byte, not per byte: no re-arming.
        for t in [6, 10, 14, 18] {
            g.observe_scan(ScanStatus::PartialHead, t);
            assert_eq!(g.stalled(&p, t), Verdict::Park);
        }
        // Head completes inside the deadline; body phase re-arms.
        g.observe_scan(ScanStatus::NeedBody { total_len: 50 }, 20);
        assert_eq!(g.phase(), Phase::Body);
        assert_eq!(g.stalled(&p, 49), Verdict::Park, "29ms of body");
        assert_eq!(
            g.stalled(&p, 50),
            Verdict::Close(CloseCause::BodyStall),
            "30ms of body with no completion"
        );
    }

    #[test]
    fn idle_budget_is_lifetime_total_not_per_stretch() {
        let p = policy();
        let mut g = ConnGauge::new(0);
        // 60ms idle, then a served request, then idle again.
        g.observe_scan(ScanStatus::PartialHead, 60);
        assert!(!g.request_served(&p, 61));
        assert_eq!(g.phase(), Phase::Idle);
        assert_eq!(g.idle_spent_ms(61), 60);
        // A second stretch of 39ms keeps the total under 100…
        assert_eq!(g.stalled(&p, 100), Verdict::Park);
        // …but the stretch that reaches the total is the end.
        assert_eq!(g.stalled(&p, 101), Verdict::Close(CloseCause::IdleBudget));
    }

    #[test]
    fn max_requests_recycles_the_connection() {
        let p = policy();
        let mut g = ConnGauge::new(0);
        assert!(!g.request_served(&p, 1));
        assert!(!g.request_served(&p, 2));
        assert!(
            g.request_served(&p, 3),
            "third request reaches max_requests=3"
        );
        assert_eq!(g.requests(), 3);
    }

    #[test]
    fn a_blocked_write_stalls_out_unless_it_progresses() {
        let p = policy();
        let mut g = ConnGauge::new(0);
        g.write_blocked(10);
        assert_eq!(g.phase(), Phase::Write);
        assert_eq!(g.stalled(&p, 24), Verdict::Park);
        // Progress re-arms the deadline…
        g.write_progress(24);
        assert_eq!(g.stalled(&p, 38), Verdict::Park);
        assert_eq!(g.stalled(&p, 39), Verdict::Close(CloseCause::WriteStall));
        // …and draining returns the connection to idle accounting.
        g.write_drained(30);
        assert_eq!(g.phase(), Phase::Idle);
    }

    #[test]
    fn write_phase_pins_the_gauge_against_scan_transitions() {
        let mut g = ConnGauge::new(0);
        g.write_blocked(5);
        g.observe_scan(ScanStatus::PartialHead, 6);
        assert_eq!(
            g.phase(),
            Phase::Write,
            "buffered next request must not mask a blocked write"
        );
    }

    #[test]
    fn served_requests_reset_the_phase_but_not_idle_history() {
        let p = policy();
        let mut g = ConnGauge::new(0);
        g.observe_scan(ScanStatus::PartialHead, 40);
        g.observe_scan(ScanStatus::NeedBody { total_len: 9 }, 45);
        assert!(!g.request_served(&p, 50));
        // 40ms idle accrued before the request; the served request
        // contributes nothing to idle.
        assert_eq!(g.idle_spent_ms(50), 40);
        assert_eq!(g.stalled(&p, 99), Verdict::Park);
        assert_eq!(g.stalled(&p, 110), Verdict::Close(CloseCause::IdleBudget));
    }

    #[test]
    fn counters_track_gauges_and_causes() {
        let c = ConnCounters::default();
        c.on_accept();
        c.on_accept();
        c.on_park();
        assert_eq!(c.open_now(), 2);
        assert_eq!(c.parked_now(), 1);
        c.on_resume();
        c.on_close(CloseCause::IdleBudget);
        c.on_close(CloseCause::HostileReset);
        assert_eq!(c.open_now(), 0);
        assert_eq!(c.parked_now(), 0);
        assert_eq!(c.closed(CloseCause::IdleBudget), 1);
        assert_eq!(c.closed(CloseCause::HostileReset), 1);
        assert_eq!(c.closed(CloseCause::Drain), 0);
        assert_eq!(c.opened.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn client_timeout_scales_with_deadlines_and_has_a_floor() {
        let mut p = policy();
        assert_eq!(
            p.client_timeout(),
            Duration::from_millis(1_000),
            "tiny test deadlines still give clients a sane floor"
        );
        p.header_deadline_ms = 2_000;
        p.body_deadline_ms = 2_000;
        assert_eq!(p.client_timeout(), Duration::from_millis(16_000));
    }
}
