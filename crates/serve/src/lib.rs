//! # synthattr-serve — attribution as a service
//!
//! A hermetic (zero registry dependencies) HTTP/1.1 server that wraps
//! the offline attribution pipeline in a network API:
//!
//! | Endpoint | What it does |
//! |---|---|
//! | `POST /attribute?year=Y` | C++ source in, ranked author/ChatGPT verdict with probabilities out |
//! | `POST /transform?year=Y&mode=nct\|ct&steps=N&seed=S` | the simulated ChatGPT transformation chain |
//! | `GET /healthz` | breaker state, cache/batch/traffic counters, connection gauges, per-cause close counters, drain state |
//!
//! Architecture, bottom-up:
//!
//! * [`http`] — a defensive HTTP/1.1 parser and response writer over
//!   any `BufRead`, with hard limits on every dimension an attacker
//!   controls (request-line length, header count/size, body size) and
//!   explicit timeout mapping, so slow-loris and byte-soup inputs
//!   degrade to 4xx/close — never a panic or a hang.
//! * [`json`] — write-only JSON with shortest-round-trip float
//!   formatting, the property that makes response bodies byte-stable.
//! * [`registry`] — per-year models trained **once** through the exact
//!   offline pipeline code path ([`synthattr_core::pipeline::year_oracle`])
//!   and shared `Arc`-style across workers.
//! * [`batch`] — micro-batching: concurrent `/attribute` requests
//!   coalesce into single `predict_proba_batch` calls under a
//!   deadline; the policy core is pure and clock-explicit.
//! * [`limit`] — per-client token buckets built by running the fault
//!   layer's [`synthattr_faults::RetryBudget`] in reverse.
//! * [`conn`] — the connection-survivability policy core: per-
//!   connection budgets (lifetime idle budget, header/body progress
//!   deadlines, max requests) decided by a clock-explicit
//!   [`conn::ConnGauge`], unit-testable without sockets.
//! * [`drain`] — graceful-shutdown bookkeeping: the draining flag,
//!   the force-close hard deadline, and the [`drain::DrainStats`]
//!   report `shutdown()` returns.
//! * [`server`] — non-blocking accept plus a worker **rotation loop**
//!   over [`synthattr_util::pool::WorkQueue`]: workers park
//!   connections that yield no bytes instead of camping on them, so
//!   hostile connections hold sockets, never threads; a
//!   [`synthattr_faults::CircuitBreaker`] guards the transform engine
//!   and surfaces on `/healthz` as `ok`/`degraded`/`draining`.
//! * [`client`] — the minimal blocking client the e2e and bench
//!   harnesses drive the server with (read timeout configurable,
//!   defaulting to the server's advertised deadline-derived value).
//!
//! The load-bearing invariant, proven end-to-end in
//! `tests/serve_e2e.rs`: a served `/attribute` response is
//! **byte-identical** to what the offline pipeline's oracle produces
//! for the same source, at any worker count and client concurrency —
//! batching, caching, and connection rotation change scheduling,
//! never results. The survivability claims get their own live-TCP
//! proof in `tests/serve_chaos.rs` (hostile traffic from
//! `synthattr_faults::TrafficProfile`) and `tests/serve_drain.rs`
//! (shutdown racing pipelined bursts drops zero responses).

pub mod batch;
pub mod client;
pub mod conn;
pub mod drain;
pub mod http;
pub mod json;
pub mod limit;
pub mod registry;
pub mod server;

pub use batch::{BatchConfig, BatchQueue, MicroBatcher};
pub use client::{Client, ClientResponse};
pub use conn::{CloseCause, ConnGauge, ConnPolicy, Phase, Verdict};
pub use drain::{DrainState, DrainStats};
pub use http::{Limits, Request, Response};
pub use limit::{RateConfig, RateLimiter, TokenBucket};
pub use registry::{ModelRegistry, YearModel};
pub use server::{attribution_body, RunningServer, ServeConfig, Server, ServerState};
