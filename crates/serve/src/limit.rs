//! Per-client token-bucket rate limiting.
//!
//! The fault layer's [`RetryBudget`] is a drain-only counter; a token
//! bucket is exactly that machinery run in reverse — a budget that a
//! clock credits back ([`RetryBudget::refill`]) while requests drain
//! it. Buckets take the time as an explicit `now_ms`, so refill
//! behaviour unit-tests deterministically under a simulated clock; the
//! server feeds in a monotonic millisecond reading.

use std::collections::HashMap;
use synthattr_faults::RetryBudget;

/// Rate-limit tuning for one client identity.
#[derive(Debug, Clone)]
pub struct RateConfig {
    /// Bucket capacity: the largest tolerated burst.
    pub burst: u64,
    /// Sustained refill rate, tokens per second.
    pub per_second: u64,
}

impl Default for RateConfig {
    fn default() -> Self {
        RateConfig {
            burst: 64,
            per_second: 200,
        }
    }
}

/// One client's bucket: a [`RetryBudget`] plus the refill clock.
#[derive(Debug)]
pub struct TokenBucket {
    budget: RetryBudget,
    burst: u64,
    per_second: u64,
    /// The instant up to which refill credit has been granted.
    refilled_to_ms: u64,
}

impl TokenBucket {
    /// A full bucket whose refill clock starts at `now_ms`.
    pub fn new(config: &RateConfig, now_ms: u64) -> Self {
        let burst = config.burst.max(1);
        TokenBucket {
            budget: RetryBudget::new(burst),
            burst,
            per_second: config.per_second,
            refilled_to_ms: now_ms,
        }
    }

    /// Credits whole tokens accrued since the last refill. The clock
    /// advances only by the milliseconds actually converted, so
    /// fractional credit carries over instead of being lost.
    fn refill(&mut self, now_ms: u64) {
        if self.per_second == 0 || now_ms <= self.refilled_to_ms {
            return;
        }
        let elapsed = now_ms - self.refilled_to_ms;
        let tokens = elapsed * self.per_second / 1000;
        if tokens > 0 {
            self.budget.refill(tokens, self.burst);
            self.refilled_to_ms += tokens * 1000 / self.per_second;
        }
    }

    /// Takes one token at `now_ms`; `false` means the caller is over
    /// its rate (HTTP 429).
    pub fn try_acquire(&mut self, now_ms: u64) -> bool {
        self.refill(now_ms);
        self.budget.try_spend()
    }

    /// Tokens currently available.
    pub fn available(&self) -> u64 {
        self.budget.remaining()
    }
}

/// Buckets keyed by client identity (the `X-Client-Id` header, or the
/// anonymous fallback).
#[derive(Debug, Default)]
pub struct RateLimiter {
    config: RateConfig,
    buckets: HashMap<String, TokenBucket>,
    rejected: u64,
}

impl RateLimiter {
    /// A limiter issuing fresh buckets from `config`.
    pub fn new(config: RateConfig) -> Self {
        RateLimiter {
            config,
            buckets: HashMap::new(),
            rejected: 0,
        }
    }

    /// Admits or rejects one request from `client` at `now_ms`. A
    /// first-seen client starts with a full bucket.
    pub fn check(&mut self, client: &str, now_ms: u64) -> bool {
        let bucket = self
            .buckets
            .entry(client.to_string())
            .or_insert_with(|| TokenBucket::new(&self.config, now_ms));
        let admitted = bucket.try_acquire(now_ms);
        if !admitted {
            self.rejected += 1;
        }
        admitted
    }

    /// Requests rejected so far (for `/healthz`).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Distinct clients seen.
    pub fn clients(&self) -> usize {
        self.buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(burst: u64, per_second: u64) -> RateConfig {
        RateConfig { burst, per_second }
    }

    #[test]
    fn burst_drains_then_rejects() {
        let mut b = TokenBucket::new(&config(3, 10), 0);
        assert!(b.try_acquire(0));
        assert!(b.try_acquire(0));
        assert!(b.try_acquire(0));
        assert!(!b.try_acquire(0), "burst exhausted");
        assert_eq!(b.available(), 0);
    }

    #[test]
    fn refill_is_deterministic_under_a_simulated_clock() {
        // 10 tokens/s = one token per 100 ms, exactly.
        let mut b = TokenBucket::new(&config(3, 10), 0);
        for _ in 0..3 {
            assert!(b.try_acquire(0));
        }
        assert!(!b.try_acquire(99), "99 ms: no whole token yet");
        assert!(b.try_acquire(100), "100 ms: exactly one token");
        assert!(!b.try_acquire(100), "and only one");
        assert!(b.try_acquire(350), "250 ms more: 2 tokens accrued");
        assert!(b.try_acquire(350));
        assert!(!b.try_acquire(350));
    }

    #[test]
    fn fractional_credit_carries_over() {
        // 3 tokens/s: 333 ms is 0.999 tokens — not yet; the carry
        // means 334 ms tips it over (334 * 3 / 1000 = 1).
        let mut b = TokenBucket::new(&config(1, 3), 0);
        assert!(b.try_acquire(0));
        assert!(!b.try_acquire(333));
        assert!(b.try_acquire(334));
        // The clock advanced by ceil(1000/3) = 333 ms of converted
        // credit, so the next token lands at 667.
        assert!(!b.try_acquire(666));
        assert!(b.try_acquire(667));
    }

    #[test]
    fn refill_never_exceeds_the_burst_cap() {
        let mut b = TokenBucket::new(&config(4, 1000), 0);
        assert!(b.try_acquire(0));
        // An hour of idle credits at most `burst` tokens.
        b.refill(3_600_000);
        assert_eq!(b.available(), 4);
        for _ in 0..4 {
            assert!(b.try_acquire(3_600_000));
        }
        assert!(!b.try_acquire(3_600_000));
    }

    #[test]
    fn zero_rate_never_refills() {
        let mut b = TokenBucket::new(&config(2, 0), 0);
        assert!(b.try_acquire(0));
        assert!(b.try_acquire(0));
        assert!(!b.try_acquire(u64::MAX / 2), "no refill, ever");
    }

    #[test]
    fn replaying_a_clock_script_gives_identical_decisions() {
        let script: Vec<u64> = (0..200)
            .map(|i| i * 37 % 5000)
            .scan(0, |acc, d| {
                *acc += d;
                Some(*acc)
            })
            .collect();
        let run = |script: &[u64]| {
            let mut b = TokenBucket::new(&config(5, 7), 0);
            script.iter().map(|&t| b.try_acquire(t)).collect::<Vec<_>>()
        };
        assert_eq!(run(&script), run(&script));
    }

    #[test]
    fn limiter_isolates_clients_and_counts_rejections() {
        let mut limiter = RateLimiter::new(config(1, 0));
        assert!(limiter.check("alice", 0));
        assert!(!limiter.check("alice", 0), "alice is out of tokens");
        assert!(limiter.check("bob", 0), "bob has his own bucket");
        assert_eq!(limiter.rejected(), 1);
        assert_eq!(limiter.clients(), 2);
    }
}
