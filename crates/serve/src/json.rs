//! Tiny JSON *writer* helpers for the response bodies.
//!
//! Hand-rolled (hermetic workspace, no serde) and deliberately
//! write-only: requests carry raw C++ source as `text/plain`, so the
//! server never needs a JSON parser. Float formatting uses Rust's
//! shortest-round-trip `Display`, which is deterministic across runs
//! and platforms — the property the byte-identical e2e suite leans on.

/// Escapes and quotes `s` as a JSON string literal.
pub fn string(s: &str) -> String {
    synthattr_util::json::escaped(s)
}

/// Formats an `f32` as a JSON number (shortest round-trip; non-finite
/// values, which no probability can be, degrade to `null`).
pub fn f32(x: f32) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Formats an `f64` as a JSON number (same conventions as [`f32`]).
pub fn f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Joins pre-serialized values into a JSON array.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_escape_the_control_surface() {
        assert_eq!(string("plain"), "\"plain\"");
        assert_eq!(string("a\"b\\c"), r#""a\"b\\c""#);
        assert_eq!(string("line\nbreak\ttab"), r#""line\nbreak\ttab""#);
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn floats_round_trip_shortest() {
        assert_eq!(f32(0.25), "0.25");
        assert_eq!(f32(1.0), "1");
        assert_eq!(f64(0.1), "0.1");
        assert_eq!(f32(f32::NAN), "null");
        assert_eq!(f64(f64::INFINITY), "null");
    }

    #[test]
    fn arrays_join_with_commas() {
        assert_eq!(array(Vec::new()), "[]");
        assert_eq!(
            array(vec!["1".to_string(), "\"x\"".to_string()]),
            "[1,\"x\"]"
        );
    }
}
